// Deliberately materializing input for the charisma-trace-materialize
// golden test.  Never compiled — only scanned as a src/analysis/ file
// (outside the trace module's reference path).  Line numbers are
// load-bearing: the golden file pins every finding to its line.
#include <vector>

#include "trace/record.hpp"

namespace charisma::analysis {

struct BadStore {
  std::vector<trace::Record> all;
};

inline std::vector<charisma::trace::Record> copy_out(const BadStore& s) {
  return s.all;
}

inline std::size_t count(const BadStore& s) {
  return s.records().size();
}

// NOLINTNEXTLINE(charisma-trace-materialize)
inline std::vector<trace::Record> audited(const BadStore& s) {
  return s.all;
}

}  // namespace charisma::analysis
