// Bounded-memory trace spilling (ROADMAP item 3).
//
// A spilled trace is an ordinary CHARISMA trace file written *incrementally*:
// the collector appends each flushed block as it arrives and only the header
// plus a per-block stamp index stay resident.  Because the on-disk layout is
// exactly `TraceFile::write`'s, every existing reader — including the
// tolerant crash-recovery path — works on a spill file unchanged, and the
// streaming digest below is bit-identical to `TraceFile::digest()` on the
// materialized equivalent.
//
// Blocks land in two tiers.  A writer with a SpillBudget keeps finished
// blocks' encoded payloads resident until the budget pool runs dry; from the
// first refused reservation on, every later block goes to the disk tier
// (sticky overflow, so the resident set is always a *prefix* of the stream
// and the on-disk file is always a self-consistent trace holding the tail).
// Budget reservations are never returned — the pool is a monotone RSS bound,
// shared between the trace spill and the replay-op spill of one study.  The
// disk tier is written through a staging buffer, optionally from a
// background writer thread with a bounded queue so append() never blocks the
// simulation on write(2).
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_file.hpp"

namespace charisma::trace {

/// Push-based consumer of the postprocessed (clock-corrected, merged) record
/// stream.  Sinks hold bounded per-file/per-job state, never the full trace.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_record(const Record& record) = 0;
};

/// A monotone reserve-only byte pool bounding how much spilled payload may
/// stay resident across the spill writers of one study (trace blocks plus
/// replay-op chunks).  Reservations are thread-safe and never released:
/// remaining() only falls, so the pool is a hard RSS bound by construction.
class SpillBudget {
 public:
  explicit SpillBudget(std::int64_t bytes) noexcept : remaining_(bytes) {}
  SpillBudget(const SpillBudget&) = delete;
  SpillBudget& operator=(const SpillBudget&) = delete;

  /// True (and debits the pool) iff `bytes` still fit.
  [[nodiscard]] bool try_reserve(std::int64_t bytes) noexcept {
    std::int64_t cur = remaining_.load(std::memory_order_relaxed);
    while (cur >= bytes) {
      if (remaining_.compare_exchange_weak(cur, cur - bytes,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::int64_t remaining() const noexcept {
    return remaining_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> remaining_;
};

/// The disk-tier backing file.  Three flavours:
///   - anonymous: O_TMPFILE in the target directory, falling back to a
///     uniquely named (pid + counter) file unlinked immediately after
///     creation — either way a crash leaves no litter.  Reads re-open the
///     still-live inode through /proc/self/fd/<fd>; if /proc is unavailable
///     the named fallback stays visible (and owned) until destruction.
///   - named: a visible file at a caller-chosen path, created eagerly and
///     unlinked on destruction (crash-recovery tests and saved traces).
///   - reference: an existing file opened read-only and never removed.
class SpillFile {
 public:
  SpillFile() = default;
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile() { close_and_remove(); }

  /// Anonymous temp file in `dir` (empty: $TMPDIR, then /tmp).  Throws
  /// std::runtime_error when no file can be created there.
  [[nodiscard]] static SpillFile create_anonymous(const std::string& dir,
                                                  const char* tag);
  /// Creates/truncates a visible file at exactly `path`.  Not yet owned —
  /// see own_visible_file().  Throws std::runtime_error on failure.
  [[nodiscard]] static SpillFile create_named(const std::string& path);
  /// Borrows an existing file for reading; never removed.
  [[nodiscard]] static SpillFile reference(std::string path);

  [[nodiscard]] bool valid() const noexcept {
    return fd_ >= 0 || !read_path_.empty();
  }
  /// Writable descriptor (-1 for reference files).
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Path readers open ifstreams on ("/proc/self/fd/<fd>" when anonymous).
  [[nodiscard]] const std::string& read_path() const noexcept {
    return read_path_;
  }
  /// True when the backing inode is already unlinked (crash-litter-proof).
  [[nodiscard]] bool anonymous() const noexcept { return anonymous_; }

  /// Closes the descriptor and unlinks the file if owned.  Idempotent.
  void close_and_remove() noexcept;

  /// Marks a visible (non-anonymous) file owned, so close_and_remove() — and
  /// destruction — unlink it.  Called by SpillWriter::finish when it hands
  /// the file to the SpilledTrace; a writer destroyed *unfinished* leaves a
  /// named file behind on purpose (the crash-recovery contract).  No-op for
  /// anonymous and reference files.
  void own_visible_file() noexcept {
    if (!anonymous_ && fd_ >= 0) remove_path_ = read_path_;
  }

 private:
  int fd_ = -1;
  std::string read_path_;
  std::string remove_path_;  // non-empty: unlink on close_and_remove()
  bool anonymous_ = false;
};

/// Writes all of `data` to `fd` (retrying short writes and EINTR); returns
/// the host ms spent blocked in write(2).  Throws std::runtime_error on
/// failure.  Shared by the trace spill writer and the replay-op sink.
double spill_write(int fd, const void* data, std::size_t size);

/// Where a SpillWriter puts its disk tier.
struct SpillTarget {
  std::string dir;   ///< anonymous temp file here (used when path is empty)
  std::string path;  ///< non-empty: visible named file at exactly this path

  [[nodiscard]] static SpillTarget anonymous_in(std::string dir) {
    SpillTarget t;
    t.dir = std::move(dir);
    return t;
  }
  [[nodiscard]] static SpillTarget named(std::string path) {
    SpillTarget t;
    t.path = std::move(path);
    return t;
  }
};

struct SpillWriterOptions {
  /// Admission pool for the memory tier; borrowed, must outlive the writer.
  /// Null sends every block to the disk tier (the pre-tier behavior).
  SpillBudget* budget = nullptr;
  /// Write disk-tier bytes from a background thread with a bounded buffer
  /// queue, so append() only blocks when the queue is full.
  bool async = false;
};

/// What the writer measured; carried by the finished SpilledTrace.
struct SpillWriterStats {
  /// Host time inside write(2)/pwrite(2).  Synchronous mode: time append()/
  /// finish() blocked.  Async mode: writer-thread time (overlapped with the
  /// simulation), so only append_stall_ms below was actually paid.
  double write_ms = 0.0;
  /// Host time append() spent waiting for a free slot in the async queue.
  double append_stall_ms = 0.0;
  std::int64_t disk_bytes = 0;  ///< bytes written to the disk tier
  std::uint64_t mem_blocks = 0;
  std::uint64_t disk_blocks = 0;
};

/// One block's stamps and payload location; the in-memory index entry.
/// Payloads live either in the memory tier (payload_offset == kMemoryTier,
/// located by mem_index) or on disk at payload_offset.
struct SpillBlock {
  /// payload_offset value marking a memory-tier block.
  static constexpr std::int64_t kMemoryTier = -1;

  NodeId node = 0;
  MicroSec sent_local = 0;   // node clock when the buffer was sent
  MicroSec recv_global = 0;  // collector clock when it arrived
  std::uint32_t count = 0;   // records in this block
  std::uint32_t mem_index = 0;      // memory-tier slot when resident
  std::int64_t payload_offset = 0;  // disk offset of the first record's bytes

  [[nodiscard]] bool in_memory() const noexcept {
    return payload_offset == kMemoryTier;
  }
};

/// A finished spilled trace: header and block index in memory, payloads in
/// the memory tier (encoded bytes, a prefix of the stream) or read back from
/// the backing file one block at a time.
class SpilledTrace {
 public:
  TraceHeader header;
  std::vector<SpillBlock> blocks;

  SpilledTrace() = default;
  SpilledTrace(SpilledTrace&&) noexcept = default;
  SpilledTrace& operator=(SpilledTrace&&) noexcept = default;
  SpilledTrace(const SpilledTrace&) = delete;
  SpilledTrace& operator=(const SpilledTrace&) = delete;
  ~SpilledTrace() = default;

  /// The backing file's read path; empty when every block fit in memory.
  [[nodiscard]] const std::string& path() const noexcept {
    return file_.read_path();
  }
  [[nodiscard]] std::uint64_t record_count() const noexcept;

  /// Folds both tiers once, disk blocks sequentially.  Bit-identical to
  /// `TraceFile::digest()` on the same trace.
  [[nodiscard]] std::uint64_t digest() const;

  /// Decodes block `index`'s records into `out` (cleared first).  Memory-
  /// tier blocks decode from the resident payload; disk blocks read through
  /// the caller's open stream — callers reuse both across blocks so the
  /// merge holds one block per node, not the trace.  Safe to call
  /// concurrently (each caller owns its stream and output).
  void read_block(std::size_t index, std::ifstream& in,
                  std::vector<Record>& out) const;

  /// Opens the disk tier for streaming (seekable stream positioned by
  /// read_block).  Returns an unopened stream when no block is on disk.
  [[nodiscard]] std::ifstream open_payload() const;

  /// Payload bytes in the disk tier (what digest() re-reads).
  [[nodiscard]] std::int64_t disk_payload_bytes() const noexcept;

  /// The writer's measurements (zeros for open()ed traces).
  [[nodiscard]] const SpillWriterStats& write_stats() const noexcept {
    return write_stats_;
  }

  /// Indexes an existing trace/spill file without loading record payloads.
  /// Tolerant mode honours the tolerant-reader contract: it scans block
  /// frames to end-of-file (so a crash-truncated final block — or a spill
  /// whose header count was never patched — loses only the cut block) and
  /// reports via `truncated` instead of throwing.
  [[nodiscard]] static SpilledTrace open(const std::string& path,
                                         bool tolerant = false,
                                         bool* truncated = nullptr);

  /// Deletes the backing file now (also done by ~SpilledTrace when owned).
  void remove_backing_file() noexcept { file_.close_and_remove(); }

 private:
  friend class SpillWriter;
  /// Encoded payloads of memory-tier blocks, indexed by SpillBlock::mem_index.
  std::vector<std::vector<std::uint8_t>> mem_payloads_;
  SpillFile file_;
  SpillWriterStats write_stats_;
};

/// Incremental writer producing `TraceFile::write`-format bytes.  The header
/// (minus trace_end) must be final at construction — its bytes, and the label
/// in particular, fix the patch offsets; trace_end and the disk tier's block
/// count are back-patched by finish().
///
/// Anonymous targets create the backing file lazily, on the first block that
/// misses the memory tier: a run whose whole trace fits the budget performs
/// zero file I/O.  Named targets keep the legacy behavior (file created
/// eagerly so crash-recovery tooling finds at least a header).  If the
/// writer is destroyed unfinished, buffered disk-tier frames are still
/// flushed — the crash-recovery contract is that every appended frame is
/// complete on disk, only the back-patches are missing.
class SpillWriter {
 public:
  SpillWriter(const SpillTarget& target, const TraceHeader& header,
              const SpillWriterOptions& options = {});
  /// Legacy named-file writer: synchronous, no memory tier.
  SpillWriter(std::string path, const TraceHeader& header);
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Appends one block's frame; called in collector flush order.  Throws
  /// std::runtime_error if the (possibly asynchronous) disk tier failed.
  void append(const TraceBlock& block);

  /// Flushes and joins the writer thread, patches trace_end and the disk
  /// block count, and returns the index as an owning SpilledTrace (the
  /// backing file is deleted with it).
  [[nodiscard]] SpilledTrace finish(MicroSec trace_end);

  [[nodiscard]] std::uint64_t blocks_written() const noexcept {
    return static_cast<std::uint64_t>(index_.size());
  }

 private:
  struct Async;

  /// Creates the backing file and writes the header prefix if not yet done;
  /// returns the host ms spent (0 when already created).
  double ensure_file();
  void flush_stage();
  void async_loop();
  void drain_async();

  SpillTarget target_;
  TraceHeader header_;
  SpillWriterOptions options_;
  SpillFile file_;
  bool file_created_ = false;
  std::vector<std::uint8_t> header_bytes_;
  std::int64_t trace_end_offset_ = 0;
  std::int64_t block_count_offset_ = 0;

  std::vector<SpillBlock> index_;
  std::vector<std::vector<std::uint8_t>> mem_payloads_;
  bool overflowed_ = false;  // sticky: first refused reservation ends the tier

  std::vector<std::uint8_t> stage_;   // pending disk-tier bytes
  std::int64_t disk_offset_ = 0;      // next disk write position
  std::uint64_t disk_blocks_ = 0;
  std::unique_ptr<Async> async_;

  SpillWriterStats stats_;
  bool finished_ = false;
};

}  // namespace charisma::trace
