// The spill writer / spilled-trace reader behind TraceMode::kStreaming.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/postprocess.hpp"
#include "trace/spill.hpp"
#include "trace/trace_file.hpp"

namespace charisma::trace {
namespace {

/// RecordSink that just collects the pushed stream.
struct CollectSink final : RecordSink {
  std::vector<Record> records;
  void on_record(const Record& r) override { records.push_back(r); }
};

class SpillTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test name: ctest runs every test as its own concurrent process,
  // so a shared fixed path races across cases.
  std::string path_ =
      ::testing::TempDir() + "charisma_spill_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".chtr";

  static TraceFile sample(int blocks) {
    TraceFile t;
    t.header.compute_nodes = 4;
    t.header.io_nodes = 2;
    t.header.seed = 99;
    t.header.trace_start = 0;
    t.header.trace_end = 100000;
    t.header.label = "spilled";
    for (int b = 0; b < blocks; ++b) {
      TraceBlock block;
      block.node = b % 4;
      block.sent_local = b * 1000;
      block.recv_global = b * 1000 + 50;
      for (int i = 0; i < 8; ++i) {
        Record r;
        r.kind = EventKind::kRead;
        r.node = block.node;
        r.timestamp = b * 1000 + i;
        r.bytes = 100;
        block.records.push_back(r);
      }
      t.blocks.push_back(std::move(block));
    }
    return t;
  }

  /// Spills every block of `t` through a SpillWriter, unfinished when
  /// `finish` is false (simulating a crash before the back-patch).
  SpilledTrace spill(const TraceFile& t, bool finish = true) {
    SpillWriter writer(path_, t.header);
    for (const auto& b : t.blocks) writer.append(b);
    if (finish) return writer.finish(t.header.trace_end);
    // Crash path: the writer goes out of scope with the block count and
    // trace_end placeholders still zero; complete frames are on disk.
    return SpilledTrace{};
  }

  void truncate_to(std::size_t bytes) {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(std::min(bytes, contents.size())));
  }

  std::size_t file_size() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return static_cast<std::size_t>(in.tellg());
  }
};

TEST_F(SpillTest, WriterMatchesTraceFileDigestAndBytes) {
  const TraceFile t = sample(10);
  const SpilledTrace s = spill(t);
  EXPECT_EQ(s.record_count(), t.record_count());
  EXPECT_EQ(s.digest(), t.digest());

  // The spill format IS the trace-file format: TraceFile::read parses it.
  const TraceFile back = TraceFile::read(path_);
  EXPECT_EQ(back.digest(), t.digest());
  EXPECT_EQ(back.header.trace_end, t.header.trace_end);
}

TEST_F(SpillTest, OpensTraceFilesWrittenByTraceFileWrite) {
  const TraceFile t = sample(6);
  t.write(path_);
  const SpilledTrace s = SpilledTrace::open(path_);
  EXPECT_EQ(s.record_count(), t.record_count());
  EXPECT_EQ(s.digest(), t.digest());
  EXPECT_EQ(s.header.label, t.header.label);
}

TEST_F(SpillTest, StreamMatchesMaterializedPostprocess) {
  const TraceFile t = sample(12);
  const SortedTrace sorted = postprocess(t);
  const SpilledTrace s = spill(t);
  CollectSink sink;
  const std::uint64_t pushed = stream_postprocess(s, {&sink});
  ASSERT_EQ(pushed, sorted.records.size());
  for (std::size_t i = 0; i < sorted.records.size(); ++i) {
    std::uint8_t a[Record::kEncodedSize];
    std::uint8_t b[Record::kEncodedSize];
    sorted.records[i].encode(a);
    sink.records[i].encode(b);
    ASSERT_EQ(0, std::memcmp(a, b, sizeof a)) << "record " << i;
  }
}

TEST_F(SpillTest, EmptySpillStreamsZeroRecords) {
  TraceFile t = sample(0);
  const SpilledTrace s = spill(t);
  EXPECT_EQ(s.digest(), t.digest());
  CollectSink sink;
  EXPECT_EQ(stream_postprocess(s, {&sink}), 0u);
  EXPECT_TRUE(sink.records.empty());
}

// The tolerant-reader contract for spills: a crash before finish() leaves
// the block-count placeholder at zero, but every appended frame is complete
// on disk and must be recovered, not treated as fatal.
TEST_F(SpillTest, UnfinishedSpillRecoversAllAppendedBlocks) {
  const TraceFile t = sample(10);
  (void)spill(t, /*finish=*/false);

  bool truncated = false;
  const SpilledTrace s =
      SpilledTrace::open(path_, /*tolerant=*/true, &truncated);
  EXPECT_TRUE(truncated);  // the count was never patched
  EXPECT_EQ(s.blocks.size(), t.blocks.size());
  EXPECT_EQ(s.record_count(), t.record_count());

  // The recovered blocks still stream in postprocessed order.
  CollectSink sink;
  EXPECT_EQ(stream_postprocess(s, {&sink}), t.record_count());
}

TEST_F(SpillTest, TornFinalBlockIsDroppedNotFatal) {
  const TraceFile t = sample(10);
  (void)spill(t, /*finish=*/false);
  truncate_to(file_size() - 30);  // tear into the last block's payload

  bool truncated = false;
  const SpilledTrace s =
      SpilledTrace::open(path_, /*tolerant=*/true, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(s.blocks.size(), t.blocks.size() - 1);
  CollectSink sink;
  EXPECT_EQ(stream_postprocess(s, {&sink}),
            t.record_count() - t.blocks.back().records.size());
}

TEST_F(SpillTest, StrictOpenOfUnfinishedSpillSeesDeclaredCount) {
  (void)spill(sample(4), /*finish=*/false);
  // Strict mode trusts the (placeholder-zero) count: no blocks, no error.
  const SpilledTrace s = SpilledTrace::open(path_, /*tolerant=*/false);
  EXPECT_TRUE(s.blocks.empty());
}

// ---- The tiered memory/disk writer and the async disk path. ----

/// Streams `s` and checks the record bytes against the materialized
/// postprocess of `t`.
void expect_stream_matches(const SpilledTrace& s, const TraceFile& t,
                           bool prefetch = true) {
  const SortedTrace sorted = postprocess(t);
  CollectSink sink;
  StreamMergeOptions mopts;
  mopts.prefetch = prefetch;
  ASSERT_EQ(stream_postprocess(s, {&sink}, mopts), sorted.records.size());
  for (std::size_t i = 0; i < sorted.records.size(); ++i) {
    std::uint8_t a[Record::kEncodedSize];
    std::uint8_t b[Record::kEncodedSize];
    sorted.records[i].encode(a);
    sink.records[i].encode(b);
    ASSERT_EQ(0, std::memcmp(a, b, sizeof a)) << "record " << i;
  }
}

/// Spills `t` into an anonymous target under `budget`, finished.
SpilledTrace spill_tiered(const TraceFile& t, SpillBudget& budget,
                          bool async = false) {
  SpillWriterOptions opts;
  opts.budget = &budget;
  opts.async = async;
  SpillWriter writer(SpillTarget::anonymous_in(::testing::TempDir()),
                     t.header, opts);
  for (const auto& b : t.blocks) writer.append(b);
  return writer.finish(t.header.trace_end);
}

TEST_F(SpillTest, AllMemoryTierNeverTouchesDisk) {
  const TraceFile t = sample(10);
  SpillBudget budget(1 << 20);  // far more than 10 blocks need
  const SpilledTrace s = spill_tiered(t, budget);
  EXPECT_EQ(s.write_stats().mem_blocks, t.blocks.size());
  EXPECT_EQ(s.write_stats().disk_blocks, 0u);
  EXPECT_EQ(s.write_stats().disk_bytes, 0);
  EXPECT_TRUE(s.path().empty());  // the backing file was never created
  EXPECT_EQ(s.digest(), t.digest());
  expect_stream_matches(s, t);
}

TEST_F(SpillTest, ZeroBudgetSendsEveryBlockToDisk) {
  const TraceFile t = sample(10);
  SpillBudget budget(0);
  const SpilledTrace s = spill_tiered(t, budget);
  EXPECT_EQ(s.write_stats().mem_blocks, 0u);
  EXPECT_EQ(s.write_stats().disk_blocks, t.blocks.size());
  EXPECT_GT(s.write_stats().disk_bytes, 0);
  EXPECT_EQ(s.digest(), t.digest());
  expect_stream_matches(s, t);
}

TEST_F(SpillTest, MixedTierIsAPrefixSplitWithIdenticalDigest) {
  const TraceFile t = sample(12);
  // Each block reserves payload (8 records x 44 B) plus the fixed index
  // overhead; admit roughly half the stream.
  SpillBudget budget(5 * (8 * Record::kEncodedSize + 64));
  const SpilledTrace s = spill_tiered(t, budget);
  EXPECT_GT(s.write_stats().mem_blocks, 0u);
  EXPECT_GT(s.write_stats().disk_blocks, 0u);
  EXPECT_EQ(s.write_stats().mem_blocks + s.write_stats().disk_blocks,
            t.blocks.size());
  // Sticky overflow: the resident set is a stream prefix.
  bool seen_disk = false;
  for (const auto& b : s.blocks) {
    if (!b.in_memory()) seen_disk = true;
    EXPECT_TRUE(seen_disk ? !b.in_memory() : b.in_memory());
  }
  EXPECT_EQ(s.digest(), t.digest());
  expect_stream_matches(s, t);
}

TEST_F(SpillTest, AsyncWriterMatchesSyncByteForByte) {
  const TraceFile t = sample(16);
  const std::string sync_path = path_ + ".sync";
  const std::string async_path = path_ + ".async";
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  std::string sync_bytes;
  std::string async_bytes;
  {
    SpillWriterOptions opts;  // no budget: everything to disk
    SpillWriter writer(SpillTarget::named(sync_path), t.header, opts);
    for (const auto& b : t.blocks) writer.append(b);
    const SpilledTrace s = writer.finish(t.header.trace_end);
    sync_bytes = slurp(sync_path);  // before ~SpilledTrace unlinks it
    EXPECT_EQ(s.digest(), t.digest());
  }
  {
    SpillWriterOptions opts;
    opts.async = true;
    SpillWriter writer(SpillTarget::named(async_path), t.header, opts);
    for (const auto& b : t.blocks) writer.append(b);
    const SpilledTrace s = writer.finish(t.header.trace_end);
    async_bytes = slurp(async_path);
    EXPECT_EQ(s.digest(), t.digest());
  }
  ASSERT_FALSE(sync_bytes.empty());
  EXPECT_EQ(sync_bytes, async_bytes);
}

TEST_F(SpillTest, AsyncWithMemoryTierMatchesDigestAndStream) {
  const TraceFile t = sample(20);
  SpillBudget budget(7 * (8 * Record::kEncodedSize + 64));
  const SpilledTrace s = spill_tiered(t, budget, /*async=*/true);
  EXPECT_GT(s.write_stats().mem_blocks, 0u);
  EXPECT_GT(s.write_stats().disk_blocks, 0u);
  EXPECT_EQ(s.digest(), t.digest());
  expect_stream_matches(s, t);
}

TEST_F(SpillTest, PrefetchOffStreamsIdenticalBytes) {
  const TraceFile t = sample(14);
  SpillBudget budget(0);  // all-disk, so prefetch actually engages
  const SpilledTrace s = spill_tiered(t, budget);
  expect_stream_matches(s, t, /*prefetch=*/true);
  expect_stream_matches(s, t, /*prefetch=*/false);
}

// Crash with a memory tier: the resident head is lost with the process, but
// the named disk file is still a self-consistent trace of the spilled tail —
// complete frames recover, a torn final frame drops.
TEST_F(SpillTest, TornTailWithMemoryHeadRecoversDiskFrames) {
  const TraceFile t = sample(12);
  SpillBudget budget(5 * (8 * Record::kEncodedSize + 64));
  std::uint64_t disk_blocks = 0;
  {
    SpillWriterOptions opts;
    opts.budget = &budget;
    SpillWriter writer(SpillTarget::named(path_), t.header, opts);
    for (const auto& b : t.blocks) writer.append(b);
    // Crash: destroyed unfinished.  Count how many blocks overflowed.
    disk_blocks = 12 - 5;
  }
  ASSERT_GT(file_size(), 0u);
  truncate_to(file_size() - 30);  // tear into the last disk frame

  bool truncated = false;
  const SpilledTrace s =
      SpilledTrace::open(path_, /*tolerant=*/true, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(s.blocks.size(), disk_blocks - 1);
  CollectSink sink;
  EXPECT_EQ(stream_postprocess(s, {&sink}),
            (disk_blocks - 1) * t.blocks[0].records.size());
}

TEST_F(SpillTest, EmptyAnonymousSpillCreatesNoFile) {
  TraceFile t = sample(0);
  SpillBudget budget(1 << 20);
  const SpilledTrace s = spill_tiered(t, budget);
  EXPECT_TRUE(s.path().empty());
  EXPECT_EQ(s.digest(), t.digest());
  CollectSink sink;
  EXPECT_EQ(stream_postprocess(s, {&sink}), 0u);
}

}  // namespace
}  // namespace charisma::trace
