// Figure 2: distribution of the number of compute nodes used by jobs.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_node_counts(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  Comparison cmp("Figure 2: nodes per job");
  cmp.percent_row("single-node share of jobs",
                  static_cast<double>(analysis::paper::kSingleNodeJobs) /
                      analysis::paper::kTotalJobs,
                  result.single_node_job_fraction);
  cmp.row("job-size choices", "powers of 2 up to 128",
          "powers of 2 up to 128");
  cmp.row("node usage", "large parallel jobs dominate",
          util::fmt(result.large_job_usage_share * 100.0) +
              "% of node-time in >=32-node jobs");
  const double expected_jobs =
      analysis::paper::kTotalJobs * Context::instance().scale();
  cmp.row("jobs run (scaled)", expected_jobs,
          static_cast<double>(result.total_jobs), 0);
  cmp.print();
}

void BM_NodeCountAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_node_counts(store));
  }
}
BENCHMARK(BM_NodeCountAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 2 (nodes per job)", charisma::bench::reproduce)
