#include "cache/stack_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cache/block_cache.hpp"
#include "util/rng.hpp"

namespace charisma::cache {
namespace {

BlockKey key(std::int64_t block) { return {1, block}; }

// The textbook access string a, b, c, b, a, d, a, c has stack distances
// cold, cold, cold, 1, 2, cold, 1, 3.  With capacities {1, 2, 4} that
// pins each access's bucket: the index of the smallest capacity above the
// distance, or 3 (miss_bucket) for cold / too deep.
TEST(SegmentedLruStack, HandComputedAccessString) {
  SegmentedLruStack stack({1, 2, 4});
  ASSERT_EQ(stack.miss_bucket(), 3u);
  const std::int64_t a = 0, b = 1, c = 2, d = 3;

  EXPECT_EQ(stack.access(key(a)), 3u);  // cold
  EXPECT_EQ(stack.access(key(b)), 3u);  // cold
  EXPECT_EQ(stack.access(key(c)), 3u);  // cold
  EXPECT_EQ(stack.access(key(b)), 1u);  // distance 1: hits capacity 2 up
  EXPECT_EQ(stack.access(key(a)), 2u);  // distance 2: hits capacity 4 only
  EXPECT_EQ(stack.access(key(d)), 3u);  // cold
  EXPECT_EQ(stack.access(key(a)), 1u);  // distance 1
  EXPECT_EQ(stack.access(key(c)), 2u);  // distance 3: hits capacity 4 only
  EXPECT_EQ(stack.size(), 4u);
}

TEST(SegmentedLruStack, PeekDoesNotPromote) {
  SegmentedLruStack stack({1, 2, 4});
  stack.touch(key(0));
  stack.touch(key(1));
  stack.touch(key(2));
  EXPECT_EQ(stack.peek(key(0)), 2u);  // distance 2
  EXPECT_EQ(stack.peek(key(0)), 2u);  // unchanged: peek left the stack alone
  EXPECT_EQ(stack.peek(key(9)), stack.miss_bucket());
  stack.touch(key(0));
  EXPECT_EQ(stack.peek(key(0)), 0u);
  EXPECT_EQ(stack.peek(key(2)), 1u);  // 0 moved above it
}

TEST(SegmentedLruStack, EvictsPastTheLargestCapacity) {
  SegmentedLruStack stack({1, 2});
  stack.touch(key(0));
  stack.touch(key(1));
  stack.touch(key(2));  // pushes 0 past capacity 2: evicted
  EXPECT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack.peek(key(0)), stack.miss_bucket());
  EXPECT_EQ(stack.peek(key(1)), 1u);
  EXPECT_EQ(stack.peek(key(2)), 0u);
  // Re-touching the evicted block is a cold access again.
  EXPECT_EQ(stack.access(key(0)), stack.miss_bucket());
}

TEST(SegmentedLruStack, ZeroCapacityGetsSkippedBucketZero) {
  // Capacity 0 never hits: bucket 0 must never be reported, and every
  // other bucket index must line up with the original capacity list.
  SegmentedLruStack stack({0, 2});
  ASSERT_EQ(stack.miss_bucket(), 2u);
  EXPECT_EQ(stack.access(key(0)), 2u);  // cold
  EXPECT_EQ(stack.access(key(0)), 1u);  // resident: hits capacity 2 only
  EXPECT_EQ(stack.access(key(1)), 2u);  // cold
  EXPECT_EQ(stack.access(key(0)), 1u);
}

// The inclusion property, checked exhaustively against the real cache: for
// every capacity c_i, "bucket <= i" must equal BlockCache(c_i, LRU)'s hit
// result on the same access, step by step over a long random key sequence.
TEST(SegmentedLruStack, MatchesBlockCacheHitsForEveryCapacity) {
  const std::vector<std::size_t> capacities = {1, 2, 4, 8, 16};
  util::Rng rng(123);

  SegmentedLruStack stack(capacities);
  std::vector<BlockCache> caches;
  caches.reserve(capacities.size());
  for (const std::size_t c : capacities) caches.emplace_back(c, Policy::kLru);

  for (int i = 0; i < 20000; ++i) {
    // Skewed towards small blocks so every capacity sees hits and misses.
    const auto blk = static_cast<std::int64_t>(
        rng.chance(0.5) ? rng.uniform(8) : rng.uniform(64));
    const std::size_t bucket = stack.access(key(blk));
    for (std::size_t c = 0; c < capacities.size(); ++c) {
      const bool cache_hit = caches[c].access(key(blk), 0);
      EXPECT_EQ(bucket <= c, cache_hit)
          << "step " << i << " block " << blk << " capacity " << capacities[c];
    }
  }
}

// Same exhaustive equivalence for the FIFO group pass, via the public sweep
// API: detail::fifo_io_group against per-config BlockCache FIFO replays is
// covered by the sweep differential tests; here pin the shared-hash
// presence semantics on a single-node shape directly.
TEST(FifoGroup, MatchesBlockCacheOnARandomStream) {
  const std::vector<std::size_t> per_node = {2, 4, 8};
  IoNodeSimConfig shape;
  shape.io_nodes = 1;
  shape.policy = Policy::kFifo;

  std::vector<detail::ReplayOp> ops;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    detail::ReplayOp op;
    op.file = 1;
    op.job = 1;
    op.node = 0;
    op.offset = static_cast<std::int64_t>(rng.uniform(32)) * shape.block_size;
    op.bytes = 1;  // single block per request
    op.is_read = true;
    op.read_only_session = true;
    ops.push_back(op);
  }

  const auto grouped = detail::fifo_io_group(ReplayLog(ops), shape, per_node);
  std::vector<BlockCache> caches;
  for (const std::size_t c : per_node) caches.emplace_back(c, Policy::kFifo);
  std::vector<std::uint64_t> hits(per_node.size(), 0);
  for (const auto& op : ops) {
    const std::int64_t b = op.offset / shape.block_size;
    for (std::size_t c = 0; c < caches.size(); ++c) {
      if (caches[c].access({op.file, b}, op.node)) ++hits[c];
    }
  }
  for (std::size_t c = 0; c < per_node.size(); ++c) {
    EXPECT_EQ(grouped[c].block_hits, hits[c]) << "capacity " << per_node[c];
    EXPECT_EQ(grouped[c].request_hits, hits[c]);  // one block per request
    EXPECT_EQ(grouped[c].requests, ops.size());
  }
}

}  // namespace
}  // namespace charisma::cache
