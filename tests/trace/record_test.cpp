#include "trace/record.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace charisma::trace {
namespace {

TEST(Record, EncodeDecodeRoundTrip) {
  Record r;
  r.timestamp = 123456789012345;
  r.job = 42;
  r.file = 7;
  r.offset = 1 << 20;
  r.bytes = 4096;
  r.aux = -12;
  r.node = 127;
  r.kind = EventKind::kWrite;
  r.mode = 3;

  std::uint8_t buf[Record::kEncodedSize];
  r.encode(buf);
  const Record d = Record::decode(buf);
  EXPECT_EQ(d.timestamp, r.timestamp);
  EXPECT_EQ(d.job, r.job);
  EXPECT_EQ(d.file, r.file);
  EXPECT_EQ(d.offset, r.offset);
  EXPECT_EQ(d.bytes, r.bytes);
  EXPECT_EQ(d.aux, r.aux);
  EXPECT_EQ(d.node, r.node);
  EXPECT_EQ(d.kind, r.kind);
  EXPECT_EQ(d.mode, r.mode);
}

TEST(Record, ServiceNodeSurvivesRoundTrip) {
  Record r;
  r.node = kServiceNode;
  r.kind = EventKind::kJobStart;
  std::uint8_t buf[Record::kEncodedSize];
  r.encode(buf);
  EXPECT_EQ(Record::decode(buf).node, kServiceNode);
}

class RecordRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecordRoundTrip, RandomRecordsSurvive) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    Record r;
    r.timestamp = rng.uniform_range(0, 1LL << 60);
    r.job = static_cast<cfs::JobId>(rng.uniform_range(-1, 1 << 30));
    r.file = static_cast<cfs::FileId>(rng.uniform_range(-1, 1 << 30));
    r.offset = rng.uniform_range(0, 1LL << 40);
    r.bytes = rng.uniform_range(0, 1LL << 30);
    r.aux = rng.uniform_range(-(1LL << 40), 1LL << 40);
    r.node = static_cast<cfs::NodeId>(rng.uniform_range(-1, 127));
    r.kind = static_cast<EventKind>(rng.uniform_range(1, 8));
    r.mode = static_cast<std::uint8_t>(rng.uniform_range(0, 3));
    std::uint8_t buf[Record::kEncodedSize];
    r.encode(buf);
    const Record d = Record::decode(buf);
    EXPECT_EQ(d.timestamp, r.timestamp);
    EXPECT_EQ(d.offset, r.offset);
    EXPECT_EQ(d.bytes, r.bytes);
    EXPECT_EQ(d.aux, r.aux);
    EXPECT_EQ(d.job, r.job);
    EXPECT_EQ(d.file, r.file);
    EXPECT_EQ(d.node, r.node);
    EXPECT_EQ(d.kind, r.kind);
    EXPECT_EQ(d.mode, r.mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordRoundTrip, ::testing::Values(1, 2, 3));

TEST(Record, OpenAuxPacking) {
  const auto aux = pack_open_aux(cfs::kRead | cfs::kCreate,
                                 cfs::IoMode::kOrdered);
  EXPECT_EQ(open_flags(aux), cfs::kRead | cfs::kCreate);
  EXPECT_EQ(open_mode(aux), cfs::IoMode::kOrdered);
}

TEST(Record, IsDataOnlyForReadWrite) {
  Record r;
  for (auto kind : {EventKind::kJobStart, EventKind::kJobEnd, EventKind::kOpen,
                    EventKind::kClose, EventKind::kSeek, EventKind::kDelete}) {
    r.kind = kind;
    EXPECT_FALSE(r.is_data());
  }
  r.kind = EventKind::kRead;
  EXPECT_TRUE(r.is_data());
  r.kind = EventKind::kWrite;
  EXPECT_TRUE(r.is_data());
}

TEST(Record, DebugStringMentionsKind) {
  Record r;
  r.kind = EventKind::kDelete;
  EXPECT_NE(r.debug_string().find("DELETE"), std::string::npos);
  EXPECT_STREQ(to_string(EventKind::kRead), "READ");
}

}  // namespace
}  // namespace charisma::trace
