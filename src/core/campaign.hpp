// Campaign runner — fans a batch of independent studies over a thread pool.
//
// A "campaign" is the unit of experimentation above a single study: seed
// replications for confidence intervals, scale sweeps, or configuration
// variants.  Every study owns a private sim::Engine (the engine is
// single-threaded by design), so studies parallelize perfectly; the runner
// writes results by input index, which makes the output — including every
// per-study trace digest — independent of the worker-thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/figures.hpp"
#include "core/stream_study.hpp"
#include "core/study.hpp"
#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace charisma::core {

/// One study in a campaign: a label for reports plus its full configuration.
struct CampaignStudy {
  std::string label;
  StudyConfig config;
};

/// What a campaign keeps from each study: identity, the determinism anchor
/// (trace digest), volume counters, and the headline paper statistics —
/// each measured from the study's own trace by the analyzers, never echoed
/// from the generator configuration.
struct StudySummary {
  std::string label;
  std::uint64_t seed = 0;
  double scale = 0.0;

  std::uint64_t trace_digest = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t records = 0;
  std::uint64_t total_ops = 0;
  util::MicroSec sim_end = 0;

  // Measured statistics (Figure 1, Figure 4, §4.2, §4.6 of the paper).
  double idle_fraction = 0.0;
  double multiprogrammed_fraction = 0.0;
  double single_node_job_fraction = 0.0;
  double small_read_fraction = 0.0;
  double small_write_fraction = 0.0;
  double temporary_fraction = 0.0;
  double mode0_fraction = 0.0;

  /// Per-figure curves sampled on fixed grids (Figures 4-9, Tables 1-3);
  /// empty when the campaign ran with collect_figures off.  The campaign
  /// folds these into pointwise envelope bands across replications.
  analysis::FigureSet figures;
};

/// Cross-study aggregate of one statistic (normally across seed
/// replications of a fixed configuration).
struct AggregateStat {
  std::string name;
  util::Summary summary;

  /// Half-width of the normal-approximation 95% confidence interval
  /// (1.96 * stddev / sqrt(n)); 0 with fewer than two studies.
  [[nodiscard]] double ci95_half_width() const noexcept;
};

struct CampaignResult {
  /// One entry per input study, in input order regardless of thread count.
  std::vector<StudySummary> studies;
  /// One entry per aggregated statistic, in a fixed (code-defined) order.
  std::vector<AggregateStat> aggregates;
  /// One pointwise envelope per figure (mean / min / max / 95% CI across
  /// the replications), in a fixed order; empty with collect_figures off.
  std::vector<analysis::FigureEnvelope> figure_envelopes;
};

struct CampaignOptions {
  /// Worker threads; 0 picks the hardware concurrency, 1 runs the studies
  /// inline on the calling thread (no pool).
  std::size_t threads = 0;
  /// How each study hands its trace to the summarizer.  Streaming (the
  /// default) keeps every worker's resident state O(merge window);
  /// materialized is the in-memory reference path.  Summaries — digests and
  /// figure curves included — are bit-identical between the two.
  TraceMode trace_mode = TraceMode::kStreaming;
  /// Spill directory for streaming-mode studies (see StreamOptions).
  std::string spill_dir{};
  /// Memory-tier budget override in MiB for streaming-mode studies;
  /// negative defers to each study's StudyConfig::spill_budget_mb.  Note
  /// the pool is per *study*: campaign workers each hold their own budget,
  /// so campaign RSS scales with `threads` × the budget when studies
  /// overflow it.
  std::int64_t spill_budget_mb = -1;
  /// Sample the per-figure curves for every study and fold envelope bands.
  /// Off saves the analyzer + cache-replay passes for pure-throughput runs.
  bool collect_figures = true;
  /// Invoked after each study finishes, as (finished_count, total), under
  /// the runner's progress lock and from whichever worker finished the
  /// study.  Must be fast and must not call back into the runner.  Progress
  /// is reporting-only: finish order (and therefore the callback order of
  /// indices) varies with the schedule, but the counts are monotonic and
  /// the final pair is always (total, total).
  std::function<void(std::size_t, std::size_t)> on_progress = nullptr;
};

/// Builds a StudySummary from a finished study (exposed for tests and for
/// callers that already ran the study themselves).  `with_figures` also
/// samples the per-figure curves (Figures 4-9, Tables 1-3).
[[nodiscard]] StudySummary summarize_study(const std::string& label,
                                           const StudyConfig& config,
                                           const StudyOutput& output,
                                           bool with_figures = true);

/// The streaming twin of summarize_study: reads the accumulators' finished
/// state instead of re-passing a materialized trace, and consumes the
/// output's replay-op spill for the cache figures.  Produces a bit-identical
/// StudySummary for the same study configuration.
[[nodiscard]] StudySummary summarize_streamed_study(
    const std::string& label, const StudyConfig& config,
    StreamedStudyOutput&& output, bool with_figures = true);

/// Aggregates the numeric statistics across studies.
[[nodiscard]] std::vector<AggregateStat> aggregate_campaign(
    const std::vector<StudySummary>& studies);

/// One-line description of the grouped sweep plan behind the per-study
/// cache figures (8/9) — how many trace passes the figure collection costs
/// per replication.  Purely structural, so campaign front-ends can print it
/// before running anything.
[[nodiscard]] std::string describe_figure_sweep_plan(int io_nodes = 10);

/// Folds every study's figure curves into per-figure envelopes, in study
/// (= input) order, so the result is thread-count invariant.
[[nodiscard]] std::vector<analysis::FigureEnvelope> fold_figure_envelopes(
    const std::vector<StudySummary>& studies);

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {})
      : options_(options) {}

  /// Runs every study and aggregates.  Deterministic in `studies`: the
  /// same input yields byte-identical summaries (digests included) for any
  /// thread count.
  [[nodiscard]] CampaignResult run(
      const std::vector<CampaignStudy>& studies) const;

  /// Studies finished by the most recent / current run() — the counter the
  /// on_progress callback reports from.  Thread-safe.
  [[nodiscard]] std::size_t completed() const;

 private:
  /// Bumps the completed-study counter and fires on_progress under the
  /// lock, so callback invocations never interleave.
  void note_study_done(std::size_t total) const;

  CampaignOptions options_;
  mutable util::Mutex mutex_;
  mutable std::size_t completed_ CHARISMA_GUARDED_BY(mutex_) = 0;
};

/// `n` copies of `base` differing only in workload seed (base.workload.seed,
/// base.workload.seed + 1, ...), labelled "<prefix>seed<seed>".
[[nodiscard]] std::vector<CampaignStudy> seed_replications(
    const StudyConfig& base, std::size_t n, const std::string& prefix = "");

/// One study per (scale, seed) pair, labelled "scale<scale>_seed<seed>".
[[nodiscard]] std::vector<CampaignStudy> scale_sweep(
    const StudyConfig& base, const std::vector<double>& scales,
    const std::vector<std::uint64_t>& seeds);

}  // namespace charisma::core
