file(REMOVE_RECURSE
  "libcharisma_workload.a"
)
