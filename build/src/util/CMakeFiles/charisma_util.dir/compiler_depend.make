# Empty compiler generated dependencies file for charisma_util.
# This may be replaced when dependencies are built.
