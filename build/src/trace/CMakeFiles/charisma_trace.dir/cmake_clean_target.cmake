file(REMOVE_RECURSE
  "libcharisma_trace.a"
)
