// Table 2: number of distinct interval sizes used in each file.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_intervals(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  static constexpr const char* kNames[] = {"0", "1", "2", "3", "4+"};
  Comparison cmp("Table 2: distinct interval sizes per file (% of files)");
  for (std::size_t i = 0; i < result.buckets.size(); ++i) {
    cmp.percent_row(std::string(kNames[i]) + " distinct interval(s)",
                    analysis::paper::kTable2Percent[i] / 100.0,
                    result.total_files > 0
                        ? static_cast<double>(result.buckets[i]) /
                              static_cast<double>(result.total_files)
                        : 0.0);
  }
  cmp.percent_row("1-interval files that were consecutive",
                  analysis::paper::kOneIntervalConsecutiveShare,
                  result.one_interval_consecutive_share);
  cmp.print();
}

void BM_IntervalAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_intervals(store));
  }
}
BENCHMARK(BM_IntervalAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Table 2 (interval regularity)", charisma::bench::reproduce)
