#include "disk/disk.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace charisma::disk {
namespace {

DiskParams simple_params() {
  DiskParams p;
  p.capacity_bytes = 1000000;
  p.average_seek = 10000;
  p.rotation = 8000;
  p.bytes_per_us = 1.0;
  p.controller_overhead = 100;
  return p;
}

TEST(Disk, SequentialSkipsSeekAndRotation) {
  Disk d(simple_params());
  const MicroSec t1 = d.submit(0, 0, 1000);
  // First request from unknown head position pays a seek.
  EXPECT_GT(t1, 1000 + 100);
  // Contiguous follow-up: controller + transfer only.
  const MicroSec t2 = d.submit(t1, 1000, 500);
  EXPECT_EQ(t2, t1 + 100 + 500);
}

TEST(Disk, RandomAccessPaysPositioning) {
  Disk d(simple_params());
  (void)d.submit(0, 0, 100);
  const MicroSec before = d.busy_time();
  (void)d.submit(100000, 900000, 100);  // far seek
  const MicroSec service = d.busy_time() - before;
  EXPECT_GT(service, 100 + 100 + 8000 / 2);  // includes half rotation
}

TEST(Disk, SeekScalesWithDistance) {
  Disk near(simple_params()), far(simple_params());
  (void)near.submit(0, 0, 10);
  (void)far.submit(0, 0, 10);
  const MicroSec t_near = near.submit(1000000, 20000, 10) - 1000000;
  const MicroSec t_far = far.submit(1000000, 990000, 10) - 1000000;
  EXPECT_LT(t_near, t_far);
}

TEST(Disk, FifoQueueing) {
  Disk d(simple_params());
  const MicroSec c1 = d.submit(0, 0, 1000);
  // Second request arrives while the first is in service: it waits.
  const MicroSec c2 = d.submit(1, c1 == 0 ? 1 : 1000, 1000);
  EXPECT_GE(c2, c1);
  // Request arriving after the queue drained starts immediately.
  const MicroSec c3 = d.submit(c2 + 50000, 2000, 100);
  EXPECT_EQ(c3, c2 + 50000 + 100 + 100);  // contiguous: overhead + transfer
}

TEST(Disk, CountersAccumulate) {
  Disk d(simple_params());
  (void)d.submit(0, 0, 100);
  (void)d.submit(0, 100, 200);
  EXPECT_EQ(d.requests(), 2u);
  EXPECT_EQ(d.bytes_moved(), 300);
  EXPECT_GT(d.busy_time(), 0);
}

TEST(Disk, UtilizationBounded) {
  Disk d(simple_params());
  EXPECT_EQ(d.utilization(0), 0.0);
  (void)d.submit(0, 0, 1000);
  EXPECT_GT(d.utilization(1000000), 0.0);
  EXPECT_LE(d.utilization(1), 1.0);
}

TEST(Disk, RejectsBadRequests) {
  Disk d(simple_params());
  EXPECT_THROW(d.submit(-1, 0, 0), util::CheckFailure);
  EXPECT_THROW(d.submit(0, -1, 0), util::CheckFailure);
  EXPECT_THROW(d.submit(0, 0, -1), util::CheckFailure);
}

TEST(Disk, ZeroByteRequestStillCostsOverhead) {
  Disk d(simple_params());
  const MicroSec t = d.submit(0, 0, 0);
  EXPECT_GE(t, 100);
}

class TransferRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransferRateSweep, TransferTimeMatchesRate) {
  DiskParams p = simple_params();
  p.bytes_per_us = GetParam();
  Disk d(p);
  (void)d.submit(0, 0, 1000);                        // position the head
  const MicroSec start = d.submit(10'000'000, 1000, 0);  // contiguous, empty
  const MicroSec done = d.submit(20'000'000, 1000, 100000);
  const MicroSec transfer = done - 20'000'000 - (start - 10'000'000);
  EXPECT_NEAR(static_cast<double>(transfer), 100000.0 / GetParam(),
              2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, TransferRateSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 8.0));

}  // namespace
}  // namespace charisma::disk
