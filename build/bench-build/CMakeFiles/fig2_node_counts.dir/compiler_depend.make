# Empty compiler generated dependencies file for fig2_node_counts.
# This may be replaced when dependencies are built.
