// Campaign figure-envelope tests: the pointwise fold must be invisible to
// the worker-thread count (byte-identical exported TSVs), collapse to a
// zero-width band for a single replication, and stay NaN-free in every
// degenerate shape (empty curves, curves missing from some replications).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/campaign.hpp"
#include "core/export.hpp"
#include "util/check.hpp"

namespace charisma::core {
namespace {

StudyConfig smoke_base() {
  StudyConfig config;
  config.workload = workload::WorkloadConfig::smoke();
  return config;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

TEST(CampaignFigures, EnvelopeTsvsAreByteIdenticalAcrossThreadCounts) {
  const auto studies = seed_replications(smoke_base(), 2);
  const CampaignResult serial =
      CampaignRunner(CampaignOptions{.threads = 1}).run(studies);
  const CampaignResult parallel =
      CampaignRunner(CampaignOptions{.threads = 4}).run(studies);

  const std::string base = ::testing::TempDir() + "charisma_envelopes";
  const std::string dir_a = base + "_serial";
  const std::string dir_b = base + "_parallel";
  std::filesystem::create_directories(dir_a);
  std::filesystem::create_directories(dir_b);
  const auto exported_a = export_campaign(serial, dir_a);
  const auto exported_b = export_campaign(parallel, dir_b);
  EXPECT_EQ(exported_a.files_written, exported_b.files_written);
  // 2 campaign tables + 19 per-figure envelopes.
  EXPECT_EQ(exported_a.files_written, 21);

  std::size_t figure_tsvs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_a)) {
    const auto name = entry.path().filename();
    SCOPED_TRACE(name.string());
    const std::string a = slurp(entry.path());
    const std::string b = slurp(std::filesystem::path(dir_b) / name);
    EXPECT_EQ(a, b);  // byte-identical, digests and float formatting included
    EXPECT_GT(a.size(), 10u);
    if (name.string().rfind("campaign_fig", 0) == 0 ||
        name.string().rfind("campaign_table", 0) == 0) {
      ++figure_tsvs;
      EXPECT_EQ(a.find("nan"), std::string::npos);
      EXPECT_EQ(a.find("inf"), std::string::npos);
    }
  }
  EXPECT_EQ(figure_tsvs, 19u);
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(CampaignFigures, EnvelopesMatchFigureCount) {
  const CampaignResult result = CampaignRunner(CampaignOptions{.threads = 2})
                                    .run(seed_replications(smoke_base(), 2));
  ASSERT_EQ(result.figure_envelopes.size(), 19u);
  for (const auto& env : result.figure_envelopes) {
    SCOPED_TRACE(env.name);
    EXPECT_EQ(env.replications, 2u);
    ASSERT_EQ(env.mean.size(), env.xs.size());
    ASSERT_EQ(env.min.size(), env.xs.size());
    ASSERT_EQ(env.max.size(), env.xs.size());
    ASSERT_EQ(env.ci95_half.size(), env.xs.size());
    for (std::size_t i = 0; i < env.size(); ++i) {
      EXPECT_TRUE(std::isfinite(env.mean[i]));
      EXPECT_TRUE(std::isfinite(env.ci95_half[i]));
      EXPECT_LE(env.min[i], env.mean[i]);
      EXPECT_LE(env.mean[i], env.max[i]);
      EXPECT_GE(env.ci95_half[i], 0.0);
    }
  }
}

TEST(CampaignFigures, SingleReplicationCollapsesToZeroWidthBand) {
  const CampaignResult result = CampaignRunner(CampaignOptions{.threads = 1})
                                    .run(seed_replications(smoke_base(), 1));
  ASSERT_FALSE(result.figure_envelopes.empty());
  for (const auto& env : result.figure_envelopes) {
    SCOPED_TRACE(env.name);
    EXPECT_EQ(env.replications, 1u);
    for (std::size_t i = 0; i < env.size(); ++i) {
      EXPECT_EQ(env.mean[i], env.min[i]);
      EXPECT_EQ(env.mean[i], env.max[i]);
      EXPECT_EQ(env.ci95_half[i], 0.0);  // defined zero-width interval
    }
  }
}

TEST(CampaignFigures, CollectFiguresOffSkipsTheFold) {
  const CampaignResult result =
      CampaignRunner(CampaignOptions{.threads = 1, .collect_figures = false})
          .run(seed_replications(smoke_base(), 1));
  EXPECT_TRUE(result.figure_envelopes.empty());
  ASSERT_EQ(result.studies.size(), 1u);
  EXPECT_TRUE(result.studies[0].figures.curves.empty());
  // The scalar path is unaffected by skipping figures.
  EXPECT_GT(result.studies[0].records, 0u);
  EXPECT_FALSE(result.aggregates.empty());
}

TEST(CampaignFigures, EmptyFigureProducesNoNans) {
  // An "empty figure" — a curve a degenerate workload produced no data for
  // (all-zero samples) next to one with no grid at all — must fold into
  // finite columns, never NaN.
  analysis::FigureSet a, b;
  a.add("empty_grid", {}, {});
  b.add("empty_grid", {}, {});
  a.add("zeros", {0.0, 1.0}, {0.0, 0.0});
  b.add("zeros", {0.0, 1.0}, {0.0, 0.0});
  a.add("only_in_a", {0.0, 1.0}, {0.25, 0.75});
  const auto envelopes = analysis::fold_envelopes({&a, &b});
  ASSERT_EQ(envelopes.size(), 3u);

  EXPECT_EQ(envelopes[0].name, "empty_grid");
  EXPECT_EQ(envelopes[0].size(), 0u);
  EXPECT_EQ(envelopes[0].replications, 2u);

  EXPECT_EQ(envelopes[1].name, "zeros");
  for (std::size_t i = 0; i < envelopes[1].size(); ++i) {
    EXPECT_EQ(envelopes[1].mean[i], 0.0);
    EXPECT_EQ(envelopes[1].ci95_half[i], 0.0);
    EXPECT_TRUE(std::isfinite(envelopes[1].min[i]));
    EXPECT_TRUE(std::isfinite(envelopes[1].max[i]));
  }

  // A curve only one replication produced still gets a defined (n=1,
  // zero-width) envelope.
  EXPECT_EQ(envelopes[2].name, "only_in_a");
  EXPECT_EQ(envelopes[2].replications, 1u);
  EXPECT_EQ(envelopes[2].ci95_half[0], 0.0);
  EXPECT_EQ(envelopes[2].mean[1], envelopes[2].max[1]);
}

TEST(CampaignFigures, MismatchedGridsAreRejected) {
  analysis::FigureSet a, b;
  a.add("curve", {0.0, 1.0}, {0.1, 0.9});
  b.add("curve", {0.0, 2.0}, {0.1, 0.9});
  EXPECT_THROW((void)analysis::fold_envelopes({&a, &b}), util::CheckFailure);
}

TEST(CampaignFigures, FoldOrderIsStudyOrderNotThreadOrder) {
  // fold_figure_envelopes consumes summaries in input order, so the same
  // studies always produce bitwise-identical envelopes.
  const auto studies = seed_replications(smoke_base(), 3);
  const CampaignResult a =
      CampaignRunner(CampaignOptions{.threads = 1}).run(studies);
  const CampaignResult b =
      CampaignRunner(CampaignOptions{.threads = 3}).run(studies);
  ASSERT_EQ(a.figure_envelopes.size(), b.figure_envelopes.size());
  for (std::size_t f = 0; f < a.figure_envelopes.size(); ++f) {
    const auto& ea = a.figure_envelopes[f];
    const auto& eb = b.figure_envelopes[f];
    EXPECT_EQ(ea.name, eb.name);
    EXPECT_EQ(ea.xs, eb.xs);
    EXPECT_EQ(ea.mean, eb.mean);  // bitwise: same fold order
    EXPECT_EQ(ea.min, eb.min);
    EXPECT_EQ(ea.max, eb.max);
    EXPECT_EQ(ea.ci95_half, eb.ci95_half);
  }
}

}  // namespace
}  // namespace charisma::core
