// Deliberately mis-layered input for the charisma-layering golden test.
// Never compiled — only scanned as a src/net/ file (rank 1).  Line numbers
// are load-bearing: the golden file pins every finding to its line.
#include <vector>

#include "util/stats.hpp"
#include "net/forwarding.hpp"
#include "analysis/session.hpp"
#include "disk/disk.hpp"
// NOLINTNEXTLINE(charisma-layering)
#include "core/campaign.hpp"

void use() {}
