// Table 1: number of files opened per traced job.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_files_per_job(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  const double paper_total = 470.0;  // 71+15+24+120+240
  std::int64_t total = 0;
  for (auto b : result.buckets) total += b;

  Comparison cmp("Table 1: files opened per traced job (share of jobs)");
  for (std::size_t i = 0; i < result.buckets.size(); ++i) {
    cmp.percent_row(std::string("jobs opening ") +
                        analysis::paper::kTable1[i].bucket + " file(s)",
                    analysis::paper::kTable1[i].jobs / paper_total,
                    total > 0 ? static_cast<double>(result.buckets[i]) /
                                    static_cast<double>(total)
                              : 0.0);
  }
  cmp.row("max files opened by one job", 2217.0,
          static_cast<double>(result.max_files_one_job), 0);
  cmp.print();
  std::printf(
      "note: the 2217-file job is a one-off and only appears at --scale"
      " >= 0.5.\n\n");
}

void BM_FilesPerJobAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_files_per_job(store));
  }
}
BENCHMARK(BM_FilesPerJobAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Table 1 (files per job)", charisma::bench::reproduce)
