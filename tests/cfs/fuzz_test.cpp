// Model-based fuzzing of the CFS metadata layer: random mode-0 operation
// sequences are checked against a trivial reference model of per-node file
// pointers and file sizes.
#include <gtest/gtest.h>

#include <map>

#include "cfs/file_system.hpp"
#include "util/rng.hpp"

namespace charisma::cfs {
namespace {

struct RefFile {
  std::int64_t size = 0;
};
struct RefHandle {
  std::int64_t pointer = 0;
};

class FuzzCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCase, Mode0MatchesReferenceModel) {
  util::Rng rng(GetParam());
  FileSystemParams params;
  params.io_nodes = 3;
  params.block_size = 512;
  FileSystem fs(params);

  std::map<std::string, RefFile> ref_files;
  // (job, node, path) -> pointer
  std::map<std::tuple<JobId, NodeId, std::string>, RefHandle> ref_handles;
  std::map<std::string, FileId> ids;

  const auto some_path = [&] {
    return "f" + std::to_string(rng.uniform(6));
  };
  const auto some_job = [&] { return static_cast<JobId>(rng.uniform(3)); };
  const auto some_node = [&] { return static_cast<NodeId>(rng.uniform(4)); };

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.uniform(5);
    const JobId job = some_job();
    const NodeId node = some_node();
    const std::string path = some_path();
    const auto key = std::make_tuple(job, node, path);

    switch (op) {
      case 0: {  // open (create|read|write)
        const auto r = fs.open(job, node, path, kRead | kWrite | kCreate,
                               IoMode::kIndependent, 0);
        const bool ref_ok = ref_handles.count(key) == 0;
        ASSERT_EQ(r.ok, ref_ok) << r.error;
        if (r.ok) {
          ids[path] = r.file;
          ASSERT_EQ(r.created, ref_files.count(path) == 0);
          ref_files.try_emplace(path);
          ref_handles[key] = RefHandle{};
        }
        break;
      }
      case 1: {  // write
        const auto it = ref_handles.find(key);
        const std::int64_t bytes = rng.uniform_range(0, 2000);
        const auto r = fs.reserve_write(job, node, ids.count(path) ? ids[path]
                                                                   : kNoFile,
                                        bytes, 0);
        if (it == ref_handles.end() || ids.count(path) == 0) {
          ASSERT_FALSE(r.ok);
          break;
        }
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_EQ(r.offset, it->second.pointer);
        ASSERT_EQ(r.bytes, bytes);
        it->second.pointer += bytes;
        auto& f = ref_files[path];
        const bool extends = it->second.pointer > f.size && bytes > 0;
        ASSERT_EQ(r.extends_file, extends);
        f.size = std::max(f.size, it->second.pointer);
        break;
      }
      case 2: {  // read
        const auto it = ref_handles.find(key);
        const std::int64_t bytes = rng.uniform_range(0, 2000);
        const auto r = fs.reserve_read(job, node,
                                       ids.count(path) ? ids[path] : kNoFile,
                                       bytes, 0);
        if (it == ref_handles.end() || ids.count(path) == 0) {
          ASSERT_FALSE(r.ok);
          break;
        }
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_EQ(r.offset, it->second.pointer);
        const std::int64_t expect = std::clamp<std::int64_t>(
            ref_files[path].size - it->second.pointer, 0, bytes);
        ASSERT_EQ(r.bytes, expect);
        it->second.pointer += expect;
        break;
      }
      case 3: {  // seek (absolute)
        const auto it = ref_handles.find(key);
        const std::int64_t target = rng.uniform_range(0, 5000);
        const auto r = fs.seek(job, node,
                               ids.count(path) ? ids[path] : kNoFile, target,
                               Whence::kSet);
        if (it == ref_handles.end() || ids.count(path) == 0) {
          ASSERT_EQ(r, std::nullopt);
          break;
        }
        ASSERT_EQ(r, target);
        it->second.pointer = target;
        break;
      }
      case 4: {  // close
        const auto it = ref_handles.find(key);
        const auto r = fs.close(job, node,
                                ids.count(path) ? ids[path] : kNoFile);
        if (it == ref_handles.end() || ids.count(path) == 0) {
          ASSERT_EQ(r, std::nullopt);
          break;
        }
        ASSERT_EQ(r, ref_files[path].size);
        ref_handles.erase(it);
        break;
      }
    }
  }

  // Final invariant: every surviving file's stats agree with the model.
  for (const auto& [path, f] : ref_files) {
    const auto stats = fs.stats(ids.at(path));
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->size, f.size) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace charisma::cfs
