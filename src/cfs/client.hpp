// CFS client library — the layer a compute-node process links against and
// the layer the CHARISMA tracer instruments (paper §3.1: "high-level CFS
// calls are implemented in a library that is linked with the user's
// program").
//
// Calls are synchronous in simulated time: each returns the operation's
// completion time, computed from the shared-pointer hand-off (modes 1-3),
// the request messages to the involved I/O nodes (one per touched 4 KB
// block), the disk/cache service there, and the reply.  The caller (a
// workload process) schedules its continuation at the returned time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfs/runtime.hpp"
#include "cfs/types.hpp"

namespace charisma::cfs {

struct ClientParams {
  /// User-level library call overhead.
  MicroSec call_overhead = 150;
  /// Size of a request descriptor message to an I/O node.
  std::int64_t request_message_bytes = 64;
};

class Client {
 public:
  Client(Runtime& runtime, NodeId node, ClientParams params = {});

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }

  /// Opens `path`; on success the result's fd indexes this client's table.
  OpenResult open(JobId job, const std::string& path, std::uint8_t flags,
                  IoMode mode);
  /// Data operations.  On failure (ok == false) the result carries the
  /// error, zero bytes, and completed_at equal to the simulated time of the
  /// call — a failed operation consumes no simulated time and never reports
  /// a completion in the past or future (tests/cfs/client_test.cpp pins
  /// this for bad descriptors and failed reservations).
  IoResult read(Fd fd, std::int64_t bytes);
  IoResult write(Fd fd, std::int64_t bytes);
  /// The paper's §5 recommendation, implemented: reads `count` elements of
  /// `record` bytes separated by `interval` skipped bytes from the current
  /// pointer (mode 0 only).  One request message goes to each involved
  /// I/O node instead of one per touched block, so a regular pattern costs
  /// O(io-nodes) messages instead of O(elements).
  IoResult read_strided(Fd fd, std::int64_t record, std::int64_t interval,
                        std::int64_t count);
  /// Mode-0 only.  Returns the resulting offset.
  std::optional<std::int64_t> seek(Fd fd, std::int64_t offset, Whence whence);
  /// Returns the file size at close.
  std::optional<std::int64_t> close(Fd fd);
  bool unlink(JobId job, const std::string& path);

  /// File behind an fd (kNoFile when the fd is closed/unknown).
  [[nodiscard]] FileId file_of(Fd fd) const;
  [[nodiscard]] JobId job_of(Fd fd) const;
  [[nodiscard]] std::size_t open_files() const noexcept {
    return open_count_;
  }

  /// Total messages this client sent to I/O nodes (ablation C input).
  [[nodiscard]] std::uint64_t io_messages() const noexcept {
    return io_messages_;
  }

 private:
  struct Handle {
    FileId file = kNoFile;  // kNoFile marks a closed slot
    JobId job = kNoJob;
  };

  static constexpr Fd kFirstFd = 3;  // 0..2 reserved, as in Unix

  /// Live handle behind `fd`, or nullptr if unknown/closed.  Descriptors
  /// are dense and never reused, so the table is a flat vector indexed by
  /// fd - kFirstFd — no hashing on the per-operation path.
  [[nodiscard]] const Handle* find_handle(Fd fd) const noexcept {
    const auto idx = static_cast<std::size_t>(fd - kFirstFd);
    if (fd < kFirstFd || idx >= handles_.size()) return nullptr;
    const Handle& h = handles_[idx];
    return h.file == kNoFile ? nullptr : &h;
  }

  /// Prices the data movement of a granted reservation.
  MicroSec execute(const Handle& h, const Reservation& r, bool is_write);

  Runtime* runtime_;
  NodeId node_;
  ClientParams params_;
  std::vector<Handle> handles_;  // indexed by fd - kFirstFd
  std::size_t open_count_ = 0;
  std::uint64_t io_messages_ = 0;
  // Reusable request-path scratch (see BlockPlan): cleared per operation,
  // capacity retained, so steady-state operations do not allocate.
  BlockPlan plan_scratch_;
  std::vector<std::vector<BlockAccess>> strided_groups_;  // one per I/O node
};

}  // namespace charisma::cfs
