// Per-node drifting clocks.
//
// The iPSC/860 synchronized node clocks at system startup, after which each
// clock drifted "significantly and differently" (paper §3.2, citing French).
// The trace postprocessor has to undo this drift using the double timestamps
// taken when a trace buffer leaves a node and when it reaches the collector.
// We model a clock as local(t) = offset + (t - sync_time) * (1 + rate), with
// rate in parts-per-million.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace charisma::sim {

using util::MicroSec;

class DriftingClock {
 public:
  /// A perfect clock (the collector's reference).
  DriftingClock() = default;
  /// `drift_ppm` may be negative (clock runs slow).
  DriftingClock(MicroSec sync_time, MicroSec offset, double drift_ppm) noexcept
      : sync_time_(sync_time), offset_(offset), drift_ppm_(drift_ppm) {}

  /// Local reading at true (engine) time `t`.
  [[nodiscard]] MicroSec local_time(MicroSec t) const noexcept;
  /// Inverse mapping: true time at which this clock reads `local` (rounded).
  [[nodiscard]] MicroSec true_time(MicroSec local) const noexcept;

  [[nodiscard]] double drift_ppm() const noexcept { return drift_ppm_; }

  /// Draws a clock whose drift is uniform in [-max_drift_ppm, max_drift_ppm]
  /// and whose residual offset after startup sync is within +-max_offset.
  static DriftingClock random(util::Rng& rng, MicroSec sync_time,
                              double max_drift_ppm, MicroSec max_offset);

 private:
  MicroSec sync_time_ = 0;
  MicroSec offset_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace charisma::sim
