#include "sim/engine.hpp"

#include <utility>

#include "sim/sharded.hpp"
#include "util/check.hpp"

namespace charisma::sim {

Engine::Engine(QueueKind queue) : kind_(queue), queue_(queue) {}

Engine::Engine(const EngineOptions& options)
    : kind_(options.queue), queue_(options.queue) {
  if (options.threads > 1 || options.force_sharded) {
    ShardedOptions sharded;
    sharded.queue = options.queue;
    sharded.shards = options.threads > 1 ? options.threads : 1;
    sharded.lp_count = options.lp_count;
    sharded.lookahead = options.lookahead;
    sharded.worker_threads = options.threads - 1;
    sharded_ = std::make_unique<ShardCoordinator>(sharded);
  }
}

Engine::~Engine() = default;

std::size_t Engine::pending_events() const noexcept {
  // The sharded backend spreads pending events over shard queues, staging
  // buffers, runs, and the dispatch heap; scheduled-minus-dispatched counts
  // them all (and matches queue_.size() exactly in the serial engine).
  if (sharded_ != nullptr) {
    return static_cast<std::size_t>(next_seq_ - dispatched_);
  }
  return queue_.size();
}

int Engine::shard_count() const noexcept {
  return sharded_ != nullptr ? sharded_->shard_count() : 1;
}

ShardStats Engine::shard_stats() const {
  return sharded_ != nullptr ? sharded_->stats() : ShardStats{};
}

void Engine::schedule_at_lp(int lp, MicroSec at, Callback fn) {
  // A stale event would silently dispatch at the wrong time: the queues
  // order by `at`, so a past timestamp jumps everything pending.
  CHECK(at >= now_, "schedule_at(", at, ") is in the past: now()=", now_);
  Event ev{at, next_seq_++, std::move(fn)};
  if (sharded_ != nullptr) {
    sharded_->schedule(lp, std::move(ev));
  } else {
    queue_.push(std::move(ev));
  }
}

void Engine::schedule_in_lp(int lp, MicroSec delay, Callback fn) {
  CHECK(delay >= 0, "schedule_in(", delay, ") with a negative delay");
  schedule_at_lp(lp, now_ + delay, std::move(fn));
}

bool Engine::step() {
  Event* ev = nullptr;
  if (sharded_ != nullptr) {
    ev = sharded_->front();
  } else if (!queue_.empty()) {
    ev = queue_.front();
  }
  if (ev == nullptr) return false;
  // Monotone dispatch: simulated time never moves backwards.
  CHECK(ev->at >= now_, "event at t=", ev->at,
        " dispatched after now()=", now_);
  now_ = ev->at;
  ++dispatched_;
  // Move only the callback out of the slot — the callback may schedule
  // new events, which can reallocate the container the slot lives in.
  Callback fn = std::move(ev->fn);
  if (sharded_ != nullptr) {
    sharded_->drop_front();
  } else {
    queue_.drop_front();
  }
  fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(MicroSec deadline) {
  MicroSec at = 0;
  if (sharded_ != nullptr) {
    while (sharded_->next_time(&at) && at <= deadline) step();
  } else {
    while (queue_.next_time(&at) && at <= deadline) step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace charisma::sim
