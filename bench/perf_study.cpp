// End-to-end perf harness: one timed pass over the pipeline's three hot
// stages (study -> session build -> cache-parameter sweep), emitted as a
// self-contained JSON object for tools/record_bench.sh to collect into
// BENCH_study.json.
//
// This is deliberately NOT a google-benchmark binary: the recorded numbers
// are whole-stage wall times of a single representative pass, which is what
// the committed baseline compares across commits.
//
// Flags:
//   --scale=0.2            workload scale (same meaning as the fig* benches)
//   --seed=42              workload seed
//   --threads=0            sweep/session worker threads (0 = hardware)
//   --engine-threads=1     event-engine threads (1 = serial; >1 sharded)
//   --queue=bucketed       event queue: bucketed | reference
//   --sweep-mode=grouped   cache sweep execution: grouped | per-config
//   --trace-mode=streaming trace pipeline: streaming (bounded RSS) |
//                          materialized (in-memory reference)
//   --spill-budget-mb=384  streaming memory-tier budget (0 = all-disk)
//   --spill-dir=<dir>      streaming spill directory ($TMPDIR default)
//   --workload=synthetic   workload source: synthetic | replay:<chwl path> |
//                          checkpoint (see workload/source.hpp)
//   --chkpoint-size/bw/runtime/mtti/nodes/chunk
//                          checkpoint-source knobs (workload/checkpoint.hpp)
//   --out=<path>           also write the JSON there (stdout always)
//   --check-digest=0x...   exit non-zero unless the trace digest matches
//
// Per-point sweep summaries go to stderr in a mode-independent format, so
// CI can diff the two sweep modes' lines byte-for-byte.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <optional>
#include <utility>

#include "analysis/session.hpp"
#include "cache/simulators.hpp"
#include "core/stream_study.hpp"
#include "core/study.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workload/source.hpp"

namespace charisma {
namespace {

// The harness measures the host machine, so this is the one audited place
// in bench/ that reads the wall clock; simulation code never does.
using WallClock = std::chrono::steady_clock;  // NOLINT(charisma-wallclock)

[[nodiscard]] double ms_since(WallClock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - start)
      .count();
}

[[nodiscard]] long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// The representative sweep: every point the fig8 / fig9 / sec48 benches
/// replay, as one workload for the SweepRunner.
[[nodiscard]] std::vector<cache::ComputeCacheConfig> compute_sweep() {
  std::vector<cache::ComputeCacheConfig> configs(3);
  configs[0].buffers_per_node = 1;
  configs[1].buffers_per_node = 10;
  configs[2].buffers_per_node = 50;
  return configs;
}

[[nodiscard]] std::vector<cache::IoNodeSimConfig> io_sweep() {
  std::vector<cache::IoNodeSimConfig> configs;
  for (const std::size_t buffers :
       {100u, 250u, 500u, 1000u, 2000u, 4000u, 8000u, 16000u, 25000u}) {
    for (const cache::Policy policy :
         {cache::Policy::kLru, cache::Policy::kFifo}) {
      cache::IoNodeSimConfig cfg;
      cfg.total_buffers = buffers;
      cfg.policy = policy;
      configs.push_back(cfg);
    }
  }
  for (const int io : {1, 2, 5, 10, 20}) {
    cache::IoNodeSimConfig cfg;
    cfg.total_buffers = 4000;
    cfg.io_nodes = io;
    configs.push_back(cfg);
  }
  for (const std::size_t front : {0u, 1u}) {
    cache::IoNodeSimConfig cfg;  // the §4.8 combined-cache pair
    cfg.total_buffers = 500;
    cfg.compute_buffers_per_node = front;
    configs.push_back(cfg);
  }
  return configs;
}

/// Mode-independent per-point summary lines (stderr), byte-diffable between
/// --sweep-mode=grouped and --sweep-mode=per-config runs.
void print_sweep_results(
    const std::vector<cache::ComputeCacheConfig>& compute_configs,
    const std::vector<cache::ComputeCacheResult>& compute_results,
    const std::vector<cache::IoNodeSimConfig>& io_configs,
    const std::vector<cache::IoNodeSimResult>& io_results) {
  for (std::size_t i = 0; i < compute_results.size(); ++i) {
    std::fprintf(stderr, "compute[%zu] buffers=%zu %s\n", i,
                 compute_configs[i].buffers_per_node,
                 compute_results[i].describe().c_str());
  }
  for (std::size_t i = 0; i < io_results.size(); ++i) {
    std::fprintf(stderr, "io[%zu] policy=%s io_nodes=%d buffers=%zu front=%zu %s\n",
                 i, to_string(io_configs[i].policy), io_configs[i].io_nodes,
                 io_configs[i].total_buffers,
                 io_configs[i].compute_buffers_per_node,
                 io_results[i].describe().c_str());
  }
}

int run(int argc, char** argv) {
  std::vector<std::string> known{"scale",      "seed",      "threads",
                                 "engine-threads", "queue", "sweep-mode",
                                 "trace-mode", "workload",  "out",
                                 "check-digest", "spill-budget-mb",
                                 "spill-dir"};
  for (const auto& name : workload::checkpoint_flag_names()) {
    known.push_back(name);
  }
  util::Flags flags(argc, argv, known);
  const double scale = flags.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const auto engine_threads =
      static_cast<int>(flags.get_int("engine-threads", 1));
  CHECK(engine_threads >= 1, "--engine-threads must be >= 1, got ",
        engine_threads);
  const std::string queue_name = flags.get("queue", "bucketed");
  CHECK(queue_name == "bucketed" || queue_name == "reference",
        "--queue must be 'bucketed' or 'reference', got '", queue_name, "'");
  const std::string sweep_mode_name = flags.get("sweep-mode", "grouped");
  CHECK(sweep_mode_name == "grouped" || sweep_mode_name == "per-config",
        "--sweep-mode must be 'grouped' or 'per-config', got '",
        sweep_mode_name, "'");
  const cache::SweepMode sweep_mode = sweep_mode_name == "grouped"
                                          ? cache::SweepMode::kGrouped
                                          : cache::SweepMode::kPerConfig;
  const std::string trace_mode_name = flags.get("trace-mode", "streaming");
  const core::TraceMode trace_mode = core::parse_trace_mode(trace_mode_name);

  core::StudyConfig config;
  config.workload.scale = scale;
  config.workload.seed = seed;
  config.queue = queue_name == "bucketed" ? sim::QueueKind::kBucketed
                                          : sim::QueueKind::kReferenceHeap;
  config.engine_threads = engine_threads;
  config.source =
      workload::parse_source_spec(flags.get("workload", "synthetic"));
  workload::apply_checkpoint_flags(flags, &config.workload);
  config.spill_budget_mb =
      flags.get_int("spill-budget-mb", config.spill_budget_mb);
  config.spill_dir = flags.get("spill-dir", "");

  util::ThreadPool pool(threads);
  const auto total_start = WallClock::now();
  auto stage_start = WallClock::now();

  // Mode-dependent products.  The materialized StudyOutput must outlive the
  // SweepRunner, which borrows its sorted trace; the streaming path hands
  // the runner an owned replay-op spill instead.
  std::optional<core::StudyOutput> materialized;
  analysis::SessionStore store;
  std::set<cache::SessionKey> read_only;
  std::optional<cache::SweepRunner> sweeps;
  std::uint64_t digest = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t trace_records = 0;
  std::uint64_t sorted_records = 0;
  sim::ShardStats shard_stats;
  double study_ms = 0.0;
  double sessions_ms = 0.0;
  double digest_ms = 0.0;
  // Spill-stage attribution, symmetric across modes: materialized runs
  // report zero write/read and charge the session build as their sink time,
  // so the streaming-tax fields line up column-for-column in the bench JSON.
  core::SpillTelemetry spill;

  if (trace_mode == core::TraceMode::kStreaming) {
    // The study stage covers the simulation AND the one postprocessing
    // merge that feeds every accumulator, so the dedicated sessions stage
    // below is just the (cheap) store hand-off.
    // The materialized branch below never computes the request-size /
    // I/O-rate figure inputs, so skip them here too: the stage comparison
    // must cover the same work in both modes.
    core::StreamOptions sopts;
    sopts.collect_rate_figures = false;
    core::StreamedStudyOutput out = core::run_streamed_study(config, sopts);
    study_ms = ms_since(stage_start);
    // The digest fold runs inside run_streamed_study (it must, before the
    // spill is consumed); pull it out of the study stage so both modes
    // report the same verification pass under the same name.
    digest_ms = out.spill.digest_ms;
    study_ms -= digest_ms;
    digest = out.trace_digest;
    events_dispatched = out.events_dispatched;
    trace_records = out.records;
    sorted_records = out.streamed_records;
    shard_stats = out.shard_stats;
    spill = out.spill;
    stage_start = WallClock::now();
    store = std::move(out.sessions);
    read_only = store.read_only_sessions();
    sessions_ms = ms_since(stage_start);
    sweeps.emplace(std::move(out.replay_ops), read_only, pool);
  } else {
    materialized = core::run_study(config);
    study_ms = ms_since(stage_start);
    stage_start = WallClock::now();
    digest = materialized->raw.digest();
    digest_ms = ms_since(stage_start);
    events_dispatched = materialized->events_dispatched;
    trace_records = materialized->raw.record_count();
    sorted_records = materialized->sorted.records.size();
    shard_stats = materialized->shard_stats;
    stage_start = WallClock::now();
    store = analysis::SessionStore::build_parallel(materialized->sorted, pool);
    read_only = store.read_only_sessions();
    sessions_ms = ms_since(stage_start);
    sweeps.emplace(materialized->sorted, read_only, pool);
    spill.sink_ms = sessions_ms;
    spill.digest_ms = digest_ms;
    spill.spill_budget_mb = config.spill_budget_mb;
  }

  const auto compute_configs = compute_sweep();
  const auto io_configs = io_sweep();
  stage_start = WallClock::now();
  const auto compute_results = sweeps->run_compute(compute_configs, sweep_mode);
  const auto io_results = sweeps->run_io(io_configs, sweep_mode);
  const double sweep_ms = ms_since(stage_start);
  const double total_ms = ms_since(total_start);
  // The sweeps re-read any on-disk replay-op frames once per trace pass.
  spill.spill_bytes_read += sweeps->spill_bytes_read();

  const cache::SweepPlan compute_plan = cache::plan_compute_sweep(compute_configs);
  const cache::SweepPlan io_plan = cache::plan_io_sweep(io_configs);
  const std::size_t sweep_passes =
      sweep_mode == cache::SweepMode::kGrouped
          ? compute_plan.passes() + io_plan.passes()
          : compute_configs.size() + io_configs.size();
  std::fprintf(stderr, "sweep mode: %s\n", to_string(sweep_mode));
  std::fprintf(stderr, "trace mode: %s\n", to_string(trace_mode));
  std::fprintf(stderr, "compute plan: %s\n", compute_plan.describe().c_str());
  std::fprintf(stderr, "io plan: %s\n", io_plan.describe().c_str());
  std::fprintf(stderr,
               "spill: budget=%lldMiB write_ms=%.1f read_ms=%.1f "
               "sink_ms=%.1f digest_ms=%.1f stall_ms=%.1f written=%lld "
               "read=%lld trace_blocks=%llu/%llu ops_chunks=%llu/%llu "
               "(mem/disk)\n",
               static_cast<long long>(spill.spill_budget_mb),
               spill.spill_write_ms, spill.spill_read_ms, spill.sink_ms,
               digest_ms, spill.append_stall_ms,
               static_cast<long long>(spill.spill_bytes_written),
               static_cast<long long>(spill.spill_bytes_read),
               static_cast<unsigned long long>(spill.trace_blocks_in_memory),
               static_cast<unsigned long long>(spill.trace_blocks_on_disk),
               static_cast<unsigned long long>(spill.ops_chunks_in_memory),
               static_cast<unsigned long long>(spill.ops_chunks_on_disk));
  print_sweep_results(compute_configs, compute_results, io_configs,
                      io_results);

  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "0x%016llx",
                static_cast<unsigned long long>(digest));

  const double events_per_sec =
      study_ms > 0.0
          ? static_cast<double>(events_dispatched) / (study_ms / 1000.0)
          : 0.0;

  std::string json;
  json += "{\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"threads\": " + std::to_string(pool.thread_count()) + ",\n";
  json += "  \"engine_threads\": " + std::to_string(engine_threads) + ",\n";
  if (engine_threads > 1) {
    const sim::ShardStats& shards = shard_stats;
    json += "  \"engine_windows\": " + std::to_string(shards.windows) + ",\n";
    json += "  \"engine_staged\": " + std::to_string(shards.staged) + ",\n";
    json += "  \"engine_direct\": " + std::to_string(shards.direct) + ",\n";
    json += "  \"engine_worker_tasks\": " +
            std::to_string(shards.worker_tasks) + ",\n";
    json += "  \"engine_inline_tasks\": " +
            std::to_string(shards.inline_tasks) + ",\n";
  }
  json += "  \"queue\": \"" + queue_name + "\",\n";
  json += "  \"workload\": \"" + workload::to_string(config.source) + "\",\n";
  json += "  \"sweep_mode\": \"" + sweep_mode_name + "\",\n";
  json += "  \"trace_mode\": \"" + trace_mode_name + "\",\n";
  json += "  \"sweep_passes\": " + std::to_string(sweep_passes) + ",\n";
  json += "  \"stages_ms\": {\n";
  json += "    \"study\": " + std::to_string(study_ms) + ",\n";
  json += "    \"digest\": " + std::to_string(digest_ms) + ",\n";
  json += "    \"sessions\": " + std::to_string(sessions_ms) + ",\n";
  json += "    \"sweep\": " + std::to_string(sweep_ms) + ",\n";
  json += "    \"spill_write\": " + std::to_string(spill.spill_write_ms) +
          ",\n";
  json += "    \"spill_read\": " + std::to_string(spill.spill_read_ms) +
          ",\n";
  json += "    \"sink\": " + std::to_string(spill.sink_ms) + ",\n";
  json += "    \"spill_stall\": " + std::to_string(spill.append_stall_ms) +
          ",\n";
  json += "    \"total\": " + std::to_string(total_ms) + "\n";
  json += "  },\n";
  json += "  \"spill_budget_mb\": " +
          std::to_string(spill.spill_budget_mb) + ",\n";
  json += "  \"spill_bytes_written\": " +
          std::to_string(spill.spill_bytes_written) + ",\n";
  json += "  \"spill_bytes_read\": " +
          std::to_string(spill.spill_bytes_read) + ",\n";
  json += "  \"spill_blocks_mem\": " +
          std::to_string(spill.trace_blocks_in_memory) + ",\n";
  json += "  \"spill_blocks_disk\": " +
          std::to_string(spill.trace_blocks_on_disk) + ",\n";
  json += "  \"spill_ops_chunks_mem\": " +
          std::to_string(spill.ops_chunks_in_memory) + ",\n";
  json += "  \"spill_ops_chunks_disk\": " +
          std::to_string(spill.ops_chunks_on_disk) + ",\n";
  json += "  \"events_dispatched\": " +
          std::to_string(events_dispatched) + ",\n";
  json += "  \"events_per_sec\": " + std::to_string(events_per_sec) + ",\n";
  json += "  \"trace_records\": " + std::to_string(trace_records) + ",\n";
  json += "  \"sorted_records\": " + std::to_string(sorted_records) + ",\n";
  json += "  \"replay_ops\": " + std::to_string(sweeps->replay_ops()) + ",\n";
  json += "  \"compute_sweep_points\": " +
          std::to_string(compute_results.size()) + ",\n";
  json += "  \"io_sweep_points\": " + std::to_string(io_results.size()) +
          ",\n";
  json += "  \"trace_digest\": \"" + std::string(digest_hex) + "\",\n";
  json += "  \"peak_rss_kb\": " + std::to_string(peak_rss_kb()) + "\n";
  json += "}\n";

  std::fputs(json.c_str(), stdout);
  if (flags.has("out")) {
    const std::string out = flags.get("out", "");
    std::FILE* f = std::fopen(out.c_str(), "w");
    CHECK(f != nullptr, "cannot open --out file '", out, "'");
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  if (flags.has("check-digest")) {
    const std::string expected = flags.get("check-digest", "");
    if (expected != digest_hex) {
      std::fprintf(stderr,
                   "digest mismatch: expected %s, computed %s "
                   "(scale=%g seed=%llu queue=%s)\n",
                   expected.c_str(), digest_hex, scale,
                   static_cast<unsigned long long>(seed), queue_name.c_str());
      return 1;
    }
    std::fprintf(stderr, "digest check passed: %s\n", digest_hex);
  }
  return 0;
}

}  // namespace
}  // namespace charisma

int main(int argc, char** argv) { return charisma::run(argc, argv); }
