file(REMOVE_RECURSE
  "../bench/fig6_consecutive"
  "../bench/fig6_consecutive.pdb"
  "CMakeFiles/fig6_consecutive.dir/fig6_consecutive.cpp.o"
  "CMakeFiles/fig6_consecutive.dir/fig6_consecutive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_consecutive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
