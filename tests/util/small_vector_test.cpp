#include "util/small_vector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace charisma::util {
namespace {

TEST(SmallVector, StartsInlineAndEmpty) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.is_inline());
}

TEST(SmallVector, StaysInlineUpToN) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 30);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 10);
}

TEST(SmallVector, SpillsToHeapPreservingElements) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, ClearKeepsHeapCapacity) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const std::size_t high_water = v.capacity();
  ASSERT_GE(high_water, 100u);
  v.clear();
  EXPECT_TRUE(v.empty());
  // The whole point of the scratch-buffer pattern: no re-allocation on the
  // next fill up to the high-water mark.
  EXPECT_EQ(v.capacity(), high_water);
  EXPECT_FALSE(v.is_inline());
  for (int i = 0; i < 100; ++i) v.push_back(-i);
  EXPECT_EQ(v.capacity(), high_water);
  EXPECT_EQ(v.back(), -99);
}

TEST(SmallVector, NonTrivialElements) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.emplace_back(5, 'x');
  v.push_back("a rather long string that certainly heap-allocates");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], "xxxxx");
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, CopyAndMoveInline) {
  SmallVector<std::string, 4> a;
  a.push_back("one");
  a.push_back("two");
  SmallVector<std::string, 4> b(a);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], "two");

  SmallVector<std::string, 4> c(std::move(a));
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], "one");
  EXPECT_TRUE(c.is_inline());
}

TEST(SmallVector, MoveStealsHeapStorage) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* heap = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), heap);  // pointer swap, not element copies
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.is_inline());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());

  SmallVector<int, 2> c;
  c.push_back(7);
  c = std::move(b);
  EXPECT_EQ(c.data(), heap);
  EXPECT_EQ(c.size(), 50u);
}

TEST(SmallVector, CopyAssignReplacesContents) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  SmallVector<int, 2> b;
  b.push_back(99);
  b = a;
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[9], 9);
}

TEST(SmallVector, ReserveGrowsOnlyForward) {
  SmallVector<int, 4> v;
  v.reserve(2);
  EXPECT_TRUE(v.is_inline());  // already covered by inline storage
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  const std::size_t cap = v.capacity();
  v.reserve(10);
  EXPECT_EQ(v.capacity(), cap);
}

}  // namespace
}  // namespace charisma::util
