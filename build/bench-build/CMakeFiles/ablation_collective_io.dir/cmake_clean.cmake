file(REMOVE_RECURSE
  "../bench/ablation_collective_io"
  "../bench/ablation_collective_io.pdb"
  "CMakeFiles/ablation_collective_io.dir/ablation_collective_io.cpp.o"
  "CMakeFiles/ablation_collective_io.dir/ablation_collective_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collective_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
