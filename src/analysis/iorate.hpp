// I/O-rate timeline analysis.
//
// Not one of the paper's own figures, but the style of characterization the
// paper cites from Pasquale & Polyzos and Cypher et al. (temporal patterns
// in the I/O rate): data volume moved per time bucket over the traced
// period, split by reads and writes, plus burstiness statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/postprocess.hpp"
#include "util/stats.hpp"

namespace charisma::analysis {

struct IoRateConfig {
  /// Timeline bucket width.
  util::MicroSec bucket = 10 * util::kMinute;
};

struct IoRateResult {
  struct Bucket {
    util::MicroSec start = 0;
    std::int64_t bytes_read = 0;
    std::int64_t bytes_written = 0;
    std::uint64_t requests = 0;
  };
  std::vector<Bucket> timeline;
  util::MicroSec bucket_width = 0;
  double mean_mb_per_s = 0.0;
  double peak_mb_per_s = 0.0;
  /// Peak-to-mean ratio: > ~3 indicates a bursty, phase-structured load.
  [[nodiscard]] double burstiness() const noexcept {
    return mean_mb_per_s > 0.0 ? peak_mb_per_s / mean_mb_per_s : 0.0;
  }
  /// Fraction of buckets with no I/O at all.
  double quiet_fraction = 0.0;

  [[nodiscard]] std::string render() const;
};

[[nodiscard]] IoRateResult analyze_io_rate(const trace::SortedTrace& trace,
                                           const IoRateConfig& config = {});

/// Streaming form of analyze_io_rate: the timeline grows one bucket at a
/// time as records arrive, so resident state is the timeline (small — one
/// entry per bucket of the traced period), never the trace.  The
/// materialized overload above is implemented on top of this.
class IoRateAccumulator final : public trace::RecordSink {
 public:
  /// `trace_start`/`trace_end` are the header bounds; the end grows if a
  /// corrected timestamp lands past it, exactly as in analyze_io_rate.
  IoRateAccumulator(util::MicroSec trace_start, util::MicroSec trace_end,
                    const IoRateConfig& config = {});
  void on_record(const trace::Record& r) override;
  /// Finalizes bucket starts and the rate statistics.  Call once.
  [[nodiscard]] IoRateResult finish();

 private:
  util::MicroSec start_ = 0;
  util::MicroSec end_ = 0;
  bool saw_any_ = false;
  IoRateResult out_;
};

}  // namespace charisma::analysis
