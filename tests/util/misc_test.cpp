// Tests for thread pool, units formatting, table rendering, flags, check.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace charisma::util {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    (void)pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  // Audited: per-index atomic slots; no iteration shares state.
  // NOLINTNEXTLINE(charisma-shared-capture)
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOneElement) {
  ThreadPool pool(2);
  int calls = 0;
  // Audited: zero iterations — the body never runs.
  // NOLINTNEXTLINE(charisma-shared-capture)
  parallel_for(pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Audited: a single iteration cannot race with itself.
  // NOLINTNEXTLINE(charisma-shared-capture)
  parallel_for(pool, 1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) throw std::logic_error("x");
                            }),
               std::logic_error);
}

// ---- units ---------------------------------------------------------------

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.0 KB");
  EXPECT_EQ(format_bytes(1536), "1.5 KB");
  EXPECT_EQ(format_bytes(kMiB), "1.0 MB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.0 GB");
  EXPECT_EQ(format_bytes(-2048), "-2.0 KB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(5), "5us");
  EXPECT_EQ(format_duration(1500), "1.5ms");
  EXPECT_EQ(format_duration(2 * kSecond), "2.0s");
  EXPECT_EQ(format_duration(90 * kSecond), "1m 30s");
  EXPECT_EQ(format_duration(3 * kHour + 7 * kMinute), "3h 7m");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(format_percent(0.123), "12.3%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
}

// ---- Table -----------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  EXPECT_NE(s.find("|     1 |"), std::string::npos);  // numeric right-aligned
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| x |"), std::string::npos);
}

TEST(Table, RuleInsertsSeparator) {
  Table t({"h"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.render();
  // header rule + top + bottom + mid-rule = 4 horizontal rules.
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TableFmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0), "2.0");
}

// ---- Flags ------------------------------------------------------------------

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--scale=0.5", "--seed=99", "--verbose",
                        "leftover"};
  Flags flags(5, const_cast<char**>(argv), {"scale", "seed", "verbose"});
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(flags.get_int("seed", 0), 99);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  ASSERT_EQ(flags.remaining_argc(), 2);
  EXPECT_STREQ(flags.remaining()[1], "leftover");
}

TEST(Flags, UnknownFlagsStayInRemaining) {
  const char* argv[] = {"prog", "--benchmark_filter=abc"};
  Flags flags(2, const_cast<char**>(argv), {"scale"});
  EXPECT_FALSE(flags.has("benchmark_filter"));
  EXPECT_EQ(flags.remaining_argc(), 2);
}

TEST(Flags, Defaults) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {"scale"});
  EXPECT_EQ(flags.get("scale", "x"), "x");
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 2.5), 2.5);
  EXPECT_FALSE(flags.get_bool("scale", false));
}

// ---- check -----------------------------------------------------------------

TEST(Check, ThrowsWithLocation) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "broken invariant");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("misc_test"), std::string::npos);
  }
}

TEST(Check, MacroStreamsValuesIntoMessage) {
  const int got = 7;
  const int want = 9;
  EXPECT_NO_THROW(CHECK(got < want));
  try {
    CHECK(got == want, "got ", got, " but wanted ", want);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got == want"), std::string::npos) << what;
    EXPECT_NE(what.find("got 7 but wanted 9"), std::string::npos) << what;
    EXPECT_NE(what.find("misc_test"), std::string::npos) << what;
  }
}

TEST(Check, MacroWithoutMessageStillNamesExpression) {
  try {
    CHECK(1 + 1 == 3);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("1 + 1 == 3"), std::string::npos);
  }
}

TEST(Check, DcheckMatchesBuildMode) {
  int evaluations = 0;
  const auto touch = [&evaluations] {
    ++evaluations;
    return false;
  };
  (void)touch;  // unreferenced when DCHECK compiles out
#if CHARISMA_DCHECK_IS_ON
  EXPECT_THROW(DCHECK(touch(), "debug audit"), CheckFailure);
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_NO_THROW(DCHECK(touch(), "debug audit"));
  EXPECT_EQ(evaluations, 0);  // compiled out: the condition is not evaluated
#endif
}

}  // namespace
}  // namespace charisma::util
