#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace charisma::util {
namespace {

TEST(ThreadPool, SubmitFutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_NO_THROW(ok.get());
  try {
    bad.get();
    FAIL() << "expected the task's exception to come through the future";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "task boom");
  }
  // The worker that ran the throwing task must survive to serve more work.
  auto after = pool.submit([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1037, 0);
  // Audited: each index increments only its own hits[i] slot.
  // NOLINTNEXTLINE(charisma-shared-capture)
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForRethrowsTheLowestIndexFailure) {
  // With n <= 4 * thread_count every index is its own chunk, so the chunk
  // indices below are exact.  Futures drain in chunk order, which makes the
  // lowest-index failure the one that surfaces — deterministically, even
  // though the two throws race at runtime.
  ThreadPool pool(2);
  try {
    parallel_for(pool, 8, [](std::size_t i) {
      if (i == 2) throw std::runtime_error("index 2");
      if (i == 6) throw std::runtime_error("index 6");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "index 2");
  }
}

TEST(ThreadPool, ParallelForDrainsEveryChunkBeforeRethrowing) {
  // The contract the sweep runner depends on: when one chunk throws, the
  // call still waits for every other chunk, so the caller's body and
  // captures stay valid for the whole call.  Index 0 fails instantly; the
  // others dawdle, so an early-returning implementation would observe
  // completed < 7 here.
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  try {
    parallel_for(pool, 8, [&completed](std::size_t i) {
      if (i == 0) throw std::runtime_error("fast failure");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed.fetch_add(1);
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "fast failure");
  }
  EXPECT_EQ(completed.load(), 7);

  // And the pool is still fully serviceable afterwards.
  std::atomic<int> again{0};
  parallel_for(pool, 16, [&again](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 16);
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  // Audited: zero iterations — the body (and the capture) never runs.
  // NOLINTNEXTLINE(charisma-shared-capture)
  parallel_for(pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace charisma::util
