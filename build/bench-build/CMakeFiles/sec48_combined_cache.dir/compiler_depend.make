# Empty compiler generated dependencies file for sec48_combined_cache.
# This may be replaced when dependencies are built.
