#include "trace/collector.hpp"

#include "util/check.hpp"

namespace charisma::trace {

Collector::Collector(ipsc::Machine& machine, CollectorParams params)
    : machine_(&machine), params_(params) {
  buffers_.resize(static_cast<std::size_t>(machine.compute_nodes()));
  trace_.header.compute_nodes = machine.compute_nodes();
  trace_.header.io_nodes = machine.io_nodes();
  trace_.header.block_size = util::kBlockSize;
  trace_.header.trace_start = machine.engine().now();
  // Derived once: append() consults this on every record.
  if (params_.buffer_on_nodes) {
    const auto n = static_cast<std::size_t>(params_.node_buffer_bytes) /
                   Record::kEncodedSize;
    records_per_buffer_ = n == 0 ? 1 : n;
  }
}

void Collector::annotate(std::uint64_t seed, std::string label) {
  CHECK(writer_ == nullptr,
        "Collector::annotate after start_spilling: the spill header is "
        "already on disk");
  trace_.header.seed = seed;
  trace_.header.label = std::move(label);
}

void Collector::start_spilling(const SpillTarget& target,
                               const SpillWriterOptions& options) {
  CHECK(writer_ == nullptr, "Collector::start_spilling called twice");
  CHECK(trace_.blocks.empty() && records_seen_ == 0,
        "Collector::start_spilling after records were collected");
  writer_ = std::make_unique<SpillWriter>(target, trace_.header, options);
}

void Collector::start_spilling(const std::string& path) {
  start_spilling(SpillTarget::named(path));
}

void Collector::commit_block(TraceBlock&& block) {
  if (writer_ != nullptr) {
    writer_->append(block);
  } else {
    trace_.blocks.push_back(std::move(block));
  }
}

void Collector::append(Record record) {
  CHECK(record.node >= 0 && record.node < machine_->compute_nodes(),
        "record from unknown node ", record.node, " (machine has ",
        machine_->compute_nodes(), " compute nodes)");
  const MicroSec now = machine_->engine().now();
  record.timestamp = machine_->clock(record.node).local_time(now);
  auto& buf = buffers_[static_cast<std::size_t>(record.node)];
  // Monotone per-node record times: a node's drifting clock still only runs
  // forwards, so a regression here means engine time ran backwards or the
  // drift model produced a non-monotone mapping.
  CHECK(!buf.any_records || record.timestamp >= buf.last_timestamp,
        "node ", record.node, " clock ran backwards: ", record.timestamp,
        " after ", buf.last_timestamp);
  buf.last_timestamp = record.timestamp;
  buf.any_records = true;
  buf.records.push_back(record);
  ++records_seen_;
  if (buf.records.size() >= records_per_buffer()) flush_node(record.node);
}

void Collector::append_job_event(Record record) {
  // Job starts/ends come from the resource manager on the service node, so
  // they carry the collector's (reference) clock and skip node buffers.
  // They must not be attributed to a compute node: that would both apply a
  // bogus drift correction to them and pollute that node's clock fit.
  record.timestamp = machine_->engine().now();
  record.node = kServiceNode;
  TraceBlock block;
  block.node = record.node;
  block.sent_local = record.timestamp;
  block.recv_global = record.timestamp;
  block.records.push_back(record);
  commit_block(std::move(block));
  ++records_seen_;
}

void Collector::flush_node(NodeId node) {
  auto& buf = buffers_[static_cast<std::size_t>(node)];
  if (buf.records.empty()) return;
  const MicroSec now = machine_->engine().now();
  const auto payload = static_cast<std::int64_t>(buf.records.size() *
                                                 Record::kEncodedSize);
  TraceBlock block;
  block.node = node;
  block.sent_local = machine_->clock(node).local_time(now);
  block.recv_global = now + machine_->compute_to_service(node, payload);
  block.records = std::move(buf.records);
  buf.records.clear();
  commit_block(std::move(block));
  ++messages_;

  // Collector-side staging: model its own (untraced) CFS output.
  staged_bytes_ += payload;
  if (staged_bytes_ >= params_.collector_buffer_bytes) {
    trace_bytes_ += staged_bytes_;
    staged_bytes_ = 0;
    ++collector_writes_;
  }
}

void Collector::flush_all() {
  for (NodeId n = 0; n < machine_->compute_nodes(); ++n) flush_node(n);
  if (staged_bytes_ > 0) {
    trace_bytes_ += staged_bytes_;
    staged_bytes_ = 0;
    ++collector_writes_;
  }
}

TraceFile Collector::take_trace() {
  CHECK(writer_ == nullptr,
        "take_trace on a spilling collector: use take_spilled");
  flush_all();
  trace_.header.trace_end = machine_->engine().now();
  TraceFile out = std::move(trace_);
  trace_ = TraceFile{};
  trace_.header = out.header;
  trace_.header.trace_start = machine_->engine().now();
  trace_.blocks.clear();
  return out;
}

SpilledTrace Collector::take_spilled() {
  CHECK(writer_ != nullptr, "take_spilled without start_spilling");
  flush_all();
  SpilledTrace out = writer_->finish(machine_->engine().now());
  writer_.reset();
  trace_.header.trace_start = machine_->engine().now();
  return out;
}

}  // namespace charisma::trace
