// Disk service model for the CFS I/O nodes.
//
// Each iPSC/860 I/O node at NAS drove a single 760 MB SCSI drive (paper §3).
// We model the drive as a FIFO queue with a positional service time:
// seek (skipped when the request is contiguous with the previous one) +
// half-rotation latency + transfer at the media rate.  The model produces
// completion times for the event engine and utilization/byte counters for
// the ablation benches; it is a queueing model, not a geometry simulator.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace charisma::disk {

using util::MicroSec;

struct DiskParams {
  std::int64_t capacity_bytes = 760 * util::kMiB;
  MicroSec average_seek = 16 * util::kMillisecond;
  MicroSec rotation = 17 * util::kMillisecond;  // ~3600 rpm full revolution
  double bytes_per_us = 1.0;                    // ~1 MB/s media rate
  MicroSec controller_overhead = 700;
};

class Disk {
 public:
  explicit Disk(DiskParams params = {}) noexcept : params_(params) {}

  [[nodiscard]] const DiskParams& params() const noexcept { return params_; }

  /// Pure service time of a request at byte address `offset` of length
  /// `bytes`, given the head position left by the previous request.
  [[nodiscard]] MicroSec service_time(std::int64_t offset,
                                      std::int64_t bytes) const noexcept;

  /// Enqueues a request arriving at `now`; returns its completion time and
  /// advances the queue/head state.  FIFO order is the caller's contract
  /// (arrivals must be fed in nondecreasing `now` order).
  MicroSec submit(MicroSec now, std::int64_t offset, std::int64_t bytes);

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::int64_t bytes_moved() const noexcept { return bytes_; }
  [[nodiscard]] MicroSec busy_time() const noexcept { return busy_; }
  /// Fraction of [0, now] the disk spent servicing requests.
  [[nodiscard]] double utilization(MicroSec now) const noexcept;

 private:
  DiskParams params_;
  MicroSec free_at_ = 0;   // when the queue drains
  std::int64_t head_ = -1;  // byte address after the previous request
  std::uint64_t requests_ = 0;
  std::int64_t bytes_ = 0;
  MicroSec busy_ = 0;
};

}  // namespace charisma::disk
