// Differential lock on the workload::Source seam: the synthetic method
// pulled through the Source API must be bit-identical to the legacy
// materialized-script Driver path — same trace digest, same per-figure
// statistics — at every engine-thread count and in both trace modes.  This
// is the guarantee that the pluggable-source refactor changed the plumbing
// and nothing else.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/stream_study.hpp"
#include "core/study.hpp"

namespace charisma {
namespace {

/// The repo-wide determinism anchor: scale 0.2 / seed 42 (see ROADMAP).
constexpr std::uint64_t kPinnedDigest = 0x5d6c862d0a86afe1ULL;

[[nodiscard]] core::StudyConfig base_config(double scale, std::uint64_t seed,
                                            bool legacy) {
  core::StudyConfig config;
  config.workload.scale = scale;
  config.workload.seed = seed;
  config.legacy_driver = legacy;
  return config;
}

[[nodiscard]] core::StudySummary summarize(const core::StudyConfig& config,
                                           core::TraceMode mode,
                                           bool with_figures) {
  if (mode == core::TraceMode::kStreaming) {
    core::StreamOptions options;
    options.collect_replay_ops = with_figures;
    return core::summarize_streamed_study(
        "study", config, core::run_streamed_study(config, options),
        with_figures);
  }
  return core::summarize_study("study", config, core::run_study(config),
                               with_figures);
}

void expect_identical(const core::StudySummary& legacy,
                      const core::StudySummary& seam,
                      const std::string& what) {
  EXPECT_EQ(legacy.trace_digest, seam.trace_digest) << what;
  EXPECT_EQ(legacy.events_dispatched, seam.events_dispatched) << what;
  EXPECT_EQ(legacy.records, seam.records) << what;
  EXPECT_EQ(legacy.total_ops, seam.total_ops) << what;
  EXPECT_EQ(legacy.sim_end, seam.sim_end) << what;
  EXPECT_EQ(legacy.idle_fraction, seam.idle_fraction) << what;
  EXPECT_EQ(legacy.multiprogrammed_fraction, seam.multiprogrammed_fraction)
      << what;
  EXPECT_EQ(legacy.single_node_job_fraction, seam.single_node_job_fraction)
      << what;
  EXPECT_EQ(legacy.small_read_fraction, seam.small_read_fraction) << what;
  EXPECT_EQ(legacy.small_write_fraction, seam.small_write_fraction) << what;
  EXPECT_EQ(legacy.temporary_fraction, seam.temporary_fraction) << what;
  EXPECT_EQ(legacy.mode0_fraction, seam.mode0_fraction) << what;

  // Exact per-figure equality, curve for curve, point for point.
  ASSERT_EQ(legacy.figures.curves.size(), seam.figures.curves.size()) << what;
  for (std::size_t c = 0; c < legacy.figures.curves.size(); ++c) {
    const auto& lc = legacy.figures.curves[c];
    const auto& sc = seam.figures.curves[c];
    EXPECT_EQ(lc.name, sc.name) << what;
    ASSERT_EQ(lc.xs.size(), sc.xs.size()) << what << " " << lc.name;
    ASSERT_EQ(lc.ys.size(), sc.ys.size()) << what << " " << lc.name;
    for (std::size_t i = 0; i < lc.ys.size(); ++i) {
      EXPECT_EQ(lc.xs[i], sc.xs[i]) << what << " " << lc.name << "[" << i
                                    << "]";
      EXPECT_EQ(lc.ys[i], sc.ys[i]) << what << " " << lc.name << "[" << i
                                    << "]";
    }
  }
}

TEST(SourceDifferential, FullStatisticsMatchLegacyInBothTraceModes) {
  // Scale 0.05 is large enough that every figure has mass (the sweep
  // differential uses the same size for the same reason).
  for (const core::TraceMode mode :
       {core::TraceMode::kMaterialized, core::TraceMode::kStreaming}) {
    const core::StudySummary legacy = summarize(
        base_config(0.05, 7, /*legacy=*/true), mode, /*with_figures=*/true);
    const core::StudySummary seam = summarize(
        base_config(0.05, 7, /*legacy=*/false), mode, /*with_figures=*/true);
    expect_identical(legacy, seam,
                     std::string("trace mode ") + core::to_string(mode));
  }
}

TEST(SourceDifferential, DigestsMatchAcrossEngineThreadsAndTraceModes) {
  // One legacy reference digest, then the seam at 1/2/8 engine threads in
  // both trace modes — every combination must land on the same trace bytes.
  const core::StudyConfig reference = base_config(0.01, 7, /*legacy=*/true);
  const std::uint64_t expected = core::run_study(reference).raw.digest();

  for (const int threads : {1, 2, 8}) {
    for (const core::TraceMode mode :
         {core::TraceMode::kMaterialized, core::TraceMode::kStreaming}) {
      core::StudyConfig config = base_config(0.01, 7, /*legacy=*/false);
      config.engine_threads = threads;
      const std::uint64_t digest =
          mode == core::TraceMode::kStreaming
              ? core::run_streamed_study(config).trace_digest
              : core::run_study(config).raw.digest();
      EXPECT_EQ(digest, expected)
          << threads << " engine threads, " << core::to_string(mode);
    }
  }

  // The legacy reference path itself is also digest-stable when sharded
  // (the pre-existing engine differential covers this; re-pinned here so a
  // seam-side regression can't hide behind a matching engine-side one).
  core::StudyConfig legacy_sharded = reference;
  legacy_sharded.engine_threads = 2;
  EXPECT_EQ(core::run_study(legacy_sharded).raw.digest(), expected);
}

TEST(SourceDifferential, PinnedDigestUnchangedThroughTheSeam) {
  // The determinism anchor every other suite pins (scale 0.2, seed 42) must
  // come out of the Source-fed pipeline unchanged — the refactor moved the
  // workload -> CFS boundary without disturbing a single trace byte.
  const core::StudyOutput out =
      core::run_study(base_config(0.2, 42, /*legacy=*/false));
  EXPECT_EQ(out.raw.digest(), kPinnedDigest);
}

TEST(SourceDifferential, LegacyDriverRejectsNonSyntheticSources) {
  core::StudyConfig config = base_config(0.01, 7, /*legacy=*/true);
  config.source.method = "checkpoint";
  EXPECT_ANY_THROW((void)core::run_study(config));
}

}  // namespace
}  // namespace charisma
