#include "core/collective.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace charisma::core {

using trace::EventKind;
using trace::Record;

namespace {

struct Measured {
  util::MicroSec time = 0;
  std::uint64_t discontiguities = 0;
};

/// Services `blocks` (file-block indices of ONE I/O node) in the given
/// order against a fresh disk; block index maps to a disk address.
Measured service(const std::vector<std::int64_t>& blocks,
                 const CollectiveConfig& config) {
  disk::Disk d(config.disk);
  Measured m;
  std::int64_t head = -1;
  util::MicroSec now = 0;
  for (const std::int64_t b : blocks) {
    const std::int64_t addr =
        (b / config.io_nodes) * config.block_size %
        std::max<std::int64_t>(config.disk.capacity_bytes, 1);
    if (addr != head) ++m.discontiguities;
    now = d.submit(now, addr, config.block_size);
    head = addr + config.block_size;
  }
  m.time = d.busy_time();
  return m;
}

}  // namespace

CollectiveStats analyze_disk_directed(const trace::SortedTrace& trace,
                                      const CollectiveConfig& config) {
  CollectiveStats out;
  // Per (job, file): the block-touch stream in trace order.
  std::map<std::pair<cfs::JobId, cfs::FileId>, std::vector<std::int64_t>>
      streams;
  for (const Record& r : trace.records) {
    if ((r.kind != EventKind::kRead && r.kind != EventKind::kWrite) ||
        r.bytes <= 0) {
      continue;
    }
    auto& blocks = streams[{r.job, r.file}];
    const std::int64_t first = r.offset / config.block_size;
    const std::int64_t last = (r.offset + r.bytes - 1) / config.block_size;
    for (std::int64_t b = first; b <= last; ++b) {
      // Only the block's first touch reaches the disk (the cache absorbs
      // re-touches); dedup consecutive repeats cheaply.
      if (blocks.empty() || blocks.back() != b) blocks.push_back(b);
    }
  }

  for (auto& [key, blocks] : streams) {
    if (blocks.size() < config.min_blocks) continue;
    ++out.sessions;
    out.block_accesses += blocks.size();
    // Split the stream by owning I/O node, preserving first-touch order.
    // A collective batch fetches each block once (re-touches are served
    // from the batch buffer), so both orders are compared over the UNIQUE
    // blocks.
    std::vector<std::vector<std::int64_t>> per_io(
        static_cast<std::size_t>(config.io_nodes));
    std::set<std::int64_t> seen;
    for (const std::int64_t b : blocks) {
      if (!seen.insert(b).second) continue;
      per_io[static_cast<std::size_t>(b % config.io_nodes)].push_back(b);
    }
    for (auto& io_blocks : per_io) {
      if (io_blocks.empty()) continue;
      const Measured arrival = service(io_blocks, config);
      std::sort(io_blocks.begin(), io_blocks.end());
      const Measured directed = service(io_blocks, config);
      out.disk_time_arrival += arrival.time;
      out.disk_time_directed += directed.time;
      out.discontiguities_arrival += arrival.discontiguities;
      out.discontiguities_directed += directed.discontiguities;
    }
  }
  return out;
}

std::string CollectiveStats::render() const {
  util::Table t({"metric", "request order", "disk-directed"});
  t.add_row({"disk service time", util::format_duration(disk_time_arrival),
             util::format_duration(disk_time_directed)});
  t.add_row({"head repositionings", std::to_string(discontiguities_arrival),
             std::to_string(discontiguities_directed)});
  std::ostringstream s;
  s << t.render();
  s << sessions << " batched sessions, " << block_accesses
    << " block accesses; disk-directed saves "
    << util::fmt(time_reduction() * 100.0) << "% of disk time\n";
  return s.str();
}

}  // namespace charisma::core
