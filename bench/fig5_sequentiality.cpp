// Figure 5: CDF of sequential access to files on a per-node basis.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_sequentiality(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  const auto series = [](const util::Cdf& cdf) {
    return cdf.render_series({0.0, 0.2, 0.4, 0.6, 0.8, 0.999, 1.0});
  };
  std::printf("read-only %% sequential CDF:\n%s\n",
              series(result.read_only.sequential_cdf).c_str());
  std::printf("write-only %% sequential CDF:\n%s\n",
              series(result.write_only.sequential_cdf).c_str());
  std::printf("read-write %% sequential CDF:\n%s\n",
              series(result.read_write.sequential_cdf).c_str());

  Comparison cmp("Figure 5: sequentiality");
  cmp.row("shape", "spikes at 0% and 100%",
          "0%: " + util::fmt(result.read_only.zero_sequential * 100.0) +
              "% (RO), 100%: " +
              util::fmt(result.read_only.fully_sequential * 100.0) +
              "% (RO)");
  cmp.row("read-only files", "by far most 100% sequential",
          util::fmt(result.read_only.fully_sequential * 100.0) +
              "% fully sequential");
  cmp.row("write-only files", "by far most 100% sequential",
          util::fmt(result.write_only.fully_sequential * 100.0) +
              "% fully sequential");
  cmp.row("read-write files", "primarily non-sequential",
          util::fmt(result.read_write.fully_sequential * 100.0) +
              "% fully sequential");
  cmp.print();
}

void BM_SequentialityAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_sequentiality(store));
  }
}
BENCHMARK(BM_SequentialityAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 5 (sequential access)", charisma::bench::reproduce)
