file(REMOVE_RECURSE
  "../bench/ablation_prefetch"
  "../bench/ablation_prefetch.pdb"
  "CMakeFiles/ablation_prefetch.dir/ablation_prefetch.cpp.o"
  "CMakeFiles/ablation_prefetch.dir/ablation_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
