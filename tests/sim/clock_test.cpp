#include "sim/clock.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace charisma::sim {
namespace {

TEST(DriftingClock, PerfectClockIsIdentity) {
  const DriftingClock c;
  for (MicroSec t : {0LL, 1000LL, 123456789LL}) {
    EXPECT_EQ(c.local_time(t), t);
    EXPECT_EQ(c.true_time(t), t);
  }
}

TEST(DriftingClock, OffsetShiftsReading) {
  const DriftingClock c(0, 500, 0.0);
  EXPECT_EQ(c.local_time(0), 500);
  EXPECT_EQ(c.local_time(1000), 1500);
  EXPECT_EQ(c.true_time(1500), 1000);
}

TEST(DriftingClock, PositiveDriftRunsFast) {
  const DriftingClock c(0, 0, 100.0);  // +100 ppm
  EXPECT_EQ(c.local_time(1'000'000), 1'000'100);
  EXPECT_EQ(c.local_time(10'000'000), 10'001'000);
}

TEST(DriftingClock, NegativeDriftRunsSlow) {
  const DriftingClock c(0, 0, -50.0);
  EXPECT_EQ(c.local_time(1'000'000), 999'950);
}

TEST(DriftingClock, SyncTimeAnchorsTheSkew) {
  const DriftingClock c(1'000'000, 0, 100.0);
  EXPECT_EQ(c.local_time(1'000'000), 1'000'000);  // no skew at sync point
  EXPECT_EQ(c.local_time(2'000'000), 2'000'100);
}

class ClockInverseSweep
    : public ::testing::TestWithParam<std::tuple<double, MicroSec>> {};

TEST_P(ClockInverseSweep, TrueTimeInvertsLocalTime) {
  const auto [drift, offset] = GetParam();
  const DriftingClock c(500, offset, drift);
  for (MicroSec t = 0; t < 100'000'000; t += 7'777'777) {
    const MicroSec local = c.local_time(t);
    EXPECT_LE(std::llabs(c.true_time(local) - t), 1) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DriftsAndOffsets, ClockInverseSweep,
    ::testing::Combine(::testing::Values(-200.0, -50.0, 0.0, 50.0, 150.0),
                       ::testing::Values<MicroSec>(-2000, 0, 1500)));

TEST(DriftingClock, RandomStaysWithinBounds) {
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const auto c = DriftingClock::random(rng, 0, 150.0, 2000);
    EXPECT_LE(std::abs(c.drift_ppm()), 150.0);
    EXPECT_LE(std::llabs(c.local_time(0)), 2000);
  }
}

TEST(DriftingClock, RandomClocksDiffer) {
  util::Rng rng(43);
  const auto a = DriftingClock::random(rng, 0, 150.0, 2000);
  const auto b = DriftingClock::random(rng, 0, 150.0, 2000);
  EXPECT_NE(a.drift_ppm(), b.drift_ppm());
}

}  // namespace
}  // namespace charisma::sim
