# Empty dependencies file for fig7_sharing.
# This may be replaced when dependencies are built.
