#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>

namespace charisma::workload {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig c;
  c.scale = 0.1;
  c.seed = 123;
  return c;
}

TEST(Generator, DeterministicInSeed) {
  const auto a = generate(small_config());
  const auto b = generate(small_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  ASSERT_EQ(a.inputs.size(), b.inputs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
    EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
    EXPECT_EQ(a.jobs[i].archetype, b.jobs[i].archetype);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  WorkloadConfig c2 = small_config();
  c2.seed = 321;
  const auto a = generate(small_config());
  const auto b = generate(c2);
  int diffs = 0;
  for (std::size_t i = 0; i < std::min(a.jobs.size(), b.jobs.size()); ++i) {
    diffs += a.jobs[i].arrival != b.jobs[i].arrival;
  }
  EXPECT_GT(diffs, 10);
}

TEST(Generator, JobsSortedByArrivalWithinWindow) {
  const auto w = generate(small_config());
  for (std::size_t i = 1; i < w.jobs.size(); ++i) {
    EXPECT_LE(w.jobs[i - 1].arrival, w.jobs[i].arrival);
  }
  for (const auto& j : w.jobs) {
    EXPECT_GE(j.arrival, 0);
    EXPECT_LE(j.arrival, w.window);
    EXPECT_EQ(j.job, static_cast<cfs::JobId>(&j - w.jobs.data()));
  }
}

TEST(Generator, NodeCountsArePowersOfTwoUpTo128) {
  const auto w = generate(small_config());
  for (const auto& j : w.jobs) {
    EXPECT_TRUE(std::has_single_bit(static_cast<std::uint32_t>(j.nodes)));
    EXPECT_LE(j.nodes, 128);
  }
}

TEST(Generator, JobMixScalesWithScale) {
  WorkloadConfig half = small_config();
  half.scale = 0.5;
  const auto w = generate(half);
  // 3016 total at scale 1; ~1510 at 0.5 (plus a few explicit one-offs).
  EXPECT_NEAR(static_cast<double>(w.jobs.size()), 3016 * 0.5, 60);
  int single = 0;
  for (const auto& j : w.jobs) single += j.nodes == 1;
  EXPECT_NEAR(static_cast<double>(single) / 3016 / 0.5,
              2237.0 / 3016.0, 0.05);
}

TEST(Generator, TracedAndUntracedJobsBothPresent) {
  const auto w = generate(small_config());
  int traced = 0, untraced = 0;
  for (const auto& j : w.jobs) (j.traced ? traced : untraced)++;
  EXPECT_GT(traced, 20);
  EXPECT_GT(untraced, 100);
}

TEST(Generator, InputIndicesAreValid) {
  const auto w = generate(small_config());
  for (const auto& j : w.jobs) {
    for (const auto idx : j.input_files) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(static_cast<std::size_t>(idx), w.inputs.size());
      EXPECT_GT(w.inputs[static_cast<std::size_t>(idx)].bytes, 0);
    }
  }
}

TEST(Generator, InputPathsAreUnique) {
  const auto w = generate(small_config());
  std::set<std::string> paths;
  for (const auto& in : w.inputs) {
    EXPECT_TRUE(paths.insert(in.path).second) << "duplicate " << in.path;
  }
}

TEST(Generator, FullScaleIncludesTheOneOffJobs) {
  WorkloadConfig c;
  c.scale = 1.0;
  c.seed = 5;
  const auto w = generate(c);
  bool has_2217_style = false, has_1mb = false;
  for (const auto& j : w.jobs) {
    if (j.archetype == Archetype::kCfdSolver && j.params.snapshots == 17 &&
        j.nodes == 128) {
      has_2217_style = true;
    }
    if (j.archetype == Archetype::kCheckpointWrite &&
        j.params.chunk_bytes == util::kMiB) {
      has_1mb = true;
    }
  }
  EXPECT_TRUE(has_2217_style);
  EXPECT_TRUE(has_1mb);
}

// ---- Script compilation ---------------------------------------------------

class ScriptInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScriptInvariants, EveryJobScriptIsWellFormed) {
  WorkloadConfig c = small_config();
  c.seed = GetParam();
  const auto w = generate(c);
  for (const auto& spec : w.jobs) {
    const JobScripts scripts = build_scripts(spec, w);
    ASSERT_EQ(scripts.nodes.size(), static_cast<std::size_t>(spec.nodes));
    std::size_t barriers_expected = 0;
    bool barriers_checked = false;
    for (const auto& node : scripts.nodes) {
      std::set<std::int32_t> open_paths;
      std::size_t barriers = 0;
      for (const Op& op : node.ops) {
        EXPECT_GE(op.think, 0);
        switch (op.kind) {
          case OpKind::kOpen:
            ASSERT_GE(op.path, 0);
            ASSERT_LT(static_cast<std::size_t>(op.path),
                      scripts.paths.size());
            EXPECT_TRUE(open_paths.insert(op.path).second)
                << "double open of " << scripts.paths[static_cast<std::size_t>(op.path)];
            break;
          case OpKind::kClose:
            EXPECT_EQ(open_paths.erase(op.path), 1u) << "close unopened";
            break;
          case OpKind::kRead:
          case OpKind::kWrite:
            EXPECT_GT(op.bytes, 0);
            EXPECT_TRUE(open_paths.count(op.path)) << "I/O on closed file";
            break;
          case OpKind::kSeek:
            EXPECT_TRUE(open_paths.count(op.path)) << "seek on closed file";
            break;
          case OpKind::kUnlink:
            EXPECT_FALSE(open_paths.count(op.path))
                << "unlink while open (script style: close first)";
            break;
          case OpKind::kThink:
            break;
          case OpKind::kBarrier:
            ++barriers;
            break;
        }
      }
      EXPECT_TRUE(open_paths.empty()) << "files left open at job end";
      if (!barriers_checked) {
        barriers_expected = barriers;
        barriers_checked = true;
      } else {
        EXPECT_EQ(barriers, barriers_expected)
            << "nodes disagree on barrier count";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptInvariants,
                         ::testing::Values(1, 42, 777));

TEST(Scripts, SolverHasInterleaveSignature) {
  // A solver node's grid accesses must produce at most two positive-offset
  // interval sizes {0, stride} per pass (the Table 2 signature).
  WorkloadConfig c = small_config();
  const auto w = generate(c);
  for (const auto& spec : w.jobs) {
    if (spec.archetype != Archetype::kCfdSolver || !spec.traced) continue;
    const JobScripts scripts = build_scripts(spec, w);
    const auto& ops = scripts.nodes[0].ops;
    // Find the grid path: the first read after the first seek-to-set
    // following a barrier.
    std::map<std::int32_t, std::set<std::int64_t>> seek_gaps;
    for (const Op& op : ops) {
      if (op.kind == OpKind::kSeek && op.whence == Whence::kCurrent) {
        seek_gaps[op.path].insert(op.offset);
      }
    }
    for (const auto& [path, gaps] : seek_gaps) {
      EXPECT_LE(gaps.size(), 2u)
          << "irregular stride on " << scripts.paths[static_cast<std::size_t>(path)];
    }
    return;  // one solver job suffices
  }
}

TEST(Scripts, TempFileJobsDeleteWhatTheyCreate) {
  WorkloadConfig c = small_config();
  const auto w = generate(c);
  bool found = false;
  for (const auto& spec : w.jobs) {
    if (spec.archetype != Archetype::kTempFile) continue;
    found = true;
    const JobScripts scripts = build_scripts(spec, w);
    for (const auto& node : scripts.nodes) {
      std::set<std::int32_t> created, unlinked;
      for (const Op& op : node.ops) {
        if (op.kind == OpKind::kOpen && (op.flags & cfs::kCreate)) {
          created.insert(op.path);
        }
        if (op.kind == OpKind::kUnlink) unlinked.insert(op.path);
      }
      EXPECT_EQ(created, unlinked);
      EXPECT_FALSE(created.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Scripts, SharedPointerJobsBarrierBeforeSharedReads) {
  WorkloadConfig c;
  c.scale = 0.3;
  c.seed = 9;
  const auto w = generate(c);
  for (const auto& spec : w.jobs) {
    if (spec.archetype != Archetype::kSharedPointer) continue;
    const JobScripts scripts = build_scripts(spec, w);
    for (const auto& node : scripts.nodes) {
      bool seen_barrier = false;
      for (const Op& op : node.ops) {
        if (op.kind == OpKind::kBarrier) seen_barrier = true;
        if (op.kind == OpKind::kRead) {
          EXPECT_TRUE(seen_barrier) << "read before the open barrier";
        }
      }
    }
    return;
  }
  GTEST_SKIP() << "no shared-pointer job drawn at this scale/seed";
}

TEST(Scripts, StatusJobsDoNoCfsIo) {
  const auto w = generate(small_config());
  for (const auto& spec : w.jobs) {
    if (spec.archetype != Archetype::kStatusCheck &&
        spec.archetype != Archetype::kSystem) {
      continue;
    }
    const JobScripts scripts = build_scripts(spec, w);
    for (const auto& node : scripts.nodes) {
      for (const Op& op : node.ops) {
        EXPECT_EQ(op.kind, OpKind::kThink);
      }
    }
  }
}

TEST(Generator, DiurnalArrivalsPeakInTheAfternoon) {
  WorkloadConfig c;
  c.scale = 1.0;
  c.seed = 2;
  c.diurnal_amplitude = 0.45;
  const auto w = generate(c);
  std::int64_t afternoon = 0, night = 0;
  for (const auto& j : w.jobs) {
    const auto hour = (j.arrival % (24 * util::kHour)) / util::kHour;
    if (hour >= 12 && hour < 18) ++afternoon;
    if (hour >= 0 && hour < 6) ++night;
  }
  EXPECT_GT(afternoon, night * 3 / 2);
}

TEST(Generator, ZeroAmplitudeIsRoughlyUniform) {
  WorkloadConfig c;
  c.scale = 1.0;
  c.seed = 2;
  c.diurnal_amplitude = 0.0;
  const auto w = generate(c);
  std::int64_t afternoon = 0, night = 0;
  for (const auto& j : w.jobs) {
    const auto hour = (j.arrival % (24 * util::kHour)) / util::kHour;
    if (hour >= 12 && hour < 18) ++afternoon;
    if (hour >= 0 && hour < 6) ++night;
  }
  EXPECT_NEAR(static_cast<double>(afternoon),
              static_cast<double>(night), 0.15 * static_cast<double>(night));
}

TEST(Scripts, BuildIsDeterministic) {
  const auto w = generate(small_config());
  const auto& spec = w.jobs[w.jobs.size() / 2];
  const JobScripts a = build_scripts(spec, w);
  const JobScripts b = build_scripts(spec, w);
  ASSERT_EQ(a.total_ops(), b.total_ops());
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    for (std::size_t i = 0; i < a.nodes[n].ops.size(); ++i) {
      EXPECT_EQ(a.nodes[n].ops[i].think, b.nodes[n].ops[i].think);
      EXPECT_EQ(a.nodes[n].ops[i].bytes, b.nodes[n].ops[i].bytes);
      EXPECT_EQ(a.nodes[n].ops[i].kind, b.nodes[n].ops[i].kind);
    }
  }
}

}  // namespace
}  // namespace charisma::workload
