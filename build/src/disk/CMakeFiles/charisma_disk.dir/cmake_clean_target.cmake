file(REMOVE_RECURSE
  "libcharisma_disk.a"
)
