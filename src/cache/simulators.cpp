#include "cache/simulators.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "cache/stack_sim.hpp"
#include "util/check.hpp"

namespace charisma::cache {

using trace::EventKind;
using trace::Record;

namespace detail {

std::vector<ReplayOp> prepare_replay(const trace::SortedTrace& trace,
                                     const std::set<SessionKey>& read_only) {
  std::vector<ReplayOp> ops;
  ops.reserve(trace.records.size());
  // The read-only set is consulted per session, not per record: requests
  // arrive in bursts for the same (job, file), so one cached lookup covers
  // the common run.
  SessionKey last_key{cfs::kNoJob, cfs::kNoFile};
  bool last_read_only = false;
  for (const Record& r : trace.records) {
    const bool is_read = r.kind == EventKind::kRead;
    if ((!is_read && r.kind != EventKind::kWrite) || r.bytes <= 0) continue;
    const SessionKey key{r.job, r.file};
    if (key != last_key) {
      last_key = key;
      last_read_only = read_only.find(key) != read_only.end();
    }
    ops.push_back({r.file, r.job, r.node, r.offset, r.bytes, is_read,
                   last_read_only});
  }
  return ops;
}

namespace {

ComputeCacheResult replay_compute_cache(const ReplayLog& ops,
                                        const ComputeCacheConfig& config) {
  util::check(config.block_size > 0, "bad block size");
  ComputeCacheResult out;
  // One cache per (job, node): node reuse across jobs must not leak blocks.
  PerNodeCaches caches(config.buffers_per_node, Policy::kLru);
  struct JobCount {
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
  };
  std::map<JobId, JobCount> per_job;

  // Audited: ReplayLog traversals run the lambda inline on this thread.
  // NOLINTNEXTLINE(charisma-shared-capture)
  ops.for_each([&](const ReplayOp& op) {
    if (!op.is_read || !op.read_only_session) return;
    BlockCache& cache = caches.at(op.job, op.node);
    const auto [first, last] = span_of(op, config.block_size);
    // "Fully satisfied from the local buffer": every touched block present
    // before the request runs.
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      if (!cache.contains({op.file, b})) {
        full_hit = false;
        break;
      }
    }
    for (std::int64_t b = first; b <= last; ++b) {
      (void)cache.access({op.file, b}, op.node);
    }
    auto& jc = per_job[op.job];
    ++jc.reads;
    ++out.reads;
    if (full_hit) {
      ++jc.hits;
      ++out.hits;
    }
  });

  for (const auto& [job, jc] : per_job) {
    const double rate = hit_fraction(jc.hits, jc.reads);
    out.job_hit_rates.push_back(rate);
    if (rate <= 0.0) out.fraction_jobs_zero += 1.0;
    if (rate > 0.75) out.fraction_jobs_above_75 += 1.0;
  }
  if (!out.job_hit_rates.empty()) {
    const auto n = static_cast<double>(out.job_hit_rates.size());
    out.fraction_jobs_zero /= n;
    out.fraction_jobs_above_75 /= n;
  }
  out.hit_rate_cdf = util::Cdf::from_samples(out.job_hit_rates);
  return out;
}

IoNodeSimResult replay_io_cache(const ReplayLog& ops,
                                const IoNodeSimConfig& config) {
  util::check(config.io_nodes >= 1, "need at least one I/O node");
  util::check(config.block_size > 0, "bad block size");
  IoNodeSimResult out;

  const std::size_t per_node =
      config.total_buffers / static_cast<std::size_t>(config.io_nodes);
  std::vector<BlockCache> io_caches;
  io_caches.reserve(static_cast<std::size_t>(config.io_nodes));
  for (int i = 0; i < config.io_nodes; ++i) {
    io_caches.emplace_back(per_node, config.policy);
  }
  PerNodeCaches compute(config.compute_buffers_per_node, Policy::kLru);

  // Audited: ReplayLog traversals run the lambda inline on this thread.
  // NOLINTNEXTLINE(charisma-shared-capture)
  ops.for_each([&](const ReplayOp& op) {
    const auto [first, last] = span_of(op, config.block_size);

    if (config.compute_buffers_per_node > 0 && op.is_read &&
        op.read_only_session) {
      BlockCache& front = compute.at(op.job, op.node);
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        if (!front.contains({op.file, b})) {
          full_hit = false;
          break;
        }
      }
      for (std::int64_t b = first; b <= last; ++b) {
        (void)front.access({op.file, b}, op.node);
      }
      if (full_hit) {
        ++out.filtered_by_compute;
        return;  // never reaches the I/O nodes
      }
    }

    // Round-robin striping at one-block granularity (paper §4.8).  The
    // request is "fully satisfied from the buffer" when every block it
    // touches is already cached (Figure 8's definition, applied here to
    // the I/O-node caches).
    ++out.requests;
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      BlockCache& cache =
          io_caches[static_cast<std::size_t>(b % config.io_nodes)];
      ++out.block_accesses;
      if (cache.access({op.file, b}, op.node)) {
        ++out.block_hits;
      } else {
        full_hit = false;
      }
    }
    if (full_hit) ++out.request_hits;
  });
  out.finalize_rates();
  return out;
}

/// Batched replay for the policies without an inclusion property (FIFO,
/// IP-aware): decode/filter the op stream once and step every config's cache
/// set per record, instead of one full pass per config.  `shape` supplies
/// the shared topology (io_nodes, block_size, front setting, policy);
/// `per_node_buffers` lists the distinct per-node buffer counts.  The §4.8
/// front caches are simulated once for the whole group — their capacity is
/// part of the group key, so every member sees the identical filtered
/// stream.
std::vector<IoNodeSimResult> batched_io_group(
    const ReplayLog& ops, const IoNodeSimConfig& shape,
    const std::vector<std::size_t>& per_node_buffers) {
  util::check(shape.io_nodes >= 1, "need at least one I/O node");
  util::check(shape.block_size > 0, "bad block size");
  const std::size_t n = per_node_buffers.size();
  const auto io_nodes = static_cast<std::size_t>(shape.io_nodes);

  std::vector<std::vector<BlockCache>> caches(n);
  for (std::size_t c = 0; c < n; ++c) {
    caches[c].reserve(io_nodes);
    for (std::size_t i = 0; i < io_nodes; ++i) {
      caches[c].emplace_back(per_node_buffers[c], shape.policy);
    }
  }
  PerNodeCaches front(shape.compute_buffers_per_node, Policy::kLru);
  std::vector<IoNodeSimResult> out(n);

  // Audited: ReplayLog traversals run the lambda inline on this thread.
  // NOLINTNEXTLINE(charisma-shared-capture)
  ops.for_each([&](const ReplayOp& op) {
    const auto [first, last] = span_of(op, shape.block_size);

    if (shape.compute_buffers_per_node > 0 && op.is_read &&
        op.read_only_session) {
      BlockCache& cache = front.at(op.job, op.node);
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        if (!cache.contains({op.file, b})) {
          full_hit = false;
          break;
        }
      }
      for (std::int64_t b = first; b <= last; ++b) {
        (void)cache.access({op.file, b}, op.node);
      }
      if (full_hit) {
        for (std::size_t c = 0; c < n; ++c) ++out[c].filtered_by_compute;
        return;
      }
    }

    for (std::size_t c = 0; c < n; ++c) {
      IoNodeSimResult& r = out[c];
      ++r.requests;
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        ++r.block_accesses;
        if (caches[c][static_cast<std::size_t>(b % shape.io_nodes)].access(
                {op.file, b}, op.node)) {
          ++r.block_hits;
        } else {
          full_hit = false;
        }
      }
      if (full_hit) ++r.request_hits;
    }
  });
  for (IoNodeSimResult& r : out) r.finalize_rates();
  return out;
}

/// Fused replay for a batch of single-point topologies: one pass over the op
/// stream stepping every shape's own cache set — its own io_nodes count,
/// block size, policy, and (when set) §4.8 front caches.  Unlike
/// batched_io_group the shapes share nothing but the decoded op stream, so
/// each slot's counters are bit-identical to a standalone replay_io_cache of
/// that shape: private front caches mean private filtering, private striping
/// means private block placement.  This folds the shapes grouping cannot
/// touch (the Figure 9 I/O-node-count spread, the §4.8 front singleton) into
/// one trace pass instead of one full replay each.
std::vector<IoNodeSimResult> multi_io_group(
    const ReplayLog& ops, const std::vector<IoNodeSimConfig>& shapes) {
  const std::size_t n = shapes.size();
  std::vector<std::vector<BlockCache>> io_caches(n);
  std::vector<PerNodeCaches> fronts;
  fronts.reserve(n);
  std::vector<IoNodeSimResult> out(n);
  for (std::size_t s = 0; s < n; ++s) {
    const IoNodeSimConfig& config = shapes[s];
    util::check(config.io_nodes >= 1, "need at least one I/O node");
    util::check(config.block_size > 0, "bad block size");
    const std::size_t per_node =
        config.total_buffers / static_cast<std::size_t>(config.io_nodes);
    io_caches[s].reserve(static_cast<std::size_t>(config.io_nodes));
    for (int i = 0; i < config.io_nodes; ++i) {
      io_caches[s].emplace_back(per_node, config.policy);
    }
    fronts.emplace_back(config.compute_buffers_per_node, Policy::kLru);
  }

  // Shape-major within fixed op chunks: the chunk streams from memory once
  // and stays L1/L2-hot while the remaining shapes replay it, and each
  // shape's cache state gets a long uninterrupted run instead of being
  // evicted between every op by the other shapes' state.  Per shape the op
  // order is unchanged, so the counters stay bit-identical to a standalone
  // replay.  ReplayLog's chunking doubles as the file-mode read unit.
  ops.for_each_chunk([&](const ReplayOp* chunk, std::size_t len) {
    for (std::size_t s = 0; s < n; ++s) {
      const IoNodeSimConfig& config = shapes[s];
      IoNodeSimResult& r = out[s];
      for (std::size_t o = 0; o < len; ++o) {
        const ReplayOp& op = chunk[o];
        const auto [first, last] = span_of(op, config.block_size);

        if (config.compute_buffers_per_node > 0 && op.is_read &&
            op.read_only_session) {
          BlockCache& front = fronts[s].at(op.job, op.node);
          bool front_hit = true;
          for (std::int64_t b = first; b <= last; ++b) {
            if (!front.contains({op.file, b})) {
              front_hit = false;
              break;
            }
          }
          for (std::int64_t b = first; b <= last; ++b) {
            (void)front.access({op.file, b}, op.node);
          }
          if (front_hit) {
            ++r.filtered_by_compute;
            continue;  // this shape's I/O nodes never see the request
          }
        }

        ++r.requests;
        bool full_hit = true;
        for (std::int64_t b = first; b <= last; ++b) {
          ++r.block_accesses;
          if (io_caches[s][static_cast<std::size_t>(b % config.io_nodes)]
                  .access({op.file, b}, op.node)) {
            ++r.block_hits;
          } else {
            full_hit = false;
          }
        }
        if (full_hit) ++r.request_hits;
      }
    }
  });
  for (IoNodeSimResult& r : out) r.finalize_rates();
  return out;
}

// ---- Config grouping -------------------------------------------------------

/// Configs sharing a key replay the identical filtered stream through the
/// identical cache topology — only the buffer count differs — so one pass
/// can cover the whole group.
struct IoGroupKey {
  int io_nodes = 0;
  std::int64_t block_size = 0;
  std::size_t front = 0;
  Policy policy = Policy::kLru;
  bool operator==(const IoGroupKey&) const = default;
};

struct SweepGrouping {
  std::vector<std::size_t> members;     // config indices, input order
  std::vector<std::size_t> capacities;  // distinct buffer counts, ascending
  std::vector<std::size_t> member_point;  // member -> index into capacities
  Policy policy = Policy::kLru;
  /// A fused batch of replay singletons (fold_replay_singletons): one pass,
  /// several unrelated topologies.  `point_configs` then holds one
  /// representative config index per simulated point, and `capacities`
  /// carries the per-point buffer counts only for plan accounting.
  bool multi = false;
  std::vector<std::size_t> point_configs;

  [[nodiscard]] SweepGroup::Kind kind() const noexcept {
    if (multi) return SweepGroup::Kind::kMulti;
    if (capacities.size() <= 1) return SweepGroup::Kind::kReplay;
    return policy == Policy::kLru ? SweepGroup::Kind::kStack
                                  : SweepGroup::Kind::kBatched;
  }
};

/// Resolves each group's distinct capacities (sorted ascending) and maps
/// every member config to its point.
void finish_grouping(std::vector<SweepGrouping>& groups,
                     const std::vector<std::vector<std::size_t>>& raw_caps) {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SweepGrouping& group = groups[g];
    group.capacities = raw_caps[g];
    std::sort(group.capacities.begin(), group.capacities.end());
    group.capacities.erase(
        std::unique(group.capacities.begin(), group.capacities.end()),
        group.capacities.end());
    group.member_point.reserve(group.members.size());
    for (const std::size_t cap : raw_caps[g]) {
      group.member_point.push_back(static_cast<std::size_t>(
          std::lower_bound(group.capacities.begin(), group.capacities.end(),
                           cap) -
          group.capacities.begin()));
    }
  }
}

std::vector<SweepGrouping> group_compute(
    const std::vector<ComputeCacheConfig>& configs) {
  std::vector<SweepGrouping> groups;
  std::vector<std::int64_t> keys;                 // block size per group
  std::vector<std::vector<std::size_t>> raw_caps; // member capacities
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ComputeCacheConfig& c = configs[i];
    std::size_t g = 0;
    while (g < groups.size() && keys[g] != c.block_size) ++g;
    if (g == groups.size()) {
      groups.emplace_back();
      groups.back().policy = Policy::kLru;  // fig 8 is LRU by definition
      keys.push_back(c.block_size);
      raw_caps.emplace_back();
    }
    groups[g].members.push_back(i);
    raw_caps[g].push_back(c.buffers_per_node);
  }
  finish_grouping(groups, raw_caps);
  return groups;
}

/// Fuses the kReplay leftovers — groups that ended up with a single distinct
/// point, so grouping bought them nothing — into one kMulti pass.  Each
/// would otherwise cost a full trace replay for one point; the fused pass
/// replays the stream once and steps every shape (multi_io_group).  Fewer
/// than two singletons means there is nothing to fuse.
std::vector<SweepGrouping> fold_replay_singletons(
    std::vector<SweepGrouping> groups,
    const std::vector<IoNodeSimConfig>& configs) {
  std::size_t singletons = 0;
  for (const SweepGrouping& g : groups) {
    if (g.kind() == SweepGroup::Kind::kReplay) ++singletons;
  }
  if (singletons < 2) return groups;

  std::vector<SweepGrouping> out;
  out.reserve(groups.size() - singletons + 1);
  SweepGrouping fused;
  fused.multi = true;
  for (SweepGrouping& g : groups) {
    if (g.kind() != SweepGroup::Kind::kReplay) {
      out.push_back(std::move(g));
      continue;
    }
    const std::size_t point = fused.point_configs.size();
    // Policies may differ across the fused shapes; the plan displays the
    // first one (SweepGroup::Kind::kMulti docs).
    if (point == 0) fused.policy = configs[g.members.front()].policy;
    fused.point_configs.push_back(g.members.front());
    // One capacity entry per point (duplicates allowed): for kMulti the
    // vector is plan accounting, not a deduplicated axis.
    fused.capacities.push_back(g.capacities.front());
    for (const std::size_t m : g.members) {
      fused.members.push_back(m);
      fused.member_point.push_back(point);
    }
  }
  out.push_back(std::move(fused));
  return out;
}

std::vector<SweepGrouping> group_io(
    const std::vector<IoNodeSimConfig>& configs) {
  std::vector<SweepGrouping> groups;
  std::vector<IoGroupKey> keys;
  std::vector<std::vector<std::size_t>> raw_caps;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const IoNodeSimConfig& c = configs[i];
    const IoGroupKey key{c.io_nodes, c.block_size,
                         c.compute_buffers_per_node, c.policy};
    std::size_t g = 0;
    while (g < groups.size() && !(keys[g] == key)) ++g;
    if (g == groups.size()) {
      groups.emplace_back();
      groups.back().policy = c.policy;
      keys.push_back(key);
      raw_caps.emplace_back();
    }
    groups[g].members.push_back(i);
    raw_caps[g].push_back(c.total_buffers /
                          static_cast<std::size_t>(c.io_nodes));
  }
  finish_grouping(groups, raw_caps);
  return fold_replay_singletons(std::move(groups), configs);
}

SweepPlan plan_of(const std::vector<SweepGrouping>& groups) {
  SweepPlan plan;
  plan.groups.reserve(groups.size());
  for (const SweepGrouping& g : groups) {
    plan.groups.push_back(
        {g.kind(), g.policy, g.members.size(), g.capacities.size()});
  }
  return plan;
}

}  // namespace
}  // namespace detail

ComputeCacheResult simulate_compute_cache(const trace::SortedTrace& trace,
                                          const std::set<SessionKey>& read_only,
                                          const ComputeCacheConfig& config) {
  return detail::replay_compute_cache(
      ReplayLog(detail::prepare_replay(trace, read_only)), config);
}

IoNodeSimResult simulate_io_cache(const trace::SortedTrace& trace,
                                  const std::set<SessionKey>& read_only,
                                  const IoNodeSimConfig& config) {
  return detail::replay_io_cache(
      ReplayLog(detail::prepare_replay(trace, read_only)), config);
}

// ---- Sweep plan ------------------------------------------------------------

std::size_t SweepPlan::configs() const noexcept {
  std::size_t n = 0;
  for (const SweepGroup& g : groups) n += g.configs;
  return n;
}

std::size_t SweepPlan::simulated_points() const noexcept {
  std::size_t n = 0;
  for (const SweepGroup& g : groups) n += g.simulated;
  return n;
}

std::string SweepPlan::describe() const {
  std::ostringstream s;
  s << configs() << " configs in " << passes()
    << (passes() == 1 ? " pass:" : " passes:");
  for (const SweepGroup& g : groups) {
    s << " " << to_string(g.policy) << "/" << to_string(g.kind) << "("
      << g.configs << "->" << g.simulated << ")";
  }
  return s.str();
}

SweepPlan plan_compute_sweep(const std::vector<ComputeCacheConfig>& configs) {
  return detail::plan_of(detail::group_compute(configs));
}

SweepPlan plan_io_sweep(const std::vector<IoNodeSimConfig>& configs) {
  return detail::plan_of(detail::group_io(configs));
}

// ---- SweepRunner -----------------------------------------------------------

SweepRunner::SweepRunner(const trace::SortedTrace& trace,
                         const std::set<SessionKey>& read_only)
    : log_(detail::prepare_replay(trace, read_only)) {}

SweepRunner::SweepRunner(const trace::SortedTrace& trace,
                         const std::set<SessionKey>& read_only,
                         util::ThreadPool& pool)
    : log_(detail::prepare_replay(trace, read_only)), pool_(&pool) {}

SweepRunner::SweepRunner(ReplayOpSpill ops,
                         const std::set<SessionKey>& read_only)
    : log_(std::move(ops), read_only) {}

SweepRunner::SweepRunner(ReplayOpSpill ops,
                         const std::set<SessionKey>& read_only,
                         util::ThreadPool& pool)
    : log_(std::move(ops), read_only), pool_(&pool) {}

void SweepRunner::for_each(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  } else {
    util::parallel_for(*pool_, n, body);
  }
  const util::MutexLock lock(mutex_);
  passes_executed_ += n;
}

std::size_t SweepRunner::passes_executed() const {
  const util::MutexLock lock(mutex_);
  return passes_executed_;
}

std::vector<ComputeCacheResult> SweepRunner::run_compute(
    const std::vector<ComputeCacheConfig>& configs, SweepMode mode) const {
  std::vector<ComputeCacheResult> results(configs.size());
  if (mode == SweepMode::kPerConfig) {
    // Audited: results[i] is a distinct slot per iteration.
    // NOLINTNEXTLINE(charisma-shared-capture)
    for_each(configs.size(), [&](std::size_t i) {
      results[i] = detail::replay_compute_cache(log_, configs[i]);
    });
    return results;
  }
  const auto groups = detail::group_compute(configs);
  // Results land in slots keyed by the original config index, so the output
  // order is the input order for any pool thread count.  Audited: each
  // group's members are disjoint, so the slot writes never overlap.
  // NOLINTNEXTLINE(charisma-shared-capture)
  for_each(groups.size(), [&](std::size_t g) {
    const auto& group = groups[g];
    std::vector<ComputeCacheResult> points;
    if (group.kind() == SweepGroup::Kind::kStack) {
      points = detail::stack_compute_group(
          log_, configs[group.members.front()].block_size,
          group.capacities);
    } else {
      points.push_back(detail::replay_compute_cache(
          log_, configs[group.members.front()]));
    }
    for (std::size_t m = 0; m < group.members.size(); ++m) {
      results[group.members[m]] = points[group.member_point[m]];
    }
  });
  return results;
}

std::vector<IoNodeSimResult> SweepRunner::run_io(
    const std::vector<IoNodeSimConfig>& configs, SweepMode mode) const {
  std::vector<IoNodeSimResult> results(configs.size());
  if (mode == SweepMode::kPerConfig) {
    // Audited: results[i] is a distinct slot per iteration.
    // NOLINTNEXTLINE(charisma-shared-capture)
    for_each(configs.size(), [&](std::size_t i) {
      results[i] = detail::replay_io_cache(log_, configs[i]);
    });
    return results;
  }
  const auto groups = detail::group_io(configs);
  // Audited: group members are disjoint config indices (see group_io).
  // NOLINTNEXTLINE(charisma-shared-capture)
  for_each(groups.size(), [&](std::size_t g) {
    const auto& group = groups[g];
    const IoNodeSimConfig& shape = configs[group.members.front()];
    std::vector<IoNodeSimResult> points;
    switch (group.kind()) {
      case SweepGroup::Kind::kStack:
        points = detail::stack_io_group(log_, shape, group.capacities);
        break;
      case SweepGroup::Kind::kBatched:
        // FIFO gets the shared-hash single-pass; other non-inclusive
        // policies (IP-aware eviction is stateful) step real caches.
        points = shape.policy == Policy::kFifo && group.capacities.size() <= 16
                     ? detail::fifo_io_group(log_, shape,
                                             group.capacities)
                     : detail::batched_io_group(log_, shape,
                                                group.capacities);
        break;
      case SweepGroup::Kind::kReplay:
        points.push_back(detail::replay_io_cache(log_, shape));
        break;
      case SweepGroup::Kind::kMulti: {
        std::vector<IoNodeSimConfig> shapes;
        shapes.reserve(group.point_configs.size());
        for (const std::size_t c : group.point_configs) {
          shapes.push_back(configs[c]);
        }
        points = detail::multi_io_group(log_, shapes);
        break;
      }
    }
    for (std::size_t m = 0; m < group.members.size(); ++m) {
      results[group.members[m]] = points[group.member_point[m]];
    }
  });
  return results;
}

std::string ComputeCacheResult::describe() const {
  std::ostringstream s;
  s << "reads=" << reads << " hits=" << hits << " hit_rate="
    << overall_hit_rate() << " jobs=" << job_hit_rates.size() << " zero="
    << fraction_jobs_zero << " above75=" << fraction_jobs_above_75;
  return s.str();
}

std::string IoNodeSimResult::describe() const {
  std::ostringstream s;
  s << "requests=" << requests << " hits=" << request_hits << " hit_rate="
    << hit_rate << " block_hit_rate=" << block_hit_rate;
  if (filtered_by_compute > 0) {
    s << " filtered=" << filtered_by_compute;
  }
  return s.str();
}

}  // namespace charisma::cache
