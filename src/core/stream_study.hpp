// The streaming (bounded-memory) study runner — TraceMode::kStreaming.
//
// Runs the identical simulation as run_study, but the collector spills raw
// trace blocks to disk as they flush instead of accumulating a TraceFile,
// and the postprocessing merge pushes each record — once, in corrected
// chronological order — through bounded-state sinks: the session detector,
// the request-size and I/O-rate accumulators, and the cache sweeps' replay-
// op spill.  Nothing ever holds the whole trace: peak RSS is the simulation
// itself plus the k-way merge window, independent of trace length.
//
// Every statistic is bit-identical to the materialized path because the
// sinks ARE the implementation the materialized analyzers call, the merge
// uses the same ordering key as trace::postprocess, and the spilled bytes
// are the same encoding TraceFile::write emits (so the digest matches too —
// the streaming differential test holds both modes to one digest).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/analyzers.hpp"
#include "analysis/iorate.hpp"
#include "analysis/session.hpp"
#include "cache/replay.hpp"
#include "core/study.hpp"

namespace charisma::core {

struct StreamOptions {
  /// Directory for the two spills (raw trace blocks, replay ops).  Non-empty
  /// overrides StudyConfig::spill_dir; empty defers to it (and then to
  /// $TMPDIR, falling back to /tmp).
  std::string spill_dir;
  /// Spill the cache sweeps' replay ops during the merge.  Off skips the op
  /// spill entirely (pure-characterization runs that never simulate caches).
  bool collect_replay_ops = true;
  /// Forwarded to the session detector (sharing analysis needs it).
  bool track_coverage = true;
  /// Run the request-size and I/O-rate accumulators during the merge.  Off
  /// skips them (and leaves the result fields empty) for callers that only
  /// need sessions + replay ops — the materialized study never computes
  /// them, so perf_study turns this off to keep the mode comparison fair.
  bool collect_rate_figures = true;
  /// Write overflow trace blocks from a background writer thread (bounded
  /// queue), so the simulation never blocks on write(2).  Bit-identical
  /// bytes either way; only the timing attribution moves.
  bool async_spill = true;
  /// Background-prefetch the merge's next disk block per node cursor.
  bool prefetch = true;
  /// Memory-tier budget override in MiB; negative defers to
  /// StudyConfig::spill_budget_mb.  0 forces the all-disk behavior.
  std::int64_t spill_budget_mb = -1;
};

/// Host-side spill/merge measurements of one streamed study — the streaming
/// tax, itemized.  All host milliseconds (never simulated time).
struct SpillTelemetry {
  /// Blocked in write(2): trace spill (synchronous mode) plus replay-op
  /// overflow frames.  In async mode the trace writer's (overlapped) thread
  /// time still lands here; append_stall_ms is what the simulation paid.
  double spill_write_ms = 0.0;
  /// Blocked reading spilled data back: the merge's synchronous block loads
  /// and prefetch waits.  The digest pass is timed separately (digest_ms)
  /// so both trace modes can report it as its own stage.
  double spill_read_ms = 0.0;
  /// The FNV fold over the full trace payload (both tiers).  The
  /// materialized mode pays the same pass over its TraceFile; perf_study
  /// times it there too, so the modes' study stages stay comparable.
  double digest_ms = 0.0;
  /// Pushing merged record batches through the sinks.
  double sink_ms = 0.0;
  /// Host ms append() waited on the async writer's bounded queue.
  double append_stall_ms = 0.0;
  std::int64_t spill_bytes_written = 0;
  std::int64_t spill_bytes_read = 0;
  std::uint64_t trace_blocks_in_memory = 0;
  std::uint64_t trace_blocks_on_disk = 0;
  std::uint64_t ops_chunks_in_memory = 0;
  std::uint64_t ops_chunks_on_disk = 0;
  std::int64_t spill_budget_mb = 0;  ///< the budget the run actually used
};

/// What the streaming study keeps resident: headline counters, the
/// accumulators' finished results, and the on-disk replay-op spill — never
/// the trace.
struct StreamedStudyOutput {
  trace::TraceHeader header;
  /// TraceFile::digest()-compatible digest of the spilled raw trace.
  std::uint64_t trace_digest = 0;
  /// Records pushed through the postprocessing merge (== records).
  std::uint64_t streamed_records = 0;

  analysis::SessionStore sessions;
  /// Default-constructed (empty) when collect_rate_figures was off.
  analysis::RequestSizeResult request_sizes;
  analysis::IoRateResult io_rate;
  /// Unresolved-flag replay ops for SweepRunner; empty when
  /// StreamOptions::collect_replay_ops was off.  Pair it with
  /// sessions.read_only_sessions().
  cache::ReplayOpSpill replay_ops;

  std::vector<workload::JobResult> jobs;
  workload::GeneratedWorkload workload;

  // Perturbation accounting — field-for-field the StudyOutput counters.
  std::uint64_t records = 0;
  std::uint64_t collector_messages = 0;
  std::int64_t trace_bytes = 0;
  std::int64_t user_bytes_moved = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t events_dispatched = 0;
  util::MicroSec sim_end = 0;
  int engine_threads = 1;
  sim::ShardStats shard_stats;

  /// Spill/merge host-time and tier telemetry for this run.
  SpillTelemetry spill;
};

/// Runs the full study in streaming mode.  Deterministic in `config`; the
/// spill files are private, uniquely named, and deleted before returning
/// (except the replay-op spill, which the output owns).
[[nodiscard]] StreamedStudyOutput run_streamed_study(
    const StudyConfig& config, const StreamOptions& options = {});

/// Unique spill-file path in `dir` (or the temp directory when empty):
/// pid + process-wide counter, so concurrent campaign workers and
/// concurrent CI processes never collide.
[[nodiscard]] std::string spill_file_path(const std::string& dir,
                                          const char* tag);

}  // namespace charisma::core
