// Figure 7: byte- and block-level sharing between nodes in concurrently
// opened files.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result = analysis::analyze_sharing(
      Context::instance().store(),
      Context::instance().study().raw.header.block_size);
  std::printf("%s\n", result.render().c_str());

  Comparison cmp("Figure 7: sharing");
  cmp.percent_row("read-only files 100% byte-shared",
                  analysis::paper::kReadOnlyFullyByteShared,
                  result.read_only.fully_byte_shared);
  cmp.percent_row("write-only files with no bytes shared",
                  analysis::paper::kWriteOnlyNoBytesShared,
                  result.write_only.no_bytes_shared);
  cmp.percent_row("read-write files 100% byte-shared",
                  analysis::paper::kReadWriteFullyByteShared,
                  result.read_write.fully_byte_shared);
  cmp.percent_row("read-write files 100% block-shared",
                  analysis::paper::kReadWriteFullyBlockShared,
                  result.read_write.fully_block_shared);
  cmp.row("implication", "strong interprocess spatial locality",
          util::fmt(result.read_only.fully_block_shared * 100.0) +
              "% of shared RO files 100% block-shared");
  cmp.print();
}

void BM_SharingAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  const auto bs = Context::instance().study().raw.header.block_size;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_sharing(store, bs));
  }
}
BENCHMARK(BM_SharingAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 7 (file sharing)", charisma::bench::reproduce)
