file(REMOVE_RECURSE
  "libcharisma_core.a"
)
