// Cache tuning: replay one trace through the trace-driven cache simulators
// at many design points and print the resulting design-space table — the
// workflow a file-system designer would use this library for.
//
//   cache_tuning [--scale=0.1] [--seed=42]
#include <cstdio>

#include "analysis/session.hpp"
#include "cache/simulators.hpp"
#include "core/study.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace charisma;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"scale", "seed"});
  const double scale = flags.get_double("scale", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::printf("generating trace at scale %.2f...\n", scale);
  const auto study = core::run_study_at_scale(scale, seed);
  const analysis::SessionStore store(study.sorted, /*track_coverage=*/false);
  const auto read_only = store.read_only_sessions();

  // Sweep the I/O-node cache design space; each cell is an independent
  // replay, so the sweep parallelizes across the pool.
  const std::vector<std::size_t> sizes = {250, 1000, 4000, 16000};
  const std::vector<cache::Policy> policies = {
      cache::Policy::kLru, cache::Policy::kFifo,
      cache::Policy::kInterprocessAware};
  std::vector<double> hit(sizes.size() * policies.size());
  util::ThreadPool pool;
  // Audited: each design point writes only its own hit[i] slot.
  // NOLINTNEXTLINE(charisma-shared-capture)
  util::parallel_for(pool, hit.size(), [&](std::size_t i) {
    cache::IoNodeSimConfig cfg;
    cfg.total_buffers = sizes[i % sizes.size()];
    cfg.policy = policies[i / sizes.size()];
    cfg.io_nodes = 10;
    hit[i] = cache::simulate_io_cache(study.sorted, read_only, cfg).hit_rate;
  });

  util::Table t({"policy", "250 buf", "1000 buf", "4000 buf", "16000 buf"});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> row{to_string(policies[p])};
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      row.push_back(util::fmt(hit[p * sizes.size() + s] * 100.0) + "%");
    }
    t.add_row(std::move(row));
  }
  std::printf("\nI/O-node cache hit rate by design point:\n%s\n",
              t.render().c_str());

  // And the compute-node side: is one buffer really enough?
  util::Table c({"buffers per node", "jobs at 0%", "jobs > 75%",
                 "overall hit rate"});
  for (std::size_t buffers : {1u, 4u, 50u}) {
    cache::ComputeCacheConfig cfg;
    cfg.buffers_per_node = buffers;
    const auto r =
        cache::simulate_compute_cache(study.sorted, read_only, cfg);
    c.add_row({std::to_string(buffers),
               util::fmt(r.fraction_jobs_zero * 100.0) + "%",
               util::fmt(r.fraction_jobs_above_75 * 100.0) + "%",
               util::fmt(r.overall_hit_rate() * 100.0) + "%"});
  }
  std::printf("compute-node cache (read-only files, LRU):\n%s\n",
              c.render().c_str());
  std::printf(
      "reading: if the per-node rows barely differ, the paper's \"a single "
      "one-block buffer per compute node may be useful\" holds here too.\n");
  return 0;
}
