file(REMOVE_RECURSE
  "CMakeFiles/strided_io.dir/strided_io.cpp.o"
  "CMakeFiles/strided_io.dir/strided_io.cpp.o.d"
  "strided_io"
  "strided_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strided_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
