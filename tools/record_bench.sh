#!/usr/bin/env bash
# Builds the Release tree and records an end-to-end perf study into
# BENCH_study.json at the repository root.  The file holds the measured
# stage timings for the default (bucketed-queue, grouped-sweep) engine, the
# same run under the reference heap queue, the same run with the reference
# per-config sweep mode, the same run at 2 and 4 engine threads (the sharded
# conservative-window engine — digest-identical, so only the timings move),
# the same run with the materialized (in-memory reference) trace mode, a
# scale-1.0 pair in both trace modes (the streaming pipeline's bounded-RSS
# claim, measured: peak_rss_kb at scale 1.0 streaming must stay within 2x of
# the scale-0.2 materialized entry, plus the spill tier/stage telemetry —
# spill_bytes_written/read and the spill_write/spill_read/sink stage times),
# and — when a pre-change baseline file is passed — the end-to-end speedup
# against it, so perf regressions show up as diffs.
#
# Usage: tools/record_bench.sh [scale] [threads] [baseline.json] [reps]
#   scale          workload scale (default 0.2)
#   threads        sweep worker threads (default 0 = hardware concurrency)
#   baseline.json  optional perf_study JSON from the pre-change tree; embedded
#                  verbatim and used for the end-to-end speedup figure.  For a
#                  fair comparison, record it the same way: best of `reps`
#                  runs of the pre-change perf_study.
#   reps           perf_study repetitions per queue; the run with the lowest
#                  total is kept (default 3 — shared hosts show double-digit
#                  wall-clock noise, and the minimum is the run with the
#                  least interference)
#
# Requires jq (present in CI and the dev images).
set -euo pipefail

cd "$(dirname "$0")/.."
SCALE="${1:-0.2}"
THREADS="${2:-0}"
BASELINE="${3:-}"
REPS="${4:-3}"
BUILD=build-perf

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j "$(nproc)" --target perf_study charisma_campaign > /dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_case_at() { # label scale reps queue sweep-mode [extra perf_study flags...]
                # -> $TMP/<label>.json (best of reps by total)
  local label="$1" scale="$2" reps="$3" queue="$4" sweep="$5"
  shift 5
  echo "[record_bench] measuring $label ($queue queue, $sweep sweep, scale=$scale threads=$THREADS, best of $reps)..."
  local best=""
  for rep in $(seq 1 "$reps"); do
    "$BUILD/bench/perf_study" --scale="$scale" --threads="$THREADS" \
        --queue="$queue" --sweep-mode="$sweep" "$@" \
        --out="$TMP/$label.rep$rep.json" > /dev/null 2> /dev/null
    local total
    total="$(jq '.stages_ms.total' "$TMP/$label.rep$rep.json")"
    echo "[record_bench]   rep $rep: total ${total} ms"
    if [ -z "$best" ] || \
       jq -e --argjson t "$total" '.stages_ms.total > $t' "$TMP/$label.json" \
           > /dev/null; then
      best="$rep"
      cp "$TMP/$label.rep$rep.json" "$TMP/$label.json"
    fi
  done
}

run_case() { # label queue sweep-mode [extra perf_study flags...]
  local label="$1" queue="$2" sweep="$3"
  shift 3
  run_case_at "$label" "$SCALE" "$REPS" "$queue" "$sweep" "$@"
}

run_case bucketed bucketed grouped
run_case reference reference grouped
run_case per_config_sweep bucketed per-config
# Engine-thread scaling: the sharded (conservative-window) engine at 2 and 4
# shards.  Digest-identical to serial by contract; on a 1-core host the study
# stage records the protocol's overhead rather than a speedup — judge the
# entries together with host.cores.
run_case engine_threads_2 bucketed grouped --engine-threads=2
run_case engine_threads_4 bucketed grouped --engine-threads=4
# Trace-mode cross-check at the default scale: the materialized (in-memory
# reference) pipeline, digest-identical to the streaming default.
run_case materialized_trace bucketed grouped --trace-mode=materialized
# The bounded-RSS headline: scale 1.0 in both trace modes.  Two reps each
# (minutes per rep): RSS — the primary figure of merit — does not jitter,
# but the study-stage wall ratio recorded below does, so take the best run
# like the scale-0.2 cases do.  Streaming peak RSS must stay within 2x of
# the scale-0.2 materialized entry; the ratio lands in scale_1.0.rss below.
run_case_at scale1_streaming 1.0 2 bucketed grouped --trace-mode=streaming
run_case_at scale1_materialized 1.0 2 bucketed grouped --trace-mode=materialized

# Campaign throughput: two seed replications at the same scale, fanned over
# the requested worker threads (0 = hardware concurrency).
echo "[record_bench] measuring campaign throughput (2 seeds, threads=$THREADS)..."
CAMPAIGN_LINE="$("$BUILD/tools/charisma_campaign" --seeds=42,43 \
    --scales="$SCALE" --threads="$THREADS" | grep '^campaign: ')"
echo "[record_bench] $CAMPAIGN_LINE"
# "campaign: N studies, T threads, W s wall, R studies/min"
read -r CAMPAIGN_STUDIES CAMPAIGN_THREADS CAMPAIGN_WALL CAMPAIGN_RATE <<EOF
$(echo "$CAMPAIGN_LINE" | sed -E 's/^campaign: ([0-9]+) studies, ([0-9]+) threads, ([0-9.]+) s wall, ([0-9.]+) studies\/min$/\1 \2 \3 \4/')
EOF

if [ -n "$BASELINE" ]; then
  cp "$BASELINE" "$TMP/baseline.json"
else
  echo 'null' > "$TMP/baseline.json"
fi

jq -n \
  --slurpfile cur "$TMP/bucketed.json" \
  --slurpfile ref "$TMP/reference.json" \
  --slurpfile sweep_ref "$TMP/per_config_sweep.json" \
  --slurpfile eng2 "$TMP/engine_threads_2.json" \
  --slurpfile eng4 "$TMP/engine_threads_4.json" \
  --slurpfile mat "$TMP/materialized_trace.json" \
  --slurpfile s1str "$TMP/scale1_streaming.json" \
  --slurpfile s1mat "$TMP/scale1_materialized.json" \
  --slurpfile base "$TMP/baseline.json" \
  --arg kernel "$(uname -sr)" \
  --arg recorded "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --argjson cores "$(nproc)" \
  --argjson campaign_studies "$CAMPAIGN_STUDIES" \
  --argjson campaign_threads "$CAMPAIGN_THREADS" \
  --argjson campaign_wall_s "$CAMPAIGN_WALL" \
  --argjson campaign_rate "$CAMPAIGN_RATE" \
  '{
     recorded_utc: $recorded,
     host: {kernel: $kernel, cores: $cores},
     current: $cur[0],
     reference_queue: $ref[0],
     per_config_sweep: $sweep_ref[0],
     engine_threads_2: $eng2[0],
     engine_threads_4: $eng4[0],
     materialized_trace: $mat[0],
     "scale_1.0": {
       streaming: $s1str[0],
       materialized: $s1mat[0],
       rss: {
         streaming_peak_rss_kb: $s1str[0].peak_rss_kb,
         materialized_peak_rss_kb: $s1mat[0].peak_rss_kb,
         streaming_vs_materialized:
           ($s1str[0].peak_rss_kb / $s1mat[0].peak_rss_kb),
         streaming_vs_scale02_materialized:
           ($s1str[0].peak_rss_kb / $mat[0].peak_rss_kb)
       },
       study_stage_streaming_vs_materialized:
         ($s1str[0].stages_ms.study / $s1mat[0].stages_ms.study),
       spill: {
         budget_mb: $s1str[0].spill_budget_mb,
         bytes_written: $s1str[0].spill_bytes_written,
         bytes_read: $s1str[0].spill_bytes_read,
         blocks_mem: $s1str[0].spill_blocks_mem,
         blocks_disk: $s1str[0].spill_blocks_disk,
         write_ms: $s1str[0].stages_ms.spill_write,
         read_ms: $s1str[0].stages_ms.spill_read,
         digest_ms: $s1str[0].stages_ms.digest,
         stall_ms: $s1str[0].stages_ms.spill_stall
       }
     },
     baseline_pre_change: $base[0],
     campaign: {
       studies: $campaign_studies,
       threads: $campaign_threads,
       wall_seconds: $campaign_wall_s,
       studies_per_minute: $campaign_rate
     },
     speedup: {
       study_stage_vs_reference_queue:
         ($ref[0].stages_ms.study / $cur[0].stages_ms.study),
       end_to_end_vs_reference_queue:
         ($ref[0].stages_ms.total / $cur[0].stages_ms.total),
       sweep_grouped_vs_per_config:
         ($sweep_ref[0].stages_ms.sweep / $cur[0].stages_ms.sweep),
       study_stage_engine_threads_2_vs_serial:
         ($cur[0].stages_ms.study / $eng2[0].stages_ms.study),
       study_stage_engine_threads_4_vs_serial:
         ($cur[0].stages_ms.study / $eng4[0].stages_ms.study),
       end_to_end_streaming_vs_materialized:
         ($mat[0].stages_ms.total / $cur[0].stages_ms.total),
       peak_rss_streaming_vs_materialized:
         ($cur[0].peak_rss_kb / $mat[0].peak_rss_kb),
       end_to_end_vs_baseline:
         (if $base[0] == null then null
          else $base[0].stages_ms.total / $cur[0].stages_ms.total end),
       sweep_stage_vs_baseline:
         (if $base[0] == null then null
          else $base[0].stages_ms.sweep / $cur[0].stages_ms.sweep end)
     }
   }' > BENCH_study.json

echo "[record_bench] wrote BENCH_study.json:"
cat BENCH_study.json
