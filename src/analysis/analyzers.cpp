#include "analysis/analyzers.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/table.hpp"
#include "util/units.hpp"

namespace charisma::analysis {

using util::Cdf;
using util::fmt;
using util::Histogram;
using util::Table;

// ---- Figure 1 -------------------------------------------------------------

JobConcurrencyResult analyze_job_concurrency(const SessionStore& store) {
  JobConcurrencyResult out;
  const auto& events = store.job_events();
  const util::MicroSec t0 = store.trace_start();
  util::MicroSec t_end = store.trace_end();
  for (const auto& e : events) t_end = std::max(t_end, e.time);
  out.observed_period = t_end - t0;
  if (out.observed_period <= 0) return out;

  std::map<int, util::MicroSec> time_at_level;
  int level = 0;
  util::MicroSec last = t0;
  for (const auto& e : events) {  // already chronological
    time_at_level[level] += std::max<util::MicroSec>(e.time - last, 0);
    last = std::max(last, e.time);
    level += e.start ? 1 : -1;
    out.max_concurrent = std::max(out.max_concurrent, level);
  }
  time_at_level[level] += std::max<util::MicroSec>(t_end - last, 0);

  const int top = std::max(out.max_concurrent, 8);
  out.time_fraction.assign(static_cast<std::size_t>(top) + 1, 0.0);
  const auto period = static_cast<double>(out.observed_period);
  for (const auto& [k, t] : time_at_level) {
    const auto bin = static_cast<std::size_t>(std::min(k, top));
    out.time_fraction[bin] += static_cast<double>(t) / period;
  }
  out.idle_fraction = out.time_fraction[0];
  for (std::size_t k = 2; k < out.time_fraction.size(); ++k) {
    out.multiprogrammed_fraction += out.time_fraction[k];
  }
  return out;
}

std::string JobConcurrencyResult::render() const {
  Table t({"jobs running", "% of traced time"});
  for (std::size_t k = 0; k < time_fraction.size(); ++k) {
    t.add_row({std::to_string(k), fmt(time_fraction[k] * 100.0)});
  }
  std::ostringstream out;
  out << t.render();
  out << "idle " << fmt(idle_fraction * 100.0) << "%, multiprogrammed "
      << fmt(multiprogrammed_fraction * 100.0) << "%, max "
      << max_concurrent << " concurrent jobs over "
      << util::format_duration(observed_period) << "\n";
  return out.str();
}

// ---- Figure 2 -------------------------------------------------------------

NodeCountResult analyze_node_counts(const SessionStore& store) {
  NodeCountResult out;
  std::map<cfs::JobId, std::pair<util::MicroSec, std::int32_t>> started;
  double total_node_seconds = 0.0;
  for (const auto& e : store.job_events()) {
    if (e.start) {
      ++out.jobs_by_nodes[e.nodes];
      ++out.total_jobs;
      started[e.job] = {e.time, e.nodes};
      continue;
    }
    const auto it = started.find(e.job);
    if (it == started.end()) continue;
    const double node_sec = static_cast<double>(e.time - it->second.first) /
                            util::kSecond * it->second.second;
    out.node_seconds_by_nodes[it->second.second] += node_sec;
    total_node_seconds += node_sec;
    started.erase(it);
  }
  if (out.total_jobs > 0) {
    out.single_node_job_fraction =
        static_cast<double>(out.jobs_by_nodes.count(1) ? out.jobs_by_nodes.at(1)
                                                       : 0) /
        static_cast<double>(out.total_jobs);
  }
  if (total_node_seconds > 0.0) {
    double large = 0.0;
    for (const auto& [nodes, ns] : out.node_seconds_by_nodes) {
      if (nodes >= 32) large += ns;
    }
    out.large_job_usage_share = large / total_node_seconds;
  }
  return out;
}

std::string NodeCountResult::render() const {
  Table t({"compute nodes", "jobs", "% of jobs", "% of node-time"});
  double total_ns = 0.0;
  for (const auto& [n, ns] : node_seconds_by_nodes) total_ns += ns;
  for (const auto& [n, count] : jobs_by_nodes) {
    const auto it = node_seconds_by_nodes.find(n);
    const double ns = it == node_seconds_by_nodes.end() ? 0.0 : it->second;
    t.add_row({std::to_string(n), std::to_string(count),
               fmt(100.0 * static_cast<double>(count) /
                   static_cast<double>(std::max<std::int64_t>(total_jobs, 1))),
               fmt(total_ns > 0 ? 100.0 * ns / total_ns : 0.0)});
  }
  std::ostringstream out;
  out << t.render();
  out << "single-node jobs: " << fmt(single_node_job_fraction * 100.0)
      << "% of jobs; jobs with >=32 nodes used "
      << fmt(large_job_usage_share * 100.0) << "% of node-time\n";
  return out.str();
}

// ---- Figure 3 -------------------------------------------------------------

FileSizeResult analyze_file_sizes(const SessionStore& store) {
  FileSizeResult out;
  Histogram h;
  for (const auto& s : store.sessions()) {
    if (s.total_opens == 0) continue;
    h.add(s.size_at_close);
    ++out.files;
  }
  out.cdf = Cdf(h);
  out.fraction_between_10k_1m =
      out.cdf.at(1e6) - out.cdf.at(1e4);
  out.median = static_cast<std::int64_t>(out.cdf.quantile(0.5));
  return out;
}

std::string FileSizeResult::render() const {
  Table t({"file size <=", "CDF"});
  for (double x : {1e2, 1e3, 1e4, 2.5e4, 1e5, 2.5e5, 1e6, 1e7}) {
    t.add_row({util::format_bytes(static_cast<std::int64_t>(x)),
               fmt(cdf.at(x), 3)});
  }
  std::ostringstream out;
  out << t.render();
  out << files << " files; median " << util::format_bytes(median) << "; "
      << fmt(fraction_between_10k_1m * 100.0) << "% between 10 KB and 1 MB\n";
  return out.str();
}

// ---- Figure 4 -------------------------------------------------------------

void RequestSizeAccumulator::on_record(const Record& r) {
  if (r.kind == EventKind::kRead) {
    read_count_.add(r.bytes);
    read_bytes_.add(r.bytes, static_cast<double>(r.bytes));
    ++out_.read_requests;
    out_.bytes_read += r.bytes;
  } else if (r.kind == EventKind::kWrite) {
    write_count_.add(r.bytes);
    write_bytes_.add(r.bytes, static_cast<double>(r.bytes));
    ++out_.write_requests;
    out_.bytes_written += r.bytes;
  }
}

RequestSizeResult RequestSizeAccumulator::finish() {
  constexpr std::int64_t kSmall = 4000;
  out_.small_read_fraction = read_count_.fraction_at_or_below(kSmall - 1);
  out_.small_read_data_fraction = read_bytes_.fraction_at_or_below(kSmall - 1);
  out_.small_write_fraction = write_count_.fraction_at_or_below(kSmall - 1);
  out_.small_write_data_fraction =
      write_bytes_.fraction_at_or_below(kSmall - 1);
  out_.reads_by_count = Cdf(read_count_);
  out_.reads_by_bytes = Cdf(read_bytes_);
  out_.writes_by_count = Cdf(write_count_);
  out_.writes_by_bytes = Cdf(write_bytes_);
  return std::move(out_);
}

RequestSizeResult analyze_request_sizes(const trace::SortedTrace& trace) {
  // Reference wrapper over the streaming accumulator: one code path for
  // both trace modes.
  RequestSizeAccumulator acc;
  for (const auto& r : trace.records) acc.on_record(r);
  return acc.finish();
}

std::string RequestSizeResult::render() const {
  Table t({"request size <=", "reads CDF", "read-bytes CDF", "writes CDF",
           "write-bytes CDF"});
  for (double x : {1e2, 4e2, 1e3, 4e3, 1.6e4, 6.4e4, 2.56e5, 1e6, 4e6}) {
    t.add_row({util::format_bytes(static_cast<std::int64_t>(x)),
               fmt(reads_by_count.at(x), 3), fmt(reads_by_bytes.at(x), 3),
               fmt(writes_by_count.at(x), 3), fmt(writes_by_bytes.at(x), 3)});
  }
  std::ostringstream out;
  out << t.render();
  out << read_requests << " reads (" << util::format_bytes(bytes_read)
      << "), " << write_requests << " writes ("
      << util::format_bytes(bytes_written) << ")\n";
  out << "reads <4000B: " << fmt(small_read_fraction * 100.0)
      << "% of requests moving " << fmt(small_read_data_fraction * 100.0)
      << "% of data; writes <4000B: " << fmt(small_write_fraction * 100.0)
      << "% moving " << fmt(small_write_data_fraction * 100.0) << "%\n";
  return out.str();
}

// ---- Figures 5/6 -----------------------------------------------------------

namespace {

template <typename Fraction>
void fill_class(const SessionStore& store, AccessClass cls,
                SequentialityResult::PerClass& out, Fraction fraction,
                util::Cdf SequentialityResult::PerClass::* which_cdf,
                double SequentialityResult::PerClass::* full,
                double SequentialityResult::PerClass::* zero) {
  std::vector<double> fractions;
  for (const auto& s : store.sessions()) {
    if (s.access_class() != cls) continue;
    std::uint64_t total = 0, good = 0, requests = 0;
    for (const auto& [node, ns] : s.per_node) {
      requests += ns.requests;
      if (ns.requests > 1) {
        total += ns.requests - 1;
        good += fraction(ns);
      }
    }
    if (requests < 2 || total == 0) continue;  // single-request files excluded
    fractions.push_back(static_cast<double>(good) /
                        static_cast<double>(total));
  }
  out.files = static_cast<std::int64_t>(fractions.size());
  double at_one = 0, at_zero = 0;
  for (double f : fractions) {
    if (f >= 1.0) ++at_one;
    if (f <= 0.0) ++at_zero;
  }
  if (!fractions.empty()) {
    (out.*full) = at_one / static_cast<double>(fractions.size());
    (out.*zero) = at_zero / static_cast<double>(fractions.size());
  }
  (out.*which_cdf) = util::Cdf::from_samples(std::move(fractions));
}

void fill_both(const SessionStore& store, AccessClass cls,
               SequentialityResult::PerClass& out) {
  fill_class(
      store, cls, out,
      [](const NodeAccessStats& ns) { return ns.sequential; },
      &SequentialityResult::PerClass::sequential_cdf,
      &SequentialityResult::PerClass::fully_sequential,
      &SequentialityResult::PerClass::zero_sequential);
  fill_class(
      store, cls, out,
      [](const NodeAccessStats& ns) { return ns.consecutive; },
      &SequentialityResult::PerClass::consecutive_cdf,
      &SequentialityResult::PerClass::fully_consecutive,
      &SequentialityResult::PerClass::zero_consecutive);
}

}  // namespace

SequentialityResult analyze_sequentiality(const SessionStore& store) {
  SequentialityResult out;
  fill_both(store, AccessClass::kReadOnly, out.read_only);
  fill_both(store, AccessClass::kWriteOnly, out.write_only);
  fill_both(store, AccessClass::kReadWrite, out.read_write);
  return out;
}

std::string SequentialityResult::render() const {
  Table t({"class", "files", "100% seq", "0% seq", "100% consec",
           "0% consec"});
  const auto row = [&](const char* name, const PerClass& c) {
    t.add_row({name, std::to_string(c.files),
               fmt(c.fully_sequential * 100.0), fmt(c.zero_sequential * 100.0),
               fmt(c.fully_consecutive * 100.0),
               fmt(c.zero_consecutive * 100.0)});
  };
  row("read-only", read_only);
  row("write-only", write_only);
  row("read-write", read_write);
  return t.render();
}

// ---- Figure 7 --------------------------------------------------------------

SharingResult analyze_sharing(const SessionStore& store,
                              std::int64_t block_size) {
  SharingResult out;
  std::vector<double> byte_fracs[3], block_fracs[3];
  for (const auto& s : store.sessions()) {
    if (s.max_concurrent_opens < 2) continue;
    const AccessClass cls = s.access_class();
    int idx;
    switch (cls) {
      case AccessClass::kReadOnly: idx = 0; break;
      case AccessClass::kWriteOnly: idx = 1; break;
      case AccessClass::kReadWrite: idx = 2; break;
      default: continue;
    }
    std::vector<const std::vector<ByteRange>*> covs;
    for (const auto& [node, ns] : s.per_node) {
      if (!ns.coverage.empty()) covs.push_back(&ns.coverage);
    }
    if (covs.size() < 2) continue;
    const std::int64_t any = bytes_covered_by_at_least(covs, 1);
    if (any == 0) continue;
    const std::int64_t shared = bytes_covered_by_at_least(covs, 2);
    byte_fracs[idx].push_back(static_cast<double>(shared) /
                              static_cast<double>(any));

    // Block granularity: round every range out to block boundaries.
    std::vector<std::vector<ByteRange>> block_cov(covs.size());
    for (std::size_t i = 0; i < covs.size(); ++i) {
      for (const auto& r : *covs[i]) {
        merge_range(block_cov[i], {r.begin / block_size,
                                   (r.end + block_size - 1) / block_size});
      }
    }
    std::vector<const std::vector<ByteRange>*> bc;
    bc.reserve(block_cov.size());
    for (const auto& c : block_cov) bc.push_back(&c);
    const std::int64_t any_b = bytes_covered_by_at_least(bc, 1);
    const std::int64_t shared_b = bytes_covered_by_at_least(bc, 2);
    block_fracs[idx].push_back(
        any_b > 0 ? static_cast<double>(shared_b) / static_cast<double>(any_b)
                  : 0.0);
  }

  const auto fill = [](SharingResult::PerClass& c, std::vector<double> bytes,
                       std::vector<double> blocks) {
    c.files = static_cast<std::int64_t>(bytes.size());
    if (!bytes.empty()) {
      double full = 0, none = 0, full_b = 0;
      for (double f : bytes) {
        if (f >= 1.0 - 1e-9) ++full;
        if (f <= 1e-9) ++none;
      }
      for (double f : blocks) {
        if (f >= 1.0 - 1e-9) ++full_b;
      }
      c.fully_byte_shared = full / static_cast<double>(bytes.size());
      c.no_bytes_shared = none / static_cast<double>(bytes.size());
      c.fully_block_shared =
          blocks.empty() ? 0.0 : full_b / static_cast<double>(blocks.size());
    }
    c.byte_shared_cdf = util::Cdf::from_samples(std::move(bytes));
    c.block_shared_cdf = util::Cdf::from_samples(std::move(blocks));
  };
  fill(out.read_only, std::move(byte_fracs[0]), std::move(block_fracs[0]));
  fill(out.write_only, std::move(byte_fracs[1]), std::move(block_fracs[1]));
  fill(out.read_write, std::move(byte_fracs[2]), std::move(block_fracs[2]));
  return out;
}

std::string SharingResult::render() const {
  Table t({"class", "files", "100% byte-shared", "0% byte-shared",
           "100% block-shared"});
  const auto row = [&](const char* name, const PerClass& c) {
    t.add_row({name, std::to_string(c.files), fmt(c.fully_byte_shared * 100.0),
               fmt(c.no_bytes_shared * 100.0),
               fmt(c.fully_block_shared * 100.0)});
  };
  row("read-only", read_only);
  row("write-only", write_only);
  row("read-write", read_write);
  return t.render();
}

// ---- Table 1 ----------------------------------------------------------------

FilesPerJobResult analyze_files_per_job(const SessionStore& store) {
  FilesPerJobResult out;
  std::map<cfs::JobId, std::int64_t> files;
  for (const auto& s : store.sessions()) {
    if (s.job < 0) continue;
    ++files[s.job];
  }
  out.traced_jobs_with_files = static_cast<std::int64_t>(files.size());
  for (const auto& [job, n] : files) {
    out.max_files_one_job = std::max(out.max_files_one_job, n);
    ++out.buckets[static_cast<std::size_t>(std::min<std::int64_t>(n, 5) - 1)];
  }
  return out;
}

std::string FilesPerJobResult::render() const {
  Table t({"files opened", "jobs"});
  static constexpr const char* kNames[] = {"1", "2", "3", "4", "5+"};
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    t.add_row({kNames[i], std::to_string(buckets[i])});
  }
  std::ostringstream out;
  out << t.render();
  out << traced_jobs_with_files << " traced jobs opened files; max "
      << max_files_one_job << " files in one job\n";
  return out.str();
}

// ---- Table 2 ------------------------------------------------------------------

IntervalResult analyze_intervals(const SessionStore& store) {
  IntervalResult out;
  std::int64_t one_interval = 0, one_interval_zero = 0;
  for (const auto& s : store.sessions()) {
    if (s.total_opens == 0) continue;
    if (s.access_class() == AccessClass::kUntouched) continue;
    ++out.total_files;
    const auto n = s.interval_sizes.size();
    ++out.buckets[std::min<std::size_t>(n, 4)];
    if (n == 1) {
      ++one_interval;
      if (*s.interval_sizes.begin() == 0) ++one_interval_zero;
    }
  }
  if (one_interval > 0) {
    out.one_interval_consecutive_share =
        static_cast<double>(one_interval_zero) /
        static_cast<double>(one_interval);
  }
  return out;
}

std::string IntervalResult::render() const {
  Table t({"distinct intervals", "files", "% of files"});
  static constexpr const char* kNames[] = {"0", "1", "2", "3", "4+"};
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    t.add_row({kNames[i], std::to_string(buckets[i]),
               fmt(total_files > 0 ? 100.0 * static_cast<double>(buckets[i]) /
                                         static_cast<double>(total_files)
                                   : 0.0)});
  }
  std::ostringstream out;
  out << t.render();
  out << fmt(one_interval_consecutive_share * 100.0)
      << "% of 1-interval files were consecutive (interval 0)\n";
  return out.str();
}

// ---- Table 3 -------------------------------------------------------------------

RequestRegularityResult analyze_request_regularity(const SessionStore& store) {
  RequestRegularityResult out;
  for (const auto& s : store.sessions()) {
    if (s.total_opens == 0) continue;
    ++out.total_files;
    ++out.buckets[std::min<std::size_t>(s.request_sizes.size(), 4)];
  }
  if (out.total_files > 0) {
    out.one_or_two_sizes_share =
        static_cast<double>(out.buckets[1] + out.buckets[2]) /
        static_cast<double>(out.total_files);
  }
  return out;
}

std::string RequestRegularityResult::render() const {
  Table t({"distinct request sizes", "files", "% of files"});
  static constexpr const char* kNames[] = {"0", "1", "2", "3", "4+"};
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    t.add_row({kNames[i], std::to_string(buckets[i]),
               fmt(total_files > 0 ? 100.0 * static_cast<double>(buckets[i]) /
                                         static_cast<double>(total_files)
                                   : 0.0)});
  }
  std::ostringstream out;
  out << t.render();
  out << fmt(one_or_two_sizes_share * 100.0)
      << "% of files used only one or two request sizes\n";
  return out.str();
}

// ---- §4.2 -----------------------------------------------------------------------

FilePopulationResult analyze_file_population(const SessionStore& store) {
  FilePopulationResult out;
  double read_bytes = 0, write_bytes = 0;
  for (const auto& s : store.sessions()) {
    if (s.total_opens == 0) continue;
    ++out.sessions;
    switch (s.access_class()) {
      case AccessClass::kReadOnly:
        ++out.read_only;
        read_bytes += static_cast<double>(s.bytes_read);
        break;
      case AccessClass::kWriteOnly:
        ++out.write_only;
        write_bytes += static_cast<double>(s.bytes_written);
        break;
      case AccessClass::kReadWrite:
        ++out.read_write;
        read_bytes += static_cast<double>(s.bytes_read);
        write_bytes += static_cast<double>(s.bytes_written);
        break;
      case AccessClass::kUntouched:
        ++out.untouched;
        break;
    }
    if (s.temporary()) ++out.temporary;
  }
  if (out.sessions > 0) {
    out.temporary_fraction = static_cast<double>(out.temporary) /
                             static_cast<double>(out.sessions);
  }
  if (out.read_only + out.read_write > 0) {
    out.mean_bytes_read_per_read_file =
        read_bytes / static_cast<double>(out.read_only + out.read_write);
  }
  if (out.write_only + out.read_write > 0) {
    out.mean_bytes_written_per_write_file =
        write_bytes / static_cast<double>(out.write_only + out.read_write);
  }
  return out;
}

std::string FilePopulationResult::render() const {
  Table t({"category", "files", "% of files"});
  const auto pct = [&](std::int64_t n) {
    return fmt(sessions > 0 ? 100.0 * static_cast<double>(n) /
                                  static_cast<double>(sessions)
                            : 0.0);
  };
  t.add_row({"total opened", std::to_string(sessions), "100.0"});
  t.add_row({"write-only", std::to_string(write_only), pct(write_only)});
  t.add_row({"read-only", std::to_string(read_only), pct(read_only)});
  t.add_row({"read-write", std::to_string(read_write), pct(read_write)});
  t.add_row({"untouched", std::to_string(untouched), pct(untouched)});
  t.add_row({"temporary", std::to_string(temporary), pct(temporary)});
  std::ostringstream out;
  out << t.render();
  out << "mean bytes read per read file: "
      << util::format_bytes(
             static_cast<std::int64_t>(mean_bytes_read_per_read_file))
      << "; mean bytes written per write file: "
      << util::format_bytes(
             static_cast<std::int64_t>(mean_bytes_written_per_write_file))
      << "\n";
  return out.str();
}

// ---- §4.6 ------------------------------------------------------------------------

ModeUsageResult analyze_mode_usage(const SessionStore& store) {
  ModeUsageResult out;
  std::int64_t total = 0;
  for (const auto& s : store.sessions()) {
    if (s.total_opens == 0) continue;
    ++out.sessions_by_mode[static_cast<std::size_t>(s.mode)];
    ++total;
  }
  if (total > 0) {
    out.mode0_fraction = static_cast<double>(out.sessions_by_mode[0]) /
                         static_cast<double>(total);
  }
  return out;
}

std::string ModeUsageResult::render() const {
  Table t({"I/O mode", "files"});
  for (std::size_t m = 0; m < sessions_by_mode.size(); ++m) {
    t.add_row({"mode " + std::to_string(m),
               std::to_string(sessions_by_mode[m])});
  }
  std::ostringstream out;
  out << t.render();
  out << fmt(mode0_fraction * 100.0) << "% of files used mode 0\n";
  return out.str();
}

}  // namespace charisma::analysis
