# Empty dependencies file for charisma_disk.
# This may be replaced when dependencies are built.
