// Workload configuration.
//
// The production NASA Ames workload cannot be re-obtained; WorkloadConfig
// parameterizes the synthetic population that substitutes for it
// (DESIGN.md §1, §4).  The `nas_1993` preset is calibrated so that the
// *measured* trace — everything in src/analysis runs on the simulated
// trace, never on these numbers — reproduces the paper's distributions.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace charisma::workload {

struct JobMixConfig {
  // Absolute job counts at scale 1.0 (paper §3.1: 3016 jobs, 2237 of them
  // single-node; >800 runs of one status-checking program).
  std::int32_t status_check_jobs = 820;
  std::int32_t system_jobs = 1130;
  std::int32_t untraced_single_user_jobs = 246;
  std::int32_t traced_single_user_jobs = 41;
  std::int32_t untraced_multi_user_jobs = 350;
  std::int32_t traced_multi_user_jobs = 429;

  // Archetype weights among traced multi-node user jobs (calibrated to
  // Table 1's files-per-job buckets and §4.2's session mix).
  double w_broadcast_read = 0.05;
  double w_cfd_solver = 0.31;
  double w_slab_read = 0.05;
  double w_checkpoint_write = 0.19;
  double w_single_dump = 0.035;
  double w_rw_update = 0.03;
  double w_temp_file = 0.0;  // temp-file runs are added explicitly
  double w_shared_pointer = 0.025;
  double w_quad_tool = 0.303;
};

struct SizeConfig {
  // Small (record) request sizes: the sub-4000-byte mass of Figure 4.
  std::int64_t record_min = 80;
  std::int64_t record_max = 3000;
  // Large (chunk) request sizes: where the data volume lives.
  std::int64_t chunk_min = 64 * util::kKiB;
  std::int64_t chunk_max = 1 * util::kMiB;
  // Principal file sizes: lognormal with clusters (Figure 3).
  double file_lognormal_mu = 12.0;     // e^12.0 ~ 163 KB
  double file_lognormal_sigma = 1.35;
  std::int64_t file_min = 2 * util::kKiB;
  std::int64_t file_max = 24 * util::kMiB;
  // Application-specific clusters (paper: "clusters of similarly sized
  // files (e.g. at 25KB and 250KB) may be due to just one or two
  // applications").
  std::int64_t cluster_small = 25 * util::kKiB;
  std::int64_t cluster_large = 250 * util::kKiB;
  double cluster_fraction = 0.38;  // of files drawn from a cluster
};

/// Knobs for the Daly-interval checkpoint-restart workload source (the
/// "checkpoint" method of workload::load_source).  Units and spirit follow
/// the CODES checkpoint generator's --chkpoint-size/bw/runtime/mtti flags;
/// the magnitudes default much smaller because they feed a simulated 1993
/// machine, not an exascale projection.
struct CheckpointConfig {
  /// Aggregate checkpoint image size, TiB (--chkpoint-size).
  double size_tib = 0.002;
  /// Aggregate sustained file-system bandwidth, GiB/s (--chkpoint-bw).
  double bw_gib_s = 4.0;
  /// Application runtime to protect, hours (--chkpoint-runtime).  Scaled by
  /// WorkloadConfig::scale so smoke/CI runs stay cheap.
  double runtime_hours = 2.0;
  /// Mean time to interrupt, hours (--chkpoint-mtti).
  double mtti_hours = 12.0;
  /// Writer nodes (power of two; the driver clamps to the machine width).
  std::int32_t nodes = 64;
  /// Request size of each checkpoint write.
  std::int64_t chunk_bytes = 1024 * 1024;
};

struct WorkloadConfig {
  std::uint64_t seed = 42;
  /// Multiplies job counts and the tracing window.
  double scale = 1.0;
  /// Tracing window at scale 1.0 (paper: ~156 hours).
  util::MicroSec trace_hours = 156;
  /// Day/night arrival-rate swing in [0,1): 0 = uniform arrivals, 0.45 =
  /// mid-afternoon submits ~2.6x the 4am rate (the tracing covered "all
  /// different times of the day and of the week").
  double diurnal_amplitude = 0.45;
  JobMixConfig mix;
  SizeConfig sizes;
  /// Mean compute think time between a node's I/O operations.
  util::MicroSec mean_think = 40 * util::kMillisecond;
  /// Mean compute time between I/O phases (snapshots etc.); with the job
  /// mix this sets machine occupancy (Figure 1).
  util::MicroSec mean_phase_think = 64 * util::kSecond;
  /// Fraction of solver jobs that open a restart file they never touch
  /// (the paper's ~2500 opened-but-untouched files).
  double untouched_open_fraction = 0.22;
  /// Daly checkpoint-restart knobs; only the "checkpoint" workload source
  /// reads them (the synthetic generator has its own checkpoint archetype).
  CheckpointConfig checkpoint;

  [[nodiscard]] static WorkloadConfig nas_1993();
  /// A fast configuration for unit tests (tiny machine, few jobs).
  [[nodiscard]] static WorkloadConfig smoke();
};

}  // namespace charisma::workload
