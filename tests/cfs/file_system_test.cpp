#include "cfs/file_system.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace charisma::cfs {
namespace {

FileSystemParams tiny_params() {
  FileSystemParams p;
  p.io_nodes = 4;
  p.block_size = 1024;
  p.disk_capacity = 1024 * 1024;
  p.pointer_handoff = 100;
  return p;
}

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystem fs_{tiny_params()};

  FileId create(JobId job, NodeId node, const std::string& path,
                std::uint8_t extra = 0) {
    const auto r = fs_.open(job, node, path, kWrite | kCreate | extra,
                            IoMode::kIndependent, 0);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.created);
    return r.file;
  }
};

TEST_F(FileSystemTest, CreateAndLookup) {
  const FileId id = create(1, 0, "a/b.dat");
  EXPECT_EQ(fs_.lookup("a/b.dat"), std::optional<FileId>(id));
  EXPECT_EQ(fs_.lookup("missing"), std::nullopt);
  EXPECT_EQ(fs_.file_count(), 1);
  const auto stats = fs_.stats(id);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->path, "a/b.dat");
  EXPECT_EQ(stats->creator, 1);
  EXPECT_EQ(stats->size, 0);
}

TEST_F(FileSystemTest, OpenMissingWithoutCreateFails) {
  const auto r = fs_.open(1, 0, "nope", kRead, IoMode::kIndependent, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no such file"), std::string::npos);
}

TEST_F(FileSystemTest, OpenWithoutIntentFails) {
  const auto r = fs_.open(1, 0, "x", kCreate, IoMode::kIndependent, 0);
  EXPECT_FALSE(r.ok);
}

TEST_F(FileSystemTest, DoubleOpenBySameNodeFails) {
  create(1, 0, "f");
  const auto r = fs_.open(1, 0, "f", kWrite, IoMode::kIndependent, 0);
  EXPECT_FALSE(r.ok);
}

TEST_F(FileSystemTest, ConflictingModeWithinSessionFails) {
  create(1, 0, "f");
  const auto r = fs_.open(1, 1, "f", kWrite, IoMode::kShared, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("conflicting"), std::string::npos);
}

TEST_F(FileSystemTest, SeparateJobsGetSeparateSessions) {
  const FileId id = create(1, 0, "f");
  const auto r2 = fs_.open(2, 0, "f", kRead | kWrite, IoMode::kShared, 0);
  EXPECT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.file, id);
  EXPECT_FALSE(r2.created);
}

TEST_F(FileSystemTest, WriteExtendsAndAllocates) {
  const FileId id = create(1, 0, "f");
  const auto r = fs_.reserve_write(1, 0, id, 2500, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.offset, 0);
  EXPECT_EQ(r.bytes, 2500);
  EXPECT_TRUE(r.extends_file);
  EXPECT_EQ(fs_.stats(id)->size, 2500);
  // 2500 bytes over 1024-byte blocks = 3 blocks, striped round-robin.
  std::int64_t total_blocks = 0;
  for (int io = 0; io < 4; ++io) total_blocks += fs_.blocks_allocated(io);
  EXPECT_EQ(total_blocks, 3);
}

TEST_F(FileSystemTest, SequentialWritesAdvancePointer) {
  const FileId id = create(1, 0, "f");
  EXPECT_EQ(fs_.reserve_write(1, 0, id, 100, 0).offset, 0);
  EXPECT_EQ(fs_.reserve_write(1, 0, id, 100, 0).offset, 100);
  EXPECT_EQ(fs_.reserve_write(1, 0, id, 100, 0).offset, 200);
}

TEST_F(FileSystemTest, ReadsClipAtEof) {
  const FileId id = create(1, 0, "f", kRead);
  (void)fs_.reserve_write(1, 0, id, 150, 0);
  (void)fs_.seek(1, 0, id, 0, Whence::kSet);
  const auto r1 = fs_.reserve_read(1, 0, id, 100, 0);
  EXPECT_EQ(r1.bytes, 100);
  const auto r2 = fs_.reserve_read(1, 0, id, 100, 0);
  EXPECT_EQ(r2.bytes, 50);  // clipped
  const auto r3 = fs_.reserve_read(1, 0, id, 100, 0);
  EXPECT_TRUE(r3.ok);
  EXPECT_EQ(r3.bytes, 0);  // at EOF
}

TEST_F(FileSystemTest, ReadWithoutReadIntentFails) {
  const FileId id = create(1, 0, "f");  // write-only open
  const auto r = fs_.reserve_read(1, 0, id, 10, 0);
  EXPECT_FALSE(r.ok);
}

TEST_F(FileSystemTest, WriteWithoutWriteIntentFails) {
  create(1, 0, "f");
  const auto open2 = fs_.open(2, 0, "f", kRead, IoMode::kIndependent, 0);
  const auto r = fs_.reserve_write(2, 0, open2.file, 10, 0);
  EXPECT_FALSE(r.ok);
}

TEST_F(FileSystemTest, Mode0PointersAreIndependent) {
  const FileId id = create(1, 0, "f", kRead);
  const auto o1 = fs_.open(1, 1, "f", kRead | kWrite, IoMode::kIndependent, 0);
  ASSERT_TRUE(o1.ok) << o1.error;
  (void)fs_.reserve_write(1, 0, id, 1000, 0);
  // Node 1's pointer is still at 0.
  const auto r = fs_.reserve_read(1, 1, id, 200, 0);
  EXPECT_EQ(r.offset, 0);
  EXPECT_EQ(r.bytes, 200);
}

TEST_F(FileSystemTest, Mode1SharedPointerSerializes) {
  const auto o0 = fs_.open(1, 0, "f", kWrite | kCreate, IoMode::kShared, 0);
  const auto o1 = fs_.open(1, 1, "f", kWrite, IoMode::kShared, 0);
  ASSERT_TRUE(o0.ok && o1.ok);
  const auto r0 = fs_.reserve_write(1, 0, o0.file, 100, 0);
  const auto r1 = fs_.reserve_write(1, 1, o1.file, 100, 0);
  EXPECT_EQ(r0.offset, 0);
  EXPECT_EQ(r1.offset, 100);  // shared pointer advanced
  // Pointer hand-off enforces serialization in time.
  EXPECT_GE(r1.not_before, r0.not_before + 100);
}

TEST_F(FileSystemTest, Mode2EnforcesRoundRobin) {
  const auto o0 = fs_.open(1, 0, "f", kWrite | kCreate, IoMode::kOrdered, 0);
  const auto o1 = fs_.open(1, 1, "f", kWrite, IoMode::kOrdered, 0);
  ASSERT_TRUE(o0.ok && o1.ok);
  // Node 1 tries out of turn.
  const auto bad = fs_.reserve_write(1, 1, o0.file, 100, 0);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("out of turn"), std::string::npos);
  EXPECT_TRUE(fs_.reserve_write(1, 0, o0.file, 100, 0).ok);
  const auto now_ok = fs_.reserve_write(1, 1, o0.file, 100, 0);
  EXPECT_TRUE(now_ok.ok);
  EXPECT_EQ(now_ok.offset, 100);
  // Back to node 0.
  EXPECT_FALSE(fs_.reserve_write(1, 1, o0.file, 100, 0).ok);
}

TEST_F(FileSystemTest, Mode3FixedSizeComputableOffsets) {
  const auto o0 = fs_.open(1, 0, "f", kWrite | kCreate, IoMode::kFixed, 0);
  const auto o1 = fs_.open(1, 1, "f", kWrite, IoMode::kFixed, 0);
  const auto o2 = fs_.open(1, 2, "f", kWrite, IoMode::kFixed, 0);
  ASSERT_TRUE(o0.ok && o1.ok && o2.ok);
  // Out-of-order arrival is fine: offsets derive from (round, position).
  EXPECT_EQ(fs_.reserve_write(1, 2, o0.file, 50, 0).offset, 100);
  EXPECT_EQ(fs_.reserve_write(1, 0, o0.file, 50, 0).offset, 0);
  EXPECT_EQ(fs_.reserve_write(1, 1, o0.file, 50, 0).offset, 50);
  // Round 2.
  EXPECT_EQ(fs_.reserve_write(1, 0, o0.file, 50, 0).offset, 150);
  // Size mismatch is rejected.
  const auto bad = fs_.reserve_write(1, 1, o0.file, 51, 0);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("size mismatch"), std::string::npos);
}

TEST_F(FileSystemTest, SeekWhenceVariants) {
  const FileId id = create(1, 0, "f", kRead);
  (void)fs_.reserve_write(1, 0, id, 1000, 0);
  EXPECT_EQ(fs_.seek(1, 0, id, 100, Whence::kSet), 100);
  EXPECT_EQ(fs_.seek(1, 0, id, 50, Whence::kCurrent), 150);
  EXPECT_EQ(fs_.seek(1, 0, id, -50, Whence::kCurrent), 100);
  EXPECT_EQ(fs_.seek(1, 0, id, -10, Whence::kEnd), 990);
  EXPECT_EQ(fs_.seek(1, 0, id, -2000, Whence::kCurrent), std::nullopt);
  // Seeking past EOF is allowed (sparse-style), like Unix.
  EXPECT_EQ(fs_.seek(1, 0, id, 5000, Whence::kSet), 5000);
}

TEST_F(FileSystemTest, SeekOnSharedPointerFails) {
  const auto o = fs_.open(1, 0, "f", kWrite | kCreate, IoMode::kShared, 0);
  EXPECT_EQ(fs_.seek(1, 0, o.file, 0, Whence::kSet), std::nullopt);
}

TEST_F(FileSystemTest, PlanStripesRoundRobin) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 5000, 0);  // 5 blocks
  const auto plan = fs_.plan(id, 0, 5000);
  ASSERT_EQ(plan.size(), 5u);
  const int first = plan[0].io_node;
  for (std::size_t b = 0; b < plan.size(); ++b) {
    EXPECT_EQ(plan[b].io_node, (first + static_cast<int>(b)) % 4);
    EXPECT_EQ(plan[b].file_block, static_cast<std::int64_t>(b));
  }
  EXPECT_EQ(plan[0].bytes, 1024);
  EXPECT_EQ(plan[4].bytes, 5000 - 4 * 1024);
}

TEST_F(FileSystemTest, PlanHandlesUnalignedRange) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 4096, 0);
  const auto plan = fs_.plan(id, 1000, 100);  // 1000..1100 spans two blocks
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].bytes, 24);
  EXPECT_EQ(plan[1].bytes, 76);
  EXPECT_EQ(plan[0].disk_offset % 1024, 1000 % 1024);
}

TEST_F(FileSystemTest, PlanBeyondAllocationThrows) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 100, 0);
  EXPECT_THROW(fs_.plan(id, 0, 5000), util::CheckFailure);
}

TEST_F(FileSystemTest, DifferentFilesStartOnDifferentStripes) {
  std::set<int> first_nodes;
  for (int i = 0; i < 4; ++i) {
    const FileId id = create(1, 0, "f" + std::to_string(i));
    (void)fs_.reserve_write(1, 0, id, 100, 0);
    first_nodes.insert(fs_.plan(id, 0, 100)[0].io_node);
  }
  EXPECT_EQ(first_nodes.size(), 4u);  // stripes rotate per file
}

TEST_F(FileSystemTest, TruncateResetsSize) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 3000, 0);
  fs_.close(1, 0, id);
  const auto r = fs_.open(2, 0, "f", kWrite | kTruncate, IoMode::kIndependent, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(fs_.stats(id)->size, 0);
}

TEST_F(FileSystemTest, CloseReturnsSizeAndTearsDownSession) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 777, 0);
  EXPECT_EQ(fs_.close(1, 0, id), std::optional<std::int64_t>(777));
  EXPECT_EQ(fs_.close(1, 0, id), std::nullopt);  // already closed
  // Session gone: further I/O fails.
  EXPECT_FALSE(fs_.reserve_write(1, 0, id, 10, 0).ok);
}

TEST_F(FileSystemTest, UnlinkRemovesPathKeepsInode) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 100, 0);
  EXPECT_TRUE(fs_.unlink(1, "f"));
  EXPECT_FALSE(fs_.unlink(1, "f"));
  EXPECT_EQ(fs_.lookup("f"), std::nullopt);
  EXPECT_TRUE(fs_.stats(id)->deleted);
  // The open session keeps working (Unix semantics).
  EXPECT_TRUE(fs_.reserve_write(1, 0, id, 10, 0).ok);
}

TEST_F(FileSystemTest, FreeBytesDecreaseWithAllocation) {
  const std::int64_t before = fs_.free_bytes(0);
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 8 * 1024, 0);  // 2 blocks per disk
  EXPECT_EQ(fs_.free_bytes(0), before - 2 * 1024);
}

TEST_F(FileSystemTest, NegativeRequestRejected) {
  const FileId id = create(1, 0, "f");
  EXPECT_FALSE(fs_.reserve_write(1, 0, id, -5, 0).ok);
}

class ModePointerSweep : public ::testing::TestWithParam<IoMode> {};

TEST_P(ModePointerSweep, OffsetsPartitionTheFileExactly) {
  // Whatever the mode, N nodes writing k records of size r must produce
  // offsets covering [0, N*k*r) with no overlap.
  FileSystem fs(tiny_params());
  const IoMode mode = GetParam();
  constexpr int kNodes = 4, kRounds = 5;
  constexpr std::int64_t kRec = 100;
  FileId file = kNoFile;
  for (NodeId n = 0; n < kNodes; ++n) {
    const auto r = fs.open(1, n, "f", kWrite | kCreate, mode, 0);
    ASSERT_TRUE(r.ok) << r.error;
    file = r.file;
  }
  std::set<std::int64_t> offsets;
  for (int round = 0; round < kRounds; ++round) {
    for (NodeId n = 0; n < kNodes; ++n) {
      Reservation r = fs.reserve_write(1, n, file, kRec, 0);
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_TRUE(offsets.insert(r.offset).second) << "overlap at " << r.offset;
      EXPECT_EQ(r.offset % kRec, 0);
    }
  }
  EXPECT_EQ(offsets.size(), static_cast<std::size_t>(kNodes * kRounds));
  EXPECT_EQ(*offsets.rbegin(), (kNodes * kRounds - 1) * kRec);
}

INSTANTIATE_TEST_SUITE_P(SharedModes, ModePointerSweep,
                         ::testing::Values(IoMode::kShared, IoMode::kOrdered,
                                           IoMode::kFixed));

TEST_F(FileSystemTest, StripingBalancesAcrossDisks) {
  // CFS stripes every file over ALL disks; a large file must land evenly.
  const FileId id = create(1, 0, "big");
  (void)fs_.reserve_write(1, 0, id, 400 * 1024, 0);  // 400 blocks over 4
  std::int64_t min_blocks = 1 << 30, max_blocks = 0;
  for (int io = 0; io < 4; ++io) {
    min_blocks = std::min(min_blocks, fs_.blocks_allocated(io));
    max_blocks = std::max(max_blocks, fs_.blocks_allocated(io));
  }
  EXPECT_LE(max_blocks - min_blocks, 1);
  EXPECT_EQ(min_blocks + max_blocks, 100 + 100);
}

TEST_F(FileSystemTest, PlanDiskOffsetsAreBlockAlignedAndDistinct) {
  const FileId id = create(1, 0, "f");
  (void)fs_.reserve_write(1, 0, id, 16 * 1024, 0);
  std::set<std::pair<int, std::int64_t>> placements;
  for (const auto& a : fs_.plan(id, 0, 16 * 1024)) {
    EXPECT_EQ(a.disk_offset % 1024, 0);
    EXPECT_TRUE(placements.insert({a.io_node, a.disk_offset}).second)
        << "two file blocks share a disk block";
  }
}

TEST_F(FileSystemTest, RewriteDoesNotReallocate) {
  const FileId id = create(1, 0, "f", kRead);
  (void)fs_.reserve_write(1, 0, id, 4096, 0);
  const std::int64_t allocated = fs_.blocks_allocated(0) +
                                 fs_.blocks_allocated(1) +
                                 fs_.blocks_allocated(2) +
                                 fs_.blocks_allocated(3);
  (void)fs_.seek(1, 0, id, 0, Whence::kSet);
  (void)fs_.reserve_write(1, 0, id, 4096, 0);  // overwrite in place
  EXPECT_EQ(fs_.blocks_allocated(0) + fs_.blocks_allocated(1) +
                fs_.blocks_allocated(2) + fs_.blocks_allocated(3),
            allocated);
  EXPECT_EQ(fs_.stats(id)->size, 4096);
}

}  // namespace
}  // namespace charisma::cfs
