file(REMOVE_RECURSE
  "../bench/sec42_file_population"
  "../bench/sec42_file_population.pdb"
  "CMakeFiles/sec42_file_population.dir/sec42_file_population.cpp.o"
  "CMakeFiles/sec42_file_population.dir/sec42_file_population.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_file_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
