# Empty dependencies file for trace_and_characterize.
# This may be replaced when dependencies are built.
