#include "trace/postprocess.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numeric>

namespace charisma::trace {

MicroSec ClockFit::apply(MicroSec local) const noexcept {
  return static_cast<MicroSec>(
      std::llround(scale * static_cast<double>(local) + offset));
}

std::unordered_map<NodeId, ClockFit> fit_clocks(const TraceFile& trace) {
  struct Acc {
    double sum_l = 0, sum_g = 0, sum_ll = 0, sum_lg = 0;
    std::size_t n = 0;
  };
  // Ordered map: the fitting loop below iterates, and iteration order must
  // not depend on hash layout (charisma-unordered-iter).
  std::map<NodeId, Acc> accs;
  for (const auto& b : trace.blocks) {
    auto& a = accs[b.node];
    const auto l = static_cast<double>(b.sent_local);
    const auto g = static_cast<double>(b.recv_global);
    a.sum_l += l;
    a.sum_g += g;
    a.sum_ll += l * l;
    a.sum_lg += l * g;
    ++a.n;
  }
  std::unordered_map<NodeId, ClockFit> fits;
  for (const auto& [node, a] : accs) {
    ClockFit fit;
    fit.samples = a.n;
    const auto n = static_cast<double>(a.n);
    const double denom = n * a.sum_ll - a.sum_l * a.sum_l;
    if (a.n >= 2 && std::abs(denom) > 1e-6) {
      fit.scale = (n * a.sum_lg - a.sum_l * a.sum_g) / denom;
      // Clock rates are within a few hundred ppm of unity; a wilder fit
      // means the samples were degenerate (e.g. all at one instant).
      if (fit.scale < 0.99 || fit.scale > 1.01) fit.scale = 1.0;
      fit.offset = (a.sum_g - fit.scale * a.sum_l) / n;
    } else if (a.n >= 1) {
      fit.scale = 1.0;
      fit.offset = (a.sum_g - a.sum_l) / n;
    }
    fits.emplace(node, fit);
  }
  return fits;
}

SortedTrace postprocess(const TraceFile& trace) {
  const auto fits = fit_clocks(trace);
  SortedTrace out;
  out.header = trace.header;
  out.records.reserve(trace.record_count());
  for (const auto& b : trace.blocks) {
    const auto it = fits.find(b.node);
    for (Record r : b.records) {
      if (it != fits.end()) r.timestamp = it->second.apply(r.timestamp);
      out.records.push_back(r);
    }
  }
  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const Record& a, const Record& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::uint64_t count_order_inversions(
    const std::vector<MicroSec>& true_times,
    const std::vector<MicroSec>& estimated_times) {
  const std::size_t n = true_times.size();
  if (n != estimated_times.size() || n < 2) return 0;
  // Order events by estimated time (stable), then count inversions of the
  // true-time sequence with a merge sort.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return estimated_times[a] < estimated_times[b];
                   });
  std::vector<MicroSec> seq(n);
  for (std::size_t i = 0; i < n; ++i) seq[i] = true_times[order[i]];

  std::uint64_t inversions = 0;
  std::vector<MicroSec> tmp(n);
  const std::function<void(std::size_t, std::size_t)> sort_count =
      [&](std::size_t lo, std::size_t hi) {
        if (hi - lo < 2) return;
        const std::size_t mid = lo + (hi - lo) / 2;
        sort_count(lo, mid);
        sort_count(mid, hi);
        std::size_t i = lo, j = mid, k = lo;
        while (i < mid && j < hi) {
          if (seq[i] <= seq[j]) {
            tmp[k++] = seq[i++];
          } else {
            inversions += mid - i;
            tmp[k++] = seq[j++];
          }
        }
        while (i < mid) tmp[k++] = seq[i++];
        while (j < hi) tmp[k++] = seq[j++];
        std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                  tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                  seq.begin() + static_cast<std::ptrdiff_t>(lo));
      };
  sort_count(0, n);
  return inversions;
}

}  // namespace charisma::trace
