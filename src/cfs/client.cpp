#include "cfs/client.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace charisma::cfs {

Client::Client(Runtime& runtime, NodeId node, ClientParams params)
    : runtime_(&runtime), node_(node), params_(params) {
  util::check(node >= 0 && node < runtime.machine().compute_nodes(),
              "client node out of range");
}

OpenResult Client::open(JobId job, const std::string& path,
                        std::uint8_t flags, IoMode mode) {
  auto& engine = runtime_->machine().engine();
  OpenResult r = runtime_->fs().open(job, node_, path, flags, mode,
                                     engine.now());
  if (!r.ok) return r;
  const Fd fd = next_fd_++;
  handles_.emplace(fd, Handle{r.file, job});
  r.fd = fd;
  // Metadata round-trip to I/O node 0 (the directory server in CFS).
  r.completed_at = engine.now() + params_.call_overhead +
                   runtime_->machine().compute_to_io(
                       node_, 0, params_.request_message_bytes) *
                       2;
  return r;
}

MicroSec Client::execute(const Handle& h, const Reservation& r,
                         bool is_write) {
  auto& machine = runtime_->machine();
  const MicroSec start = r.not_before + params_.call_overhead;
  if (r.bytes == 0) return start;

  MicroSec completion = start;
  for (const BlockAccess& a : runtime_->fs().plan(h.file, r.offset, r.bytes)) {
    ++io_messages_;
    // Request descriptor to the I/O node (plus the data for writes).
    const std::int64_t outbound =
        params_.request_message_bytes + (is_write ? a.bytes : 0);
    const MicroSec arrival =
        start + machine.compute_to_io(node_, a.io_node, outbound);
    IoNode& server = runtime_->io_node(a.io_node);
    const MicroSec served =
        is_write ? server.serve_write(arrival, h.file, a.file_block,
                                      a.disk_offset, a.bytes)
                 : server.serve_read(arrival, h.file, a.file_block,
                                     a.disk_offset, a.bytes);
    // Reply (with the data for reads).
    const std::int64_t inbound = is_write ? 32 : a.bytes;
    completion = std::max(
        completion, served + machine.compute_to_io(node_, a.io_node, inbound));
  }
  return completion;
}

IoResult Client::read(Fd fd, std::int64_t bytes) {
  IoResult result;
  auto& engine = runtime_->machine().engine();
  result.completed_at = engine.now();
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    result.error = "bad file descriptor";
    return result;
  }
  const Handle& h = it->second;
  Reservation r = runtime_->fs().reserve_read(h.job, node_, h.file, bytes,
                                              engine.now());
  if (!r.ok) {
    result.error = r.error;
    return result;
  }
  result.ok = true;
  result.offset = r.offset;
  result.bytes = r.bytes;
  result.completed_at = execute(h, r, /*is_write=*/false);
  return result;
}

IoResult Client::write(Fd fd, std::int64_t bytes) {
  IoResult result;
  auto& engine = runtime_->machine().engine();
  result.completed_at = engine.now();
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    result.error = "bad file descriptor";
    return result;
  }
  const Handle& h = it->second;
  Reservation r = runtime_->fs().reserve_write(h.job, node_, h.file, bytes,
                                               engine.now());
  if (!r.ok) {
    result.error = r.error;
    return result;
  }
  result.ok = true;
  result.offset = r.offset;
  result.bytes = r.bytes;
  result.extended_file = r.extends_file;
  result.completed_at = execute(h, r, /*is_write=*/true);
  return result;
}

IoResult Client::read_strided(Fd fd, std::int64_t record,
                              std::int64_t interval, std::int64_t count) {
  IoResult result;
  auto& machine = runtime_->machine();
  auto& engine = machine.engine();
  result.completed_at = engine.now();
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    result.error = "bad file descriptor";
    return result;
  }
  const Handle& h = it->second;
  Reservation r = runtime_->fs().reserve_strided_read(
      h.job, node_, h.file, record, interval, count, engine.now());
  if (!r.ok) {
    result.error = r.error;
    return result;
  }
  result.ok = true;
  result.offset = r.offset;
  result.bytes = r.bytes;
  const MicroSec start = r.not_before + params_.call_overhead;
  result.completed_at = start;
  if (r.bytes == 0) return result;

  // Gather every element's block accesses, grouped by I/O node: ONE
  // strided descriptor message per involved I/O node (that is the point).
  std::map<int, std::vector<BlockAccess>> per_io;
  std::int64_t remaining = r.bytes;
  for (std::int64_t k = 0; k < count && remaining > 0; ++k) {
    const std::int64_t elem = r.offset + k * (record + interval);
    const std::int64_t take = std::min(record, remaining);
    for (BlockAccess& a : runtime_->fs().plan(h.file, elem, take)) {
      per_io[a.io_node].push_back(a);
    }
    remaining -= take;
  }
  for (auto& [io, accesses] : per_io) {
    ++io_messages_;
    const MicroSec arrival =
        start +
        machine.compute_to_io(node_, io, params_.request_message_bytes);
    IoNode& server = runtime_->io_node(io);
    MicroSec served = arrival;
    std::int64_t node_bytes = 0;
    for (const BlockAccess& a : accesses) {
      served = std::max(served,
                        server.serve_read(arrival, h.file, a.file_block,
                                          a.disk_offset, a.bytes));
      node_bytes += a.bytes;
    }
    result.completed_at =
        std::max(result.completed_at,
                 served + machine.compute_to_io(node_, io, node_bytes));
  }
  return result;
}

std::optional<std::int64_t> Client::seek(Fd fd, std::int64_t offset,
                                         Whence whence) {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return std::nullopt;
  return runtime_->fs().seek(it->second.job, node_, it->second.file, offset,
                             whence);
}

std::optional<std::int64_t> Client::close(Fd fd) {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return std::nullopt;
  const auto size =
      runtime_->fs().close(it->second.job, node_, it->second.file);
  handles_.erase(it);
  return size;
}

bool Client::unlink(JobId job, const std::string& path) {
  const auto file = runtime_->fs().lookup(path);
  if (!file) return false;
  const bool ok = runtime_->fs().unlink(job, path);
  if (ok) {
    for (int i = 0; i < runtime_->io_node_count(); ++i) {
      runtime_->io_node(i).invalidate(*file);
    }
  }
  return ok;
}

FileId Client::file_of(Fd fd) const {
  const auto it = handles_.find(fd);
  return it == handles_.end() ? kNoFile : it->second.file;
}

JobId Client::job_of(Fd fd) const {
  const auto it = handles_.find(fd);
  return it == handles_.end() ? kNoJob : it->second.job;
}

}  // namespace charisma::cfs
