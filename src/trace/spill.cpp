#include "trace/spill.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace charisma::trace {

namespace {

constexpr std::size_t kStageBytes = 1u << 20;  // disk-tier staging buffer
constexpr std::size_t kMaxQueuedBuffers = 3;   // async double/triple buffering
constexpr std::int64_t kFrameHeaderBytes = 4 + 8 + 8 + 4;  // stamps + count
// Charged per memory-tier block on top of the payload: the index entry plus
// the payload vector's own bookkeeping/allocator overhead.
constexpr std::int64_t kMemBlockOverhead = 64;

template <typename T>
T take(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("trace file truncated");
  return v;
}

template <typename T>
void put_raw(std::vector<std::uint8_t>& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

inline void fnv1a(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
inline void fnv1a_value(std::uint64_t& h, T v) noexcept {
  fnv1a(h, &v, sizeof v);
}

/// Positioned write (the finish()-time back-patches); returns host ms spent.
double pwrite_fd(int fd, const void* data, std::size_t size,
                 std::int64_t offset) {
  const util::Stopwatch sw;
  const auto* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::pwrite(fd, p + off, size - off,
                                 static_cast<::off_t>(offset) +
                                     static_cast<::off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("spill patch failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return sw.elapsed_ms();
}

std::string default_spill_dir(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  return base;
}

std::string proc_fd_path(int fd) {
  return "/proc/self/fd/" + std::to_string(fd);
}

/// True when an ifstream can re-open the descriptor's inode through /proc —
/// the precondition for unlinking an anonymous spill while still reading it.
bool proc_fd_readable(int fd) {
  const std::ifstream probe(proc_fd_path(fd), std::ios::binary);
  return probe.is_open();
}

std::string unique_spill_name(const std::string& base, const char* tag) {
  static std::atomic<std::uint64_t> counter{0};
  return base + "/charisma_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
         ".spill";
}

}  // namespace

double spill_write(int fd, const void* data, std::size_t size) {
  const util::Stopwatch sw;
  const auto* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, p + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("spill write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return sw.elapsed_ms();
}

// --- SpillFile ------------------------------------------------------------

SpillFile::SpillFile(SpillFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      read_path_(std::move(other.read_path_)),
      remove_path_(std::move(other.remove_path_)),
      anonymous_(std::exchange(other.anonymous_, false)) {
  other.read_path_.clear();
  other.remove_path_.clear();
}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    close_and_remove();
    fd_ = std::exchange(other.fd_, -1);
    read_path_ = std::move(other.read_path_);
    remove_path_ = std::move(other.remove_path_);
    anonymous_ = std::exchange(other.anonymous_, false);
    other.read_path_.clear();
    other.remove_path_.clear();
  }
  return *this;
}

void SpillFile::close_and_remove() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  if (!remove_path_.empty()) std::remove(remove_path_.c_str());
  remove_path_.clear();
  read_path_.clear();
  anonymous_ = false;
}

SpillFile SpillFile::create_anonymous(const std::string& dir,
                                      const char* tag) {
  SpillFile f;
  const std::string base = default_spill_dir(dir);
#ifdef O_TMPFILE
  const int tmp_fd = ::open(base.c_str(), O_TMPFILE | O_RDWR | O_CLOEXEC,
                            S_IRUSR | S_IWUSR);
  if (tmp_fd >= 0) {
    if (proc_fd_readable(tmp_fd)) {
      f.fd_ = tmp_fd;
      f.read_path_ = proc_fd_path(tmp_fd);
      f.anonymous_ = true;
      return f;
    }
    ::close(tmp_fd);  // no /proc: fall back to a path-openable file
  }
#endif
  const std::string path = unique_spill_name(base, tag);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC | O_CLOEXEC,
                        S_IRUSR | S_IWUSR);
  if (fd < 0) {
    throw std::runtime_error("cannot create spill file in " + base + ": " +
                             std::strerror(errno));
  }
  f.fd_ = fd;
  if (proc_fd_readable(fd)) {
    // Unlink immediately: the inode lives until the descriptor closes, so a
    // crashed run leaves no litter in the spill directory.
    std::remove(path.c_str());
    f.read_path_ = proc_fd_path(fd);
    f.anonymous_ = true;
  } else {
    f.read_path_ = path;
    f.remove_path_ = path;
  }
  return f;
}

SpillFile SpillFile::create_named(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC | O_CLOEXEC,
                        S_IRUSR | S_IWUSR | S_IRGRP | S_IROTH);
  if (fd < 0) {
    throw std::runtime_error("cannot open spill file: " + path + ": " +
                             std::strerror(errno));
  }
  SpillFile f;
  f.fd_ = fd;
  f.read_path_ = path;
  return f;
}

SpillFile SpillFile::reference(std::string path) {
  SpillFile f;
  f.read_path_ = std::move(path);
  return f;
}

// --- SpilledTrace ---------------------------------------------------------

std::uint64_t SpilledTrace::record_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : blocks) n += b.count;
  return n;
}

std::uint64_t SpilledTrace::digest() const {
  // Same fold, same order as TraceFile::digest(): header fields, then per
  // block the stamps, the count, and the records' encoded bytes — which are
  // exactly the payload bytes in either tier, so memory-tier blocks fold
  // their resident buffer and disk blocks fold straight from the file.
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv1a_value(h, header.compute_nodes);
  fnv1a_value(h, header.io_nodes);
  fnv1a_value(h, header.block_size);
  fnv1a_value(h, header.seed);
  fnv1a_value(h, header.trace_start);
  fnv1a_value(h, header.trace_end);
  fnv1a(h, header.label.data(), header.label.size());
  std::ifstream in;
  bool opened = false;
  std::vector<std::uint8_t> buf;
  for (const auto& b : blocks) {
    fnv1a_value(h, b.node);
    fnv1a_value(h, b.sent_local);
    fnv1a_value(h, b.recv_global);
    fnv1a_value(h, b.count);
    if (b.in_memory()) {
      const auto& bytes = mem_payloads_[b.mem_index];
      fnv1a(h, bytes.data(), bytes.size());
      continue;
    }
    if (!opened) {
      in = open_payload();
      opened = true;
      if (!in.is_open()) {
        throw std::runtime_error("cannot open spilled trace: " +
                                 file_.read_path());
      }
    }
    buf.resize(static_cast<std::size_t>(b.count) * Record::kEncodedSize);
    in.seekg(b.payload_offset);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (!in) {
      throw std::runtime_error("spilled trace truncated: " +
                               file_.read_path());
    }
    fnv1a(h, buf.data(), buf.size());
  }
  return h;
}

void SpilledTrace::read_block(std::size_t index, std::ifstream& in,
                              std::vector<Record>& out) const {
  CHECK(index < blocks.size(), "spill block ", index, " out of range (",
        blocks.size(), " blocks)");
  const SpillBlock& b = blocks[index];
  out.clear();
  out.reserve(b.count);
  if (b.in_memory()) {
    const std::uint8_t* p = mem_payloads_[b.mem_index].data();
    for (std::uint32_t i = 0; i < b.count; ++i, p += Record::kEncodedSize) {
      out.push_back(Record::decode(p));
    }
    return;
  }
  std::uint8_t buf[Record::kEncodedSize];
  in.seekg(b.payload_offset);
  for (std::uint32_t i = 0; i < b.count; ++i) {
    in.read(reinterpret_cast<char*>(buf), sizeof buf);
    if (!in) {
      throw std::runtime_error("spilled trace truncated: " +
                               file_.read_path());
    }
    out.push_back(Record::decode(buf));
  }
}

std::ifstream SpilledTrace::open_payload() const {
  if (!file_.valid()) return {};  // every block is resident
  std::ifstream in(file_.read_path(), std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open spilled trace: " +
                             file_.read_path());
  }
  return in;
}

std::int64_t SpilledTrace::disk_payload_bytes() const noexcept {
  std::int64_t n = 0;
  for (const auto& b : blocks) {
    if (!b.in_memory()) {
      n += static_cast<std::int64_t>(b.count) *
           static_cast<std::int64_t>(Record::kEncodedSize);
    }
  }
  return n;
}

SpilledTrace SpilledTrace::open(const std::string& path, bool tolerant,
                                bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
  in.seekg(0);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, TraceFile::kMagic, sizeof magic) != 0) {
    throw std::runtime_error("not a CHARISMA trace: " + path);
  }
  if (take<std::uint32_t>(in) != TraceFile::kVersion) {
    throw std::runtime_error("unsupported trace version");
  }
  SpilledTrace t;
  t.file_ = SpillFile::reference(path);
  t.header.compute_nodes = take<std::int32_t>(in);
  t.header.io_nodes = take<std::int32_t>(in);
  t.header.block_size = take<std::int64_t>(in);
  t.header.seed = take<std::uint64_t>(in);
  t.header.trace_start = take<std::int64_t>(in);
  t.header.trace_end = take<std::int64_t>(in);
  {
    const auto n = take<std::uint32_t>(in);
    if (n > (1u << 20)) throw std::runtime_error("trace label too long");
    t.header.label.assign(n, '\0');
    in.read(t.header.label.data(), n);
    if (!in) throw std::runtime_error("trace file truncated");
  }

  const auto nblocks = take<std::uint64_t>(in);
  const std::uint64_t max_plausible_blocks =
      static_cast<std::uint64_t>(file_size) / 24 + 1;
  t.blocks.reserve(
      std::min(tolerant ? max_plausible_blocks : nblocks,
               max_plausible_blocks));
  // Tolerant mode scans frames to end-of-file rather than trusting the
  // declared count: a crash while spilling leaves the count placeholder at
  // zero even though complete blocks sit on disk, and the tolerant-reader
  // contract says those survive.  Strict mode requires the declared count.
  std::uint64_t scanned = 0;
  while (tolerant ? true : scanned < nblocks) {
    SpillBlock b;
    try {
      if (tolerant) {
        // Probe for end-of-data before committing to a frame.
        if (static_cast<std::int64_t>(in.tellg()) >= file_size) break;
      }
      b.node = take<std::int32_t>(in);
      b.sent_local = take<std::int64_t>(in);
      b.recv_global = take<std::int64_t>(in);
      b.count = take<std::uint32_t>(in);
      b.payload_offset = static_cast<std::int64_t>(in.tellg());
      if (b.payload_offset < 0 ||
          static_cast<std::int64_t>(b.count) >
              (file_size - b.payload_offset) /
                  static_cast<std::int64_t>(Record::kEncodedSize)) {
        throw std::runtime_error("trace file truncated");
      }
      in.seekg(b.payload_offset +
               static_cast<std::int64_t>(b.count) *
                   static_cast<std::int64_t>(Record::kEncodedSize));
    } catch (const std::runtime_error&) {
      if (!tolerant) throw;
      if (truncated != nullptr) *truncated = true;
      return t;  // keep every complete block before the crash point
    }
    t.blocks.push_back(b);
    ++scanned;
  }
  if (tolerant && truncated != nullptr && scanned != nblocks) {
    *truncated = true;  // count was never patched or overstated
  }
  return t;
}

// --- SpillWriter ----------------------------------------------------------

/// Shared state between append()'s staging side and the background writer.
struct SpillWriter::Async {
  util::Mutex mutex;
  std::condition_variable_any work_cv;
  std::condition_variable_any space_cv;
  std::deque<std::vector<std::uint8_t>> queue CHARISMA_GUARDED_BY(mutex);
  bool done CHARISMA_GUARDED_BY(mutex) = false;
  std::string error CHARISMA_GUARDED_BY(mutex);
  // Folded into the writer's stats after join.
  double write_ms CHARISMA_GUARDED_BY(mutex) = 0.0;
  std::int64_t disk_bytes CHARISMA_GUARDED_BY(mutex) = 0;
  std::thread thread;
};

SpillWriter::SpillWriter(const SpillTarget& target, const TraceHeader& header,
                         const SpillWriterOptions& options)
    : target_(target), header_(header), options_(options) {
  header_bytes_.reserve(64 + header_.label.size());
  header_bytes_.insert(header_bytes_.end(), TraceFile::kMagic,
                       TraceFile::kMagic + sizeof TraceFile::kMagic);
  put_raw<std::uint32_t>(header_bytes_, TraceFile::kVersion);
  put_raw<std::int32_t>(header_bytes_, header_.compute_nodes);
  put_raw<std::int32_t>(header_bytes_, header_.io_nodes);
  put_raw<std::int64_t>(header_bytes_, header_.block_size);
  put_raw<std::uint64_t>(header_bytes_, header_.seed);
  put_raw<std::int64_t>(header_bytes_, header_.trace_start);
  trace_end_offset_ = static_cast<std::int64_t>(header_bytes_.size());
  put_raw<std::int64_t>(header_bytes_, 0);  // trace_end: patched by finish()
  put_raw<std::uint32_t>(header_bytes_,
                         static_cast<std::uint32_t>(header_.label.size()));
  header_bytes_.insert(header_bytes_.end(), header_.label.begin(),
                       header_.label.end());
  block_count_offset_ = static_cast<std::int64_t>(header_bytes_.size());
  put_raw<std::uint64_t>(header_bytes_, 0);  // block count: patched later
  disk_offset_ = static_cast<std::int64_t>(header_bytes_.size());
  stage_.reserve(kStageBytes + (64u << 10));
  if (!target_.path.empty()) {
    // Named targets keep the legacy contract: the header is on disk from
    // construction, so crash-recovery tooling always finds a parseable file.
    stats_.write_ms += ensure_file();
    stats_.disk_bytes += static_cast<std::int64_t>(header_bytes_.size());
  }
}

SpillWriter::SpillWriter(std::string path, const TraceHeader& header)
    : SpillWriter(SpillTarget::named(std::move(path)), header) {}

SpillWriter::~SpillWriter() {
  if (finished_) return;
  // Unfinished (crash-path) teardown: get every appended frame onto disk —
  // the tolerant reader recovers complete frames, only the back-patches are
  // allowed to be missing.  Errors are swallowed; we may already be
  // unwinding.
  try {
    flush_stage();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  try {
    drain_async();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

double SpillWriter::ensure_file() {
  if (file_created_) return 0.0;
  file_ = target_.path.empty()
              ? SpillFile::create_anonymous(target_.dir, "trace")
              : SpillFile::create_named(target_.path);
  file_created_ = true;
  return spill_write(file_.fd(), header_bytes_.data(), header_bytes_.size());
}

void SpillWriter::append(const TraceBlock& block) {
  CHECK(!finished_, "SpillWriter::append after finish");
  const auto count = static_cast<std::uint32_t>(block.records.size());
  const std::size_t payload = block.records.size() * Record::kEncodedSize;
  SpillBlock idx;
  idx.node = block.node;
  idx.sent_local = block.sent_local;
  idx.recv_global = block.recv_global;
  idx.count = count;
  if (!overflowed_ && options_.budget != nullptr &&
      options_.budget->try_reserve(static_cast<std::int64_t>(payload) +
                                   kMemBlockOverhead)) {
    std::vector<std::uint8_t> bytes(payload);
    std::uint8_t* p = bytes.data();
    for (const auto& r : block.records) {
      r.encode(p);
      p += Record::kEncodedSize;
    }
    idx.payload_offset = SpillBlock::kMemoryTier;
    idx.mem_index = static_cast<std::uint32_t>(mem_payloads_.size());
    mem_payloads_.push_back(std::move(bytes));
  } else {
    overflowed_ = true;  // sticky: the resident tier stays a stream prefix
    put_raw<std::int32_t>(stage_, block.node);
    put_raw<std::int64_t>(stage_, block.sent_local);
    put_raw<std::int64_t>(stage_, block.recv_global);
    put_raw<std::uint32_t>(stage_, count);
    idx.payload_offset = disk_offset_ + kFrameHeaderBytes;
    const std::size_t base = stage_.size();
    stage_.resize(base + payload);
    std::uint8_t* p = stage_.data() + base;
    for (const auto& r : block.records) {
      r.encode(p);
      p += Record::kEncodedSize;
    }
    disk_offset_ += kFrameHeaderBytes + static_cast<std::int64_t>(payload);
    ++disk_blocks_;
    if (stage_.size() >= kStageBytes) flush_stage();
  }
  index_.push_back(idx);
}

void SpillWriter::flush_stage() {
  if (stage_.empty()) return;
  if (!options_.async) {
    const bool had_file = file_created_;
    double ms = ensure_file();
    if (!had_file) {
      stats_.disk_bytes += static_cast<std::int64_t>(header_bytes_.size());
    }
    ms += spill_write(file_.fd(), stage_.data(), stage_.size());
    stats_.write_ms += ms;
    stats_.disk_bytes += static_cast<std::int64_t>(stage_.size());
    stage_.clear();
    return;
  }
  if (!async_) {
    async_ = std::make_unique<Async>();
    async_->thread = std::thread([this] { async_loop(); });
  }
  // Hand the filled buffer to the writer and leave stage_ a fresh one, so
  // append() keeps encoding while the disk write runs behind it.
  std::vector<std::uint8_t> buf;
  buf.reserve(kStageBytes + (64u << 10));
  std::swap(buf, stage_);
  {
    const util::MutexLock lock(async_->mutex);
    const util::Stopwatch stall;
    while (async_->queue.size() >= kMaxQueuedBuffers &&
           async_->error.empty()) {
      async_->space_cv.wait(async_->mutex);
    }
    stats_.append_stall_ms += stall.elapsed_ms();
    if (!async_->error.empty()) {
      throw std::runtime_error(async_->error);
    }
    async_->queue.push_back(std::move(buf));
  }
  async_->work_cv.notify_one();
}

void SpillWriter::async_loop() {
  double write_ms = 0.0;
  std::int64_t bytes = 0;
  try {
    for (;;) {
      std::vector<std::uint8_t> buf;
      {
        const util::MutexLock lock(async_->mutex);
        while (async_->queue.empty() && !async_->done) {
          async_->work_cv.wait(async_->mutex);
        }
        if (async_->queue.empty()) break;  // done and drained
        buf = std::move(async_->queue.front());
        async_->queue.pop_front();
      }
      async_->space_cv.notify_one();
      // file_/file_created_ are writer-thread-only between thread start and
      // join: the staging side never calls ensure_file() in async mode.
      const bool had_file = file_created_;
      write_ms += ensure_file();
      if (!had_file) bytes += static_cast<std::int64_t>(header_bytes_.size());
      write_ms += spill_write(file_.fd(), buf.data(), buf.size());
      bytes += static_cast<std::int64_t>(buf.size());
    }
  } catch (const std::exception& e) {
    const util::MutexLock lock(async_->mutex);
    async_->error = e.what();
    async_->write_ms = write_ms;
    async_->disk_bytes = bytes;
    async_->space_cv.notify_all();  // unblock a stalled flush_stage()
    return;
  }
  const util::MutexLock lock(async_->mutex);
  async_->write_ms = write_ms;
  async_->disk_bytes = bytes;
}

void SpillWriter::drain_async() {
  if (!async_) return;
  {
    const util::MutexLock lock(async_->mutex);
    async_->done = true;
  }
  async_->work_cv.notify_all();
  if (async_->thread.joinable()) async_->thread.join();
  const util::MutexLock lock(async_->mutex);
  stats_.write_ms += async_->write_ms;
  stats_.disk_bytes += async_->disk_bytes;
  async_->write_ms = 0.0;
  async_->disk_bytes = 0;
  if (!async_->error.empty()) {
    throw std::runtime_error(async_->error);
  }
}

SpilledTrace SpillWriter::finish(MicroSec trace_end) {
  CHECK(!finished_, "SpillWriter::finish called twice");
  finished_ = true;
  flush_stage();
  drain_async();
  if (file_created_) {
    const std::int64_t end_value = trace_end;
    const std::uint64_t disk_count = disk_blocks_;
    double ms = pwrite_fd(file_.fd(), &end_value, sizeof end_value,
                          trace_end_offset_);
    ms += pwrite_fd(file_.fd(), &disk_count, sizeof disk_count,
                    block_count_offset_);
    stats_.write_ms += ms;
    file_.own_visible_file();
  }
  stats_.mem_blocks = static_cast<std::uint64_t>(mem_payloads_.size());
  stats_.disk_blocks = disk_blocks_;
  SpilledTrace t;
  t.header = header_;
  t.header.trace_end = trace_end;
  t.blocks = std::move(index_);
  t.mem_payloads_ = std::move(mem_payloads_);
  t.file_ = std::move(file_);
  t.write_stats_ = stats_;
  return t;
}

}  // namespace charisma::trace
