#include "trace/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace charisma::trace {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test name: ctest runs every test as its own concurrent process,
  // so a shared fixed path races across cases.
  std::string path_ =
      ::testing::TempDir() + "charisma_trace_test_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".chtr";

  static TraceFile sample() {
    TraceFile t;
    t.header.compute_nodes = 8;
    t.header.io_nodes = 2;
    t.header.block_size = 4096;
    t.header.seed = 99;
    t.header.trace_start = 10;
    t.header.trace_end = 500000;
    t.header.label = "unit test trace";
    for (int b = 0; b < 3; ++b) {
      TraceBlock block;
      block.node = b;
      block.sent_local = 1000 * b + 5;
      block.recv_global = 1000 * b + 105;
      for (int i = 0; i < 4; ++i) {
        Record r;
        r.kind = EventKind::kRead;
        r.timestamp = 100 * b + i;
        r.job = b;
        r.file = i;
        r.node = b;
        r.offset = i * 100;
        r.bytes = 100;
        block.records.push_back(r);
      }
      t.blocks.push_back(std::move(block));
    }
    return t;
  }
};

TEST_F(TraceFileTest, Counters) {
  const TraceFile t = sample();
  EXPECT_EQ(t.record_count(), 12u);
  EXPECT_EQ(t.data_record_count(), 12u);
}

TEST_F(TraceFileTest, WriteReadRoundTrip) {
  const TraceFile t = sample();
  t.write(path_);
  const TraceFile r = TraceFile::read(path_);
  EXPECT_EQ(r.header.compute_nodes, 8);
  EXPECT_EQ(r.header.io_nodes, 2);
  EXPECT_EQ(r.header.seed, 99u);
  EXPECT_EQ(r.header.label, "unit test trace");
  EXPECT_EQ(r.header.trace_end, 500000);
  ASSERT_EQ(r.blocks.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(r.blocks[b].node, t.blocks[b].node);
    EXPECT_EQ(r.blocks[b].sent_local, t.blocks[b].sent_local);
    EXPECT_EQ(r.blocks[b].recv_global, t.blocks[b].recv_global);
    ASSERT_EQ(r.blocks[b].records.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(r.blocks[b].records[i].timestamp,
                t.blocks[b].records[i].timestamp);
      EXPECT_EQ(r.blocks[b].records[i].offset, t.blocks[b].records[i].offset);
    }
  }
}

TEST_F(TraceFileTest, EmptyTraceRoundTrips) {
  TraceFile t;
  t.header.label = "empty";
  t.write(path_);
  const TraceFile r = TraceFile::read(path_);
  EXPECT_EQ(r.record_count(), 0u);
  EXPECT_EQ(r.header.label, "empty");
}

TEST_F(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(TraceFile::read("/nonexistent/nowhere.chtr"),
               std::runtime_error);
}

TEST_F(TraceFileTest, BadMagicThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTATRACEFILE AT ALL, SORRY";
  out.close();
  EXPECT_THROW(TraceFile::read(path_), std::runtime_error);
}

TEST_F(TraceFileTest, TruncatedFileThrows) {
  sample().write(path_);
  // Chop the file roughly in half.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(TraceFile::read(path_), std::runtime_error);
}

}  // namespace
}  // namespace charisma::trace
