#include "sim/sharded.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace charisma::sim {

namespace {

/// Busy-wait hint for the claim/straggler spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Spin iterations a worker burns between batches before parking.  Window
/// boundaries arrive every few microseconds of wall clock during a busy
/// study, so a short spin keeps workers hot through bursts while an idle
/// run (or a 1-core host) parks them quickly and permanently.
constexpr int kSpinRounds = 1 << 14;

}  // namespace

ShardCoordinator::ShardCoordinator(const ShardedOptions& options)
    : shard_count_(std::max(1, options.shards)),
      lp_count_(std::max(1, options.lp_count)),
      lookahead_(std::max<MicroSec>(1, options.lookahead)),
      horizon_(std::numeric_limits<MicroSec>::min()),
      producer_row_(shard_count_) {
  const auto rows = static_cast<std::size_t>(shard_count_) + 1;
  shards_.reserve(static_cast<std::size_t>(shard_count_));
  for (int s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>(options.queue, rows));
  }
  int workers = options.worker_threads >= 0 ? options.worker_threads
                                            : shard_count_ - 1;
  workers = std::max(0, workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardCoordinator::~ShardCoordinator() {
  stop_.store(true, std::memory_order_release);
  wake_workers();
  for (auto& w : workers_) w.join();
}

void ShardCoordinator::schedule(int lp, Event&& ev) {
  DCHECK(lp >= 0 && lp < lp_count_, "LP ", lp, " outside [0, ", lp_count_,
         ")");
  if (ev.at < horizon_) {
    // Same-window schedule (includes zero-latency self-sends): straight
    // into the dispatch heap, where the (at, seq) merge keeps it ordered
    // against the harvested runs.
    heap_.push_back(HeapEntry{std::move(ev), lp});
    std::push_heap(heap_.begin(), heap_.end(), HeapEntryAfter{});
    ++stats_.direct;
  } else {
    // At or beyond the horizon (the conservative guarantee: any cross-LP
    // effect is at least one message latency away): stage until the next
    // window boundary.
    Shard& sh = *shards_[shard_of_lp(lp)];
    sh.inbox[static_cast<std::size_t>(producer_row_)].push_back(
        std::move(ev));
    ++sh.staged;
    ++stats_.staged;
  }
}

Event* ShardCoordinator::find_front() {
  Event* best = nullptr;
  front_shard_ = -1;
  if (!heap_.empty()) best = &heap_.front().ev;
  for (int s = 0; s < shard_count_; ++s) {
    Shard& sh = *shards_[s];
    if (sh.run_head >= sh.run.size()) continue;
    Event& cand = sh.run[sh.run_head];
    if (best == nullptr || EventAfter{}(*best, cand)) {
      best = &cand;
      front_shard_ = s;
    }
  }
  return best;
}

Event* ShardCoordinator::front() {
  for (;;) {
    Event* ev = find_front();
    if (ev != nullptr) return ev;
    if (!advance_window()) return nullptr;
  }
}

bool ShardCoordinator::next_time(MicroSec* at) {
  Event* ev = front();
  if (ev == nullptr) return false;
  *at = ev->at;
  return true;
}

void ShardCoordinator::drop_front() {
  if (front_shard_ < 0) {
    DCHECK(!heap_.empty(), "drop_front() without a front event");
    producer_row_ = shard_of_lp(heap_.front().lp);
    std::pop_heap(heap_.begin(), heap_.end(), HeapEntryAfter{});
    heap_.pop_back();
  } else {
    producer_row_ = front_shard_;
    ++shards_[static_cast<std::size_t>(front_shard_)]->run_head;
  }
}

bool ShardCoordinator::advance_window() {
  // 1) Flush the SPSC staging rows of every shard that received sends.
  batch_targets_.clear();
  for (int s = 0; s < shard_count_; ++s) {
    Shard& sh = *shards_[s];
    if (sh.staged > 0) {
      sh.staged = 0;
      batch_targets_.push_back(s);
    }
  }
  if (!batch_targets_.empty()) run_batch(Task::kDrain, batch_targets_);

  // 2) Conservative bound: the earliest pending event anywhere, plus the
  // minimum cross-LP latency the caller derived from the network model.
  bool any = false;
  MicroSec global_next = 0;
  for (int s = 0; s < shard_count_; ++s) {
    const Shard& sh = *shards_[s];
    if (sh.has_next && (!any || sh.next < global_next)) {
      global_next = sh.next;
      any = true;
    }
  }
  if (!any) {
    producer_row_ = shard_count_;  // external row until the next run
    return false;
  }
  horizon_ = global_next + lookahead_;

  // 3) Harvest every shard with events below the horizon into its sorted
  // run; at least the global_next shard always qualifies.
  batch_targets_.clear();
  for (int s = 0; s < shard_count_; ++s) {
    const Shard& sh = *shards_[s];
    if (sh.has_next && sh.next < horizon_) batch_targets_.push_back(s);
  }
  run_batch(Task::kHarvest, batch_targets_);
  for (const int s : batch_targets_) {
    stats_.harvested += shards_[static_cast<std::size_t>(s)]->run.size();
  }
  ++stats_.windows;
  return true;
}

void ShardCoordinator::run_batch(Task kind, const std::vector<int>& targets) {
  // Single-target batches (the common case: the average event gap dwarfs
  // the lookahead, so most windows hold one busy shard) skip the atomics
  // entirely; so does a coordinator with no workers (1-core host).
  if (workers_.empty() || targets.size() < 2) {
    for (const int s : targets) {
      run_task(*shards_[static_cast<std::size_t>(s)], kind);
    }
    stats_.inline_tasks += targets.size();
    return;
  }
  outstanding_.store(targets.size(), std::memory_order_relaxed);
  for (const int s : targets) {
    // Release: the claimer's acquire CAS then sees the staged inbox rows
    // (drain) or the freshly written horizon_ (harvest).
    shards_[static_cast<std::size_t>(s)]->task.store(
        kind, std::memory_order_release);
  }
  if (parked_.load(std::memory_order_relaxed) > 0) wake_workers();
  // Claim from the back so the coordinator meets front-scanning workers in
  // the middle instead of racing them shard by shard.
  for (auto it = targets.rbegin(); it != targets.rend(); ++it) {
    try_claim(*it, /*by_worker=*/false);
  }
  // Spin out stragglers: a claimed task is bounded queue surgery, so the
  // coordinator never syscalls at a window boundary.
  while (outstanding_.load(std::memory_order_acquire) != 0) cpu_relax();
}

bool ShardCoordinator::try_claim(int shard, bool by_worker) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  Task expected = sh.task.load(std::memory_order_relaxed);
  if (expected != Task::kDrain && expected != Task::kHarvest) return false;
  if (!sh.task.compare_exchange_strong(expected, Task::kClaimed,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return false;
  }
  run_task(sh, expected);
  if (by_worker) {
    ++sh.tasks_by_worker;
  } else {
    ++stats_.inline_tasks;
  }
  sh.task.store(Task::kNone, std::memory_order_relaxed);
  // Release pairs with the coordinator's straggler-spin acquire, making the
  // task's queue/run/next writes visible before the batch completes.
  outstanding_.fetch_sub(1, std::memory_order_release);
  return true;
}

void ShardCoordinator::run_task(Shard& sh, Task kind) {
  if (kind == Task::kDrain) {
    for (auto& row : sh.inbox) {
      for (Event& ev : row) sh.queue.push(std::move(ev));
      row.clear();  // keeps capacity for the next window
    }
  } else {
    sh.run.clear();
    sh.run_head = 0;
    sh.queue.drain_before(horizon_, sh.run);
  }
  sh.next = 0;
  sh.has_next = sh.queue.next_time(&sh.next);
}

void ShardCoordinator::worker_loop() {
  std::uint64_t seen_epoch = 0;
  int idle = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    bool claimed = false;
    if (outstanding_.load(std::memory_order_acquire) != 0) {
      for (int s = 0; s < shard_count_; ++s) {
        if (try_claim(s, /*by_worker=*/true)) claimed = true;
      }
    }
    if (claimed) {
      idle = 0;
      continue;
    }
    if (++idle < kSpinRounds) {
      cpu_relax();
      if ((idle & 1023) == 0) std::this_thread::yield();
      continue;
    }
    idle = 0;
    parked_.fetch_add(1, std::memory_order_relaxed);
    {
      const util::MutexLock lock(park_mutex_);
      while (!stop_.load(std::memory_order_acquire) &&
             wake_epoch_ == seen_epoch &&
             outstanding_.load(std::memory_order_acquire) == 0) {
        park_cv_.wait(park_mutex_);
      }
      seen_epoch = wake_epoch_;
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ShardCoordinator::wake_workers() {
  {
    const util::MutexLock lock(park_mutex_);
    ++wake_epoch_;
  }
  park_cv_.notify_all();
}

ShardStats ShardCoordinator::stats() const {
  ShardStats out = stats_;
  for (const auto& sh : shards_) out.worker_tasks += sh->tasks_by_worker;
  return out;
}

}  // namespace charisma::sim
