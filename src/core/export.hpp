// Figure data export: writes every reproduced figure's series as
// gnuplot-ready TSV files plus a plot script, so the curves can be compared
// to the paper's figures visually.
#pragma once

#include <string>

#include "core/campaign.hpp"
#include "core/study.hpp"

namespace charisma::core {

struct ExportResult {
  int files_written = 0;
  std::string directory;
  std::string plot_script;  // path of the generated gnuplot script
};

/// Writes fig1.tsv .. fig9.tsv (and iorate.tsv) plus plots.gp into
/// `directory` (created by the caller).  Throws std::runtime_error on I/O
/// failure.
ExportResult export_figures(const StudyOutput& study,
                            const std::string& directory);

/// Writes campaign_studies.tsv (one row per study: identity, digest,
/// counters, measured statistics), campaign_aggregate.tsv (one row per
/// statistic: n, mean, stddev, min, max, 95% CI half-width), and — when the
/// campaign collected figures — one campaign_<figure>.tsv per figure
/// envelope (x, mean, min, max, 95% CI half-width, n per grid row) into
/// `directory` (created by the caller).  Byte-identical for any campaign
/// worker-thread count.  Throws std::runtime_error on I/O failure.
ExportResult export_campaign(const CampaignResult& campaign,
                             const std::string& directory);

}  // namespace charisma::core
