# Empty dependencies file for sec42_file_population.
# This may be replaced when dependencies are built.
