#include "workload/source.hpp"

#include <utility>

#include "util/check.hpp"
#include "workload/checkpoint.hpp"
#include "workload/replay.hpp"

namespace charisma::workload {

namespace {

/// Method "synthetic": the 1993 NAS reconstruction, exactly the legacy
/// generate() + lazy build_scripts() pair behind the seam — the digest
/// differential holds it bit-identical to the legacy Driver path.
class SyntheticSource final : public ScriptedSource {
 public:
  explicit SyntheticSource(const WorkloadConfig& config) {
    workload_ = generate(config);
  }

 protected:
  [[nodiscard]] JobScripts compile_job(std::size_t spec_index) override {
    return build_scripts(workload_.jobs[spec_index], workload_);
  }
};

/// Method "checkpoint": the Daly-interval writer (checkpoint.hpp).
class CheckpointSource final : public ScriptedSource {
 public:
  explicit CheckpointSource(const WorkloadConfig& config) {
    workload_ = build_checkpoint_workload(config);
  }

 protected:
  [[nodiscard]] JobScripts compile_job(std::size_t spec_index) override {
    return build_checkpoint_scripts(workload_.jobs[spec_index],
                                    workload_.config.checkpoint,
                                    workload_.config.scale);
  }
};

using Registry = std::map<std::string, SourceFactory>;

Registry& registry() {
  // Built-ins are seeded on first touch (function-local static: no
  // static-initialization-order hazard, thread-safe construction).
  static Registry* instance = [] {
    auto* reg = new Registry;
    (*reg)["synthetic"] = [](const SourceSpec& spec,
                             const WorkloadConfig& config)
        -> std::unique_ptr<Source> {
      CHECK(spec.path.empty(), "the synthetic method takes no ':<arg>' (got '",
            spec.path, "')");
      return std::make_unique<SyntheticSource>(config);
    };
    (*reg)["checkpoint"] = [](const SourceSpec& spec,
                              const WorkloadConfig& config)
        -> std::unique_ptr<Source> {
      CHECK(spec.path.empty(),
            "the checkpoint method takes no ':<arg>' (got '", spec.path,
            "'); use the --chkpoint-* knobs");
      return std::make_unique<CheckpointSource>(config);
    };
    (*reg)["replay"] = [](const SourceSpec& spec,
                          const WorkloadConfig& config)
        -> std::unique_ptr<Source> {
      CHECK(!spec.path.empty(),
            "the replay method needs a log: --workload=replay:<path>");
      return make_replay_source(spec.path, config);
    };
    return reg;
  }();
  return *instance;
}

}  // namespace

SourceSpec parse_source_spec(const std::string& text) {
  SourceSpec spec;
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    spec.method = text;
  } else {
    spec.method = text.substr(0, colon);
    spec.path = text.substr(colon + 1);
  }
  CHECK(!spec.method.empty(), "empty workload-source method in '", text, "'");
  return spec;
}

std::string to_string(const SourceSpec& spec) {
  return spec.path.empty() ? spec.method : spec.method + ":" + spec.path;
}

void register_source_method(const std::string& name, SourceFactory factory) {
  CHECK(!name.empty() && factory != nullptr,
        "register_source_method needs a name and a factory");
  registry()[name] = std::move(factory);
}

std::vector<std::string> source_method_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Source> load_source(const SourceSpec& spec,
                                    const WorkloadConfig& config) {
  Registry& reg = registry();
  const auto it = reg.find(spec.method);
  if (it == reg.end()) {
    std::string known;
    for (const auto& name : source_method_names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    CHECK(false, "unknown workload source '", spec.method, "' (known: ",
          known, ")");
  }
  std::unique_ptr<Source> source = it->second(spec, config);
  CHECK(source != nullptr, "workload source factory '", spec.method,
        "' returned null");
  return source;
}

std::vector<std::string> ScriptedSource::start_job(std::size_t spec_index) {
  CHECK(spec_index < workload_.jobs.size(), "start_job(", spec_index,
        ") out of range (", workload_.jobs.size(), " jobs)");
  CHECK(active_.find(spec_index) == active_.end(), "job index ", spec_index,
        " started twice");
  JobScripts scripts = compile_job(spec_index);
  ActiveJob job;
  job.cursors.assign(scripts.nodes.size(), 0);
  job.nodes = std::move(scripts.nodes);
  active_.emplace(spec_index, std::move(job));
  return std::move(scripts.paths);
}

Op ScriptedSource::next(std::size_t spec_index, std::int32_t rank) {
  const auto it = active_.find(spec_index);
  CHECK(it != active_.end(), "next() for job index ", spec_index,
        " outside start_job/end_job");
  ActiveJob& job = it->second;
  CHECK(rank >= 0 && static_cast<std::size_t>(rank) < job.nodes.size(),
        "rank ", rank, " out of range for job index ", spec_index, " (",
        job.nodes.size(), " scripts)");
  const auto r = static_cast<std::size_t>(rank);
  std::size_t& cursor = job.cursors[r];
  const std::vector<Op>& ops = job.nodes[r].ops;
  if (cursor >= ops.size()) {
    Op end;
    end.kind = OpKind::kEnd;
    return end;
  }
  return ops[cursor++];
}

void ScriptedSource::end_job(std::size_t spec_index) {
  active_.erase(spec_index);
}

std::vector<std::string> checkpoint_flag_names() {
  return {"chkpoint-size", "chkpoint-bw",    "chkpoint-runtime",
          "chkpoint-mtti", "chkpoint-nodes", "chkpoint-chunk"};
}

void apply_checkpoint_flags(const util::Flags& flags, WorkloadConfig* config) {
  CheckpointConfig& c = config->checkpoint;
  c.size_tib = flags.get_double("chkpoint-size", c.size_tib);
  c.bw_gib_s = flags.get_double("chkpoint-bw", c.bw_gib_s);
  c.runtime_hours = flags.get_double("chkpoint-runtime", c.runtime_hours);
  c.mtti_hours = flags.get_double("chkpoint-mtti", c.mtti_hours);
  c.nodes =
      static_cast<std::int32_t>(flags.get_int("chkpoint-nodes", c.nodes));
  c.chunk_bytes = flags.get_int("chkpoint-chunk", c.chunk_bytes);
}

}  // namespace charisma::workload
