#include "trace/trace_file.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace charisma::trace {

namespace {

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T take(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("trace file truncated");
  return v;
}

void put_string(std::ofstream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string take_string(std::ifstream& in) {
  const auto n = take<std::uint32_t>(in);
  if (n > (1u << 20)) throw std::runtime_error("trace label too long");
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw std::runtime_error("trace file truncated");
  return s;
}

}  // namespace

std::uint64_t TraceFile::record_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : blocks) n += b.records.size();
  return n;
}

std::uint64_t TraceFile::data_record_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : blocks) {
    for (const auto& r : b.records) n += r.is_data() ? 1 : 0;
  }
  return n;
}

namespace {

inline void fnv1a(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
inline void fnv1a_value(std::uint64_t& h, T v) noexcept {
  fnv1a(h, &v, sizeof v);
}

}  // namespace

std::uint64_t TraceFile::digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv1a_value(h, header.compute_nodes);
  fnv1a_value(h, header.io_nodes);
  fnv1a_value(h, header.block_size);
  fnv1a_value(h, header.seed);
  fnv1a_value(h, header.trace_start);
  fnv1a_value(h, header.trace_end);
  fnv1a(h, header.label.data(), header.label.size());
  std::uint8_t enc[Record::kEncodedSize];
  for (const auto& b : blocks) {
    fnv1a_value(h, b.node);
    fnv1a_value(h, b.sent_local);
    fnv1a_value(h, b.recv_global);
    fnv1a_value(h, static_cast<std::uint32_t>(b.records.size()));
    for (const auto& r : b.records) {
      r.encode(enc);
      fnv1a(h, enc, sizeof enc);
    }
  }
  return h;
}

void TraceFile::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(out, kVersion);
  put<std::int32_t>(out, header.compute_nodes);
  put<std::int32_t>(out, header.io_nodes);
  put<std::int64_t>(out, header.block_size);
  put<std::uint64_t>(out, header.seed);
  put<std::int64_t>(out, header.trace_start);
  put<std::int64_t>(out, header.trace_end);
  put_string(out, header.label);

  put<std::uint64_t>(out, blocks.size());
  std::vector<std::uint8_t> buf;
  for (const auto& b : blocks) {
    put<std::int32_t>(out, b.node);
    put<std::int64_t>(out, b.sent_local);
    put<std::int64_t>(out, b.recv_global);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(b.records.size()));
    buf.resize(b.records.size() * Record::kEncodedSize);
    std::uint8_t* p = buf.data();
    for (const auto& r : b.records) {
      r.encode(p);
      p += Record::kEncodedSize;
    }
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

namespace {

TraceFile read_impl(const std::string& path, bool tolerant,
                    bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  // Size up front: corrupt counts are bounded against it below so a flipped
  // length field is rejected instead of driving a multi-gigabyte allocation.
  const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
  in.seekg(0);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, TraceFile::kMagic, sizeof magic) != 0) {
    throw std::runtime_error("not a CHARISMA trace: " + path);
  }
  if (take<std::uint32_t>(in) != TraceFile::kVersion) {
    throw std::runtime_error("unsupported trace version");
  }
  TraceFile t;
  t.header.compute_nodes = take<std::int32_t>(in);
  t.header.io_nodes = take<std::int32_t>(in);
  t.header.block_size = take<std::int64_t>(in);
  t.header.seed = take<std::uint64_t>(in);
  t.header.trace_start = take<std::int64_t>(in);
  t.header.trace_end = take<std::int64_t>(in);
  t.header.label = take_string(in);

  const auto nblocks = take<std::uint64_t>(in);
  // Each block costs at least its 24-byte stamp on disk, which bounds any
  // honest nblocks; reserve no more than that so a corrupt count cannot
  // balloon the allocation (the loop below still detects truncation).
  const std::uint64_t max_plausible_blocks =
      static_cast<std::uint64_t>(file_size) / 24 + 1;
  t.blocks.reserve(std::min(nblocks, max_plausible_blocks));
  std::vector<std::uint8_t> buf;
  for (std::uint64_t i = 0; i < nblocks; ++i) {
    TraceBlock b;
    try {
      b.node = take<std::int32_t>(in);
      b.sent_local = take<std::int64_t>(in);
      b.recv_global = take<std::int64_t>(in);
      const auto count = take<std::uint32_t>(in);
      const std::int64_t pos = static_cast<std::int64_t>(in.tellg());
      if (pos < 0 ||
          static_cast<std::int64_t>(count) >
              (file_size - pos) / static_cast<std::int64_t>(
                                      Record::kEncodedSize)) {
        throw std::runtime_error("trace file truncated");
      }
      buf.resize(static_cast<std::size_t>(count) * Record::kEncodedSize);
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
      if (!in) throw std::runtime_error("trace file truncated");
    } catch (const std::runtime_error&) {
      if (!tolerant) throw;
      if (truncated != nullptr) *truncated = true;
      return t;  // keep every complete block before the crash point
    }
    const std::uint32_t count =
        static_cast<std::uint32_t>(buf.size() / Record::kEncodedSize);
    b.records.reserve(count);
    const std::uint8_t* p = buf.data();
    for (std::uint32_t r = 0; r < count; ++r) {
      b.records.push_back(Record::decode(p));
      p += Record::kEncodedSize;
    }
    t.blocks.push_back(std::move(b));
  }
  return t;
}

}  // namespace

TraceFile TraceFile::read(const std::string& path) {
  return read_impl(path, /*tolerant=*/false, nullptr);
}

TraceFile TraceFile::read_tolerant(const std::string& path, bool* truncated) {
  return read_impl(path, /*tolerant=*/true, truncated);
}

}  // namespace charisma::trace
