#include "trace/postprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/clock.hpp"
#include "util/rng.hpp"

namespace charisma::trace {
namespace {

/// Builds a trace whose records were stamped by drifting clocks, with
/// block double-timestamps, returning the true times alongside.
struct SyntheticTrace {
  TraceFile trace;
  std::vector<MicroSec> true_times;  // one per record, block order
};

SyntheticTrace make_drifted_trace(std::uint64_t seed, int nodes,
                                  int blocks_per_node,
                                  int records_per_block) {
  util::Rng rng(seed);
  SyntheticTrace out;
  std::vector<sim::DriftingClock> clocks;
  clocks.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    clocks.push_back(sim::DriftingClock::random(rng, 0, 150.0, 2000));
  }
  constexpr MicroSec kLatency = 300;
  // All nodes are active over the SAME window, so their records genuinely
  // interleave; by late in the window the clock drift (1e8 us * 150 ppm ~
  // 15 ms) dwarfs the inter-record spacing and scrambles the raw order.
  for (int b = 0; b < blocks_per_node; ++b) {
    for (int n = 0; n < nodes; ++n) {
      TraceBlock block;
      block.node = n;
      MicroSec t = static_cast<MicroSec>(b) * records_per_block * 2000 +
                   n * 40;
      for (int i = 0; i < records_per_block; ++i) {
        t += 500 + static_cast<MicroSec>(rng.uniform(1500));
        Record r;
        r.kind = EventKind::kRead;
        r.node = n;
        r.job = 1;
        r.file = 1;
        // Stretch the whole experiment across a long window so drift
        // accumulates: scale true time up by 1000.
        const MicroSec true_t = t * 1000;
        r.timestamp = clocks[static_cast<std::size_t>(n)].local_time(true_t);
        block.records.push_back(r);
        out.true_times.push_back(true_t);
      }
      block.sent_local =
          clocks[static_cast<std::size_t>(n)].local_time(t * 1000 + 10);
      block.recv_global = t * 1000 + 10 + kLatency;
      out.trace.blocks.push_back(std::move(block));
    }
  }
  return out;
}

TEST(FitClocks, RecoversDriftAndOffset) {
  const auto synth = make_drifted_trace(7, 4, 50, 10);
  const auto fits = fit_clocks(synth.trace);
  ASSERT_EQ(fits.size(), 4u);
  for (const auto& [node, fit] : fits) {
    // Linear fit should land very close to the inverse of the clock model.
    EXPECT_NEAR(fit.scale, 1.0, 5e-4) << "node " << node;
    EXPECT_EQ(fit.samples, 50u);
  }
}

TEST(FitClocks, SingleBlockFallsBackToOffset) {
  TraceFile t;
  TraceBlock b;
  b.node = 0;
  b.sent_local = 1000;
  b.recv_global = 1500;
  t.blocks.push_back(b);
  const auto fits = fit_clocks(t);
  ASSERT_EQ(fits.count(0), 1u);
  EXPECT_DOUBLE_EQ(fits.at(0).scale, 1.0);
  EXPECT_DOUBLE_EQ(fits.at(0).offset, 500.0);
}

TEST(FitClocks, DegenerateSamplesKeepUnitScale) {
  TraceFile t;
  for (int i = 0; i < 3; ++i) {
    TraceBlock b;
    b.node = 0;
    b.sent_local = 1000;  // all at the same instant
    b.recv_global = 1200;
    t.blocks.push_back(b);
  }
  const auto fits = fit_clocks(t);
  EXPECT_DOUBLE_EQ(fits.at(0).scale, 1.0);
}

TEST(Postprocess, OutputIsChronologicallySorted) {
  const auto synth = make_drifted_trace(11, 6, 30, 8);
  const SortedTrace sorted = postprocess(synth.trace);
  EXPECT_EQ(sorted.size(), synth.trace.record_count());
  for (std::size_t i = 1; i < sorted.records.size(); ++i) {
    EXPECT_LE(sorted.records[i - 1].timestamp, sorted.records[i].timestamp);
  }
}

TEST(Postprocess, CorrectionReducesOrderInversions) {
  const auto synth = make_drifted_trace(13, 8, 40, 10);
  // Raw (uncorrected) timestamps vs corrected ones, against true times.
  std::vector<MicroSec> raw;
  for (const auto& b : synth.trace.blocks) {
    for (const auto& r : b.records) raw.push_back(r.timestamp);
  }
  const auto fits = fit_clocks(synth.trace);
  std::vector<MicroSec> corrected;
  for (const auto& b : synth.trace.blocks) {
    for (const auto& r : b.records) {
      corrected.push_back(fits.at(b.node).apply(r.timestamp));
    }
  }
  const auto raw_inv = count_order_inversions(synth.true_times, raw);
  const auto fixed_inv = count_order_inversions(synth.true_times, corrected);
  EXPECT_LT(fixed_inv, raw_inv / 4) << "raw=" << raw_inv
                                    << " corrected=" << fixed_inv;
}

TEST(Postprocess, ServiceNodeRecordsStayExact) {
  const auto synth = make_drifted_trace(17, 3, 10, 4);
  TraceFile t = synth.trace;
  TraceBlock job;
  job.node = kServiceNode;
  job.sent_local = 123456;
  job.recv_global = 123456;
  Record r;
  r.kind = EventKind::kJobStart;
  r.node = kServiceNode;
  r.timestamp = 123456;
  job.records.push_back(r);
  t.blocks.push_back(job);
  const SortedTrace sorted = postprocess(t);
  bool found = false;
  for (const auto& rec : sorted.records) {
    if (rec.kind == EventKind::kJobStart) {
      EXPECT_EQ(rec.timestamp, 123456);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CountOrderInversions, KnownCases) {
  EXPECT_EQ(count_order_inversions({1, 2, 3}, {10, 20, 30}), 0u);
  EXPECT_EQ(count_order_inversions({1, 2, 3}, {30, 20, 10}), 3u);
  EXPECT_EQ(count_order_inversions({1, 2, 3}, {10, 30, 20}), 1u);
  EXPECT_EQ(count_order_inversions({}, {}), 0u);
  EXPECT_EQ(count_order_inversions({1}, {1}), 0u);
  EXPECT_EQ(count_order_inversions({1, 2}, {1}), 0u);  // size mismatch -> 0
}

TEST(ClockFit, ApplyIsAffine) {
  ClockFit fit;
  fit.scale = 1.0001;
  fit.offset = -250.0;
  EXPECT_EQ(fit.apply(0), -250);
  EXPECT_EQ(fit.apply(1'000'000), static_cast<MicroSec>(
                                      std::llround(1.0001 * 1e6 - 250)));
}

}  // namespace
}  // namespace charisma::trace
