# Empty compiler generated dependencies file for fig1_job_concurrency.
# This may be replaced when dependencies are built.
