// Single-pass multi-capacity cache sweeps.
//
// LRU has the inclusion property (Mattson et al., "Evaluation techniques
// for storage hierarchies", 1970): at every instant a C-buffer LRU cache
// holds exactly the C most-recently-used blocks, so the caches of every
// capacity are nested and one pass can answer all buffer counts at once.
// An access hits a C-buffer cache exactly when the block's position in the
// full LRU stack is < C — so the only question per access is *which band*
// between consecutive swept capacities the position falls in.
//
// SegmentedLruStack answers that band in O(1) without ever computing the
// exact position: the LRU list is partitioned into segments at the swept
// capacities by sentinel nodes, every resident block carries its segment
// index, and an access repairs the boundaries with at most one constant-
// time sentinel swap per segment (positions only ever shift by one).
// Blocks pushed past the largest capacity are evicted outright — beyond it
// they are indistinguishable from cold — which keeps the structure exactly
// as big as the largest simulated cache.  Hits in the top segment (the
// common case: most reuse is recent) move to the front with no boundary
// repair at all, making the per-access cost comparable to a single
// BlockCache access instead of one per swept capacity.
//
// FIFO has no inclusion property (a bigger FIFO cache is not a superset of
// a smaller one), so each capacity's cache must be stepped individually —
// but FIFO never reorders on a hit, so an inserted block survives exactly
// `capacity` further insertions into its (capacity, node) queue.  That
// makes eviction implicit: fifo_io_group stamps every insertion with the
// queue's running sequence number and keeps one shared hash entry per
// block holding its stamps for all capacities, so presence is a stamp
// comparison, evictions write nothing, and one probe per block access
// covers every config instead of one full hash-map per config per pass.
// The IP-aware policy (stateful eviction scans) stays on the generic
// batched replay in simulators.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/simulators.hpp"

namespace charisma::cache {

/// One LRU stack standing in for LRU caches of several capacities at once.
/// Constructed with the sorted distinct capacities; each access reports the
/// index of the smallest capacity that would have hit (its "bucket"), or
/// kMiss (== capacities.size()) when even the largest missed.
class SegmentedLruStack {
 public:
  explicit SegmentedLruStack(const std::vector<std::size_t>& capacities);

  /// Bucket the access would land in, without touching the stack — the
  /// compute-node simulation's contains-before-access semantics.
  [[nodiscard]] std::size_t peek(const BlockKey& key) const {
    const std::size_t slot = probe(key);
    if (slots_[slot].node == kEmptySlot) return miss_bucket();
    return nodes_[slots_[slot].node].seg + zero_offset_;
  }
  /// Moves (or inserts) the block to the top of the stack.
  void touch(const BlockKey& key);
  /// peek + touch with a single probe — the I/O-node simulation's
  /// access-as-you-go semantics.
  std::size_t access(const BlockKey& key);

  /// The miss bucket: the number of swept capacities (a zero capacity,
  /// which can never hit, counts here but gets no segment).
  [[nodiscard]] std::size_t miss_bucket() const noexcept {
    return segments_ + zero_offset_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  /// Slab node: real blocks and the per-capacity boundary sentinels share
  /// the recency list.  Sentinel i (slab index i < segments_) sits right
  /// after the last block that capacity capacities[i] would hold.
  struct Node {
    BlockKey key;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t seg = 0;
  };
  struct Slot {
    BlockKey key;
    std::uint32_t node = kEmptySlot;
  };

  [[nodiscard]] std::size_t probe(const BlockKey& key) const {
    std::size_t i = BlockKeyHash{}(key) & mask_;
    while (slots_[i].node != kEmptySlot && !(slots_[i].key == key)) {
      i = (i + 1) & mask_;
    }
    return i;
  }
  void unlink(std::uint32_t idx);
  void insert_before(std::uint32_t pos, std::uint32_t idx);
  void push_front(std::uint32_t idx);
  void erase_slot_for(const BlockKey& key);
  /// Re-front an existing node from segment `seg` (hit path).
  void promote(std::uint32_t idx, std::uint32_t seg);
  /// Inserts a new block at the front, cascading one block across each full
  /// boundary and evicting past the largest capacity.
  void insert_cold(const BlockKey& key);

  std::vector<std::size_t> capacities_;  // nonzero, strictly increasing
  std::size_t segments_ = 0;             // == capacities_.size()
  std::size_t zero_offset_ = 0;          // 1 when a zero capacity was swept
  std::size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<Node> nodes_;  // [0, segments_) sentinels, rest blocks
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;
  std::size_t size_ = 0;  // resident blocks (sentinels excluded)
};

namespace detail {

/// Figure 8 in one pass: exact ComputeCacheResult for every buffer count in
/// `buffer_counts` (sorted ascending, distinct), per-(job, node) LRU caches
/// of `block_size` blocks.  Bit-identical to replay_compute_cache run once
/// per count.
[[nodiscard]] std::vector<ComputeCacheResult> stack_compute_group(
    const ReplayLog& ops, std::int64_t block_size,
    const std::vector<std::size_t>& buffer_counts);

/// Figure 9 / §4.8 in one pass: exact IoNodeSimResult for every per-node
/// buffer count in `per_node_buffers` (sorted ascending, distinct).  `shape`
/// supplies the shared topology — io_nodes, block_size and the front-cache
/// setting; its policy must be kLru and its total_buffers is ignored.
/// Bit-identical to replay_io_cache run once per count.
[[nodiscard]] std::vector<IoNodeSimResult> stack_io_group(
    const ReplayLog& ops, const IoNodeSimConfig& shape,
    const std::vector<std::size_t>& per_node_buffers);

/// The FIFO analogue of stack_io_group: one shared-hash pass over the op
/// stream covering every per-node buffer count (at most 16 of them).
/// `shape.policy` must be kFifo.  Bit-identical to replay_io_cache run once
/// per count.
[[nodiscard]] std::vector<IoNodeSimResult> fifo_io_group(
    const ReplayLog& ops, const IoNodeSimConfig& shape,
    const std::vector<std::size_t>& per_node_buffers);

}  // namespace detail

}  // namespace charisma::cache
