// Clang Thread Safety Analysis attribute macros.
//
// Under clang with -Wthread-safety these expand to the static-analysis
// attributes that let the compiler prove every access to a mutex-guarded
// member happens under its mutex; everywhere else they expand to nothing.
// Used together with util::Mutex (util/mutex.hpp), the one lockable type in
// the tree the analysis understands (libstdc++'s std::mutex carries no
// capability annotations).
//
// Built with -DCHARISMA_THREAD_SAFETY=ON (clang only) the warnings are
// errors; see docs/static-analysis.md for the full story.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CHARISMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CHARISMA_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define CHARISMA_CAPABILITY(x) CHARISMA_THREAD_ANNOTATION(capability(x))

#define CHARISMA_SCOPED_CAPABILITY CHARISMA_THREAD_ANNOTATION(scoped_lockable)

#define CHARISMA_GUARDED_BY(x) CHARISMA_THREAD_ANNOTATION(guarded_by(x))

#define CHARISMA_PT_GUARDED_BY(x) CHARISMA_THREAD_ANNOTATION(pt_guarded_by(x))

#define CHARISMA_ACQUIRE(...) \
  CHARISMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define CHARISMA_RELEASE(...) \
  CHARISMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define CHARISMA_TRY_ACQUIRE(...) \
  CHARISMA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define CHARISMA_REQUIRES(...) \
  CHARISMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define CHARISMA_EXCLUDES(...) \
  CHARISMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define CHARISMA_RETURN_CAPABILITY(x) \
  CHARISMA_THREAD_ANNOTATION(lock_returned(x))

#define CHARISMA_NO_THREAD_SAFETY_ANALYSIS \
  CHARISMA_THREAD_ANNOTATION(no_thread_safety_analysis)
