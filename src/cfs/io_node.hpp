// CFS I/O-node server.
//
// Each I/O node owns one disk and (paper §2.4: "Only the I/O nodes have a
// buffer cache") an optional LRU block cache.  The live cache affects only
// request *timing* in the running system; the paper's cache experiments
// (Figures 8 and 9) are separate trace-driven simulations in src/cache.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cfs/types.hpp"
#include "disk/disk.hpp"
#include "util/units.hpp"

namespace charisma::cfs {

struct IoNodeParams {
  /// Number of 4 KB cache buffers; 0 disables the live cache.
  std::size_t cache_buffers = 0;
  std::int64_t block_size = util::kBlockSize;
  /// Server CPU time to handle one block request.
  MicroSec request_overhead = 300;
};

class IoNode {
 public:
  IoNode(int id, disk::Disk& disk, IoNodeParams params = {});

  [[nodiscard]] int id() const noexcept { return id_; }

  /// Services `bytes` at `disk_offset` belonging to (file, file_block),
  /// arriving at `arrival`.  Returns the completion time.
  MicroSec serve_read(MicroSec arrival, FileId file, std::int64_t file_block,
                      std::int64_t disk_offset, std::int64_t bytes);
  MicroSec serve_write(MicroSec arrival, FileId file, std::int64_t file_block,
                       std::int64_t disk_offset, std::int64_t bytes);

  /// Drops any cached blocks of `file` (called on truncate/delete).
  void invalidate(FileId file);

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t disk_reads() const noexcept { return disk_reads_; }
  [[nodiscard]] std::uint64_t disk_writes() const noexcept {
    return disk_writes_;
  }

 private:
  struct BlockKey {
    FileId file;
    std::int64_t block;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const noexcept {
      return std::hash<std::int64_t>()((static_cast<std::int64_t>(k.file) << 40) ^
                                       k.block);
    }
  };

  [[nodiscard]] bool cache_lookup(const BlockKey& key);
  void cache_insert(const BlockKey& key);

  int id_;
  disk::Disk* disk_;
  IoNodeParams params_;
  // LRU: most recent at front.
  std::list<BlockKey> lru_;
  std::unordered_map<BlockKey, std::list<BlockKey>::iterator, BlockKeyHash>
      cache_;
  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t disk_reads_ = 0;
  std::uint64_t disk_writes_ = 0;
};

}  // namespace charisma::cfs
