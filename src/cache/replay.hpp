// The cache sweeps' op source (ROADMAP item 3).
//
// Cache sweeps are the one trace consumer that needs *multiple* passes, so a
// single push-based sink cannot feed them.  Instead, the streaming pipeline
// spills the pre-filtered replay ops (ReplayOpSink, a RecordSink) to a
// private temp file during the one postprocessing merge, and ReplayLog
// replays that file chunk-by-chunk per pass — each traversal opens its own
// stream, so parallel sweep passes stay safe, and resident memory per pass
// is one fixed-size chunk instead of the op vector.
//
// The read-only-session flag cannot be known while spilling (sessions finish
// only after the last record), so ops are spilled without it and the flag is
// resolved during traversal with the same per-(job, file) memoized set
// lookup prepare_replay uses — the streams are identical record for record.
//
// ReplayLog also wraps a plain in-memory op vector (the materialized
// reference path), so every simulator below it has exactly one op-source
// type and the two trace modes cannot drift.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/block_cache.hpp"
#include "trace/spill.hpp"
#include "util/check.hpp"

namespace charisma::cache {

using cfs::FileId;
using cfs::JobId;
using cfs::NodeId;
using SessionKey = std::pair<JobId, FileId>;

namespace detail {

/// One replayable data request, pre-filtered from the trace: only reads and
/// writes with positive byte counts survive, and the read-only-session
/// lookup is resolved once instead of per (config, record).
struct ReplayOp {
  FileId file = cfs::kNoFile;
  JobId job = cfs::kNoJob;
  NodeId node = 0;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  bool is_read = false;
  bool read_only_session = false;
};

}  // namespace detail

/// A finished on-disk op spill: raw detail::ReplayOp frames, written and
/// read back by the same binary within one run.  Owns (and deletes) the
/// backing file.  The read_only_session field in the frames is unresolved.
class ReplayOpSpill {
 public:
  ReplayOpSpill() = default;
  ReplayOpSpill(std::string path, std::uint64_t count)
      : path_(std::move(path)), count_(count), owns_file_(true) {}
  ReplayOpSpill(ReplayOpSpill&& other) noexcept
      : path_(std::move(other.path_)),
        count_(other.count_),
        owns_file_(std::exchange(other.owns_file_, false)) {
    other.path_.clear();
    other.count_ = 0;
  }
  ReplayOpSpill& operator=(ReplayOpSpill&& other) noexcept {
    if (this != &other) {
      remove_backing_file();
      path_ = std::move(other.path_);
      count_ = other.count_;
      owns_file_ = std::exchange(other.owns_file_, false);
      other.path_.clear();
      other.count_ = 0;
    }
    return *this;
  }
  ReplayOpSpill(const ReplayOpSpill&) = delete;
  ReplayOpSpill& operator=(const ReplayOpSpill&) = delete;
  ~ReplayOpSpill() { remove_backing_file(); }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  void remove_backing_file() noexcept {
    if (owns_file_ && !path_.empty()) std::remove(path_.c_str());
    owns_file_ = false;
  }
  std::string path_;
  std::uint64_t count_ = 0;
  bool owns_file_ = false;
};

/// RecordSink that filters the postprocessed stream down to replayable data
/// requests and spills them as raw frames.  finish() hands out the spill.
class ReplayOpSink final : public trace::RecordSink {
 public:
  explicit ReplayOpSink(std::string path);
  void on_record(const trace::Record& r) override;
  [[nodiscard]] ReplayOpSpill finish();

 private:
  void flush_buffer();

  std::string path_;
  std::ofstream out_;
  std::vector<detail::ReplayOp> buf_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// The sweeps' one op-source type: either a borrowed/owned in-memory op
/// vector (flags already resolved — the materialized reference path) or an
/// owned op spill replayed from disk with flags resolved per traversal.
/// Traversals are const and open private streams, so concurrent passes from
/// pool workers are safe in both modes.
class ReplayLog {
 public:
  /// Ops streamed to traversal callbacks per chunk; bounds file-mode
  /// resident memory and gives multi-shape passes their L2-hot replay unit.
  static constexpr std::size_t kChunkOps = 4096;

  ReplayLog() = default;
  /// In-memory log; `ops` must carry resolved read_only_session flags.
  explicit ReplayLog(std::vector<detail::ReplayOp> ops)
      : ops_(std::move(ops)) {}
  /// File-backed log.  `read_only` is borrowed and must outlive the log; it
  /// resolves each op's read_only_session flag during traversal.
  ReplayLog(ReplayOpSpill spill, const std::set<SessionKey>& read_only)
      : spill_(std::move(spill)), read_only_(&read_only), file_mode_(true) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return file_mode_ ? static_cast<std::size_t>(spill_.count())
                      : ops_.size();
  }

  /// Calls f(const detail::ReplayOp*, std::size_t) for successive chunks of
  /// at most kChunkOps ops, in stream order.
  template <typename F>
  void for_each_chunk(F&& f) const {
    if (!file_mode_) {
      for (std::size_t base = 0; base < ops_.size(); base += kChunkOps) {
        const std::size_t n = std::min(kChunkOps, ops_.size() - base);
        f(ops_.data() + base, n);
      }
      return;
    }
    std::ifstream in(spill_.path(), std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open replay spill: " + spill_.path());
    }
    std::vector<detail::ReplayOp> buf(
        std::min<std::size_t>(kChunkOps,
                              static_cast<std::size_t>(spill_.count())));
    // Per-traversal memo, same semantics as prepare_replay: ops arrive in
    // bursts for one (job, file), so one set lookup covers the run.
    SessionKey last_key{cfs::kNoJob, cfs::kNoFile};
    bool last_read_only = false;
    std::uint64_t remaining = spill_.count();
    while (remaining > 0) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kChunkOps, remaining));
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(n * sizeof(detail::ReplayOp)));
      CHECK(static_cast<std::size_t>(in.gcount()) ==
                n * sizeof(detail::ReplayOp),
            "replay spill truncated: ", spill_.path());
      for (std::size_t i = 0; i < n; ++i) {
        detail::ReplayOp& op = buf[i];
        const SessionKey key{op.job, op.file};
        if (key != last_key) {
          last_key = key;
          last_read_only = read_only_->find(key) != read_only_->end();
        }
        op.read_only_session = last_read_only;
      }
      f(static_cast<const detail::ReplayOp*>(buf.data()), n);
      remaining -= n;
    }
  }

  /// Calls f(const detail::ReplayOp&) for every op in stream order.
  template <typename F>
  void for_each(F&& f) const {
    for_each_chunk([&](const detail::ReplayOp* ops, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) f(ops[i]);
    });
  }

 private:
  std::vector<detail::ReplayOp> ops_;  // in-memory mode
  ReplayOpSpill spill_;                // file mode
  const std::set<SessionKey>* read_only_ = nullptr;
  bool file_mode_ = false;
};

}  // namespace charisma::cache
