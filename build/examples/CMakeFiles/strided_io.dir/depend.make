# Empty dependencies file for strided_io.
# This may be replaced when dependencies are built.
