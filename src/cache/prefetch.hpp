// Prefetching and write-behind extensions to the I/O-node cache simulation.
//
// The paper's related work (§2.3) leans on prefetching: Kotz & Ellis showed
// caching+prefetching works in multiprocessor file systems, and Miller &
// Katz — whose Cray workload did NOT benefit from caching — still "noticed
// a benefit from prefetching and write-behind".  These simulators quantify
// both on the CHARISMA trace:
//
//  * Prefetcher: on a miss of block b (by file), optionally fetches b+1..
//    b+depth into the cache ("one-block lookahead" generalized).  Useful
//    when access is sequential at the block level — which interleaved
//    sub-block requests are, in aggregate.
//  * Write-behind: dirty blocks are buffered and written back on eviction
//    instead of written through, coalescing the many small writes to one
//    block into one disk write (the paper's §4.8 motivation: "combine
//    several small requests into a few larger requests").
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "cache/simulators.hpp"

namespace charisma::cache {

struct PrefetchConfig {
  int io_nodes = 10;
  std::size_t total_buffers = 4000;
  Policy policy = Policy::kLru;
  std::int64_t block_size = util::kBlockSize;
  /// Blocks fetched ahead on each miss (0 disables prefetching).
  int prefetch_depth = 0;
  /// Only prefetch when the previous access to the file was the block
  /// immediately before (sequential detector), instead of on every miss.
  bool sequential_detector = true;
};

struct PrefetchResult {
  std::uint64_t requests = 0;
  std::uint64_t request_hits = 0;
  std::uint64_t prefetches_issued = 0;   // extra disk fetches
  std::uint64_t prefetches_used = 0;     // later hit before eviction
  double hit_rate = 0.0;
  /// Fraction of issued prefetches that were used (accuracy).
  double prefetch_accuracy = 0.0;

  [[nodiscard]] std::string describe() const;
};

/// Replays the trace through prefetching I/O-node caches.
[[nodiscard]] PrefetchResult simulate_prefetch(const trace::SortedTrace& trace,
                                               const PrefetchConfig& config);

struct WriteBehindConfig {
  int io_nodes = 10;
  /// Dirty write-buffer blocks per I/O node.
  std::size_t buffers_per_node = 50;
  std::int64_t block_size = util::kBlockSize;
};

struct WriteBehindResult {
  std::uint64_t write_requests = 0;
  std::uint64_t blocks_touched = 0;     // block-level write accesses
  std::uint64_t disk_writes_through = 0;  // write-through baseline
  std::uint64_t disk_writes_behind = 0;   // with coalescing
  /// Disk-write reduction from coalescing small writes per block.
  [[nodiscard]] double reduction() const noexcept {
    return disk_writes_through
               ? 1.0 - static_cast<double>(disk_writes_behind) /
                           static_cast<double>(disk_writes_through)
               : 0.0;
  }
  [[nodiscard]] std::string describe() const;
};

/// Replays the trace's writes through per-I/O-node write-behind buffers.
[[nodiscard]] WriteBehindResult simulate_write_behind(
    const trace::SortedTrace& trace, const WriteBehindConfig& config);

}  // namespace charisma::cache
