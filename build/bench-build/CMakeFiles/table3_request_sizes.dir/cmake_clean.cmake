file(REMOVE_RECURSE
  "../bench/table3_request_sizes"
  "../bench/table3_request_sizes.pdb"
  "CMakeFiles/table3_request_sizes.dir/table3_request_sizes.cpp.o"
  "CMakeFiles/table3_request_sizes.dir/table3_request_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_request_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
