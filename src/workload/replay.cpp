#include "workload/replay.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace charisma::workload {

namespace {

// Bounded-allocation limits: everything below is checked BEFORE any
// allocation is sized from a parsed value, so a garbage byte costs a typed
// error, never memory.
constexpr std::size_t kMaxLineBytes = 4096;
constexpr std::int64_t kMaxNodes = std::int64_t{1} << 20;
constexpr std::int64_t kMaxIoBytes = std::int64_t{1} << 50;
constexpr std::int64_t kMaxTime = std::int64_t{1} << 60;
constexpr std::int64_t kMaxJobs = std::int64_t{1} << 24;

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "chwl line " << line_no << ": " << what;
  throw ReplayFormatError(os.str());
}

/// Reads '\n'-terminated lines off a raw streambuf, tracking the byte
/// offset of each line's start (for job-region indexing) and whether the
/// final line was terminated ('complete') — an unterminated tail is how a
/// torn log presents.
class LineReader {
 public:
  LineReader(std::istream& in, std::size_t line_no, std::int64_t pos)
      : buf_(in.rdbuf()), line_no_(line_no), pos_(pos) {}

  /// False at EOF with nothing read; otherwise `line()` holds the content.
  bool next() {
    line_.clear();
    complete_ = false;
    line_begin_ = pos_;
    ++line_no_;
    int c = 0;
    while ((c = buf_->sbumpc()) != std::char_traits<char>::eof()) {
      ++pos_;
      if (c == '\n') {
        complete_ = true;
        return true;
      }
      if (c == '\r') continue;  // tolerate CRLF line endings
      if (line_.size() >= kMaxLineBytes) {
        fail(line_no_, "line exceeds " + std::to_string(kMaxLineBytes) +
                           " bytes");
      }
      line_.push_back(static_cast<char>(c));
    }
    return !line_.empty();
  }

  [[nodiscard]] const std::string& line() const noexcept { return line_; }
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] std::size_t line_no() const noexcept { return line_no_; }
  [[nodiscard]] std::int64_t line_begin() const noexcept {
    return line_begin_;
  }
  [[nodiscard]] std::int64_t pos() const noexcept { return pos_; }

 private:
  std::streambuf* buf_;
  std::string line_;
  std::size_t line_no_ = 0;
  std::int64_t pos_ = 0;
  std::int64_t line_begin_ = 0;
  bool complete_ = false;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

[[nodiscard]] bool is_noise(const std::string& line) {
  const std::size_t i = line.find_first_not_of(" \t");
  return i == std::string::npos || line[i] == '#';
}

std::int64_t parse_int(const std::string& token, std::int64_t lo,
                       std::int64_t hi, std::size_t line_no,
                       const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (token.empty() || errno == ERANGE ||
      end != token.c_str() + token.size()) {
    fail(line_no, std::string(what) + " is not a number: '" + token + "'");
  }
  if (v < lo || v > hi) {
    fail(line_no, std::string(what) + " " + token + " out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

struct ParsedOp {
  std::int32_t rank = 0;
  Op op;
  std::string path;  // empty for think/barrier
};

/// Parses (and fully range-checks) one `op` line.  `nodes` bounds the rank.
ParsedOp parse_op_line(const std::vector<std::string>& t, std::size_t line_no,
                       std::int32_t nodes) {
  if (t.size() < 3) fail(line_no, "op line needs at least a rank and a verb");
  ParsedOp parsed;
  parsed.rank = static_cast<std::int32_t>(
      parse_int(t[1], 0, nodes - 1, line_no, "op rank"));
  const std::string& verb = t[2];
  const auto want = [&](std::size_t n) {
    if (t.size() != n) {
      fail(line_no, "op '" + verb + "' takes " + std::to_string(n - 3) +
                        " operand(s), got " + std::to_string(t.size() - 3));
    }
  };
  Op& op = parsed.op;
  if (verb == "think") {
    want(4);
    op.kind = OpKind::kThink;
    op.think = parse_int(t[3], 0, kMaxTime, line_no, "think");
  } else if (verb == "barrier") {
    want(4);
    op.kind = OpKind::kBarrier;
    op.think = parse_int(t[3], 0, kMaxTime, line_no, "think");
  } else if (verb == "open") {
    want(7);
    op.kind = OpKind::kOpen;
    op.flags =
        static_cast<std::uint8_t>(parse_int(t[3], 0, 255, line_no, "flags"));
    op.mode =
        static_cast<IoMode>(parse_int(t[4], 0, 3, line_no, "io mode"));
    op.think = parse_int(t[5], 0, kMaxTime, line_no, "think");
    parsed.path = t[6];
  } else if (verb == "read" || verb == "write") {
    want(6);
    op.kind = verb == "read" ? OpKind::kRead : OpKind::kWrite;
    op.bytes = parse_int(t[3], 0, kMaxIoBytes, line_no, "bytes");
    op.think = parse_int(t[4], 0, kMaxTime, line_no, "think");
    parsed.path = t[5];
  } else if (verb == "seek") {
    want(7);
    op.kind = OpKind::kSeek;
    op.offset =
        parse_int(t[3], -kMaxIoBytes, kMaxIoBytes, line_no, "offset");
    if (t[4] == "set") {
      op.whence = Whence::kSet;
    } else if (t[4] == "cur") {
      op.whence = Whence::kCurrent;
    } else if (t[4] == "end") {
      op.whence = Whence::kEnd;
    } else {
      fail(line_no, "seek whence must be set|cur|end, got '" + t[4] + "'");
    }
    op.think = parse_int(t[5], 0, kMaxTime, line_no, "think");
    parsed.path = t[6];
  } else if (verb == "close" || verb == "unlink") {
    want(5);
    op.kind = verb == "close" ? OpKind::kClose : OpKind::kUnlink;
    op.think = parse_int(t[3], 0, kMaxTime, line_no, "think");
    parsed.path = t[4];
  } else {
    fail(line_no, "unknown op verb '" + verb + "'");
  }
  return parsed;
}

const char* whence_token(Whence w) {
  switch (w) {
    case Whence::kSet: return "set";
    case Whence::kCurrent: return "cur";
    case Whence::kEnd: return "end";
  }
  return "set";
}

/// The "replay" Source: region-indexed log, per-job scripts compiled at
/// start_job by ScriptedSource.
class ReplaySource final : public ScriptedSource {
 public:
  explicit ReplaySource(ReplayLog log) : log_(std::move(log)) {
    workload_ = log_.workload();
  }

 protected:
  [[nodiscard]] JobScripts compile_job(std::size_t spec_index) override {
    return log_.compile_job(spec_index);
  }

 private:
  ReplayLog log_;
};

}  // namespace

ReplayLog ReplayLog::load(const std::string& path,
                          const WorkloadConfig& config, bool tolerant,
                          bool* truncated) {
  ReplayLog log;
  log.path_ = path;
  log.workload_.config = config;
  if (truncated != nullptr) *truncated = false;

  std::ifstream in(path, std::ios::binary);
  if (!in) throw ReplayFormatError("cannot open replay log: " + path);
  LineReader reader(in, 0, 0);

  bool saw_magic = false;
  bool saw_footer = false;
  bool saw_window = false;
  std::int64_t last_complete_end = 0;
  std::set<cfs::JobId> job_ids;
  const JobSpec* current = nullptr;  // job whose op region is open

  const auto close_region = [&](std::int64_t end) {
    if (current != nullptr) log.regions_.back().end = end;
    current = nullptr;
  };

  while (reader.next()) {
    const std::string& line = reader.line();
    const std::size_t line_no = reader.line_no();
    if (!reader.complete()) {
      // Unterminated tail: the writer died mid-line.  The footer is the one
      // line whose completeness is content-evident.
      if (line == "end chwl") {
        saw_footer = true;
        close_region(reader.line_begin());
        break;
      }
      if (!tolerant) fail(line_no, "torn final line (no newline)");
      if (truncated != nullptr) *truncated = true;
      log.truncated_ = true;
      break;
    }
    if (is_noise(line)) {
      last_complete_end = reader.pos();
      continue;
    }
    const std::vector<std::string> t = tokenize(line);
    if (!saw_magic) {
      if (t.size() != 2 || t[0] != "chwl" || t[1] != "1") {
        fail(line_no, "expected magic 'chwl 1', got '" + line + "'");
      }
      saw_magic = true;
      last_complete_end = reader.pos();
      continue;
    }
    if (saw_footer) fail(line_no, "content after 'end chwl'");
    if (t[0] == "window") {
      if (t.size() != 2) fail(line_no, "window takes one operand");
      if (saw_window) fail(line_no, "duplicate window line");
      if (current != nullptr) fail(line_no, "window must precede jobs");
      log.workload_.window = parse_int(t[1], 0, kMaxTime, line_no, "window");
      saw_window = true;
    } else if (t[0] == "input") {
      if (t.size() != 3) fail(line_no, "input takes <bytes> <path>");
      if (!log.workload_.jobs.empty()) {
        fail(line_no, "input lines must precede jobs");
      }
      PrePopFile file;
      file.bytes = parse_int(t[1], 0, kMaxIoBytes, line_no, "input bytes");
      file.path = t[2];
      log.workload_.inputs.push_back(std::move(file));
    } else if (t[0] == "job") {
      if (t.size() != 6) {
        fail(line_no, "job takes <id> <arrival> <nodes> <traced> <archetype>");
      }
      close_region(reader.line_begin());
      if (static_cast<std::int64_t>(log.workload_.jobs.size()) >= kMaxJobs) {
        fail(line_no, "more than " + std::to_string(kMaxJobs) + " jobs");
      }
      JobSpec spec;
      spec.job = static_cast<cfs::JobId>(
          parse_int(t[1], 0, std::numeric_limits<cfs::JobId>::max(), line_no,
                    "job id"));
      if (!job_ids.insert(spec.job).second) {
        fail(line_no, "duplicate job id " + t[1]);
      }
      spec.arrival = parse_int(t[2], 0, kMaxTime, line_no, "arrival");
      if (!log.workload_.jobs.empty() &&
          spec.arrival < log.workload_.jobs.back().arrival) {
        fail(line_no, "jobs out of arrival order");
      }
      spec.nodes = static_cast<std::int32_t>(
          parse_int(t[3], 1, kMaxNodes, line_no, "nodes"));
      spec.traced = parse_int(t[4], 0, 1, line_no, "traced") != 0;
      if (!archetype_from_string(t[5], &spec.archetype)) {
        fail(line_no, "unknown archetype '" + t[5] + "'");
      }
      log.workload_.jobs.push_back(spec);
      JobRegion region;
      region.begin = reader.pos();
      region.end = reader.pos();
      region.first_line = line_no + 1;
      log.regions_.push_back(region);
      current = &log.workload_.jobs.back();
    } else if (t[0] == "op") {
      if (current == nullptr) fail(line_no, "op line before any job");
      (void)parse_op_line(t, line_no, current->nodes);  // validate now
    } else if (t.size() == 2 && t[0] == "end" && t[1] == "chwl") {
      saw_footer = true;
      close_region(reader.line_begin());
    } else {
      fail(line_no, "unknown directive '" + t[0] + "'");
    }
    last_complete_end = reader.pos();
  }

  if (!saw_magic) {
    throw ReplayFormatError("replay log has no 'chwl 1' header: " + path);
  }
  if (!saw_footer) {
    if (!tolerant) {
      throw ReplayFormatError("replay log missing 'end chwl' footer (torn?): " +
                              path);
    }
    if (truncated != nullptr) *truncated = true;
    log.truncated_ = true;
    close_region(last_complete_end);
  }
  return log;
}

JobScripts ReplayLog::compile_job(std::size_t spec_index) const {
  CHECK(spec_index < workload_.jobs.size(), "compile_job(", spec_index,
        ") out of range (", workload_.jobs.size(), " jobs)");
  const JobSpec& spec = workload_.jobs[spec_index];
  const JobRegion& region = regions_[spec_index];
  JobScripts scripts;
  scripts.nodes.resize(static_cast<std::size_t>(spec.nodes));

  std::ifstream in(path_, std::ios::binary);
  if (!in) throw ReplayFormatError("cannot reopen replay log: " + path_);
  in.seekg(region.begin);
  LineReader reader(in, region.first_line - 1, region.begin);
  std::map<std::string, std::int32_t> intern;
  while (reader.pos() < region.end && reader.next()) {
    const std::string& line = reader.line();
    if (is_noise(line)) continue;
    ParsedOp parsed =
        parse_op_line(tokenize(line), reader.line_no(), spec.nodes);
    if (!parsed.path.empty()) {
      const auto [it, inserted] = intern.emplace(
          parsed.path, static_cast<std::int32_t>(scripts.paths.size()));
      if (inserted) scripts.paths.push_back(parsed.path);
      parsed.op.path = it->second;
    }
    scripts.nodes[static_cast<std::size_t>(parsed.rank)].ops.push_back(
        parsed.op);
  }
  return scripts;
}

std::unique_ptr<Source> make_replay_source(const std::string& path,
                                           const WorkloadConfig& config) {
  // Strict: a torn log can strand ranks at a barrier mid-study.  Salvage
  // paths load tolerantly via ReplayLog::load directly.
  return std::make_unique<ReplaySource>(ReplayLog::load(path, config));
}

void export_source_log(Source& source, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  CHECK(out.good(), "cannot open workload log for writing: '", path, "'");
  const auto check_path = [](const std::string& p) {
    CHECK(!p.empty() && p.find_first_of(" \t\r\n") == std::string::npos,
          "chwl paths must be non-empty and whitespace-free: '", p, "'");
  };
  const GeneratedWorkload& w = source.workload();
  out << "chwl 1\n";
  out << "window " << w.window << '\n';
  for (const PrePopFile& in : w.inputs) {
    check_path(in.path);
    out << "input " << in.bytes << ' ' << in.path << '\n';
  }
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    const JobSpec& spec = w.jobs[i];
    out << "job " << spec.job << ' ' << spec.arrival << ' ' << spec.nodes
        << ' ' << (spec.traced ? 1 : 0) << ' ' << to_string(spec.archetype)
        << '\n';
    const std::vector<std::string> paths = source.start_job(i);
    for (std::int32_t rank = 0; rank < spec.nodes; ++rank) {
      for (Op op = source.next(i, rank); op.kind != OpKind::kEnd;
           op = source.next(i, rank)) {
        out << "op " << rank << ' ';
        const auto path_of = [&]() -> const std::string& {
          CHECK(op.path >= 0 &&
                    static_cast<std::size_t>(op.path) < paths.size(),
                "op path index ", op.path, " outside the job path table");
          const std::string& p = paths[static_cast<std::size_t>(op.path)];
          check_path(p);
          return p;
        };
        switch (op.kind) {
          case OpKind::kThink:
            out << "think " << op.think;
            break;
          case OpKind::kBarrier:
            out << "barrier " << op.think;
            break;
          case OpKind::kOpen:
            out << "open " << static_cast<int>(op.flags) << ' '
                << static_cast<int>(op.mode) << ' ' << op.think << ' '
                << path_of();
            break;
          case OpKind::kRead:
          case OpKind::kWrite:
            out << (op.kind == OpKind::kRead ? "read " : "write ")
                << op.bytes << ' ' << op.think << ' ' << path_of();
            break;
          case OpKind::kSeek:
            out << "seek " << op.offset << ' ' << whence_token(op.whence)
                << ' ' << op.think << ' ' << path_of();
            break;
          case OpKind::kClose:
            out << "close " << op.think << ' ' << path_of();
            break;
          case OpKind::kUnlink:
            out << "unlink " << op.think << ' ' << path_of();
            break;
          case OpKind::kEnd:
            CHECK(false, "kEnd must terminate the pull loop");
            break;
        }
        out << '\n';
      }
    }
    source.end_job(i);
  }
  out << "end chwl\n";
  out.flush();
  CHECK(out.good(), "short write exporting workload log: '", path, "'");
}

}  // namespace charisma::workload
