#include "cache/simulators.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace charisma::cache {

using trace::EventKind;
using trace::Record;

namespace detail {

std::vector<ReplayOp> prepare_replay(const trace::SortedTrace& trace,
                                     const std::set<SessionKey>& read_only) {
  std::vector<ReplayOp> ops;
  ops.reserve(trace.records.size());
  // The read-only set is consulted per session, not per record: requests
  // arrive in bursts for the same (job, file), so one cached lookup covers
  // the common run.
  SessionKey last_key{cfs::kNoJob, cfs::kNoFile};
  bool last_read_only = false;
  for (const Record& r : trace.records) {
    const bool is_read = r.kind == EventKind::kRead;
    if ((!is_read && r.kind != EventKind::kWrite) || r.bytes <= 0) continue;
    const SessionKey key{r.job, r.file};
    if (key != last_key) {
      last_key = key;
      last_read_only = read_only.find(key) != read_only.end();
    }
    ops.push_back({r.file, r.job, r.node, r.offset, r.bytes, is_read,
                   last_read_only});
  }
  return ops;
}

namespace {

/// First and last file block a request touches.
struct BlockSpan {
  std::int64_t first;
  std::int64_t last;
};
BlockSpan span_of(const ReplayOp& op, std::int64_t bs) {
  return {op.offset / bs,
          (op.offset + std::max<std::int64_t>(op.bytes, 1) - 1) / bs};
}

/// (job, node) -> BlockCache with a memo of the last lookup: replay streams
/// are long runs of one node's requests, so most lookups hit the memo.
class PerNodeCaches {
 public:
  PerNodeCaches(std::size_t buffers, Policy policy)
      : buffers_(buffers), policy_(policy) {}

  BlockCache& at(JobId job, NodeId node) {
    if (last_ != nullptr && job == last_job_ && node == last_node_) {
      return *last_;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job)) << 32) |
        static_cast<std::uint32_t>(node);
    const auto [it, inserted] = caches_.try_emplace(key, buffers_, policy_);
    last_job_ = job;
    last_node_ = node;
    last_ = &it->second;
    return *last_;
  }

 private:
  std::size_t buffers_;
  Policy policy_;
  // Keyed by packed (job, node); never iterated, so hash order is safe.
  std::unordered_map<std::uint64_t, BlockCache> caches_;
  JobId last_job_ = cfs::kNoJob;
  NodeId last_node_ = -1;
  BlockCache* last_ = nullptr;
};

ComputeCacheResult replay_compute_cache(const std::vector<ReplayOp>& ops,
                                        const ComputeCacheConfig& config) {
  util::check(config.block_size > 0, "bad block size");
  ComputeCacheResult out;
  // One cache per (job, node): node reuse across jobs must not leak blocks.
  PerNodeCaches caches(config.buffers_per_node, Policy::kLru);
  struct JobCount {
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
  };
  std::map<JobId, JobCount> per_job;

  for (const ReplayOp& op : ops) {
    if (!op.is_read || !op.read_only_session) continue;
    BlockCache& cache = caches.at(op.job, op.node);
    const auto [first, last] = span_of(op, config.block_size);
    // "Fully satisfied from the local buffer": every touched block present
    // before the request runs.
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      if (!cache.contains({op.file, b})) {
        full_hit = false;
        break;
      }
    }
    for (std::int64_t b = first; b <= last; ++b) {
      (void)cache.access({op.file, b}, op.node);
    }
    auto& jc = per_job[op.job];
    ++jc.reads;
    ++out.reads;
    if (full_hit) {
      ++jc.hits;
      ++out.hits;
    }
  }

  for (const auto& [job, jc] : per_job) {
    const double rate = jc.reads ? static_cast<double>(jc.hits) /
                                       static_cast<double>(jc.reads)
                                 : 0.0;
    out.job_hit_rates.push_back(rate);
    if (rate <= 0.0) out.fraction_jobs_zero += 1.0;
    if (rate > 0.75) out.fraction_jobs_above_75 += 1.0;
  }
  if (!out.job_hit_rates.empty()) {
    const auto n = static_cast<double>(out.job_hit_rates.size());
    out.fraction_jobs_zero /= n;
    out.fraction_jobs_above_75 /= n;
  }
  out.hit_rate_cdf = util::Cdf::from_samples(out.job_hit_rates);
  return out;
}

IoNodeSimResult replay_io_cache(const std::vector<ReplayOp>& ops,
                                const IoNodeSimConfig& config) {
  util::check(config.io_nodes >= 1, "need at least one I/O node");
  util::check(config.block_size > 0, "bad block size");
  IoNodeSimResult out;

  const std::size_t per_node =
      config.total_buffers / static_cast<std::size_t>(config.io_nodes);
  std::vector<BlockCache> io_caches;
  io_caches.reserve(static_cast<std::size_t>(config.io_nodes));
  for (int i = 0; i < config.io_nodes; ++i) {
    io_caches.emplace_back(per_node, config.policy);
  }
  PerNodeCaches compute(config.compute_buffers_per_node, Policy::kLru);

  for (const ReplayOp& op : ops) {
    const auto [first, last] = span_of(op, config.block_size);

    if (config.compute_buffers_per_node > 0 && op.is_read &&
        op.read_only_session) {
      BlockCache& front = compute.at(op.job, op.node);
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        if (!front.contains({op.file, b})) {
          full_hit = false;
          break;
        }
      }
      for (std::int64_t b = first; b <= last; ++b) {
        (void)front.access({op.file, b}, op.node);
      }
      if (full_hit) {
        ++out.filtered_by_compute;
        continue;  // never reaches the I/O nodes
      }
    }

    // Round-robin striping at one-block granularity (paper §4.8).  The
    // request is "fully satisfied from the buffer" when every block it
    // touches is already cached (Figure 8's definition, applied here to
    // the I/O-node caches).
    ++out.requests;
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      BlockCache& cache =
          io_caches[static_cast<std::size_t>(b % config.io_nodes)];
      ++out.block_accesses;
      if (cache.access({op.file, b}, op.node)) {
        ++out.block_hits;
      } else {
        full_hit = false;
      }
    }
    if (full_hit) ++out.request_hits;
  }
  out.hit_rate = out.requests ? static_cast<double>(out.request_hits) /
                                    static_cast<double>(out.requests)
                              : 0.0;
  out.block_hit_rate =
      out.block_accesses ? static_cast<double>(out.block_hits) /
                               static_cast<double>(out.block_accesses)
                         : 0.0;
  return out;
}

}  // namespace
}  // namespace detail

ComputeCacheResult simulate_compute_cache(const trace::SortedTrace& trace,
                                          const std::set<SessionKey>& read_only,
                                          const ComputeCacheConfig& config) {
  return detail::replay_compute_cache(detail::prepare_replay(trace, read_only),
                                      config);
}

IoNodeSimResult simulate_io_cache(const trace::SortedTrace& trace,
                                  const std::set<SessionKey>& read_only,
                                  const IoNodeSimConfig& config) {
  return detail::replay_io_cache(detail::prepare_replay(trace, read_only),
                                 config);
}

SweepRunner::SweepRunner(const trace::SortedTrace& trace,
                         const std::set<SessionKey>& read_only,
                         util::ThreadPool& pool)
    : prepared_(detail::prepare_replay(trace, read_only)), pool_(&pool) {}

std::vector<ComputeCacheResult> SweepRunner::run_compute(
    const std::vector<ComputeCacheConfig>& configs) const {
  std::vector<ComputeCacheResult> results(configs.size());
  util::parallel_for(*pool_, configs.size(), [&](std::size_t i) {
    results[i] = detail::replay_compute_cache(prepared_, configs[i]);
  });
  return results;
}

std::vector<IoNodeSimResult> SweepRunner::run_io(
    const std::vector<IoNodeSimConfig>& configs) const {
  std::vector<IoNodeSimResult> results(configs.size());
  util::parallel_for(*pool_, configs.size(), [&](std::size_t i) {
    results[i] = detail::replay_io_cache(prepared_, configs[i]);
  });
  return results;
}

std::string IoNodeSimResult::describe() const {
  std::ostringstream s;
  s << "requests=" << requests << " hits=" << request_hits << " hit_rate="
    << hit_rate << " block_hit_rate=" << block_hit_rate;
  if (filtered_by_compute > 0) {
    s << " filtered=" << filtered_by_compute;
  }
  return s.str();
}

}  // namespace charisma::cache
