// Ablation D: prefetching and write-behind at the I/O nodes.
// The paper's related work (§2.3): caching+prefetching helps multiprocessor
// file systems [Kotz & Ellis]; even Miller & Katz's cache-resistant Cray
// workload benefited from prefetching and write-behind.  This bench
// quantifies both on the CHARISMA trace.
#include "common.hpp"

#include "cache/prefetch.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();

  util::Table t({"prefetch depth", "hit rate", "prefetches", "accuracy"});
  double base = 0.0, best = 0.0;
  for (int depth : {0, 1, 2, 4, 8}) {
    cache::PrefetchConfig cfg;
    cfg.prefetch_depth = depth;
    const auto r = cache::simulate_prefetch(ctx.study().sorted, cfg);
    if (depth == 0) base = r.hit_rate;
    best = std::max(best, r.hit_rate);
    t.add_row({std::to_string(depth), util::fmt(r.hit_rate, 3),
               std::to_string(r.prefetches_issued),
               util::fmt(r.prefetch_accuracy, 2)});
  }
  std::printf("I/O-node cache with sequential-detector prefetching:\n%s\n",
              t.render().c_str());

  util::Table wb({"write-behind buffers/node", "disk writes", "reduction"});
  std::uint64_t through = 0;
  double best_wb = 0.0;
  for (std::size_t buffers : {1u, 10u, 50u, 200u}) {
    cache::WriteBehindConfig cfg;
    cfg.buffers_per_node = buffers;
    const auto r = cache::simulate_write_behind(ctx.study().sorted, cfg);
    through = r.disk_writes_through;
    best_wb = std::max(best_wb, r.reduction());
    wb.add_row({std::to_string(buffers), std::to_string(r.disk_writes_behind),
                util::fmt(r.reduction() * 100.0) + "%"});
  }
  std::printf("write-behind vs %llu write-through block writes:\n%s\n",
              static_cast<unsigned long long>(through), wb.render().c_str());

  Comparison cmp("Ablation D: prefetch + write-behind (S2.3)");
  cmp.row("prefetching helps sequential workloads",
          "Miller & Katz saw benefit even without cache wins",
          "hit rate " + util::fmt(base * 100.0) + "% -> " +
              util::fmt(best * 100.0) + "%");
  cmp.row("write-behind combines small requests",
          "'combine several small requests into a few larger'",
          util::fmt(best_wb * 100.0) + "% fewer disk writes");
  cmp.print();
}

void BM_PrefetchSim(benchmark::State& state) {
  auto& ctx = Context::instance();
  cache::PrefetchConfig cfg;
  cfg.prefetch_depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::simulate_prefetch(ctx.study().sorted, cfg));
  }
}
BENCHMARK(BM_PrefetchSim)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_WriteBehindSim(benchmark::State& state) {
  auto& ctx = Context::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::simulate_write_behind(ctx.study().sorted, {}));
  }
}
BENCHMARK(BM_WriteBehindSim)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Ablation D (prefetch + write-behind)",
                    charisma::bench::reproduce)
