# Empty compiler generated dependencies file for charisma_analyze.
# This may be replaced when dependencies are built.
