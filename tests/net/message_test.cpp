#include "net/message.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace charisma::net {
namespace {

MessageCostParams simple_params() {
  MessageCostParams p;
  p.software_overhead = 100;
  p.per_fragment = 10;
  p.per_hop = 2;
  p.per_byte = 0.5;
  p.fragment_bytes = 4096;
  return p;
}

TEST(MessageModel, FragmentCounts) {
  const Hypercube cube(3);
  const MessageModel m(cube, simple_params());
  EXPECT_EQ(m.fragments(0), 1);      // empty message still one fragment
  EXPECT_EQ(m.fragments(1), 1);
  EXPECT_EQ(m.fragments(4096), 1);
  EXPECT_EQ(m.fragments(4097), 2);
  EXPECT_EQ(m.fragments(3 * 4096), 3);
}

TEST(MessageModel, TransferTimeComposition) {
  const Hypercube cube(3);
  const MessageModel m(cube, simple_params());
  // 0 hops, 0 bytes: overhead + 1 fragment.
  EXPECT_EQ(m.transfer_time(0, 0, 0), 100 + 10);
  // 3 hops (0 -> 7), 1000 bytes: + 3*2 hops + 500 byte time.
  EXPECT_EQ(m.transfer_time(0, 7, 1000), 100 + 10 + 6 + 500);
  // Two fragments.
  EXPECT_EQ(m.transfer_time(0, 1, 8192), 100 + 20 + 2 + 4096);
}

TEST(MessageModel, MonotoneInSizeAndDistance) {
  const Hypercube cube(7);
  const MessageModel m(cube);
  MicroSec prev = 0;
  for (std::int64_t bytes : {0LL, 100LL, 4096LL, 100000LL, 1000000LL}) {
    const MicroSec t = m.transfer_time(0, 127, bytes);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_LT(m.transfer_time(0, 1, 1000), m.transfer_time(0, 127, 1000));
}

TEST(MessageModel, ExplicitHops) {
  const Hypercube cube(3);
  const MessageModel m(cube, simple_params());
  EXPECT_EQ(m.transfer_time_hops(4, 0), 100 + 10 + 8);
  EXPECT_THROW((void)m.transfer_time_hops(-1, 0), util::CheckFailure);
  EXPECT_THROW((void)m.transfer_time_hops(0, -5), util::CheckFailure);
}

TEST(MessageModel, DefaultsApproximateIpsc) {
  const Hypercube cube(7);
  const MessageModel m(cube);
  // A 4 KB block across the machine should take on the order of 1-2 ms
  // (~2.8 MB/s links), not microseconds or seconds.
  const MicroSec t = m.transfer_time(0, 127, 4096);
  EXPECT_GT(t, 500);
  EXPECT_LT(t, 5000);
}

}  // namespace
}  // namespace charisma::net
