#include "tools/lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

namespace charisma::lint {

namespace {

constexpr std::string_view kWallClock = "charisma-wallclock";
constexpr std::string_view kRawRandom = "charisma-raw-random";
constexpr std::string_view kUnorderedIter = "charisma-unordered-iter";
constexpr std::string_view kFloatTime = "charisma-float-time";
constexpr std::string_view kSharedCapture = "charisma-shared-capture";
constexpr std::string_view kPointerOrder = "charisma-pointer-order";
constexpr std::string_view kParallelFold = "charisma-parallel-fold";
constexpr std::string_view kLayering = "charisma-layering";
constexpr std::string_view kTraceMaterialize = "charisma-trace-materialize";
constexpr std::string_view kUnknownSuppression = "charisma-unknown-suppression";
constexpr std::string_view kUnusedSuppression = "charisma-unused-suppression";

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ws_char(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Pre-pass product: `code` mirrors the input byte for byte but with every
/// comment and the *contents* of every string/char literal blanked to
/// spaces, so token rules cannot be fooled by text in either.  Comment text
/// is collected per line for NOLINT handling.
struct Stripped {
  std::string code;
  std::map<int, std::string> comments;  // line -> concatenated comment text
  std::vector<std::size_t> line_start;  // offset of each line's first byte
};

[[nodiscard]] Stripped strip(std::string_view in) {
  Stripped out;
  out.code.assign(in.size(), ' ');
  out.line_start.push_back(0);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  int line = 1;
  std::string raw_terminator;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      out.line_start.push_back(i + 1);
      out.code[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // swallow the second slash too
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(in[i - 1]))) {
          // Raw string: scan the delimiter up to '('.
          std::size_t j = i + 2;
          std::string delim;
          while (j < in.size() && in[j] != '(' && in[j] != '\n') {
            delim += in[j++];
          }
          raw_terminator = ")" + delim + "\"";
          out.code[i] = 'R';
          state = State::kRawString;
          i = j;  // at '(' (blanked)
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        out.comments[line] += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          state = State::kCode;
        } else {
          out.comments[line] += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

[[nodiscard]] int line_of(const Stripped& s, std::size_t offset) {
  const auto it = std::upper_bound(s.line_start.begin(), s.line_start.end(),
                                   offset);
  return static_cast<int>(it - s.line_start.begin());
}

/// One suppression entry naming a known charisma rule, kept for the
/// unused-suppression audit: a suppression that matched no raw finding on
/// its target line is itself a finding.
struct NamedSuppression {
  int comment_line = 0;  // where the NOLINT comment sits (finding anchor)
  int target_line = 0;   // the line it suppresses (== comment_line or +1)
  std::string rule;
};

/// Per-line suppression sets parsed from NOLINT / NOLINTNEXTLINE comments.
struct Suppressions {
  std::map<int, std::set<std::string, std::less<>>> rules;  // empty set = all
  std::vector<Finding> unknown;           // stale charisma-* suppressions
  std::vector<NamedSuppression> audited;  // known charisma-* suppressions

  [[nodiscard]] bool covers(int line, std::string_view rule) const {
    const auto it = rules.find(line);
    if (it == rules.end()) return false;
    return it->second.empty() || it->second.count(rule) > 0;
  }
};

[[nodiscard]] Suppressions parse_suppressions(std::string_view file,
                                              const Stripped& s) {
  Suppressions out;
  for (const auto& [line, text] : s.comments) {
    std::size_t pos = 0;
    while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
      std::size_t after = pos + 6;
      int target = line;
      if (text.compare(after, 8, "NEXTLINE") == 0) {
        after += 8;
        target = line + 1;
      }
      auto& set = out.rules[target];  // bare NOLINT: empty set = all rules
      if (after < text.size() && text[after] == '(') {
        const std::size_t close = text.find(')', after);
        std::stringstream list(
            text.substr(after + 1, close == std::string::npos
                                       ? std::string::npos
                                       : close - after - 1));
        std::string name;
        while (std::getline(list, name, ',')) {
          const auto b = name.find_first_not_of(" \t");
          const auto e = name.find_last_not_of(" \t");
          if (b == std::string::npos) continue;
          name = name.substr(b, e - b + 1);
          set.insert(name);
          if (name.rfind("charisma-", 0) != 0) continue;
          if (std::find(known_rules().begin(), known_rules().end(), name) ==
              known_rules().end()) {
            out.unknown.push_back(
                {std::string(file), line, std::string(kUnknownSuppression),
                 "suppression names unknown rule '" + name + "'"});
          } else if (name != kUnusedSuppression) {
            out.audited.push_back({line, target, name});
          }
        }
      }
      pos = after;
    }
  }
  return out;
}

/// True if `code[pos]` starts the whole identifier token `token`.
[[nodiscard]] bool token_at(std::string_view code, std::size_t pos,
                            std::string_view token) {
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < code.size() && ident_char(code[end])) return false;
  return true;
}

/// Finds whole-token occurrences; if `call_only`, requires a '(' after
/// optional whitespace (so `time` the identifier is fine, `time(...)` the
/// call is flagged).
void find_tokens(const Stripped& s, std::string_view token, bool call_only,
                 std::vector<std::size_t>& hits) {
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string_view::npos) {
    if (token_at(code, pos, token)) {
      std::size_t after = pos + token.size();
      while (after < code.size() && (code[after] == ' ' || code[after] == '\t'))
        ++after;
      if (!call_only || (after < code.size() && code[after] == '(')) {
        hits.push_back(pos);
      }
    }
    pos += token.size();
  }
}

[[nodiscard]] std::size_t skip_ws(std::string_view code, std::size_t pos) {
  while (pos < code.size() && ws_char(code[pos])) ++pos;
  return pos;
}

/// Advances past a balanced bracket group starting at `pos` (which must hold
/// the opening character).  Returns npos when the group never closes.
[[nodiscard]] std::size_t skip_balanced(std::string_view code, std::size_t pos,
                                        char open, char close) {
  int depth = 0;
  for (std::size_t j = pos; j < code.size(); ++j) {
    if (code[j] == open) ++depth;
    if (code[j] == close && --depth == 0) return j + 1;
  }
  return std::string_view::npos;
}

/// Collects names of variables declared with an unordered container type:
/// `std::unordered_map<...> name` (template args balanced across lines).
[[nodiscard]] std::set<std::string, std::less<>> unordered_variables(
    const Stripped& s) {
  std::set<std::string, std::less<>> names;
  const std::string_view code = s.code;
  for (const std::string_view type : {"unordered_map", "unordered_set",
                                      "unordered_multimap",
                                      "unordered_multiset"}) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += type.size();
      if (!token_at(code, start, type)) continue;
      // Balance template arguments.
      std::size_t j = skip_ws(code, pos);
      if (j >= code.size() || code[j] != '<') continue;
      j = skip_balanced(code, j, '<', '>');
      if (j == std::string_view::npos) continue;
      // Next identifier (skipping refs/pointers/whitespace) is the name —
      // unless the declaration is a function return type or a parameter,
      // which the following '(' / ',' / ')' shapes mostly distinguish; the
      // rule cares about named locals/members, the common leak.
      while (j < code.size() &&
             (ws_char(code[j]) || code[j] == '&' || code[j] == '*')) {
        ++j;
      }
      std::string name;
      while (j < code.size() && ident_char(code[j])) name += code[j++];
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

/// Collects the names declared right after `keyword` ("const", "constexpr",
/// "double", ...): walks the declaration — nested-name qualifiers, balanced
/// template argument lists, refs/pointers — and records the last identifier
/// before the declarator terminator (`=`, `;`, `,`, `(`, `)`, `{`).  A
/// keyword occurrence inside a template argument list walks into the
/// enclosing `>` and is dropped, so `std::vector<double> xs` does not make
/// `xs` a double.  Heuristic and file-global: good enough for the capture
/// and fold rules, which only need "was this name ever declared so".
void declared_names_after(const Stripped& s, std::string_view keyword,
                          std::set<std::string, std::less<>>& names) {
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find(keyword, pos)) != std::string_view::npos) {
    const std::size_t start = pos;
    pos += keyword.size();
    if (!token_at(code, start, keyword)) continue;
    std::string last_ident;
    std::size_t j = pos;
    const std::size_t limit = std::min(code.size(), j + 400);
    bool ok = true;
    while (ok && j < limit) {
      j = skip_ws(code, j);
      if (j >= code.size()) break;
      const char c = code[j];
      if (ident_char(c)) {
        std::string ident;
        while (j < code.size() && ident_char(code[j])) ident += code[j++];
        last_ident = std::move(ident);
      } else if (c == ':' && j + 1 < code.size() && code[j + 1] == ':') {
        j += 2;
      } else if (c == '<') {
        j = skip_balanced(code, j, '<', '>');
        if (j == std::string_view::npos) ok = false;
      } else if (c == '&' || c == '*') {
        ++j;
      } else if (c == '=' || c == ';' || c == ',' || c == '(' || c == ')' ||
                 c == '{') {
        break;  // declarator terminator: last_ident is the name
      } else {
        ok = false;  // stray '>', '[', operators: not a declaration shape
      }
    }
    if (ok && j < limit && !last_ident.empty()) names.insert(last_ident);
  }
}

// ---- Lambda capture analysis ----------------------------------------------

struct CaptureEntry {
  std::string name;         // captured local; empty for default captures
  bool by_ref = false;      // & / &name / &name = expr
  bool is_default = false;  // the bare [&] or [=] entry
  bool init = false;        // init capture (name = expr)
  std::string init_expr;    // rhs of an init capture, trimmed
};

struct LambdaInfo {
  std::size_t intro = 0;       // offset of '['
  std::size_t after_intro = 0; // offset just past the closing ']'
  std::vector<CaptureEntry> captures;
  bool has_body = false;
  std::size_t body_open = 0;   // offset of '{' when has_body
  std::size_t body_close = 0;  // offset of matching '}' when has_body
};

[[nodiscard]] std::string trim(std::string_view sv) {
  const auto b = sv.find_first_not_of(" \t\n");
  const auto e = sv.find_last_not_of(" \t\n");
  if (b == std::string_view::npos) return {};
  return std::string(sv.substr(b, e - b + 1));
}

/// Parses a capture-list entry: "&", "=", "this", "*this", "&x", "x",
/// "&args...", "x = expr".
[[nodiscard]] std::optional<CaptureEntry> parse_capture_entry(
    std::string_view raw) {
  CaptureEntry cap;
  std::string text = trim(raw);
  if (text.empty()) return std::nullopt;
  if (text == "&" || text == "=") {
    cap.is_default = true;
    cap.by_ref = text == "&";
    return cap;
  }
  if (text == "this" || text == "*this") return std::nullopt;
  if (text.front() == '&') {
    cap.by_ref = true;
    text = trim(std::string_view(text).substr(1));
  }
  const std::size_t eq = text.find('=');
  if (eq != std::string::npos) {
    cap.init = true;
    cap.init_expr = trim(std::string_view(text).substr(eq + 1));
    text = trim(std::string_view(text).substr(0, eq));
  }
  while (!text.empty() && (text.back() == '.' || ws_char(text.back()))) {
    text.pop_back();  // strip pack expansion dots: &args...
  }
  cap.name = std::move(text);
  if (cap.name.empty()) return std::nullopt;
  return cap;
}

/// Tries to parse a lambda expression whose capture intro starts at `pos`
/// (code[pos] == '[').  Rejects subscripts (previous non-space char is an
/// identifier, ']' or ')') and attributes ([[...]]).  The body is optional:
/// a capture list followed by something that never reaches '{' (e.g. a
/// declaration) still yields the captures.
[[nodiscard]] std::optional<LambdaInfo> parse_lambda(std::string_view code,
                                                     std::size_t pos) {
  if (pos >= code.size() || code[pos] != '[') return std::nullopt;
  if (pos + 1 < code.size() && code[pos + 1] == '[') return std::nullopt;
  std::size_t before = pos;
  while (before > 0 && ws_char(code[before - 1])) --before;
  if (before > 0) {
    const char p = code[before - 1];
    if (ident_char(p) || p == ']' || p == ')' || p == '[') return std::nullopt;
  }
  LambdaInfo info;
  info.intro = pos;
  // Split the capture list on top-level commas, balancing nested brackets
  // (init-capture expressions can hold templates and calls).
  std::size_t j = pos + 1;
  std::size_t entry_start = j;
  int angle = 0, paren = 0, brace = 0, square = 0;
  std::vector<std::string_view> entries;
  for (; j < code.size(); ++j) {
    const char c = code[j];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++square;
    if (c == ']') {
      if (square == 0) break;
      --square;
    }
    if (c == ',' && angle == 0 && paren == 0 && brace == 0 && square == 0) {
      entries.push_back(code.substr(entry_start, j - entry_start));
      entry_start = j + 1;
    }
  }
  if (j >= code.size()) return std::nullopt;  // unterminated: not a lambda
  entries.push_back(code.substr(entry_start, j - entry_start));
  info.after_intro = j + 1;
  for (const auto& e : entries) {
    if (auto cap = parse_capture_entry(e)) info.captures.push_back(*cap);
  }
  // Optional parameter list, specifiers, trailing return type, then body.
  std::size_t k = skip_ws(code, info.after_intro);
  if (k < code.size() && code[k] == '(') {
    k = skip_balanced(code, k, '(', ')');
    if (k == std::string_view::npos) return info;
  }
  for (int guard = 0; guard < 8; ++guard) {
    k = skip_ws(code, k);
    if (k >= code.size()) return info;
    if (code[k] == '{') {
      const std::size_t end = skip_balanced(code, k, '{', '}');
      if (end == std::string_view::npos) return info;
      info.has_body = true;
      info.body_open = k;
      info.body_close = end - 1;
      return info;
    }
    if (ident_char(code[k])) {
      // mutable / noexcept / constexpr; noexcept may carry an argument.
      while (k < code.size() && ident_char(code[k])) ++k;
      const std::size_t p = skip_ws(code, k);
      if (p < code.size() && code[p] == '(') {
        k = skip_balanced(code, p, '(', ')');
        if (k == std::string_view::npos) return info;
      }
    } else if (code[k] == '-' && k + 1 < code.size() && code[k + 1] == '>') {
      // Trailing return type: scan to the body brace at top level.
      k += 2;
      while (k < code.size() && code[k] != '{' && code[k] != ';') {
        if (code[k] == '<') {
          k = skip_balanced(code, k, '<', '>');
          if (k == std::string_view::npos) return info;
        } else if (code[k] == '(') {
          k = skip_balanced(code, k, '(', ')');
          if (k == std::string_view::npos) return info;
        } else {
          ++k;
        }
      }
    } else {
      return info;
    }
  }
  return info;
}

/// Named lambdas (`auto name = [...](...) {...}`), so a later
/// `parallel_for(pool, n, name)` can be traced back to its captures.
struct NamedLambda {
  int decl_line = 0;
  std::vector<CaptureEntry> captures;
};

[[nodiscard]] std::map<std::string, NamedLambda, std::less<>>
named_lambdas(const Stripped& s) {
  std::map<std::string, NamedLambda, std::less<>> out;
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find("auto", pos)) != std::string_view::npos) {
    const std::size_t start = pos;
    pos += 4;
    if (!token_at(code, start, "auto")) continue;
    std::size_t j = skip_ws(code, pos);
    std::string name;
    while (j < code.size() && ident_char(code[j])) name += code[j++];
    if (name.empty()) continue;
    j = skip_ws(code, j);
    if (j >= code.size() || code[j] != '=') continue;
    j = skip_ws(code, j + 1);
    if (j >= code.size() || code[j] != '[') continue;
    if (const auto lambda = parse_lambda(code, j)) {
      out[name] = {line_of(s, j), lambda->captures};
    }
  }
  return out;
}

/// The calls whose callable arguments run on pool worker threads.  `submit`
/// is only a sink through a pool-ish receiver (`pool.submit`, bare `submit`
/// inside ThreadPool itself) so `disk_->submit(...)` — a simulated-disk
/// request, not a task — stays out of scope.
struct SinkCall {
  std::size_t token_pos = 0;
  std::size_t open = 0;   // offset of '('
  std::size_t close = 0;  // offset of matching ')'
  std::string_view name;
  bool takes_body = false;  // submit/parallel_for/for_each run the callable
};

[[nodiscard]] std::vector<SinkCall> find_sink_calls(const Stripped& s) {
  struct Sink {
    std::string_view token;
    bool pool_receiver_only;
    bool takes_body;
  };
  static constexpr Sink kSinks[] = {
      {"submit", true, true},      {"parallel_for", false, true},
      {"for_each", false, true},   {"run_compute", false, false},
      {"run_io", false, false},
  };
  const std::string_view code = s.code;
  std::vector<SinkCall> out;
  for (const Sink& sink : kSinks) {
    std::size_t pos = 0;
    while ((pos = code.find(sink.token, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += sink.token.size();
      if (!token_at(code, start, sink.token)) continue;
      const std::size_t open = skip_ws(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      if (sink.pool_receiver_only) {
        // Walk back over the member-access operator to the receiver name.
        std::size_t b = start;
        while (b > 0 && ws_char(code[b - 1])) --b;
        if (b >= 2 && code[b - 1] == '>' && code[b - 2] == '-') {
          b -= 2;
        } else if (b >= 1 && code[b - 1] == '.') {
          b -= 1;
        } else {
          b = std::string_view::npos;  // bare call: ThreadPool's own code
        }
        if (b != std::string_view::npos) {
          std::size_t e = b;
          while (e > 0 && ident_char(code[e - 1])) --e;
          std::string recv(code.substr(e, b - e));
          std::transform(recv.begin(), recv.end(), recv.begin(),
                         [](unsigned char c) { return std::tolower(c); });
          if (recv.find("pool") == std::string::npos) continue;
        }
      }
      const std::size_t after = skip_balanced(code, open, '(', ')');
      if (after == std::string_view::npos) continue;
      out.push_back({start, open, after - 1, sink.token, sink.takes_body});
    }
  }
  return out;
}

/// Pass: lambdas (inline or named) reaching a parallel sink with
/// by-reference captures of non-const locals, plus order-sensitive float
/// folds inside the submitted bodies.
void scan_parallel_captures(std::string_view file, const Stripped& s,
                            std::vector<Finding>& out) {
  const std::string_view code = s.code;
  const std::vector<SinkCall> sinks = find_sink_calls(s);
  if (sinks.empty()) return;

  std::set<std::string, std::less<>> const_names;
  declared_names_after(s, "const", const_names);
  declared_names_after(s, "constexpr", const_names);
  // std::atomic<T> locals are race-free by construction; capturing one by
  // reference is the sanctioned way to count across workers.
  declared_names_after(s, "atomic", const_names);
  std::set<std::string, std::less<>> float_names;
  declared_names_after(s, "double", float_names);
  declared_names_after(s, "float", float_names);
  const auto named = named_lambdas(s);

  const auto flag_captures = [&](const std::vector<CaptureEntry>& captures,
                                 int line, const std::string& context) {
    for (const CaptureEntry& cap : captures) {
      if (!cap.by_ref) continue;
      if (cap.is_default) {
        out.push_back({std::string(file), line, std::string(kSharedCapture),
                       "default by-reference capture [&] in a lambda " +
                           context +
                           ": captures escape into worker threads; capture "
                           "explicitly (const or by value), or justify with "
                           "NOLINT(charisma-shared-capture)"});
        continue;
      }
      if (cap.init && !cap.init_expr.empty() &&
          const_names.count(cap.init_expr) > 0) {
        continue;  // &alias = some_const_local
      }
      if (const_names.count(cap.name) > 0) continue;
      out.push_back({std::string(file), line, std::string(kSharedCapture),
                     "lambda " + context + " captures non-const local '" +
                         cap.name +
                         "' by reference: shared-mutable state in a parallel "
                         "region; capture by value, make it const, or "
                         "justify with NOLINT(charisma-shared-capture)"});
    }
  };

  // Compound assignment to a float-typed name inside a body that runs on
  // worker threads: the fold order follows the thread schedule.
  const auto flag_folds = [&](const LambdaInfo& lambda,
                              std::string_view sink_name) {
    if (!lambda.has_body) return;
    for (std::size_t k = lambda.body_open + 1; k + 1 < lambda.body_close;
         ++k) {
      if (code[k + 1] != '=' || (code[k] != '+' && code[k] != '-')) continue;
      if (k > 0 && (code[k - 1] == '+' || code[k - 1] == '-' ||
                    code[k - 1] == '<' || code[k - 1] == '>')) {
        continue;
      }
      // Walk back over the assigned lvalue: optional subscript, then the
      // identifier (plus one member-access hop for things like env.mean).
      std::size_t b = k;
      while (b > lambda.body_open && ws_char(code[b - 1])) --b;
      if (b > lambda.body_open && code[b - 1] == ']') {
        int depth = 0;
        while (b > lambda.body_open) {
          --b;
          if (code[b] == ']') ++depth;
          if (code[b] == '[' && --depth == 0) break;
        }
      }
      std::vector<std::string> lhs_names;
      while (true) {
        std::size_t e = b;
        while (e > lambda.body_open && ident_char(code[e - 1])) --e;
        if (e == b) break;
        lhs_names.emplace_back(code.substr(e, b - e));
        if (e >= 2 && code[e - 1] == '.' ) {
          b = e - 1;
        } else if (e >= 3 && code[e - 1] == '>' && code[e - 2] == '-') {
          b = e - 2;
        } else {
          break;
        }
      }
      for (const std::string& name : lhs_names) {
        if (float_names.count(name) == 0) continue;
        out.push_back(
            {std::string(file), line_of(s, k), std::string(kParallelFold),
             "floating-point accumulation into '" + name + "' inside a '" +
                 std::string(sink_name) +
                 "' body: the fold order follows the thread schedule; "
                 "write per-index slots and reduce serially, or use "
                 "util::Summary / analysis::fold_envelopes"});
        break;
      }
    }
  };

  for (const SinkCall& sink : sinks) {
    // Inline lambdas anywhere in the argument range (nested ones run on the
    // worker too, so a linear scan is the right scope).
    for (std::size_t j = sink.open + 1; j < sink.close; ++j) {
      if (code[j] != '[') continue;
      const auto lambda = parse_lambda(code, j);
      if (!lambda) continue;
      flag_captures(lambda->captures, line_of(s, j),
                    "passed to '" + std::string(sink.name) + "'");
      if (sink.takes_body) flag_folds(*lambda, sink.name);
      j = lambda->after_intro - 1;  // keep scanning the body for nested ones
    }
    // Named lambdas passed as top-level arguments.
    for (const auto& [name, info] : named) {
      std::size_t j = sink.open + 1;
      while ((j = code.find(name, j)) != std::string_view::npos &&
             j < sink.close) {
        const std::size_t hit = j;
        j += name.size();
        if (!token_at(code, hit, name)) continue;
        if (hit > 0 && (code[hit - 1] == '.' ||
                        (hit > 1 && code[hit - 1] == '>' &&
                         code[hit - 2] == '-'))) {
          continue;  // member access, not our local lambda
        }
        const std::size_t after = skip_ws(code, hit + name.size());
        if (after < code.size() && code[after] == '(') continue;  // a call
        int depth = 0;  // must sit at the sink call's own argument level
        for (std::size_t p = sink.open; p < hit; ++p) {
          if (code[p] == '(' || code[p] == '[' || code[p] == '{') ++depth;
          if (code[p] == ')' || code[p] == ']' || code[p] == '}') --depth;
        }
        if (depth != 1) continue;
        flag_captures(info.captures, line_of(s, sink.token_pos),
                      "'" + name + "' (declared line " +
                          std::to_string(info.decl_line) + ") passed to '" +
                          std::string(sink.name) + "'");
      }
    }
  }
}

// ---- Pointer-keyed ordering -----------------------------------------------

/// The first top-level template argument after `pos` (which must hold '<'),
/// trimmed; empty when the list never closes.
[[nodiscard]] std::string first_template_arg(std::string_view code,
                                             std::size_t pos) {
  int angle = 0, paren = 0;
  const std::size_t start = pos + 1;
  for (std::size_t j = pos; j < code.size(); ++j) {
    const char c = code[j];
    if (c == '<') ++angle;
    if (c == '>' && --angle == 0) return trim(code.substr(start, j - start));
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == ',' && angle == 1 && paren == 0) {
      return trim(code.substr(start, j - start));
    }
  }
  return {};
}

/// Pass: ordered containers keyed on raw pointers, and sorts over vectors of
/// pointers.  Pointer comparison order is allocation order — it varies with
/// ASLR and malloc history, so it must never decide result order.
void scan_pointer_order(std::string_view file, const Stripped& s,
                        std::vector<Finding>& out) {
  const std::string_view code = s.code;
  for (const std::string_view type : {"map", "multimap", "set", "multiset"}) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += type.size();
      if (!token_at(code, start, type)) continue;
      const std::size_t open = skip_ws(code, pos);
      if (open >= code.size() || code[open] != '<') continue;
      const std::string key = first_template_arg(code, open);
      if (key.empty() || key.back() != '*') continue;
      out.push_back(
          {std::string(file), line_of(s, start), std::string(kPointerOrder),
           "std::" + std::string(type) + " keyed on raw pointer '" + key +
               "': iteration order is allocation order and varies across "
               "runs; key on a stable id or use an unordered container "
               "without iterating it"});
    }
  }

  // Vectors of pointers that get sorted by pointer value.
  std::set<std::string, std::less<>> pointer_vectors;
  std::size_t pos = 0;
  while ((pos = code.find("vector", pos)) != std::string_view::npos) {
    const std::size_t start = pos;
    pos += 6;
    if (!token_at(code, start, "vector")) continue;
    const std::size_t open = skip_ws(code, pos);
    if (open >= code.size() || code[open] != '<') continue;
    const std::string elem = first_template_arg(code, open);
    if (elem.empty() || elem.back() != '*') continue;
    std::size_t j = skip_balanced(code, open, '<', '>');
    if (j == std::string_view::npos) continue;
    while (j < code.size() &&
           (ws_char(code[j]) || code[j] == '&' || code[j] == '*')) {
      ++j;
    }
    std::string name;
    while (j < code.size() && ident_char(code[j])) name += code[j++];
    if (!name.empty()) pointer_vectors.insert(name);
  }
  if (pointer_vectors.empty()) return;
  for (const std::string_view fn : {"sort", "stable_sort"}) {
    pos = 0;
    while ((pos = code.find(fn, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += fn.size();
      if (!token_at(code, start, fn)) continue;
      const std::size_t open = skip_ws(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t after = skip_balanced(code, open, '(', ')');
      if (after == std::string_view::npos) continue;
      const std::string_view args = code.substr(open, after - open);
      for (const auto& name : pointer_vectors) {
        std::size_t hit = 0;
        bool found = false;
        while ((hit = args.find(name, hit)) != std::string_view::npos) {
          if (token_at(args, hit, name)) {
            found = true;
            break;
          }
          hit += name.size();
        }
        if (!found) continue;
        out.push_back(
            {std::string(file), line_of(s, start), std::string(kPointerOrder),
             "sort over pointer vector '" + name +
                 "' orders by address: allocation order leaks into results; "
                 "sort by a stable key instead"});
        break;
      }
    }
  }
}

// ---- Include-graph layering -----------------------------------------------

/// Pass: quoted includes must point strictly down the layering DAG (or stay
/// inside the module).  Lateral edges between same-rank modules are also
/// back-edges: they tangle layers the parallel-engine sharding depends on.
void scan_layering(std::string_view file, std::string_view raw,
                   const Stripped& s, const FileClass& cls,
                   std::vector<Finding>& out) {
  if (cls.layer_rank < 0) return;
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find("#include", pos)) != std::string_view::npos) {
    const std::size_t start = pos;
    pos += 8;
    // Only at the start of a line (after whitespace).
    const int line = line_of(s, start);
    const std::size_t bol = s.line_start[static_cast<std::size_t>(line) - 1];
    bool at_bol = true;
    for (std::size_t j = bol; j < start; ++j) {
      if (!ws_char(code[j])) {
        at_bol = false;
        break;
      }
    }
    if (!at_bol) continue;
    const std::size_t quote = skip_ws(code, pos);
    if (quote >= code.size() || code[quote] != '"') continue;
    const std::size_t close = code.find('"', quote + 1);
    if (close == std::string_view::npos) continue;
    // The path bytes live in the raw text (strip blanks literal contents).
    const std::string path(raw.substr(quote + 1, close - quote - 1));
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = path.substr(0, slash);
    const int target_rank = layer_rank_of(target);
    if (target_rank < 0 || target == cls.module) continue;
    if (target_rank < cls.layer_rank) continue;
    const bool lateral = target_rank == cls.layer_rank;
    out.push_back(
        {std::string(file), line, std::string(kLayering),
         std::string(lateral ? "lateral" : "back-edge") + " include '" + path +
             "': module '" + cls.module + "' (rank " +
             std::to_string(cls.layer_rank) + ") must not depend on '" +
             target + "' (rank " + std::to_string(target_rank) +
             "); the layering DAG is util <- net/disk/sim <- ipsc <- cfs <- "
             "trace <- cache/workload <- analysis <- core <- bench/tools <- "
             "tests/examples"});
  }
}

/// Flags range-for statements whose sequence expression ends in a variable
/// declared as an unordered container in this file.
void scan_unordered_iteration(std::string_view file, const Stripped& s,
                              const std::set<std::string, std::less<>>& vars,
                              std::vector<Finding>& out) {
  if (vars.empty()) return;
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 3;
    if (!token_at(code, kw, "for")) continue;
    std::size_t j = skip_ws(code, pos);
    if (j >= code.size() || code[j] != '(') continue;
    // Balance the parens and find the top-level ':' of a range-for.
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t k = j; k < code.size(); ++k) {
      const char c = code[k];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          close = k;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string_view::npos &&
          (k == 0 || code[k - 1] != ':') &&
          (k + 1 >= code.size() || code[k + 1] != ':')) {
        colon = k;
      }
    }
    if (colon == std::string_view::npos || close == std::string_view::npos)
      continue;
    // Last identifier of the sequence expression; a trailing call like
    // `b.sessions()` hides the container behind a function and is exempt.
    std::size_t e = close;
    while (e > colon && !ident_char(code[e - 1])) {
      if (code[e - 1] == ')') {
        e = colon;  // expression ends in a call — bail out
        break;
      }
      --e;
    }
    std::size_t b = e;
    while (b > colon && ident_char(code[b - 1])) --b;
    if (b == e) continue;
    const std::string_view name = code.substr(b, e - b);
    if (vars.count(name) == 0) continue;
    out.push_back({std::string(file), line_of(s, kw),
                   std::string(kUnorderedIter),
                   "iteration over unordered container '" +
                       std::string(name) +
                       "' in an ordering-sensitive path: hash order leaks "
                       "into results; use std::map/std::set or sort first"});
  }
}

// ---- Whole-trace materialization -------------------------------------------

/// Guards the streaming pipeline's O(window) RSS contract (stream_study.hpp):
/// outside the trace module's reference path, nothing may collect the record
/// stream into a whole-trace vector or pull one through a full-vector
/// accessor.  Two shapes:
///   - a `std::vector<Record>` / `std::vector<trace::Record>` type mention
///     (declaration, member, parameter, or return type — any of them is a
///     container sized by the trace, not the window);
///   - a no-argument member call `.records()` / `->records()`, the accessor
///     shape that hands out such a vector.
void scan_trace_materialize(std::string_view file, const Stripped& s,
                            std::vector<Finding>& out) {
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find("vector", pos)) != std::string_view::npos) {
    const std::size_t start = pos;
    pos += 6;
    if (!token_at(code, start, "vector")) continue;
    std::size_t j = skip_ws(code, pos);
    if (j >= code.size() || code[j] != '<') continue;
    const std::size_t end = skip_balanced(code, j, '<', '>');
    if (end == std::string_view::npos) continue;
    std::string inner;
    for (std::size_t k = j + 1; k + 1 < end; ++k) {
      if (!ws_char(code[k])) inner += code[k];
    }
    if (inner != "Record" && inner != "trace::Record" &&
        inner != "charisma::trace::Record") {
      continue;
    }
    out.push_back(
        {std::string(file), line_of(s, start), std::string(kTraceMaterialize),
         "whole-trace std::vector<Record> materialization: this buffer "
         "scales with the trace, not the merge window; consume the stream "
         "through a trace::RecordSink (only the trace module's reference "
         "path may materialize)"});
  }
  pos = 0;
  while ((pos = code.find("records", pos)) != std::string_view::npos) {
    const std::size_t start = pos;
    pos += 7;
    if (!token_at(code, start, "records")) continue;
    std::size_t b = start;
    while (b > 0 && ws_char(code[b - 1])) --b;
    const bool member =
        (b > 0 && code[b - 1] == '.') ||
        (b > 1 && code[b - 2] == '-' && code[b - 1] == '>');
    if (!member) continue;
    std::size_t j = skip_ws(code, pos);
    if (j >= code.size() || code[j] != '(') continue;
    j = skip_ws(code, j + 1);
    if (j >= code.size() || code[j] != ')') continue;
    out.push_back(
        {std::string(file), line_of(s, start), std::string(kTraceMaterialize),
         "full-vector records() accessor: pulling the whole record vector "
         "defeats the streaming pipeline's bounded-memory contract; push "
         "records through a trace::RecordSink instead"});
  }
}

void push_token_findings(std::string_view file, const Stripped& s,
                         std::string_view token, bool call_only,
                         std::string_view rule, const std::string& message,
                         std::vector<Finding>& out) {
  std::vector<std::size_t> hits;
  find_tokens(s, token, call_only, hits);
  for (const std::size_t h : hits) {
    out.push_back({std::string(file), line_of(s, h), std::string(rule),
                   message});
  }
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> rules = {
      std::string(kWallClock),         std::string(kRawRandom),
      std::string(kUnorderedIter),     std::string(kFloatTime),
      std::string(kSharedCapture),     std::string(kPointerOrder),
      std::string(kParallelFold),      std::string(kLayering),
      std::string(kTraceMaterialize),
      std::string(kUnknownSuppression), std::string(kUnusedSuppression),
  };
  return rules;
}

int layer_rank_of(std::string_view module) {
  struct Layer {
    std::string_view module;
    int rank;
  };
  static constexpr Layer kLayers[] = {
      {"util", 0},     {"net", 1},      {"disk", 1},    {"sim", 1},
      {"ipsc", 2},     {"cfs", 3},      {"trace", 4},   {"cache", 5},
      {"workload", 5}, {"analysis", 6}, {"core", 7},    {"bench", 8},
      {"tools", 8},    {"tests", 9},    {"examples", 9},
  };
  for (const Layer& l : kLayers) {
    if (l.module == module) return l.rank;
  }
  return -1;
}

FileClass classify_path(std::string_view path) {
  FileClass cls;
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  cls.rng_exempt = p.find("util/rng") != std::string::npos;
  cls.ordering_sensitive = p.find("/analysis/") != std::string::npos ||
                           p.find("report") != std::string::npos ||
                           p.find("export") != std::string::npos ||
                           p.find("postprocess") != std::string::npos;
  // Deliberately malformed golden inputs (lint rule fixtures, chwl replay
  // fixtures) are exempt from every rule: their badness is the test.
  cls.lint_fixture = p.find("tests/lint/data") != std::string::npos ||
                     p.find("tests/workload/data") != std::string::npos;
  cls.trace_reference = p.find("/trace/") != std::string::npos ||
                        p.rfind("trace/", 0) == 0 ||
                        p.find("tests/") != std::string::npos;
  // Module: the directory after src/, or the top-level tree for
  // bench/tools/tests/examples.  Handles absolute paths by searching for
  // the component, so labels and filesystem paths classify identically.
  const auto component_after = [&p](std::string_view comp) -> std::string {
    const std::string needle = std::string(comp) + "/";
    std::size_t at = p.find(needle);
    while (at != std::string::npos) {
      if (at == 0 || p[at - 1] == '/') {
        const std::size_t from = at + needle.size();
        const std::size_t end = p.find('/', from);
        if (end != std::string::npos) return p.substr(from, end - from);
        return {};
      }
      at = p.find(needle, at + 1);
    }
    return {};
  };
  const std::string src_module = component_after("src");
  if (!src_module.empty() && layer_rank_of(src_module) >= 0) {
    cls.module = src_module;
  } else {
    for (const std::string_view top : {"bench", "tools", "tests",
                                       "examples"}) {
      const std::string needle = std::string(top) + "/";
      const std::size_t at = p.rfind(needle, 0) == 0
                                 ? 0
                                 : p.find("/" + needle);
      if (at != std::string::npos) {
        cls.module = std::string(top);
        break;
      }
    }
  }
  cls.layer_rank = cls.module.empty() ? -1 : layer_rank_of(cls.module);
  return cls;
}

std::vector<Finding> scan_source(std::string_view file_label,
                                 std::string_view content,
                                 const FileClass& cls) {
  if (cls.lint_fixture) return {};
  const Stripped s = strip(content);
  const Suppressions suppressed = parse_suppressions(file_label, s);

  std::vector<Finding> raw;
  // Wall-clock reads: any of these makes a run depend on the host's clock.
  for (const std::string_view t :
       {"system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "localtime", "gmtime"}) {
    push_token_findings(
        file_label, s, t, /*call_only=*/false, kWallClock,
        "wall-clock source '" + std::string(t) +
            "': simulated time must come from sim::Engine::now()",
        raw);
  }
  push_token_findings(file_label, s, "time", /*call_only=*/true, kWallClock,
                      "wall-clock call 'time()': simulated time must come "
                      "from sim::Engine::now()",
                      raw);

  // Raw entropy: only util/rng may touch it; everything else forks an Rng.
  if (!cls.rng_exempt) {
    for (const std::string_view t : {"rand", "srand", "rand_r", "drand48"}) {
      push_token_findings(file_label, s, t, /*call_only=*/true, kRawRandom,
                          "raw RNG '" + std::string(t) +
                              "()': draw from util::Rng so the (seed, "
                              "config) pair determines the trace",
                          raw);
    }
    push_token_findings(file_label, s, "random_device", /*call_only=*/false,
                        kRawRandom,
                        "std::random_device is a nondeterministic seed "
                        "source; seed util::Rng explicitly",
                        raw);
  }

  // float: simulated time (int64 microseconds) and byte counts exceed a
  // 24-bit mantissa; double is allowed, float never is.
  push_token_findings(file_label, s, "float", /*call_only=*/false, kFloatTime,
                      "'float' cannot represent simulated time or byte "
                      "counts exactly; use integer MicroSec or double",
                      raw);

  if (cls.ordering_sensitive) {
    scan_unordered_iteration(file_label, s, unordered_variables(s), raw);
  }

  scan_parallel_captures(file_label, s, raw);
  scan_pointer_order(file_label, s, raw);
  scan_layering(file_label, content, s, cls, raw);
  if (!cls.trace_reference) scan_trace_materialize(file_label, s, raw);

  std::vector<Finding> out;
  for (auto& f : raw) {
    if (!suppressed.covers(f.line, f.rule)) out.push_back(std::move(f));
  }
  for (const auto& f : suppressed.unknown) out.push_back(f);
  // The suppression audit runs against the *raw* findings: a NOLINT naming
  // a known charisma rule must sit on a line where that rule actually fired
  // — anything else is a stale escape hatch rotting in place.
  for (const auto& entry : suppressed.audited) {
    const bool used = std::any_of(
        raw.begin(), raw.end(), [&entry](const Finding& f) {
          return f.line == entry.target_line && f.rule == entry.rule;
        });
    if (used) continue;
    out.push_back({std::string(file_label), entry.comment_line,
                   std::string(kUnusedSuppression),
                   "suppression '" + entry.rule + "' on line " +
                       std::to_string(entry.target_line) +
                       " suppresses nothing (the rule does not fire there); "
                       "remove the stale NOLINT"});
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<Finding> scan_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  bool any_dir = false;
  for (const char* sub : {"src", "bench", "tools", "tests", "examples"}) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir)) continue;
    any_dir = true;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  if (!any_dir) {
    throw std::runtime_error(
        "no src/, bench/, tools/, tests/, or examples/ under '" + root +
        "' — pass the repository root");
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> out;
  for (const auto& path : files) {
    const std::string label = fs::relative(path, root).generic_string();
    const FileClass cls = classify_path(label);
    if (cls.lint_fixture) continue;  // deliberately hazardous golden inputs
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    auto findings = scan_source(label, content, cls);
    out.insert(out.end(), findings.begin(), findings.end());
  }
  return out;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

namespace {

[[nodiscard]] std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace charisma::lint
