# Empty dependencies file for charisma_workload.
# This may be replaced when dependencies are built.
