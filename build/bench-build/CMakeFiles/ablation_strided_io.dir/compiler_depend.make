# Empty compiler generated dependencies file for ablation_strided_io.
# This may be replaced when dependencies are built.
