#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace charisma::util {

std::string format_bytes(std::int64_t bytes) {
  const bool negative = bytes < 0;
  auto magnitude = static_cast<double>(negative ? -bytes : bytes);
  static constexpr std::array<const char*, 4> kUnits = {"B", "KB", "MB", "GB"};
  std::size_t unit = 0;
  while (magnitude >= 1024.0 && unit + 1 < kUnits.size()) {
    magnitude /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%s%lld B", negative ? "-" : "",
                  static_cast<long long>(negative ? -bytes : bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%s%.1f %s", negative ? "-" : "",
                  magnitude, kUnits[unit]);
  }
  return buf;
}

std::string format_duration(MicroSec t) {
  char buf[64];
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof buf, "%.1fms",
                  static_cast<double>(t) / kMillisecond);
  } else if (t < kMinute) {
    std::snprintf(buf, sizeof buf, "%.1fs", static_cast<double>(t) / kSecond);
  } else if (t < kHour) {
    std::snprintf(buf, sizeof buf, "%lldm %llds",
                  static_cast<long long>(t / kMinute),
                  static_cast<long long>((t % kMinute) / kSecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lldh %lldm",
                  static_cast<long long>(t / kHour),
                  static_cast<long long>((t % kHour) / kMinute));
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace charisma::util
