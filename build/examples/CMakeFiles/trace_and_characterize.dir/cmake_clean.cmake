file(REMOVE_RECURSE
  "CMakeFiles/trace_and_characterize.dir/trace_and_characterize.cpp.o"
  "CMakeFiles/trace_and_characterize.dir/trace_and_characterize.cpp.o.d"
  "trace_and_characterize"
  "trace_and_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_and_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
