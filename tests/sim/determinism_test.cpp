// Tie-break determinism: the engine's contract (engine.hpp) is that events
// at equal timestamps dispatch in schedule order, regardless of how the
// underlying heap rebalances.  These tests hammer that with shuffled
// insertion patterns — the exact scenario where a heap without the sequence
// tiebreaker goes wrong silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace charisma::sim {
namespace {

TEST(TieBreak, SameTimestampDispatchesInScheduleOrderAcross100Shuffles) {
  util::Rng rng(20260805);
  constexpr int kEvents = 32;
  for (int trial = 0; trial < 100; ++trial) {
    // A shuffled payload assignment: payload[i] is handed to the i-th
    // schedule_at call, so dispatch order must replay payload exactly.
    std::vector<int> payload(kEvents);
    std::iota(payload.begin(), payload.end(), 0);
    rng.shuffle(payload);

    Engine e;
    std::vector<int> dispatched;
    for (int i = 0; i < kEvents; ++i) {
      e.schedule_at(1000, [&dispatched, v = payload[static_cast<std::size_t>(
                               i)]] { dispatched.push_back(v); });
    }
    e.run();
    EXPECT_EQ(dispatched, payload) << "trial " << trial;
  }
}

TEST(TieBreak, MixedTimestampsSortStablyByScheduleOrder) {
  util::Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    // Events across a handful of distinct times, many per time.
    struct Ev {
      MicroSec at;
      int id;
    };
    std::vector<Ev> events;
    int id = 0;
    for (int rep = 0; rep < 8; ++rep) {
      for (MicroSec t : {10, 20, 20, 30, 30, 30}) {
        events.push_back({t + static_cast<MicroSec>(
                                  rng.uniform(2) * 100),  // 10..130
                          id++});
      }
    }
    rng.shuffle(events);

    // Expectation: stable sort by time over the *insertion* sequence.
    std::vector<Ev> expected = events;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Ev& a, const Ev& b) { return a.at < b.at; });

    Engine e;
    std::vector<int> dispatched;
    for (const Ev& ev : events) {
      e.schedule_at(ev.at, [&dispatched, v = ev.id] {
        dispatched.push_back(v);
      });
    }
    e.run();
    ASSERT_EQ(dispatched.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(dispatched[i], expected[i].id) << "trial " << trial;
    }
  }
}

TEST(TieBreak, EventsScheduledDuringDispatchKeepOrderToo) {
  // Callbacks scheduling at the *current* time must run after everything
  // already queued at that time, in their own schedule order.
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] {
    order.push_back(0);
    e.schedule_at(5, [&] { order.push_back(2); });
    e.schedule_at(5, [&] { order.push_back(3); });
  });
  e.schedule_at(5, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace charisma::sim
