#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/check.hpp"

namespace charisma::sim {
namespace {

TEST(Engine, DispatchesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
  EXPECT_EQ(e.dispatched_events(), 3u);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  MicroSec seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.schedule_at(10, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5, [] {}), util::CheckFailure);
  EXPECT_THROW(e.schedule_in(-1, [] {}), util::CheckFailure);
}

TEST(Engine, PastSchedulingReportsTimesAndLeavesQueueIntact) {
  // Regression: a stale event must be rejected loudly (the priority queue
  // would otherwise dispatch it "now" under a past timestamp) and the
  // rejection must not corrupt the queue.
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  e.schedule_at(200, [] {});
  const std::size_t pending = e.pending_events();
  try {
    e.schedule_at(50, [] {});
    FAIL() << "schedule_at(50) accepted with now()=100";
  } catch (const util::CheckFailure& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("50"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
  }
  EXPECT_EQ(e.pending_events(), pending);
  EXPECT_EQ(e.now(), 100);
  e.run();  // the intact queue still drains
  EXPECT_EQ(e.now(), 200);
}

TEST(Engine, SchedulingAtNowIsAllowed) {
  Engine e;
  bool ran = false;
  e.schedule_at(10, [&] { e.schedule_at(e.now(), [&] { ran = true; }); });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesTimeWhenIdle) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_in(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

}  // namespace
}  // namespace charisma::sim
