#include "ipsc/machine.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace charisma::ipsc {
namespace {

TEST(MachineConfig, NasAmesPreset) {
  const auto c = MachineConfig::nas_ames();
  EXPECT_EQ(c.compute_nodes, 128);
  EXPECT_EQ(c.io_nodes, 10);
  EXPECT_EQ(c.compute_memory, 8 * util::kMiB);
  EXPECT_EQ(c.io_memory, 4 * util::kMiB);
  EXPECT_EQ(c.disk.capacity_bytes, 760 * util::kMiB);
}

TEST(Machine, BuildsNasMachine) {
  sim::Engine engine;
  util::Rng rng(1);
  Machine m(engine, MachineConfig::nas_ames(), rng);
  EXPECT_EQ(m.compute_nodes(), 128);
  EXPECT_EQ(m.io_nodes(), 10);
  EXPECT_EQ(m.cube().dimension(), 7);
}

TEST(Machine, IoTapsSpreadOverCube) {
  sim::Engine engine;
  util::Rng rng(1);
  Machine m(engine, MachineConfig::nas_ames(), rng);
  EXPECT_EQ(m.io_tap(0), 0);
  EXPECT_EQ(m.io_tap(1), 12);
  EXPECT_EQ(m.io_tap(9), 108);
  for (int i = 0; i < m.io_nodes(); ++i) {
    EXPECT_TRUE(m.cube().contains(m.io_tap(i)));
  }
  EXPECT_THROW((void)m.io_tap(10), util::CheckFailure);
}

TEST(Machine, ClocksDriftDifferently) {
  sim::Engine engine;
  util::Rng rng(2);
  Machine m(engine, MachineConfig::nas_ames(), rng);
  int distinct = 0;
  const double first = m.clock(0).drift_ppm();
  for (net::NodeId n = 1; n < 128; ++n) {
    if (m.clock(n).drift_ppm() != first) ++distinct;
  }
  EXPECT_GT(distinct, 100);
  EXPECT_THROW((void)m.clock(128), util::CheckFailure);
}

TEST(Machine, SameSeedSameClocks) {
  sim::Engine e1, e2;
  util::Rng r1(7), r2(7);
  Machine m1(e1, MachineConfig::tiny(), r1);
  Machine m2(e2, MachineConfig::tiny(), r2);
  for (net::NodeId n = 0; n < m1.compute_nodes(); ++n) {
    EXPECT_EQ(m1.clock(n).drift_ppm(), m2.clock(n).drift_ppm());
  }
}

TEST(Machine, IoLatencyIncludesTapHop) {
  sim::Engine engine;
  util::Rng rng(3);
  Machine m(engine, MachineConfig::nas_ames(), rng);
  // From the tap node itself, the cube route is 0 hops, plus the tap link.
  const auto at_tap = m.compute_to_io(m.io_tap(3), 3, 0);
  const auto one_away =
      m.compute_to_io(m.cube().neighbor(m.io_tap(3), 0), 3, 0);
  EXPECT_LT(at_tap, one_away);
}

TEST(Machine, ServiceTrafficRoutesThroughTapZero) {
  sim::Engine engine;
  util::Rng rng(4);
  Machine m(engine, MachineConfig::nas_ames(), rng);
  EXPECT_EQ(m.service_tap(), 0);
  EXPECT_LT(m.compute_to_service(0, 4096), m.compute_to_service(127, 4096));
}

TEST(Machine, DisksAreIndependent) {
  sim::Engine engine;
  util::Rng rng(5);
  Machine m(engine, MachineConfig::tiny(), rng);
  (void)m.disk(0).submit(0, 0, 1000);
  EXPECT_EQ(m.disk(0).requests(), 1u);
  EXPECT_EQ(m.disk(1).requests(), 0u);
  EXPECT_THROW((void)m.disk(2), util::CheckFailure);
}

TEST(Machine, RejectsBadConfigs) {
  sim::Engine engine;
  util::Rng rng(6);
  MachineConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 8;  // more I/O nodes than taps
  EXPECT_THROW(Machine(engine, c, rng), util::CheckFailure);
  c.io_nodes = 0;
  EXPECT_THROW(Machine(engine, c, rng), util::CheckFailure);
}

}  // namespace
}  // namespace charisma::ipsc
