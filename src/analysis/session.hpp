// File sessions: the unit of the paper's per-file analyses.
//
// A session is all activity of one job on one file, from the first open to
// the last close ("files" in §4.2-§4.7 — e.g. "44,500 were only written to"
// counts sessions like these).  The builder runs one streaming pass over a
// postprocessed trace and keeps per-(session, node) access statistics plus,
// for files held open by more than one node, merged byte-coverage ranges
// for the sharing analysis.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "trace/postprocess.hpp"
#include "trace/spill.hpp"
#include "util/thread_pool.hpp"

namespace charisma::analysis {

using cfs::FileId;
using cfs::IoMode;
using cfs::JobId;
using cfs::NodeId;
using trace::EventKind;
using trace::Record;
using util::MicroSec;

/// Half-open byte range.
struct ByteRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

/// Per-(session, node) streaming access statistics.
struct NodeAccessStats {
  std::uint64_t requests = 0;      // reads + writes
  std::uint64_t sequential = 0;    // requests at a higher offset than prior
  std::uint64_t consecutive = 0;   // requests starting at prior end
  std::int64_t last_offset = -1;
  std::int64_t last_end = -1;
  std::vector<ByteRange> coverage;  // merged; only kept for shared files

  [[nodiscard]] double sequential_fraction() const noexcept;
  [[nodiscard]] double consecutive_fraction() const noexcept;
};

/// How a session touched its file.
enum class AccessClass : std::uint8_t {
  kUntouched,  // opened, neither read nor written
  kReadOnly,
  kWriteOnly,
  kReadWrite,
};

[[nodiscard]] const char* to_string(AccessClass c) noexcept;

struct FileSession {
  JobId job = cfs::kNoJob;
  FileId file = cfs::kNoFile;
  IoMode mode = IoMode::kIndependent;
  bool created_here = false;    // this job's open created the file
  bool deleted_here = false;    // this job deleted it => temporary if created
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t size_at_close = 0;  // from the last CLOSE record
  MicroSec first_open = 0;
  MicroSec last_close = 0;
  int max_concurrent_opens = 0;    // nodes holding it open simultaneously
  int total_opens = 0;
  std::set<std::int64_t> interval_sizes;  // across nodes (Table 2)
  std::set<std::int64_t> request_sizes;   // across nodes (Table 3)
  std::map<NodeId, NodeAccessStats> per_node;

  [[nodiscard]] AccessClass access_class() const noexcept;
  [[nodiscard]] bool temporary() const noexcept {
    return created_here && deleted_here;
  }
};

struct JobEvent {
  JobId job = cfs::kNoJob;
  MicroSec time = 0;
  std::int32_t nodes = 0;
  bool start = false;
};

namespace detail {
class SessionBuilder;
}

/// Everything the analyzers need, built in one pass.
class SessionStore {
 public:
  /// Empty store: no sessions, zero trace bounds.  The streaming pipeline
  /// default-constructs one and move-assigns SessionAccumulator::take().
  SessionStore() = default;
  /// `track_coverage` enables the byte-coverage ranges (needed only by the
  /// sharing analysis; costs memory on huge traces).
  explicit SessionStore(const trace::SortedTrace& trace,
                        bool track_coverage = true);

  /// Parallel build: records are partitioned by (job, file) into a fixed
  /// number of shards executed on the pool's workers (each session's stream
  /// is order-dependent, but distinct sessions are independent).  Produces
  /// the same sessions as the serial constructor, in shard order — an order
  /// that does not depend on the pool's thread count.
  static SessionStore build_parallel(const trace::SortedTrace& trace,
                                     util::ThreadPool& pool,
                                     bool track_coverage = true);

  [[nodiscard]] const std::vector<FileSession>& sessions() const noexcept {
    return sessions_;
  }
  [[nodiscard]] const std::vector<JobEvent>& job_events() const noexcept {
    return job_events_;
  }
  [[nodiscard]] MicroSec trace_start() const noexcept { return start_; }
  [[nodiscard]] MicroSec trace_end() const noexcept { return end_; }

  /// (job, file) pairs whose sessions were read-only — the population the
  /// compute-node cache simulation admits (paper §4.8).
  [[nodiscard]] std::set<std::pair<JobId, FileId>> read_only_sessions() const;

 private:
  friend class detail::SessionBuilder;
  friend class SessionAccumulator;

  std::vector<FileSession> sessions_;
  std::vector<JobEvent> job_events_;
  MicroSec start_ = 0;
  MicroSec end_ = 0;
};

/// Push-based session detector for the streaming trace pipeline: records
/// arrive via on_record (in postprocessed order), take() hands out the
/// finished store.  Produces exactly the sessions — and the session order —
/// of the serial SessionStore constructor.
class SessionAccumulator final : public trace::RecordSink {
 public:
  explicit SessionAccumulator(bool track_coverage = true);
  ~SessionAccumulator() override;
  SessionAccumulator(const SessionAccumulator&) = delete;
  SessionAccumulator& operator=(const SessionAccumulator&) = delete;

  void on_record(const Record& r) override;
  /// Finalizes and hands out the store; the trace bounds come from `header`.
  [[nodiscard]] SessionStore take(const trace::TraceHeader& header);

 private:
  std::unique_ptr<detail::SessionBuilder> builder_;
};

/// Merges `r` into sorted, disjoint `ranges` (coalescing neighbours).
void merge_range(std::vector<ByteRange>& ranges, ByteRange r);
/// Total bytes covered by >= `k` of the given per-node coverage sets.
[[nodiscard]] std::int64_t bytes_covered_by_at_least(
    const std::vector<const std::vector<ByteRange>*>& coverages, int k);

}  // namespace charisma::analysis
