// CFS metadata layer: directory, inodes, striping, and open-file sessions.
//
// This layer is shared by all compute nodes (in the real machine it lived in
// the I/O-node servers; the split here is the standard simulator one:
// metadata is centralized and instantaneous, data movement is priced by the
// client through the network and disk models).
//
// Striping (paper §2.4): every file is striped round-robin over ALL disks in
// 4 KB blocks.  Block b of a file whose stripe starts at s lives on I/O node
// (s + b) mod N; its address on that node's disk is assigned at allocation.
//
// I/O modes (paper §2.4): a file is opened by a job in one of four modes.
//   mode 0  independent file pointer per node (99% of files in the trace);
//   mode 1  one shared pointer, requests served in arrival order;
//   mode 2  shared pointer with enforced round-robin node order;
//   mode 3  like mode 2 but all access sizes must be identical, which makes
//           every node's offsets computable locally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfs/types.hpp"
#include "util/small_vector.hpp"
#include "util/units.hpp"

namespace charisma::cfs {

struct FileSystemParams {
  int io_nodes = 10;
  std::int64_t block_size = util::kBlockSize;
  std::int64_t disk_capacity = 760 * util::kMiB;
  /// Cost of taking the shared file pointer in modes 1-3 (a message to the
  /// pointer's owner and back).
  MicroSec pointer_handoff = 200;
};

/// One 4 KB block's physical placement.
struct BlockAccess {
  int io_node = 0;
  std::int64_t disk_offset = 0;   // byte address on that I/O node's disk
  std::int64_t file_block = 0;    // block index within the file
  std::int64_t bytes = 0;         // bytes of this request inside the block
};

/// Reusable scratch buffer for block plans.  The request path builds one
/// plan per simulated I/O operation; the small requests that dominate the
/// workload (Figure 4: ~96% of reads are under 4000 bytes) fit the inline
/// capacity, and larger chunked requests reuse the buffer's heap high-water
/// capacity, so a long-lived BlockPlan stops allocating entirely.
using BlockPlan = util::SmallVector<BlockAccess, 8>;

/// Grant of a file-offset range to one node's read or write.
struct Reservation {
  bool ok = false;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;       // clipped for reads at EOF
  MicroSec not_before = 0;      // earliest start (shared-pointer hand-off)
  bool extends_file = false;
  std::string error;
};

struct FileStats {
  std::int64_t size = 0;
  JobId creator = kNoJob;
  bool deleted = false;
  std::string path;
};

class FileSystem {
 public:
  explicit FileSystem(FileSystemParams params = {});

  [[nodiscard]] const FileSystemParams& params() const noexcept {
    return params_;
  }

  // --- Directory operations -------------------------------------------
  /// Opens `path` for (job, node).  Creates the file if kCreate is set and
  /// it does not exist; truncates if kTruncate.  All opens of one file by
  /// one job form a single session and must agree on the I/O mode.
  OpenResult open(JobId job, NodeId node, const std::string& path,
                  std::uint8_t flags, IoMode mode, MicroSec now);
  /// Closes (job, node)'s handle. Returns file size at close, or nullopt if
  /// the handle is unknown.
  std::optional<std::int64_t> close(JobId job, NodeId node, FileId file);
  /// Removes the path from the directory.  The inode survives for analysis.
  bool unlink(JobId job, const std::string& path);

  // --- Data-path metadata ---------------------------------------------
  /// Grants the next offset range to a node's request per the session mode.
  Reservation reserve_read(JobId job, NodeId node, FileId file,
                           std::int64_t bytes, MicroSec now);
  Reservation reserve_write(JobId job, NodeId node, FileId file,
                            std::int64_t bytes, MicroSec now);
  /// Repositions a pointer (mode 0 only; CFS shared pointers cannot seek
  /// independently).  Returns resulting offset or nullopt on error.
  std::optional<std::int64_t> seek(JobId job, NodeId node, FileId file,
                                   std::int64_t offset, Whence whence);

  /// Strided read reservation (the paper's §5 interface extension, mode 0
  /// only): grants `count` elements of `record` bytes separated by
  /// `interval` skipped bytes, starting at the node's pointer.  Elements
  /// past EOF are dropped; a final partial element is clipped.  On success
  /// r.offset is the first element's offset and r.bytes the total bytes
  /// granted; the pointer advances past the last granted element.
  Reservation reserve_strided_read(JobId job, NodeId node, FileId file,
                                   std::int64_t record, std::int64_t interval,
                                   std::int64_t count, MicroSec now);

  /// Physical placement of the byte range [offset, offset+bytes).
  /// For writes call after reserve_write (blocks are allocated there).
  [[nodiscard]] std::vector<BlockAccess> plan(FileId file, std::int64_t offset,
                                              std::int64_t bytes) const;
  /// Allocation-free variant for the request hot path: APPENDS the plan to
  /// `out` (callers clear between operations; appending lets a strided
  /// request accumulate all of its elements' accesses in one buffer).
  void plan_into(FileId file, std::int64_t offset, std::int64_t bytes,
                 BlockPlan& out) const;

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] std::optional<FileId> lookup(const std::string& path) const;
  [[nodiscard]] std::optional<FileStats> stats(FileId file) const;
  [[nodiscard]] std::int64_t file_count() const noexcept {
    return static_cast<std::int64_t>(inodes_.size());
  }
  [[nodiscard]] std::int64_t blocks_allocated(int io_node) const;
  /// Free bytes remaining on the given I/O node's disk.
  [[nodiscard]] std::int64_t free_bytes(int io_node) const;

 private:
  struct Inode {
    FileId id = kNoFile;
    std::string path;
    std::int64_t size = 0;
    int first_stripe = 0;  // I/O node holding file block 0
    JobId creator = kNoJob;
    bool deleted = false;
    // disk byte address of each allocated file block, on its I/O node.
    std::vector<std::int64_t> block_addr;
  };

  struct Session {  // one (job, file) open session
    IoMode mode = IoMode::kIndependent;
    std::uint8_t flags = 0;
    int open_count = 0;
    std::unordered_map<NodeId, std::int64_t> node_offset;  // mode 0
    std::int64_t shared_offset = 0;                        // modes 1-3
    MicroSec pointer_free = 0;  // when the shared pointer is next available
    std::vector<NodeId> turn_order;  // modes 2-3: node order (open order)
    std::size_t next_turn = 0;       // modes 2: whose turn it is
    std::int64_t fixed_size = -1;    // mode 3: the mandated access size
  };

  struct SessionKeyHash {
    [[nodiscard]] std::size_t operator()(
        const std::pair<JobId, FileId>& k) const noexcept {
      // JobId and FileId are 32-bit; pack into one 64-bit word and mix.
      const auto packed = (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(k.first))
                           << 32) |
                          static_cast<std::uint32_t>(k.second);
      return std::hash<std::uint64_t>()(packed);
    }
  };

  Inode& inode(FileId file);
  const Inode& inode(FileId file) const;
  Session* find_session(JobId job, FileId file);
  /// Ensures blocks covering [0, new_size) exist; allocates on disks.
  void allocate_to(Inode& ino, std::int64_t new_size);
  Reservation reserve(JobId job, NodeId node, FileId file, std::int64_t bytes,
                      bool is_write, MicroSec now);

  FileSystemParams params_;
  std::unordered_map<std::string, FileId> directory_;
  std::vector<Inode> inodes_;  // indexed by FileId
  // Hashed, not ordered: looked up once per data operation (reserve) and
  // never iterated, so ordering buys nothing and the tree walk was pure
  // request-path overhead.
  std::unordered_map<std::pair<JobId, FileId>, Session, SessionKeyHash>
      sessions_;
  std::vector<std::int64_t> disk_next_free_;  // per I/O node
};

}  // namespace charisma::cfs
