// Trace container and its binary file format.
//
// A trace file begins with a self-descriptive header (paper §3.1) and then
// holds the collector's output: a sequence of per-node record *blocks*, each
// stamped twice — with the node's local clock when the block left the node
// and with the collector's clock when it arrived.  The double timestamps are
// the postprocessor's only handle on clock drift, exactly as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace charisma::trace {

struct TraceHeader {
  std::int32_t compute_nodes = 0;
  std::int32_t io_nodes = 0;
  std::int64_t block_size = 0;
  std::uint64_t seed = 0;
  MicroSec trace_start = 0;
  MicroSec trace_end = 0;
  std::string label;
};

/// One buffered batch of records from one compute node.
struct TraceBlock {
  NodeId node = 0;
  MicroSec sent_local = 0;   // node clock when the buffer was sent
  MicroSec recv_global = 0;  // collector clock when it arrived
  std::vector<Record> records;
};

class TraceFile {
 public:
  TraceHeader header;
  std::vector<TraceBlock> blocks;

  [[nodiscard]] std::uint64_t record_count() const noexcept;
  [[nodiscard]] std::uint64_t data_record_count() const noexcept;

  /// Order-sensitive FNV-1a digest of the header, block stamps, and every
  /// record's on-disk encoding.  Equal digests mean write() would produce
  /// byte-identical files — the determinism self-check compares these.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// Serializes to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;
  /// Reads a trace back; throws std::runtime_error on malformed input.
  [[nodiscard]] static TraceFile read(const std::string& path);
  /// Salvaging reader for traces cut short by a crash (the paper's tracing
  /// sometimes ended in one, §3.1): returns every complete block before
  /// the truncation point instead of throwing.  Still throws if even the
  /// header is unreadable.  `truncated`, when given, reports whether
  /// anything was lost.
  [[nodiscard]] static TraceFile read_tolerant(const std::string& path,
                                               bool* truncated = nullptr);

  static constexpr char kMagic[8] = {'C', 'H', 'A', 'R', 'I', 'S', 'M', 'A'};
  static constexpr std::uint32_t kVersion = 1;
};

}  // namespace charisma::trace
