// Quickstart: build the simulated iPSC/860, mount CFS, and do parallel
// file I/O from a few compute nodes — the library's "hello world".
#include <cstdio>

#include "cfs/client.hpp"

using namespace charisma;

int main() {
  // 1. A machine: event engine + the NAS Ames iPSC/860 (128 compute nodes,
  //    10 I/O nodes with one 760 MB disk each).
  sim::Engine engine;
  util::Rng rng(/*seed=*/1);
  ipsc::Machine machine(engine, ipsc::MachineConfig::nas_ames(), rng);

  // 2. The Concurrent File System over the machine's I/O nodes.
  cfs::Runtime cfs(machine);

  // 3. Clients: one per compute node, as on the real machine.
  cfs::Client node0(cfs, 0);
  cfs::Client node1(cfs, 1);

  // Node 0 writes a result file...
  const cfs::JobId job = 1;
  auto out = node0.open(job, "results/run1.q", cfs::kWrite | cfs::kCreate,
                        cfs::IoMode::kIndependent);
  if (!out.ok) {
    std::fprintf(stderr, "open failed: %s\n", out.error.c_str());
    return 1;
  }
  for (int record = 0; record < 100; ++record) {
    const auto w = node0.write(out.fd, 1024);
    if (!w.ok) {
      std::fprintf(stderr, "write failed: %s\n", w.error.c_str());
      return 1;
    }
    // Calls are synchronous in simulated time: block until completion.
    engine.run_until(w.completed_at);
  }
  const auto size = node0.close(out.fd);
  std::printf("node 0 wrote %lld bytes (now t=%s)\n",
              static_cast<long long>(size.value_or(0)),
              util::format_duration(engine.now()).c_str());

  // ...and node 1 reads it back, striped across all ten disks.
  auto in = node1.open(job, "results/run1.q", cfs::kRead,
                       cfs::IoMode::kIndependent);
  std::int64_t total = 0;
  for (;;) {
    const auto r = node1.read(in.fd, 4096);
    if (!r.ok || r.bytes == 0) break;
    total += r.bytes;
    engine.run_until(r.completed_at);
  }
  node1.close(in.fd);
  std::printf("node 1 read %lld bytes back through %d I/O nodes\n",
              static_cast<long long>(total), machine.io_nodes());

  // The striping is visible in the per-disk counters.
  for (int d = 0; d < machine.io_nodes(); ++d) {
    std::printf("  disk %d moved %s\n", d,
                util::format_bytes(machine.disk(d).bytes_moved()).c_str());
  }
  std::printf("simulated time elapsed: %s\n",
              util::format_duration(engine.now()).c_str());
  return 0;
}
