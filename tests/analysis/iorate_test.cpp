#include "analysis/iorate.hpp"

#include <gtest/gtest.h>

namespace charisma::analysis {
namespace {

using trace::EventKind;

trace::Record data(EventKind kind, util::MicroSec t, std::int64_t bytes) {
  trace::Record r;
  r.kind = kind;
  r.job = 1;
  r.node = 0;
  r.file = 1;
  r.bytes = bytes;
  r.timestamp = t;
  return r;
}

TEST(IoRate, EmptyTraceIsSafe) {
  trace::SortedTrace t;
  const auto r = analyze_io_rate(t);
  EXPECT_TRUE(r.timeline.empty());
  EXPECT_EQ(r.mean_mb_per_s, 0.0);
}

TEST(IoRate, BucketsSplitReadsAndWrites) {
  trace::SortedTrace t;
  t.header.trace_start = 0;
  t.header.trace_end = 3 * util::kSecond;
  t.records = {
      data(EventKind::kRead, 100, 1000),
      data(EventKind::kWrite, 200, 500),
      data(EventKind::kRead, util::kSecond + 1, 2000),
  };
  IoRateConfig cfg;
  cfg.bucket = util::kSecond;
  const auto r = analyze_io_rate(t, cfg);
  ASSERT_EQ(r.timeline.size(), 4u);
  EXPECT_EQ(r.timeline[0].bytes_read, 1000);
  EXPECT_EQ(r.timeline[0].bytes_written, 500);
  EXPECT_EQ(r.timeline[0].requests, 2u);
  EXPECT_EQ(r.timeline[1].bytes_read, 2000);
  EXPECT_EQ(r.timeline[2].requests, 0u);
  EXPECT_NEAR(r.quiet_fraction, 0.5, 1e-9);
}

TEST(IoRate, BurstinessIsPeakOverMean) {
  trace::SortedTrace t;
  t.header.trace_start = 0;
  t.header.trace_end = 4 * util::kSecond;
  // All I/O in one of five buckets.
  t.records = {data(EventKind::kWrite, 100, 5'000'000)};
  IoRateConfig cfg;
  cfg.bucket = util::kSecond;
  const auto r = analyze_io_rate(t, cfg);
  EXPECT_NEAR(r.burstiness(), 5.0, 1e-6);
  EXPECT_FALSE(r.render().empty());
}

TEST(IoRate, NonDataEventsIgnored) {
  trace::SortedTrace t;
  t.header.trace_end = util::kSecond;
  auto open = data(EventKind::kOpen, 10, 99);
  t.records = {open};
  const auto r = analyze_io_rate(t);
  EXPECT_EQ(r.timeline[0].requests, 0u);
}

}  // namespace
}  // namespace charisma::analysis
