file(REMOVE_RECURSE
  "../bench/fig5_sequentiality"
  "../bench/fig5_sequentiality.pdb"
  "CMakeFiles/fig5_sequentiality.dir/fig5_sequentiality.cpp.o"
  "CMakeFiles/fig5_sequentiality.dir/fig5_sequentiality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sequentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
