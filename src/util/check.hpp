// Invariant checking.
//
// Simulator invariants are checked in all build types: a silently corrupt
// trace would invalidate every downstream experiment, and the checks are
// nowhere near the hot paths' cost.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace charisma::util {

/// Thrown when a simulator invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws CheckFailure with file:line context when `condition` is false.
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckFailure(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": " +
                       std::string(message));
  }
}

}  // namespace charisma::util
