#include "cfs/runtime.hpp"

#include <gtest/gtest.h>

#include "cfs/client.hpp"
#include "util/check.hpp"

namespace charisma::cfs {
namespace {

TEST(Runtime, MatchesMachineTopology) {
  sim::Engine engine;
  util::Rng rng(1);
  ipsc::Machine machine(engine, ipsc::MachineConfig::nas_ames(), rng);
  RuntimeParams params;
  params.fs.io_nodes = 3;  // deliberately wrong; the runtime overrides it
  Runtime runtime(machine, params);
  EXPECT_EQ(runtime.io_node_count(), 10);
  EXPECT_EQ(runtime.fs().params().io_nodes, 10);
  EXPECT_EQ(runtime.fs().params().disk_capacity,
            machine.config().disk.capacity_bytes);
  EXPECT_THROW((void)runtime.io_node(10), util::CheckFailure);
  EXPECT_THROW((void)runtime.io_node(-1), util::CheckFailure);
  EXPECT_EQ(runtime.io_node(3).id(), 3);
}

TEST(Runtime, LiveIoCacheConfigurable) {
  sim::Engine engine;
  util::Rng rng(2);
  ipsc::Machine machine(engine, ipsc::MachineConfig::tiny(), rng);
  RuntimeParams params;
  params.io.cache_buffers = 16;
  Runtime runtime(machine, params);
  Client c(runtime, 0);
  auto open = c.open(1, "f", kRead | kWrite | kCreate, IoMode::kIndependent);
  (void)c.write(open.fd, 4096);
  (void)c.seek(open.fd, 0, Whence::kSet);
  (void)c.read(open.fd, 4096);
  std::uint64_t hits = 0;
  for (int i = 0; i < runtime.io_node_count(); ++i) {
    hits += runtime.io_node(i).cache_hits();
  }
  EXPECT_GT(hits, 0u);  // write-through populated the live cache
}

}  // namespace
}  // namespace charisma::cfs
