// A realistic CFD checkpoint/restart cycle, hand-written against the
// public API (no workload generator): P nodes restore from per-node
// restart files, iterate with interleaved grid reads, and write periodic
// per-node snapshots — the access pattern at the heart of the paper.
//
//   cfd_checkpoint [--nodes=32] [--steps=4]
#include <cstdio>
#include <memory>
#include <vector>

#include "cfs/client.hpp"
#include "util/flags.hpp"

using namespace charisma;

namespace {

struct App {
  App(cfs::Runtime& cfs, std::int32_t nodes) {
    for (std::int32_t n = 0; n < nodes; ++n) {
      clients.push_back(std::make_unique<cfs::Client>(cfs, n));
    }
  }
  std::vector<std::unique_ptr<cfs::Client>> clients;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"nodes", "steps"});
  const auto P = static_cast<std::int32_t>(flags.get_int("nodes", 32));
  const auto steps = static_cast<std::int32_t>(flags.get_int("steps", 4));

  sim::Engine engine;
  util::Rng rng(7);
  ipsc::Machine machine(engine, ipsc::MachineConfig::nas_ames(), rng);
  cfs::Runtime cfs(machine);
  App app(cfs, P);
  const cfs::JobId job = 100;

  // Stage the shared grid and the per-node restart dumps (a previous run's
  // output).
  {
    cfs::Client& staging = *app.clients[0];
    auto grid = staging.open(job - 1, "mesh/wing.g",
                             cfs::kWrite | cfs::kCreate,
                             cfs::IoMode::kIndependent);
    (void)staging.write(grid.fd, 512 * util::kKiB);
    (void)staging.close(grid.fd);
  }
  for (std::int32_t n = 0; n < P; ++n) {
    auto r = app.clients[static_cast<std::size_t>(n)]->open(
        job - 1, "restart/r" + std::to_string(n) + ".chk",
        cfs::kWrite | cfs::kCreate, cfs::IoMode::kIndependent);
    (void)app.clients[static_cast<std::size_t>(n)]->write(r.fd,
                                                          2 * util::kMiB);
    (void)app.clients[static_cast<std::size_t>(n)]->close(r.fd);
  }
  std::printf("staged grid + %d restart files by t=%s\n", P,
              util::format_duration(engine.now()).c_str());

  // --- Restart: every node reads its own dump in one request. -----------
  util::MicroSec phase_end = engine.now();
  for (std::int32_t n = 0; n < P; ++n) {
    cfs::Client& c = *app.clients[static_cast<std::size_t>(n)];
    auto r = c.open(job, "restart/r" + std::to_string(n) + ".chk", cfs::kRead,
                    cfs::IoMode::kIndependent);
    const auto read = c.read(r.fd, 2 * util::kMiB);
    phase_end = std::max(phase_end, read.completed_at);
    (void)c.close(r.fd);
  }
  engine.run_until(phase_end);  // barrier: wait for the slowest node

  // --- Timestep loop. -----------------------------------------------------
  constexpr std::int64_t kRec = 400;
  std::int64_t small_reads = 0;
  for (std::int32_t step = 0; step < steps; ++step) {
    // Interleaved grid read: node n takes records n, n+P, 2P+n, ...
    phase_end = engine.now();
    for (std::int32_t n = 0; n < P; ++n) {
      cfs::Client& c = *app.clients[static_cast<std::size_t>(n)];
      auto g = c.open(job, "mesh/wing.g", cfs::kRead,
                      cfs::IoMode::kIndependent);
      (void)c.seek(g.fd, n * kRec, cfs::Whence::kSet);
      for (int rec = 0; rec < 40; ++rec) {
        const auto r = c.read(g.fd, kRec);
        if (!r.ok || r.bytes == 0) break;
        ++small_reads;
        phase_end = std::max(phase_end, r.completed_at);
        (void)c.seek(g.fd, (P - 1) * kRec, cfs::Whence::kCurrent);
      }
      (void)c.close(g.fd);
    }
    engine.run_until(phase_end);
    // Per-node snapshot: header plus fixed records (Table 3's two-size
    // signature).
    for (std::int32_t n = 0; n < P; ++n) {
      cfs::Client& c = *app.clients[static_cast<std::size_t>(n)];
      auto s = c.open(job,
                      "snap/s" + std::to_string(step) + "_n" +
                          std::to_string(n) + ".q",
                      cfs::kWrite | cfs::kCreate, cfs::IoMode::kIndependent);
      (void)c.write(s.fd, 512);
      for (int rec = 0; rec < 60; ++rec) {
        const auto w = c.write(s.fd, 1024);
        phase_end = std::max(phase_end, w.completed_at);
      }
      (void)c.close(s.fd);
    }
    engine.run_until(phase_end);
    std::printf("step %d done at t=%s\n", step,
                util::format_duration(engine.now()).c_str());
  }

  std::printf(
      "\n%d nodes, %d steps: %lld interleaved sub-block reads, "
      "%d snapshot files, %s of checkpoint data\n",
      P, steps, static_cast<long long>(small_reads), P * steps,
      util::format_bytes(static_cast<std::int64_t>(P) * steps *
                         (512 + 60 * 1024))
          .c_str());
  double util = 0;
  for (int d = 0; d < machine.io_nodes(); ++d) {
    util += machine.disk(d).utilization(engine.now());
  }
  std::printf("mean disk utilization: %.1f%%\n",
              100.0 * util / machine.io_nodes());
  return 0;
}
