#include "workload/driver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace charisma::workload {

using util::MicroSec;

Driver::Driver(ipsc::Machine& machine, cfs::Runtime& runtime,
               trace::Collector& collector,
               const GeneratedWorkload& workload)
    : machine_(&machine),
      runtime_(&runtime),
      collector_(&collector),
      workload_(&workload),
      allocator_(net::Hypercube::dimension_for(machine.compute_nodes())) {
  util::check((std::int32_t{1} << allocator_.dimension()) ==
                  machine.compute_nodes(),
              "driver requires a power-of-two machine");
}

Driver::Driver(ipsc::Machine& machine, cfs::Runtime& runtime,
               trace::Collector& collector, Source& source)
    : machine_(&machine),
      runtime_(&runtime),
      collector_(&collector),
      workload_(&source.workload()),
      source_(&source),
      allocator_(net::Hypercube::dimension_for(machine.compute_nodes())) {
  util::check((std::int32_t{1} << allocator_.dimension()) ==
                  machine.compute_nodes(),
              "driver requires a power-of-two machine");
}

void Driver::prepopulate() {
  // Input files existed before tracing started; create them straight
  // through the metadata layer under a reserved loader job id.
  constexpr cfs::JobId kLoader = -2;
  auto& fs = runtime_->fs();
  for (const auto& in : workload_->inputs) {
    const auto open = fs.open(kLoader, 0, in.path,
                              cfs::kWrite | cfs::kCreate,
                              cfs::IoMode::kIndependent, 0);
    util::check(open.ok, "prepopulate open failed: " + open.error);
    if (in.bytes > 0) {
      const auto r = fs.reserve_write(kLoader, 0, open.file, in.bytes, 0);
      util::check(r.ok, "prepopulate write failed: " + r.error);
    }
    fs.close(kLoader, 0, open.file);
  }
}

void Driver::run() {
  prepopulate();
  auto& engine = machine_->engine();
  // Arrivals and queueing run on the service node's LP: NQS lived on the
  // host side of the machine.
  const int service = machine_->service_lp();
  for (std::size_t i = 0; i < workload_->jobs.size(); ++i) {
    engine.schedule_at_lp(service, workload_->jobs[i].arrival,
                          [this, i] { on_arrival(i); });
  }
  engine.run();
  collector_->flush_all();
}

void Driver::on_arrival(std::size_t spec_index) {
  pending_.push_back(spec_index);
  try_start_pending();
}

void Driver::try_start_pending() {
  // FIFO: the head job blocks smaller jobs behind it, as NQS-style queues
  // on the real machine did.  NQS also capped the number of simultaneously
  // running jobs (the paper observed at most 8).
  while (!pending_.empty()) {
    if (running_ >= kMaxRunningJobs) return;
    const JobSpec& spec = workload_->jobs[pending_.front()];
    std::int32_t nodes = std::min(spec.nodes, machine_->compute_nodes());
    if (nodes < spec.nodes) ++clamped_;
    const std::int32_t base = allocator_.allocate(nodes);
    if (base < 0) return;
    const std::size_t spec_index = pending_.front();
    pending_.pop_front();
    allocator_.release(base, nodes);  // re-acquired inside start_job
    start_job(spec_index);
  }
}

void Driver::start_job(std::size_t spec_index) {
  const JobSpec& spec = workload_->jobs[spec_index];
  const std::int32_t nodes = std::min(spec.nodes, machine_->compute_nodes());
  const std::int32_t base = allocator_.allocate(nodes);
  util::check(base >= 0, "start_job allocation must succeed");

  ++running_;
  runs_.push_back(std::make_unique<JobRun>());
  JobRun* run = runs_.back().get();
  run->spec = &spec;
  run->spec_index = spec_index;
  run->base = base;
  JobScripts scripts;  // legacy mode only; sources hold their own
  if (source_ != nullptr) {
    run->paths = source_->start_job(spec_index);
  } else {
    scripts = build_scripts(spec, *workload_);
    run->paths = std::move(scripts.paths);
  }
  run->result_index = results_.size();

  JobResult result;
  result.job = spec.job;
  result.archetype = spec.archetype;
  result.nodes = nodes;
  result.traced = spec.traced;
  result.arrival = spec.arrival;
  result.start = machine_->engine().now();
  results_.push_back(result);

  trace::Record start_rec;
  start_rec.kind = trace::EventKind::kJobStart;
  start_rec.job = spec.job;
  start_rec.node = base;
  start_rec.aux = nodes;
  collector_->append_job_event(start_rec);

  run->nodes.resize(static_cast<std::size_t>(nodes));
  for (std::int32_t rank = 0; rank < nodes; ++rank) {
    auto& nr = run->nodes[static_cast<std::size_t>(rank)];
    nr.raw = std::make_unique<cfs::Client>(*runtime_, base + rank);
    nr.client = std::make_unique<trace::InstrumentedClient>(
        *nr.raw, *collector_, spec.traced);
    if (source_ == nullptr) {
      nr.ops = std::move(scripts.nodes[static_cast<std::size_t>(rank)].ops);
    }
    // SPMD startup skew: ranks come up a few hundred microseconds apart.
    machine_->engine().schedule_in_lp(
        machine_->lp_of_compute(base + rank), 200 + 50 * rank,
        [this, run, rank] { step(run, rank); });
  }
}

Op* Driver::fetch_op(JobRun* run, std::int32_t rank) {
  auto& nr = run->nodes[static_cast<std::size_t>(rank)];
  if (source_ == nullptr) {
    return nr.pc < nr.ops.size() ? &nr.ops[nr.pc] : nullptr;
  }
  if (nr.ended) return nullptr;
  if (!nr.has_current) {
    nr.current = source_->next(run->spec_index, rank);
    if (nr.current.kind == OpKind::kEnd) {
      nr.ended = true;
      return nullptr;
    }
    nr.has_current = true;
  }
  return &nr.current;
}

void Driver::consume_op(NodeRun& nr) {
  if (source_ == nullptr) {
    ++nr.pc;
  } else {
    nr.has_current = false;
  }
}

void Driver::step(JobRun* run, std::int32_t rank) {
  auto& nr = run->nodes[static_cast<std::size_t>(rank)];
  auto& engine = machine_->engine();
  // Everything this rank schedules happens on its own compute node.
  const int lp = machine_->lp_of_compute(run->base + rank);
  Op* fetched = fetch_op(run, rank);
  if (fetched == nullptr) {
    if (++run->done == static_cast<std::int32_t>(run->nodes.size())) {
      finish_job(run);
    }
    return;
  }
  const Op& op = *fetched;
  auto& result = results_[run->result_index];

  // The think time models compute before this operation issues.
  if (op.think > 0) {
    // Consume the think by rescheduling this op with think cleared.
    const MicroSec t = op.think;
    fetched->think = 0;
    engine.schedule_in_lp(lp, t, [this, run, rank] { step(run, rank); });
    return;
  }

  const auto path_of = [&](std::int32_t idx) -> const std::string& {
    return run->paths[static_cast<std::size_t>(idx)];
  };
  const auto fd_of = [&](std::int32_t idx) {
    const auto i = static_cast<std::size_t>(idx);
    return i < nr.fds.size() ? nr.fds[i] : cfs::kBadFd;
  };

  MicroSec next_at = engine.now();
  bool retry = false;
  ++ops_;
  ++result.ops;

  switch (op.kind) {
    case OpKind::kOpen: {
      const auto r = nr.client->open(run->spec->job, path_of(op.path),
                                     op.flags, op.mode);
      if (r.ok) {
        const auto i = static_cast<std::size_t>(op.path);
        if (nr.fds.size() <= i) nr.fds.resize(i + 1, cfs::kBadFd);
        nr.fds[i] = r.fd;
        next_at = r.completed_at;
      } else {
        ++result.io_errors;
      }
      break;
    }
    case OpKind::kRead:
    case OpKind::kWrite: {
      const cfs::Fd fd = fd_of(op.path);
      const auto r = op.kind == OpKind::kRead
                         ? nr.client->read(fd, op.bytes)
                         : nr.client->write(fd, op.bytes);
      if (r.ok) {
        next_at = r.completed_at;
      } else if (r.error == "mode-2 access out of turn") {
        retry = true;
      } else {
        ++result.io_errors;
      }
      break;
    }
    case OpKind::kSeek: {
      if (!nr.client->seek(fd_of(op.path), op.offset, op.whence)) {
        ++result.io_errors;
      }
      break;
    }
    case OpKind::kClose: {
      const cfs::Fd fd = fd_of(op.path);
      if (fd != cfs::kBadFd) {
        nr.client->close(fd);
        nr.fds[static_cast<std::size_t>(op.path)] = cfs::kBadFd;
      } else {
        ++result.io_errors;
      }
      break;
    }
    case OpKind::kUnlink: {
      if (!nr.client->unlink(run->spec->job, path_of(op.path))) {
        ++result.io_errors;
      }
      break;
    }
    case OpKind::kThink:
      break;  // think already consumed above
    case OpKind::kBarrier: {
      const std::size_t idx = nr.barriers_passed++;
      if (run->barriers.size() <= idx) run->barriers.resize(idx + 1);
      Barrier& bar = run->barriers[idx];
      ++bar.arrived;
      if (bar.arrived < static_cast<std::int32_t>(run->nodes.size())) {
        bar.parked.push_back(rank);  // resumed by the last arrival
        return;
      }
      // Last arrival: release everyone (a hypercube barrier costs a few
      // log-P message hops).
      const MicroSec release = 50;
      for (const std::int32_t parked : bar.parked) {
        consume_op(run->nodes[static_cast<std::size_t>(parked)]);
        engine.schedule_in_lp(machine_->lp_of_compute(run->base + parked),
                              release,
                              [this, run, parked] { step(run, parked); });
      }
      break;
    }
    case OpKind::kEnd:
      util::check(false, "kEnd is a source sentinel, never executed");
      break;
  }

  if (retry) {
    ++retries_;
    ++nr.retries;
    --ops_;
    --result.ops;
    util::check(nr.retries < kMaxRetriesPerNode,
                "mode-2 retry storm: workload script out of order");
    // Poll with exponential backoff: the node ahead of us may be deep in a
    // multi-second compute phase.
    const int shift = static_cast<int>(std::min<std::uint64_t>(
        nr.backoff, 9));
    ++nr.backoff;
    engine.schedule_in_lp(
        lp, (runtime_->fs().params().pointer_handoff + 100) << shift,
        [this, run, rank] { step(run, rank); });
    return;
  }
  nr.backoff = 0;

  consume_op(nr);
  const MicroSec delay = std::max<MicroSec>(next_at - engine.now(), 0);
  engine.schedule_in_lp(lp, delay, [this, run, rank] { step(run, rank); });
}

void Driver::finish_job(JobRun* run) {
  auto& result = results_[run->result_index];
  result.end = machine_->engine().now();

  trace::Record end_rec;
  end_rec.kind = trace::EventKind::kJobEnd;
  end_rec.job = run->spec->job;
  end_rec.node = run->base;
  end_rec.aux = static_cast<std::int64_t>(run->nodes.size());
  collector_->append_job_event(end_rec);

  if (source_ != nullptr) source_->end_job(run->spec_index);
  allocator_.release(run->base, static_cast<std::int32_t>(run->nodes.size()));
  // The shell stays alive in runs_ (step callbacks may hold the pointer),
  // but the per-node clients, scripts, and barrier state are dead weight
  // from here on.  The caller (step) touches nothing of run's after this.
  run->nodes.clear();
  run->nodes.shrink_to_fit();
  run->barriers.clear();
  run->barriers.shrink_to_fit();
  run->paths.clear();
  run->paths.shrink_to_fit();
  --running_;
  try_start_pending();
}

}  // namespace charisma::workload
