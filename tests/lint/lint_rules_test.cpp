// The lint rule engine itself is part of the determinism contract, so its
// rules are golden-tested: every rule must fire on a crafted bad input, and
// every escape hatch must actually suppress.
#include "tools/lint_rules.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

namespace charisma::lint {
namespace {

// The tests feed sources through an ordering-sensitive classification unless
// stated otherwise: that enables every rule.
FileClass sensitive() {
  FileClass cls;
  cls.ordering_sensitive = true;
  return cls;
}

std::vector<std::string> rules_fired(std::string_view src,
                                     FileClass cls = sensitive()) {
  std::vector<std::string> out;
  for (const auto& f : scan_source("test.cpp", src, cls)) {
    out.push_back(f.rule);
  }
  return out;
}

TEST(LintRules, WallClockSourcesFire) {
  EXPECT_EQ(rules_fired("auto t = std::chrono::system_clock::now();"),
            std::vector<std::string>{"charisma-wallclock"});
  EXPECT_EQ(rules_fired("auto t = std::chrono::steady_clock::now();"),
            std::vector<std::string>{"charisma-wallclock"});
  EXPECT_EQ(rules_fired("gettimeofday(&tv, nullptr);"),
            std::vector<std::string>{"charisma-wallclock"});
  EXPECT_EQ(rules_fired("long t = time(nullptr);"),
            std::vector<std::string>{"charisma-wallclock"});
}

TEST(LintRules, TimeRequiresCallShape) {
  // Identifiers merely containing 'time' are not wall-clock reads.
  EXPECT_TRUE(rules_fired("auto x = clock.local_time(now);").empty());
  EXPECT_TRUE(rules_fired("MicroSec time = 0; use(time);").empty());
  // ...but a call through the bare name is.
  EXPECT_EQ(rules_fired("auto x = time (nullptr);"),
            std::vector<std::string>{"charisma-wallclock"});
}

TEST(LintRules, RawRandomFires) {
  EXPECT_EQ(rules_fired("int x = rand();"),
            std::vector<std::string>{"charisma-raw-random"});
  EXPECT_EQ(rules_fired("srand(42);"),
            std::vector<std::string>{"charisma-raw-random"});
  EXPECT_EQ(rules_fired("std::random_device rd;"),
            std::vector<std::string>{"charisma-raw-random"});
}

TEST(LintRules, UtilRngIsExemptFromRawRandom) {
  const auto cls = classify_path("src/util/rng.cpp");
  EXPECT_TRUE(cls.rng_exempt);
  EXPECT_TRUE(scan_source("src/util/rng.cpp",
                          "std::random_device rd; // seeding helper", cls)
                  .empty());
}

TEST(LintRules, FloatFires) {
  EXPECT_EQ(rules_fired("float seconds = 0.5f;"),
            std::vector<std::string>{"charisma-float-time"});
  // double is the sanctioned floating type.
  EXPECT_TRUE(rules_fired("double seconds = 0.5;").empty());
  // 'float' inside identifiers or strings does not fire.
  EXPECT_TRUE(rules_fired("int float_count = 0;").empty());
  EXPECT_TRUE(rules_fired("const char* s = \"float\";").empty());
}

TEST(LintRules, UnorderedIterationFiresOnlyInSensitivePaths) {
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> totals;\n"
      "void f() { for (const auto& [k, v] : totals) { use(k, v); } }\n";
  EXPECT_EQ(rules_fired(src), std::vector<std::string>{
                                  "charisma-unordered-iter"});
  EXPECT_TRUE(rules_fired(src, FileClass{}).empty());
}

TEST(LintRules, UnorderedLookupIsFine) {
  // find()/operator[] don't depend on hash order; only iteration does.
  EXPECT_TRUE(rules_fired("std::unordered_map<int, int> m;\n"
                          "int g() { return m.count(3); }\n")
                  .empty());
  // Iterating a std::map is fine too.
  EXPECT_TRUE(rules_fired("std::map<int, int> m;\n"
                          "void f() { for (auto& [k, v] : m) use(k); }\n")
                  .empty());
}

TEST(LintRules, MultiLineTemplateArgumentsAreTracked) {
  const std::string src =
      "std::unordered_map<Key,\n"
      "                   Value>\n"
      "    lookup;\n"
      "void f() { for (const auto& kv : lookup) use(kv); }\n";
  const auto findings = scan_source("test.cpp", src, sensitive());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "charisma-unordered-iter");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintRules, CommentsAndStringsAreBlanked) {
  EXPECT_TRUE(rules_fired("// rand() in a comment\n"
                          "/* time(nullptr) in a block comment */\n"
                          "const char* s = \"rand() time(0) float\";\n")
                  .empty());
}

TEST(LintRules, NolintSuppressesOnSameLine) {
  EXPECT_TRUE(
      rules_fired("long t = time(nullptr);  // NOLINT(charisma-wallclock)\n")
          .empty());
  // Bare NOLINT suppresses everything on the line.
  EXPECT_TRUE(rules_fired("float f = rand();  // NOLINT\n").empty());
  // A different rule's NOLINT does not (and is itself stale -> audited).
  const auto fired = rules_fired(
      "long t = time(nullptr);  // NOLINT(charisma-raw-random)\n");
  EXPECT_EQ(fired, (std::vector<std::string>{
                       "charisma-unused-suppression", "charisma-wallclock"}));
}

TEST(LintRules, NolintNextLine) {
  EXPECT_TRUE(rules_fired("// NOLINTNEXTLINE(charisma-wallclock)\n"
                          "long t = time(nullptr);\n")
                  .empty());
}

TEST(LintRules, UnknownCharismaSuppressionIsItselfAFinding) {
  const auto fired =
      rules_fired("int x = 0;  // NOLINT(charisma-imaginary-rule)\n");
  EXPECT_EQ(fired, std::vector<std::string>{"charisma-unknown-suppression"});
  // Non-charisma rule names (clang-tidy's) are none of our business.
  EXPECT_TRUE(rules_fired("int x = 0;  // NOLINT(bugprone-foo)\n").empty());
}

TEST(LintRules, UnusedSuppressionIsItselfAFinding) {
  const auto findings = scan_source(
      "test.cpp", "int x = 0;  // NOLINT(charisma-wallclock)\n", sensitive());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "charisma-unused-suppression");
  EXPECT_EQ(findings[0].line, 1);
  // NOLINTNEXTLINE audits against the next line, not the comment's.
  EXPECT_EQ(rules_fired("// NOLINTNEXTLINE(charisma-raw-random)\n"
                        "int x = 0;\n"),
            std::vector<std::string>{"charisma-unused-suppression"});
  // A suppression that genuinely fires is not reported.
  EXPECT_TRUE(rules_fired("// NOLINTNEXTLINE(charisma-raw-random)\n"
                          "int x = rand();\n")
                  .empty());
}

// ---- charisma-shared-capture ----------------------------------------------

TEST(LintCapture, ByRefCaptureIntoParallelForFires) {
  EXPECT_EQ(rules_fired("void f(util::ThreadPool& pool) {\n"
                        "  int hits = 0;\n"
                        "  parallel_for(pool, 8, [&hits](std::size_t) {\n"
                        "    ++hits;\n"
                        "  });\n"
                        "}\n"),
            std::vector<std::string>{"charisma-shared-capture"});
}

TEST(LintCapture, DefaultCaptureFormsAreClassified) {
  // [&] fires; [=] copies and is safe.
  EXPECT_EQ(rules_fired("parallel_for(pool, 8, [&](std::size_t i) {"
                        " use(i); });\n"),
            std::vector<std::string>{"charisma-shared-capture"});
  EXPECT_TRUE(rules_fired("parallel_for(pool, 8, [=](std::size_t i) {"
                          " use(i); });\n")
                  .empty());
}

TEST(LintCapture, ConstAndAtomicLocalsAreSafeByReference) {
  EXPECT_TRUE(rules_fired("const int limit = 3;\n"
                          "parallel_for(pool, 8, [&limit](std::size_t i) {"
                          " use(i, limit); });\n")
                  .empty());
  EXPECT_TRUE(rules_fired("std::atomic<int> count{0};\n"
                          "parallel_for(pool, 8, [&count](std::size_t) {"
                          " ++count; });\n")
                  .empty());
}

TEST(LintCapture, NestedAndVariadicLambdas) {
  // A nested lambda inside the submitted body still runs on the worker.
  EXPECT_EQ(rules_fired("int n = 0;\n"
                        "pool.submit([] {\n"
                        "  auto inner = [&n] { ++n; };\n"
                        "  inner();\n"
                        "});\n"),
            std::vector<std::string>{"charisma-shared-capture"});
  // Variadic pack capture by reference: the dots don't hide the name.
  EXPECT_EQ(rules_fired("int args = 0;\n"
                        "pool.submit([&args...] { use(args...); });\n"),
            std::vector<std::string>{"charisma-shared-capture"});
}

TEST(LintCapture, InitCaptures) {
  // Init capture by value is a copy: safe.
  EXPECT_TRUE(rules_fired("int n = 0;\n"
                          "pool.submit([m = n] { use(m); });\n")
                  .empty());
  // Init capture by reference to a mutable local is a shared reference.
  EXPECT_EQ(rules_fired("int n = 0;\n"
                        "pool.submit([&m = n] { ++m; });\n"),
            std::vector<std::string>{"charisma-shared-capture"});
  // ...but a reference alias to a const local is safe.
  EXPECT_TRUE(rules_fired("const int n = 0;\n"
                          "pool.submit([&m = n] { use(m); });\n")
                  .empty());
}

TEST(LintCapture, NamedLambdaTracedToItsCaptures) {
  const auto findings = scan_source(
      "test.cpp",
      "void f(util::ThreadPool& pool) {\n"
      "  int total = 0;\n"
      "  const auto body = [&total](std::size_t) { ++total; };\n"
      "  parallel_for(pool, 4, body);\n"
      "}\n",
      sensitive());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "charisma-shared-capture");
  EXPECT_EQ(findings[0].line, 4);  // anchored at the sink call
  EXPECT_NE(findings[0].message.find("'body'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'total'"), std::string::npos);
}

TEST(LintCapture, SubmitNeedsAPoolReceiver) {
  // Disk::submit is a simulated-disk request, not a task sink.
  EXPECT_TRUE(rules_fired("int n = 0;\n"
                          "disk_->submit([&n] { ++n; });\n")
                  .empty());
  EXPECT_TRUE(rules_fired("int n = 0;\n"
                          "d.submit(request);\n")
                  .empty());
  // Any pool-ish receiver counts, member pools included.
  EXPECT_EQ(rules_fired("int n = 0;\n"
                        "pool_->submit([&n] { ++n; });\n"),
            std::vector<std::string>{"charisma-shared-capture"});
}

TEST(LintCapture, SubscriptsAndAttributesAreNotCaptureLists) {
  EXPECT_TRUE(rules_fired("parallel_for(pool, n, body);\n"
                          "int x = xs[i];\n")
                  .empty());
  EXPECT_TRUE(
      rules_fired("pool.submit(tasks[i]);\n [[nodiscard]] int f();\n")
          .empty());
}

// ---- charisma-pointer-order -----------------------------------------------

TEST(LintPointerOrder, PointerKeyedContainersFire) {
  EXPECT_EQ(rules_fired("std::map<Node*, int> by_node;"),
            std::vector<std::string>{"charisma-pointer-order"});
  EXPECT_EQ(rules_fired("std::set<const Session*> seen;"),
            std::vector<std::string>{"charisma-pointer-order"});
  // Value types and smart handles by id are fine.
  EXPECT_TRUE(rules_fired("std::map<std::uint64_t, int> by_id;").empty());
  EXPECT_TRUE(rules_fired("std::set<std::string> names;").empty());
}

TEST(LintPointerOrder, SortingPointerVectorsFires) {
  EXPECT_EQ(rules_fired("std::vector<Node*> v;\n"
                        "std::sort(v.begin(), v.end());\n"),
            std::vector<std::string>{"charisma-pointer-order"});
  // Sorting a value vector is fine.
  EXPECT_TRUE(rules_fired("std::vector<int> v;\n"
                          "std::sort(v.begin(), v.end());\n")
                  .empty());
  // A pointer vector that is never sorted is fine.
  EXPECT_TRUE(rules_fired("std::vector<Node*> v;\nuse(v);\n").empty());
}

// ---- charisma-parallel-fold -----------------------------------------------

TEST(LintParallelFold, FloatAccumulationInParallelBodyFires) {
  const auto fired = rules_fired(
      "double total = 0.0;\n"
      "// NOLINTNEXTLINE(charisma-shared-capture)\n"
      "parallel_for(pool, n, [&](std::size_t i) { total += xs[i]; });\n");
  EXPECT_EQ(fired, std::vector<std::string>{"charisma-parallel-fold"});
}

TEST(LintParallelFold, IntegerAndSerialFoldsAreFine) {
  // Integer accumulation commutes: no finding.
  EXPECT_TRUE(
      rules_fired("long total = 0;\n"
                  "// NOLINTNEXTLINE(charisma-shared-capture)\n"
                  "parallel_for(pool, n, [&](std::size_t i) {"
                  " total += xs[i]; });\n")
          .empty());
  // A double fold outside any parallel body is fine.
  EXPECT_TRUE(rules_fired("double total = 0.0;\n"
                          "for (double x : xs) total += x;\n")
                  .empty());
  // Per-index slot writes are the sanctioned pattern.
  EXPECT_TRUE(
      rules_fired("// NOLINTNEXTLINE(charisma-shared-capture)\n"
                  "parallel_for(pool, n, [&](std::size_t i) {"
                  " out[i] = f(i); });\n")
          .empty());
}

// ---- charisma-layering ----------------------------------------------------

TEST(LintLayering, RanksFollowTheDag) {
  EXPECT_EQ(layer_rank_of("util"), 0);
  EXPECT_LT(layer_rank_of("util"), layer_rank_of("sim"));
  EXPECT_LT(layer_rank_of("sim"), layer_rank_of("ipsc"));
  EXPECT_LT(layer_rank_of("ipsc"), layer_rank_of("cfs"));
  EXPECT_LT(layer_rank_of("cfs"), layer_rank_of("trace"));
  EXPECT_LT(layer_rank_of("trace"), layer_rank_of("cache"));
  EXPECT_LT(layer_rank_of("cache"), layer_rank_of("analysis"));
  EXPECT_LT(layer_rank_of("analysis"), layer_rank_of("core"));
  EXPECT_LT(layer_rank_of("core"), layer_rank_of("tools"));
  EXPECT_LT(layer_rank_of("tools"), layer_rank_of("tests"));
  EXPECT_EQ(layer_rank_of("cache"), layer_rank_of("workload"));
  EXPECT_EQ(layer_rank_of("no-such-module"), -1);
}

TEST(LintLayering, BackEdgesFire) {
  const auto cls = classify_path("src/net/forwarding.cpp");
  EXPECT_EQ(cls.module, "net");
  const auto findings = scan_source("src/net/forwarding.cpp",
                                    "#include \"analysis/session.hpp\"\n",
                                    cls);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "charisma-layering");
  EXPECT_NE(findings[0].message.find("back-edge"), std::string::npos);
}

TEST(LintLayering, LateralEdgesFire) {
  const auto findings =
      scan_source("src/net/forwarding.cpp", "#include \"disk/disk.hpp\"\n",
                  classify_path("src/net/forwarding.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "charisma-layering");
  EXPECT_NE(findings[0].message.find("lateral"), std::string::npos);
}

TEST(LintLayering, DownwardSameModuleAndSystemIncludesAreFine) {
  const auto cls = classify_path("src/core/campaign.cpp");
  EXPECT_TRUE(scan_source("src/core/campaign.cpp",
                          "#include <vector>\n"
                          "#include \"core/study.hpp\"\n"
                          "#include \"analysis/figures.hpp\"\n"
                          "#include \"util/stats.hpp\"\n",
                          cls)
                  .empty());
  // Tools sit above every src module.
  EXPECT_TRUE(scan_source("tools/charisma_lint.cpp",
                          "#include \"core/campaign.hpp\"\n",
                          classify_path("tools/charisma_lint.cpp"))
                  .empty());
  // Files with no module (e.g. a stray root file) skip the pass.
  EXPECT_TRUE(scan_source("scratch.cpp",
                          "#include \"analysis/session.hpp\"\n",
                          classify_path("scratch.cpp"))
                  .empty());
}

TEST(LintLayering, ClassifyKnowsEveryTree) {
  EXPECT_EQ(classify_path("src/util/rng.cpp").module, "util");
  EXPECT_EQ(classify_path("src/cache/simulators.cpp").module, "cache");
  EXPECT_EQ(classify_path("tests/util/misc_test.cpp").module, "tests");
  EXPECT_EQ(classify_path("examples/cache_tuning.cpp").module, "examples");
  EXPECT_EQ(classify_path("bench/perf_study.cpp").module, "bench");
  EXPECT_EQ(classify_path("tools/charisma_lint.cpp").module, "tools");
  EXPECT_TRUE(classify_path("tests/lint/data/bad_layering.cpp").lint_fixture);
  EXPECT_TRUE(classify_path("tests/workload/data/torn.chwl").lint_fixture);
  // Fixtures are never scanned, whatever hazards they hold.
  EXPECT_TRUE(scan_source("tests/lint/data/bad_layering.cpp",
                          "float f = rand();\n",
                          classify_path("tests/lint/data/bad_layering.cpp"))
                  .empty());
}

// ---- output formats -------------------------------------------------------

TEST(LintFormat, JsonEscapesAndShapes) {
  std::vector<Finding> findings;
  findings.push_back({"a\"b.cpp", 3, "charisma-wallclock", "msg \\ \"x\""});
  const std::string json = format_json(findings);
  EXPECT_NE(json.find("\"file\": \"a\\\"b.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"charisma-wallclock\""), std::string::npos);
  EXPECT_NE(json.find("msg \\\\ \\\"x\\\""), std::string::npos);
  EXPECT_EQ(format_json({}), "[]\n");
}

TEST(LintRules, FindingsAreDeterministicallySorted) {
  const std::string src = "float b = rand();\nfloat a = time(nullptr);\n";
  const auto first = scan_source("test.cpp", src, sensitive());
  const auto second = scan_source("test.cpp", src, sensitive());
  EXPECT_EQ(first, second);
  ASSERT_GE(first.size(), 2u);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].line, first[i].line);
  }
}

TEST(LintRules, ClassifyPaths) {
  EXPECT_TRUE(classify_path("src/analysis/analyzers.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/core/report.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/core/export.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/trace/postprocess.cpp").ordering_sensitive);
  EXPECT_FALSE(classify_path("src/sim/engine.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/util/rng.cpp").rng_exempt);
  EXPECT_FALSE(classify_path("src/util/stats.cpp").rng_exempt);
}

TEST(LintRules, TraceMaterializeFiresOutsideReferencePath) {
  EXPECT_EQ(rules_fired("std::vector<trace::Record> all;", FileClass{}),
            std::vector<std::string>{"charisma-trace-materialize"});
  EXPECT_EQ(rules_fired("std::vector< Record > all;", FileClass{}),
            std::vector<std::string>{"charisma-trace-materialize"});
  EXPECT_EQ(rules_fired("return sorted.records().size();", FileClass{}),
            std::vector<std::string>{"charisma-trace-materialize"});
  EXPECT_EQ(rules_fired("auto v = trace->records();", FileClass{}),
            std::vector<std::string>{"charisma-trace-materialize"});
}

TEST(LintRules, TraceMaterializeIgnoresBoundedShapes) {
  // Other element types, member access without a call, calls with
  // arguments, and counters merely containing 'records' are all fine.
  EXPECT_TRUE(rules_fired("std::vector<Block> blocks;", FileClass{}).empty());
  EXPECT_TRUE(
      rules_fired("for (const auto& r : sorted.records) use(r);", FileClass{})
          .empty());
  EXPECT_TRUE(
      rules_fired("auto n = collector.records_seen();", FileClass{}).empty());
  EXPECT_TRUE(rules_fired("auto b = t.records(3);", FileClass{}).empty());
}

TEST(LintRules, TraceMaterializeExemptsReferencePathAndTests) {
  const char* src = "std::vector<trace::Record> all = t.records();";
  EXPECT_TRUE(
      scan_source("src/trace/postprocess.cpp", src,
                  classify_path("src/trace/postprocess.cpp"))
          .empty());
  EXPECT_TRUE(scan_source("tests/trace/spill_test.cpp", src,
                          classify_path("tests/trace/spill_test.cpp"))
                  .empty());
  EXPECT_FALSE(scan_source("src/cache/replay.cpp", src,
                           classify_path("src/cache/replay.cpp"))
                   .empty());
}

TEST(LintRules, TraceMaterializeSuppressible) {
  EXPECT_TRUE(
      rules_fired("// NOLINTNEXTLINE(charisma-trace-materialize)\n"
                  "std::vector<trace::Record> audited;",
                  FileClass{})
          .empty());
}

// The golden tests: each crafted bad input's findings pinned line by line,
// and across all fixtures every rule must fire at least once.
struct GoldenCase {
  const char* fixture;
  const char* label;
};

constexpr GoldenCase kGoldenCases[] = {
    {"bad_determinism", "src/analysis/bad_determinism.cpp"},
    {"bad_concurrency", "src/cache/bad_concurrency.cpp"},
    {"bad_layering", "src/net/bad_layering.cpp"},
    {"bad_suppression", "src/sim/bad_suppression.cpp"},
    {"bad_materialize", "src/analysis/bad_materialize.cpp"},
};

std::vector<Finding> golden_findings(const GoldenCase& c) {
  const std::string dir = CHARISMA_LINT_TEST_DATA_DIR;
  std::ifstream bad(dir + "/" + c.fixture + ".cpp", std::ios::binary);
  EXPECT_TRUE(bad.is_open()) << "missing fixture in " << dir;
  std::stringstream src;
  src << bad.rdbuf();
  return scan_source(c.label, src.str(), classify_path(c.label));
}

TEST(LintGolden, BadInputsMatchGoldenFindings) {
  const std::string dir = CHARISMA_LINT_TEST_DATA_DIR;
  for (const auto& c : kGoldenCases) {
    SCOPED_TRACE(c.fixture);
    std::vector<std::string> got;
    for (const auto& f : golden_findings(c)) got.push_back(format(f));

    std::ifstream golden_in(dir + "/" + c.fixture + ".golden");
    ASSERT_TRUE(golden_in.is_open());
    std::vector<std::string> expected;
    std::string line;
    while (std::getline(golden_in, line)) {
      if (!line.empty()) expected.push_back(line);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(LintGolden, EveryRuleFiresSomewhereInTheFixtures) {
  std::set<std::string> fired;
  for (const auto& c : kGoldenCases) {
    for (const auto& f : golden_findings(c)) fired.insert(f.rule);
  }
  for (const auto& rule : known_rules()) {
    EXPECT_TRUE(fired.count(rule) > 0) << "rule never fired: " << rule;
  }
}

TEST(LintGolden, ListsAllKnownRules) {
  EXPECT_EQ(known_rules().size(), 11u);
}

}  // namespace
}  // namespace charisma::lint
