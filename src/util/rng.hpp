// Deterministic random-number generation for the CHARISMA simulator.
//
// Everything in the repository that needs randomness draws from Rng so that a
// (seed, config) pair fully determines a simulated workload and therefore a
// trace.  We implement the distributions ourselves rather than using
// <random>'s distribution objects, whose outputs are implementation-defined
// and would make traces non-portable across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace charisma::util {

/// SplitMix64; used to expand a single user seed into stream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Derives an independent child stream (for per-node / per-job RNGs).
  [[nodiscard]] Rng fork() noexcept;

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;
  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;
  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) noexcept;
  /// Standard normal via Box-Muller (one value per call; no caching).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Lognormal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) noexcept;
  /// Index into `weights` with probability proportional to the weight.
  /// Weights need not be normalized; at least one must be positive.
  [[nodiscard]] std::size_t weighted(std::span<const double> weights) noexcept;
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Cumulative-weight alias for repeated weighted draws over a fixed table.
class WeightedPicker {
 public:
  WeightedPicker() = default;
  explicit WeightedPicker(std::span<const double> weights);

  [[nodiscard]] std::size_t pick(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cumulative_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cumulative_.empty(); }

 private:
  std::vector<double> cumulative_;  // strictly increasing, last == total
};

}  // namespace charisma::util
