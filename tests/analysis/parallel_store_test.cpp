// Equivalence of the parallel SessionStore build with the serial one.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/session.hpp"
#include "core/study.hpp"

namespace charisma::analysis {
namespace {

/// Canonical ordering for comparing the two builds.
std::vector<const FileSession*> sorted_view(const SessionStore& store) {
  std::vector<const FileSession*> v;
  v.reserve(store.sessions().size());
  for (const auto& s : store.sessions()) v.push_back(&s);
  // Audited: the comparator orders by the stable (job, file) key, never by
  // pointer value.
  // NOLINTNEXTLINE(charisma-pointer-order)
  std::sort(v.begin(), v.end(), [](const FileSession* a, const FileSession* b) {
    return std::tie(a->job, a->file) < std::tie(b->job, b->file);
  });
  return v;
}

TEST(ParallelSessionStore, MatchesSerialBuild) {
  const auto study = core::run_study_at_scale(0.05, 77);
  util::ThreadPool pool(4);
  const SessionStore serial(study.sorted);
  const SessionStore parallel =
      SessionStore::build_parallel(study.sorted, pool);

  ASSERT_EQ(parallel.sessions().size(), serial.sessions().size());
  ASSERT_EQ(parallel.job_events().size(), serial.job_events().size());
  const auto a = sorted_view(serial);
  const auto b = sorted_view(parallel);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    ASSERT_EQ(a[i]->job, b[i]->job);
    ASSERT_EQ(a[i]->file, b[i]->file);
    EXPECT_EQ(a[i]->reads, b[i]->reads);
    EXPECT_EQ(a[i]->writes, b[i]->writes);
    EXPECT_EQ(a[i]->bytes_read, b[i]->bytes_read);
    EXPECT_EQ(a[i]->bytes_written, b[i]->bytes_written);
    EXPECT_EQ(a[i]->size_at_close, b[i]->size_at_close);
    EXPECT_EQ(a[i]->max_concurrent_opens, b[i]->max_concurrent_opens);
    EXPECT_EQ(a[i]->total_opens, b[i]->total_opens);
    EXPECT_EQ(a[i]->interval_sizes, b[i]->interval_sizes);
    EXPECT_EQ(a[i]->request_sizes, b[i]->request_sizes);
    EXPECT_EQ(a[i]->access_class(), b[i]->access_class());
    EXPECT_EQ(a[i]->temporary(), b[i]->temporary());
    ASSERT_EQ(a[i]->per_node.size(), b[i]->per_node.size());
    for (const auto& [node, ns] : a[i]->per_node) {
      const auto it = b[i]->per_node.find(node);
      ASSERT_NE(it, b[i]->per_node.end());
      EXPECT_EQ(ns.requests, it->second.requests);
      EXPECT_EQ(ns.sequential, it->second.sequential);
      EXPECT_EQ(ns.consecutive, it->second.consecutive);
      EXPECT_EQ(ns.coverage.size(), it->second.coverage.size());
    }
  }
  EXPECT_EQ(serial.read_only_sessions(), parallel.read_only_sessions());
}

TEST(ParallelSessionStore, JobEventsPreserved) {
  const auto study = core::run_study_at_scale(0.03, 5);
  util::ThreadPool pool(3);
  const SessionStore serial(study.sorted, false);
  const SessionStore parallel =
      SessionStore::build_parallel(study.sorted, pool, false);
  ASSERT_EQ(serial.job_events().size(), parallel.job_events().size());
  for (std::size_t i = 0; i < serial.job_events().size(); ++i) {
    EXPECT_EQ(serial.job_events()[i].time, parallel.job_events()[i].time);
    EXPECT_EQ(serial.job_events()[i].job, parallel.job_events()[i].job);
  }
}

TEST(ParallelSessionStore, SingleThreadPoolWorks) {
  const auto study = core::run_study_at_scale(0.02, 9);
  util::ThreadPool pool(1);
  const SessionStore parallel =
      SessionStore::build_parallel(study.sorted, pool);
  const SessionStore serial(study.sorted);
  EXPECT_EQ(parallel.sessions().size(), serial.sessions().size());
}

}  // namespace
}  // namespace charisma::analysis
