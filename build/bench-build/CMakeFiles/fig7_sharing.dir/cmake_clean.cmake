file(REMOVE_RECURSE
  "../bench/fig7_sharing"
  "../bench/fig7_sharing.pdb"
  "CMakeFiles/fig7_sharing.dir/fig7_sharing.cpp.o"
  "CMakeFiles/fig7_sharing.dir/fig7_sharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
