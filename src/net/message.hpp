// Message cost model for the iPSC/860 interconnect.
//
// Large messages are broken into 4 KB fragments by the hardware (paper
// §3.1 relies on this: the tracer's per-node buffer is exactly one fragment).
// We charge a fixed per-message software overhead, a per-fragment overhead,
// a per-hop wormhole latency, and a per-byte transfer time.  The defaults
// approximate published iPSC/860 numbers (~75 us latency, ~2.8 MB/s per
// link); absolute values only scale simulated wall-clock.
#pragma once

#include <cstdint>

#include "net/hypercube.hpp"
#include "util/units.hpp"

namespace charisma::net {

using util::MicroSec;

struct MessageCostParams {
  MicroSec software_overhead = 60;  // send+receive call overhead
  MicroSec per_fragment = 15;       // fragment setup
  MicroSec per_hop = 2;             // wormhole routing per hop
  double per_byte = 0.35;           // us/byte (~2.8 MB/s links)
  std::int64_t fragment_bytes = util::kBlockSize;
};

class MessageModel {
 public:
  explicit MessageModel(const Hypercube& cube,
                        MessageCostParams params = {}) noexcept
      : cube_(&cube), params_(params) {}

  [[nodiscard]] const MessageCostParams& params() const noexcept {
    return params_;
  }

  /// Number of 4 KB fragments a payload of `bytes` becomes (min 1).
  [[nodiscard]] std::int64_t fragments(std::int64_t bytes) const noexcept;

  /// End-to-end latency of one message of `bytes` from `from` to `to`.
  [[nodiscard]] MicroSec transfer_time(NodeId from, NodeId to,
                                       std::int64_t bytes) const;

  /// Transfer time given an explicit hop count (for links that are not part
  /// of the cube proper, e.g. the compute-node <-> I/O-node tap).
  [[nodiscard]] MicroSec transfer_time_hops(int hops,
                                            std::int64_t bytes) const;

  /// Minimum cross-node message latency under this model — the conservative
  /// lookahead bound for the sharded engine.  See min_message_latency.
  [[nodiscard]] MicroSec min_latency() const noexcept;

 private:
  const Hypercube* cube_;
  MessageCostParams params_;
};

/// Minimum end-to-end latency of any cross-node message under `params`: the
/// fixed software overhead, one fragment setup (every message is at least
/// one fragment), and one wormhole hop — distinct nodes sit at least one
/// cube or tap hop apart, and the per-byte term only adds from there.  This
/// is the machine model's lookahead: no event on one node can cause an
/// event on another node sooner than this, which is what lets the sharded
/// engine (sim/sharded.hpp) advance all shards through a window of this
/// width between cross-shard exchanges.
[[nodiscard]] MicroSec min_message_latency(
    const MessageCostParams& params) noexcept;

}  // namespace charisma::net
