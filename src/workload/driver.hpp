// Workload driver: executes a workload on the simulated machine.
//
// Responsibilities:
//   * pre-populate the input files that existed before tracing started;
//   * feed job arrivals into a FIFO queue in front of the subcube allocator;
//   * run each started job's per-node scripts as event-engine callback
//     chains through the (instrumented or plain) CFS client;
//   * emit JOB_START / JOB_END records through the collector's separate
//     job-logging channel, for every job, traced or not (paper §3.1).
//
// Two op feeds share one step loop:
//   * Source mode (the default; any registered workload::Source) pulls each
//     rank's next op on demand — next(job, rank) until OpKind::kEnd;
//   * legacy mode (a GeneratedWorkload) materializes each job's scripts at
//     start via build_scripts(), exactly the pre-Source pipeline.  It is
//     kept as the differential reference: the source differential suite
//     holds the synthetic Source bit-identical to it, digest and all.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cfs/client.hpp"
#include "trace/collector.hpp"
#include "trace/instrumented_client.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"
#include "workload/source.hpp"

namespace charisma::workload {

struct JobResult {
  cfs::JobId job = cfs::kNoJob;
  Archetype archetype = Archetype::kSystem;
  std::int32_t nodes = 0;
  bool traced = false;
  util::MicroSec arrival = 0;
  util::MicroSec start = 0;
  util::MicroSec end = 0;
  std::uint64_t ops = 0;
  std::uint64_t io_errors = 0;
};

class Driver {
 public:
  /// Legacy reference feed: scripts compiled by build_scripts() at job
  /// start.  `workload` must outlive the driver.
  Driver(ipsc::Machine& machine, cfs::Runtime& runtime,
         trace::Collector& collector, const GeneratedWorkload& workload);
  /// Source feed: ops pulled through the pluggable seam.  `source` (and its
  /// workload()) must outlive the driver.
  Driver(ipsc::Machine& machine, cfs::Runtime& runtime,
         trace::Collector& collector, Source& source);

  /// Runs the whole workload to completion (drives the engine).
  void run();

  [[nodiscard]] const std::vector<JobResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::uint64_t total_ops() const noexcept { return ops_; }
  [[nodiscard]] std::uint64_t mode_retries() const noexcept {
    return retries_;
  }
  [[nodiscard]] std::uint64_t clamped_jobs() const noexcept {
    return clamped_;
  }

 private:
  struct NodeRun {
    std::unique_ptr<cfs::Client> raw;
    std::unique_ptr<trace::InstrumentedClient> client;
    // Legacy mode: the rank's whole script and a program counter.
    std::vector<Op> ops;
    std::size_t pc = 0;
    // Source mode: the one pulled-but-unconsumed op (think times are
    // consumed by zeroing the held copy, retries re-issue it).
    Op current;
    bool has_current = false;
    bool ended = false;
    std::uint64_t retries = 0;
    std::uint64_t backoff = 0;
    std::size_t barriers_passed = 0;
    // path index -> fd.  Path indexes are small and dense per job, so a
    // flat vector (kBadFd = closed/never opened) replaces a hash lookup on
    // the per-operation path.
    std::vector<cfs::Fd> fds;
  };
  struct Barrier {
    std::int32_t arrived = 0;
    std::vector<std::int32_t> parked;  // ranks waiting
  };
  struct JobRun {
    const JobSpec* spec = nullptr;
    std::size_t spec_index = 0;
    std::vector<std::string> paths;
    std::int32_t base = 0;
    std::int32_t done = 0;
    std::size_t result_index = 0;
    std::vector<NodeRun> nodes;
    std::vector<Barrier> barriers;
  };

  void prepopulate();
  void on_arrival(std::size_t spec_index);
  void try_start_pending();
  void start_job(std::size_t spec_index);
  void step(JobRun* run, std::int32_t rank);
  void finish_job(JobRun* run);
  /// The rank's current op, pulling from the source when needed; nullptr
  /// once the rank's script is exhausted.
  [[nodiscard]] Op* fetch_op(JobRun* run, std::int32_t rank);
  /// Marks the rank's current op consumed (legacy: pc++; source: drop the
  /// held op so the next fetch pulls).
  void consume_op(NodeRun& nr);

  ipsc::Machine* machine_;
  cfs::Runtime* runtime_;
  trace::Collector* collector_;
  const GeneratedWorkload* workload_;
  Source* source_ = nullptr;  // null in legacy mode
  SubcubeAllocator allocator_;
  std::deque<std::size_t> pending_;  // spec indices waiting for nodes
  std::vector<JobResult> results_;
  /// Owns every started job's run state for the driver's lifetime, so the
  /// engine's step callbacks can capture a raw JobRun* — a shared_ptr per
  /// event costs an atomic refcount round-trip on the hottest path in the
  /// simulator.  finish_job() releases a finished run's bulk (node state,
  /// scripts) and keeps only the empty shell.
  std::vector<std::unique_ptr<JobRun>> runs_;
  std::uint64_t ops_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t clamped_ = 0;
  std::int32_t running_ = 0;

  static constexpr std::uint64_t kMaxRetriesPerNode = 100000;
  /// NQS-style limit on simultaneously running jobs (paper Figure 1 tops
  /// out at 8 concurrent jobs).
  static constexpr std::int32_t kMaxRunningJobs = 8;
};

}  // namespace charisma::workload
