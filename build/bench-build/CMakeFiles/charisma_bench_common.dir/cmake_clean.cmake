file(REMOVE_RECURSE
  "CMakeFiles/charisma_bench_common.dir/common.cpp.o"
  "CMakeFiles/charisma_bench_common.dir/common.cpp.o.d"
  "libcharisma_bench_common.a"
  "libcharisma_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
