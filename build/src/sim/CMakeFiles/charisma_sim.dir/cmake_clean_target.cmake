file(REMOVE_RECURSE
  "libcharisma_sim.a"
)
