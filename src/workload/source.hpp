// Pluggable workload sources: the generator side of the workload -> CFS
// boundary.
//
// Modeled on the codes-workload API: a registry of named generator methods,
// each loaded into a Source that the Driver pulls operations from one at a
// time — next(job, rank) returns the rank's next Op, or OpKind::kEnd when
// the rank's script is exhausted.  The synthetic 1993 reconstruction is the
// first method ("synthetic"); a Darshan-style log replayer ("replay", see
// replay.hpp) and a Daly-interval checkpoint-restart archetype
// ("checkpoint", see checkpoint.hpp) ride behind the same seam, so every
// analyzer, cache sweep, engine-thread count, and trace mode runs unchanged
// over any source.
//
// Memory contract: a Source materializes per-job scripts only between
// start_job() and end_job(), so — like the legacy lazy build_scripts()
// path — at most the <= machine-width set of running jobs holds script
// memory, never the whole workload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "workload/generator.hpp"

namespace charisma::workload {

/// A workload generator behind the pluggable seam.  The Driver calls
/// start_job() when the scheduler starts spec_index (returning the job's
/// path table), pulls ops per rank with next(), and calls end_job() when
/// every rank finished so the source can free the job's script state.
class Source {
 public:
  virtual ~Source() = default;

  /// The arrival stream and pre-population metadata.  Stable for the
  /// source's lifetime (the Driver keeps JobSpec pointers into it).
  [[nodiscard]] virtual const GeneratedWorkload& workload() const noexcept = 0;

  /// Compiles/loads the job's scripts; returns its job-relative path table.
  virtual std::vector<std::string> start_job(std::size_t spec_index) = 0;

  /// The rank's next operation, or kind == OpKind::kEnd when exhausted.
  /// Ranks are pulled in simulation-event order; each op is pulled once.
  [[nodiscard]] virtual Op next(std::size_t spec_index, std::int32_t rank) = 0;

  /// Every rank of the job finished; script state may be freed.
  virtual void end_job(std::size_t spec_index) = 0;
};

/// Which registered method to load, plus its argument (the replay log path).
/// Parsed from "synthetic" | "replay:<path>" | "checkpoint" — generally
/// "<method>" or "<method>:<arg>".
struct SourceSpec {
  std::string method = "synthetic";
  std::string path;
};

[[nodiscard]] SourceSpec parse_source_spec(const std::string& text);
[[nodiscard]] std::string to_string(const SourceSpec& spec);

/// Everything a method factory gets: the spec it was selected with (for the
/// path argument) and the workload configuration (seed, scale, checkpoint
/// knobs).
using SourceFactory = std::function<std::unique_ptr<Source>(
    const SourceSpec& spec, const WorkloadConfig& config)>;

/// Registers a named method; replaces an existing registration (tests).
void register_source_method(const std::string& name, SourceFactory factory);

/// The registered method names, sorted (for error messages and --help).
[[nodiscard]] std::vector<std::string> source_method_names();

/// Instantiates the spec's method.  CHECK-fails on an unknown method name;
/// throws (e.g. ReplayFormatError) when the method rejects its input.
[[nodiscard]] std::unique_ptr<Source> load_source(
    const SourceSpec& spec, const WorkloadConfig& config);

/// Shared Source base for methods that compile whole per-job scripts:
/// start_job() materializes the job via compile_job(), next() walks a
/// per-rank cursor, end_job() frees the scripts.
class ScriptedSource : public Source {
 public:
  [[nodiscard]] const GeneratedWorkload& workload() const noexcept override {
    return workload_;
  }
  std::vector<std::string> start_job(std::size_t spec_index) override;
  [[nodiscard]] Op next(std::size_t spec_index, std::int32_t rank) override;
  void end_job(std::size_t spec_index) override;

 protected:
  /// The job's scripts; called once per start_job().
  [[nodiscard]] virtual JobScripts compile_job(std::size_t spec_index) = 0;

  GeneratedWorkload workload_;

 private:
  struct ActiveJob {
    std::vector<NodeScript> nodes;
    std::vector<std::size_t> cursors;  // per-rank program counters
  };
  std::map<std::size_t, ActiveJob> active_;
};

/// Applies the CODES-style --chkpoint-size/bw/runtime/mtti (+ the
/// charisma-specific --chkpoint-nodes/chunk) flags onto config.checkpoint.
/// Shared by perf_study, charisma_campaign, and charisma_analyze.
void apply_checkpoint_flags(const util::Flags& flags, WorkloadConfig* config);

/// The checkpoint flag names, for util::Flags' known-flag list.
[[nodiscard]] std::vector<std::string> checkpoint_flag_names();

}  // namespace charisma::workload
