#include "analysis/session.hpp"

#include <gtest/gtest.h>

namespace charisma::analysis {
namespace {

// ---- merge_range -----------------------------------------------------------

TEST(MergeRange, AppendsAndCoalescesSequentially) {
  std::vector<ByteRange> r;
  merge_range(r, {0, 100});
  merge_range(r, {100, 200});  // adjacent: coalesce
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].begin, 0);
  EXPECT_EQ(r[0].end, 200);
  merge_range(r, {300, 400});
  EXPECT_EQ(r.size(), 2u);
}

TEST(MergeRange, IgnoresEmptyRanges) {
  std::vector<ByteRange> r;
  merge_range(r, {5, 5});
  merge_range(r, {9, 2});
  EXPECT_TRUE(r.empty());
}

TEST(MergeRange, InsertsOutOfOrderAndCoalescesBothSides) {
  std::vector<ByteRange> r;
  merge_range(r, {0, 10});
  merge_range(r, {20, 30});
  merge_range(r, {40, 50});
  merge_range(r, {10, 40});  // bridges everything
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].begin, 0);
  EXPECT_EQ(r[0].end, 50);
}

TEST(MergeRange, OverlapContainedRange) {
  std::vector<ByteRange> r;
  merge_range(r, {0, 100});
  merge_range(r, {20, 30});  // contained
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].end, 100);
}

TEST(MergeRange, InsertBeforeFront) {
  std::vector<ByteRange> r;
  merge_range(r, {100, 200});
  merge_range(r, {0, 50});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].begin, 0);
  merge_range(r, {40, 110});
  ASSERT_EQ(r.size(), 1u);
}

// ---- bytes_covered_by_at_least ------------------------------------------------

TEST(Coverage, CountsOverlapDepth) {
  const std::vector<ByteRange> a = {{0, 100}};
  const std::vector<ByteRange> b = {{50, 150}};
  const std::vector<ByteRange> c = {{60, 80}};
  const std::vector<const std::vector<ByteRange>*> covs = {&a, &b, &c};
  EXPECT_EQ(bytes_covered_by_at_least(covs, 1), 150);
  EXPECT_EQ(bytes_covered_by_at_least(covs, 2), 50);
  EXPECT_EQ(bytes_covered_by_at_least(covs, 3), 20);
  EXPECT_EQ(bytes_covered_by_at_least(covs, 4), 0);
}

TEST(Coverage, DisjointRangesShareNothing) {
  const std::vector<ByteRange> a = {{0, 10}};
  const std::vector<ByteRange> b = {{10, 20}};
  const std::vector<const std::vector<ByteRange>*> covs = {&a, &b};
  EXPECT_EQ(bytes_covered_by_at_least(covs, 1), 20);
  EXPECT_EQ(bytes_covered_by_at_least(covs, 2), 0);
}

// ---- SessionStore ------------------------------------------------------------

trace::Record rec(trace::EventKind kind, cfs::JobId job, cfs::NodeId node,
                  cfs::FileId file, std::int64_t offset = 0,
                  std::int64_t bytes = 0, std::int64_t aux = 0,
                  util::MicroSec t = 0) {
  trace::Record r;
  r.kind = kind;
  r.job = job;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  r.aux = aux;
  r.timestamp = t;
  return r;
}

using trace::EventKind;

TEST(SessionStore, ClassifiesAccessClasses) {
  trace::SortedTrace t;
  // Read-only file 1, write-only file 2, read-write 3, untouched 4.
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 100),
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kWrite, 1, 0, 2, 0, 50),
      rec(EventKind::kClose, 1, 0, 2, 0, 0, 50),
      rec(EventKind::kOpen, 1, 0, 3),
      rec(EventKind::kRead, 1, 0, 3, 0, 10),
      rec(EventKind::kWrite, 1, 0, 3, 0, 10),
      rec(EventKind::kClose, 1, 0, 3, 0, 0, 10),
      rec(EventKind::kOpen, 1, 0, 4),
      rec(EventKind::kClose, 1, 0, 4),
  };
  const SessionStore store(t);
  ASSERT_EQ(store.sessions().size(), 4u);
  EXPECT_EQ(store.sessions()[0].access_class(), AccessClass::kReadOnly);
  EXPECT_EQ(store.sessions()[1].access_class(), AccessClass::kWriteOnly);
  EXPECT_EQ(store.sessions()[2].access_class(), AccessClass::kReadWrite);
  EXPECT_EQ(store.sessions()[3].access_class(), AccessClass::kUntouched);
  EXPECT_EQ(store.sessions()[0].size_at_close, 100);
  const auto ro = store.read_only_sessions();
  EXPECT_EQ(ro.size(), 1u);
  EXPECT_TRUE(ro.count({1, 1}));
}

TEST(SessionStore, SameFileDifferentJobsAreDistinctSessions) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 7),
      rec(EventKind::kClose, 1, 0, 7),
      rec(EventKind::kOpen, 2, 0, 7),
      rec(EventKind::kClose, 2, 0, 7),
  };
  const SessionStore store(t);
  EXPECT_EQ(store.sessions().size(), 2u);
}

TEST(SessionStore, TracksSequentialAndConsecutive) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kRead, 1, 0, 1, 100, 100),   // consecutive
      rec(EventKind::kRead, 1, 0, 1, 500, 100),   // sequential, gap 300
      rec(EventKind::kRead, 1, 0, 1, 200, 100),   // backwards
      rec(EventKind::kClose, 1, 0, 1),
  };
  const SessionStore store(t);
  const auto& s = store.sessions()[0];
  const auto& ns = s.per_node.at(0);
  EXPECT_EQ(ns.requests, 4u);
  EXPECT_EQ(ns.sequential, 2u);
  EXPECT_EQ(ns.consecutive, 1u);
  // Intervals: 0, 300, -400.
  EXPECT_EQ(s.interval_sizes.size(), 3u);
  EXPECT_TRUE(s.interval_sizes.count(0));
  EXPECT_TRUE(s.interval_sizes.count(300));
  EXPECT_TRUE(s.interval_sizes.count(-400));
  EXPECT_EQ(s.request_sizes.size(), 1u);
}

TEST(SessionStore, ConcurrentOpensTracked) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1, 0, 0, 0, 10),
      rec(EventKind::kOpen, 1, 1, 1, 0, 0, 0, 20),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 0, 30),
      rec(EventKind::kOpen, 1, 2, 1, 0, 0, 0, 40),
      rec(EventKind::kClose, 1, 1, 1, 0, 0, 0, 50),
      rec(EventKind::kClose, 1, 2, 1, 0, 0, 0, 60),
  };
  const SessionStore store(t);
  const auto& s = store.sessions()[0];
  EXPECT_EQ(s.max_concurrent_opens, 2);
  EXPECT_EQ(s.total_opens, 3);
}

TEST(SessionStore, SequentialOpensAreNotConcurrent) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1, 0, 0, 0, 10),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 0, 20),
      rec(EventKind::kOpen, 1, 1, 1, 0, 0, 0, 30),
      rec(EventKind::kClose, 1, 1, 1, 0, 0, 0, 40),
  };
  const SessionStore store(t);
  EXPECT_EQ(store.sessions()[0].max_concurrent_opens, 1);
}

TEST(SessionStore, TemporaryNeedsCreateAndDelete) {
  trace::SortedTrace t;
  auto open_created = rec(EventKind::kOpen, 1, 0, 1);
  open_created.bytes = 1;  // created flag
  t.records = {
      open_created,
      rec(EventKind::kWrite, 1, 0, 1, 0, 10),
      rec(EventKind::kClose, 1, 0, 1),
      rec(EventKind::kDelete, 1, 0, 1),
      // File 2: deleted but not created here -> not temporary.
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kClose, 1, 0, 2),
      rec(EventKind::kDelete, 1, 0, 2),
  };
  const SessionStore store(t);
  EXPECT_TRUE(store.sessions()[0].temporary());
  EXPECT_FALSE(store.sessions()[1].temporary());
}

TEST(SessionStore, CoverageKeptOnlyForMultiNodeSessions) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kClose, 1, 0, 1),
      rec(EventKind::kOpen, 1, 0, 2, 0, 0, 0, 1),
      rec(EventKind::kOpen, 1, 1, 2, 0, 0, 0, 2),
      rec(EventKind::kRead, 1, 0, 2, 0, 100, 0, 3),
      rec(EventKind::kRead, 1, 1, 2, 50, 100, 0, 4),
      rec(EventKind::kClose, 1, 0, 2, 0, 0, 0, 5),
      rec(EventKind::kClose, 1, 1, 2, 0, 0, 0, 6),
  };
  const SessionStore store(t, /*track_coverage=*/true);
  EXPECT_TRUE(store.sessions()[0].per_node.at(0).coverage.empty());
  EXPECT_EQ(store.sessions()[1].per_node.at(0).coverage.size(), 1u);
  EXPECT_EQ(store.sessions()[1].per_node.at(1).coverage[0].begin, 50);
}

TEST(SessionStore, JobEventsCollected) {
  trace::SortedTrace t;
  auto start = rec(EventKind::kJobStart, 5, trace::kServiceNode, cfs::kNoFile);
  start.aux = 32;
  start.timestamp = 100;
  auto end = rec(EventKind::kJobEnd, 5, trace::kServiceNode, cfs::kNoFile);
  end.timestamp = 900;
  t.records = {start, end};
  const SessionStore store(t);
  ASSERT_EQ(store.job_events().size(), 2u);
  EXPECT_TRUE(store.job_events()[0].start);
  EXPECT_EQ(store.job_events()[0].nodes, 32);
  EXPECT_FALSE(store.job_events()[1].start);
}

TEST(SessionStore, BytesAccumulated) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kRead, 1, 0, 1, 100, 50),
      rec(EventKind::kWrite, 1, 0, 1, 0, 70),
      rec(EventKind::kClose, 1, 0, 1),
  };
  const SessionStore store(t);
  EXPECT_EQ(store.sessions()[0].bytes_read, 150);
  EXPECT_EQ(store.sessions()[0].bytes_written, 70);
  EXPECT_EQ(store.sessions()[0].reads, 2u);
  EXPECT_EQ(store.sessions()[0].writes, 1u);
}

}  // namespace
}  // namespace charisma::analysis
