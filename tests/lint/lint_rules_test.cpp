// The lint rule engine itself is part of the determinism contract, so its
// rules are golden-tested: every rule must fire on a crafted bad input, and
// every escape hatch must actually suppress.
#include "tools/lint_rules.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

namespace charisma::lint {
namespace {

// The tests feed sources through an ordering-sensitive classification unless
// stated otherwise: that enables every rule.
FileClass sensitive() {
  FileClass cls;
  cls.ordering_sensitive = true;
  return cls;
}

std::vector<std::string> rules_fired(std::string_view src,
                                     FileClass cls = sensitive()) {
  std::vector<std::string> out;
  for (const auto& f : scan_source("test.cpp", src, cls)) {
    out.push_back(f.rule);
  }
  return out;
}

TEST(LintRules, WallClockSourcesFire) {
  EXPECT_EQ(rules_fired("auto t = std::chrono::system_clock::now();"),
            std::vector<std::string>{"charisma-wallclock"});
  EXPECT_EQ(rules_fired("auto t = std::chrono::steady_clock::now();"),
            std::vector<std::string>{"charisma-wallclock"});
  EXPECT_EQ(rules_fired("gettimeofday(&tv, nullptr);"),
            std::vector<std::string>{"charisma-wallclock"});
  EXPECT_EQ(rules_fired("long t = time(nullptr);"),
            std::vector<std::string>{"charisma-wallclock"});
}

TEST(LintRules, TimeRequiresCallShape) {
  // Identifiers merely containing 'time' are not wall-clock reads.
  EXPECT_TRUE(rules_fired("auto x = clock.local_time(now);").empty());
  EXPECT_TRUE(rules_fired("MicroSec time = 0; use(time);").empty());
  // ...but a call through the bare name is.
  EXPECT_EQ(rules_fired("auto x = time (nullptr);"),
            std::vector<std::string>{"charisma-wallclock"});
}

TEST(LintRules, RawRandomFires) {
  EXPECT_EQ(rules_fired("int x = rand();"),
            std::vector<std::string>{"charisma-raw-random"});
  EXPECT_EQ(rules_fired("srand(42);"),
            std::vector<std::string>{"charisma-raw-random"});
  EXPECT_EQ(rules_fired("std::random_device rd;"),
            std::vector<std::string>{"charisma-raw-random"});
}

TEST(LintRules, UtilRngIsExemptFromRawRandom) {
  const auto cls = classify_path("src/util/rng.cpp");
  EXPECT_TRUE(cls.rng_exempt);
  EXPECT_TRUE(scan_source("src/util/rng.cpp",
                          "std::random_device rd; // seeding helper", cls)
                  .empty());
}

TEST(LintRules, FloatFires) {
  EXPECT_EQ(rules_fired("float seconds = 0.5f;"),
            std::vector<std::string>{"charisma-float-time"});
  // double is the sanctioned floating type.
  EXPECT_TRUE(rules_fired("double seconds = 0.5;").empty());
  // 'float' inside identifiers or strings does not fire.
  EXPECT_TRUE(rules_fired("int float_count = 0;").empty());
  EXPECT_TRUE(rules_fired("const char* s = \"float\";").empty());
}

TEST(LintRules, UnorderedIterationFiresOnlyInSensitivePaths) {
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> totals;\n"
      "void f() { for (const auto& [k, v] : totals) { use(k, v); } }\n";
  EXPECT_EQ(rules_fired(src), std::vector<std::string>{
                                  "charisma-unordered-iter"});
  EXPECT_TRUE(rules_fired(src, FileClass{}).empty());
}

TEST(LintRules, UnorderedLookupIsFine) {
  // find()/operator[] don't depend on hash order; only iteration does.
  EXPECT_TRUE(rules_fired("std::unordered_map<int, int> m;\n"
                          "int g() { return m.count(3); }\n")
                  .empty());
  // Iterating a std::map is fine too.
  EXPECT_TRUE(rules_fired("std::map<int, int> m;\n"
                          "void f() { for (auto& [k, v] : m) use(k); }\n")
                  .empty());
}

TEST(LintRules, MultiLineTemplateArgumentsAreTracked) {
  const std::string src =
      "std::unordered_map<Key,\n"
      "                   Value>\n"
      "    lookup;\n"
      "void f() { for (const auto& kv : lookup) use(kv); }\n";
  const auto findings = scan_source("test.cpp", src, sensitive());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "charisma-unordered-iter");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintRules, CommentsAndStringsAreBlanked) {
  EXPECT_TRUE(rules_fired("// rand() in a comment\n"
                          "/* time(nullptr) in a block comment */\n"
                          "const char* s = \"rand() time(0) float\";\n")
                  .empty());
}

TEST(LintRules, NolintSuppressesOnSameLine) {
  EXPECT_TRUE(
      rules_fired("long t = time(nullptr);  // NOLINT(charisma-wallclock)\n")
          .empty());
  // Bare NOLINT suppresses everything on the line.
  EXPECT_TRUE(rules_fired("float f = rand();  // NOLINT\n").empty());
  // A different rule's NOLINT does not.
  EXPECT_EQ(rules_fired("long t = time(nullptr);  "
                        "// NOLINT(charisma-raw-random)\n"),
            std::vector<std::string>{"charisma-wallclock"});
}

TEST(LintRules, NolintNextLine) {
  EXPECT_TRUE(rules_fired("// NOLINTNEXTLINE(charisma-wallclock)\n"
                          "long t = time(nullptr);\n")
                  .empty());
}

TEST(LintRules, UnknownCharismaSuppressionIsItselfAFinding) {
  const auto fired =
      rules_fired("int x = 0;  // NOLINT(charisma-imaginary-rule)\n");
  EXPECT_EQ(fired, std::vector<std::string>{"charisma-unknown-suppression"});
  // Non-charisma rule names (clang-tidy's) are none of our business.
  EXPECT_TRUE(rules_fired("int x = 0;  // NOLINT(bugprone-foo)\n").empty());
}

TEST(LintRules, FindingsAreDeterministicallySorted) {
  const std::string src = "float b = rand();\nfloat a = time(nullptr);\n";
  const auto first = scan_source("test.cpp", src, sensitive());
  const auto second = scan_source("test.cpp", src, sensitive());
  EXPECT_EQ(first, second);
  ASSERT_GE(first.size(), 2u);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].line, first[i].line);
  }
}

TEST(LintRules, ClassifyPaths) {
  EXPECT_TRUE(classify_path("src/analysis/analyzers.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/core/report.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/core/export.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/trace/postprocess.cpp").ordering_sensitive);
  EXPECT_FALSE(classify_path("src/sim/engine.cpp").ordering_sensitive);
  EXPECT_TRUE(classify_path("src/util/rng.cpp").rng_exempt);
  EXPECT_FALSE(classify_path("src/util/stats.cpp").rng_exempt);
}

// The golden test: every rule demonstrated on one crafted bad input, the
// expected findings pinned line by line.
TEST(LintGolden, BadInputMatchesGoldenFindings) {
  const std::string dir = CHARISMA_LINT_TEST_DATA_DIR;
  std::ifstream bad(dir + "/bad_determinism.cpp", std::ios::binary);
  ASSERT_TRUE(bad.is_open()) << "missing fixture in " << dir;
  std::stringstream src;
  src << bad.rdbuf();

  const std::string label = "src/analysis/bad_determinism.cpp";
  const auto findings =
      scan_source(label, src.str(), classify_path(label));

  std::vector<std::string> got;
  for (const auto& f : findings) got.push_back(format(f));

  std::ifstream golden_in(dir + "/bad_determinism.golden");
  ASSERT_TRUE(golden_in.is_open());
  std::vector<std::string> expected;
  std::string line;
  while (std::getline(golden_in, line)) {
    if (!line.empty()) expected.push_back(line);
  }
  EXPECT_EQ(got, expected);

  // Every rule except the suppressed wallclock escape hatch must appear.
  std::set<std::string> fired;
  for (const auto& f : findings) fired.insert(f.rule);
  for (const auto& rule : known_rules()) {
    EXPECT_TRUE(fired.count(rule) > 0) << "rule never fired: " << rule;
  }
}

TEST(LintGolden, ListsAllKnownRules) {
  EXPECT_EQ(known_rules().size(), 5u);
}

}  // namespace
}  // namespace charisma::lint
