#include "core/campaign.hpp"

#include <sstream>
#include <utility>

#include "analysis/analyzers.hpp"
#include "cache/simulators.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace charisma::core {

namespace {

/// The aggregated statistics, in report order.  A fixed table (not a map)
/// keeps the aggregate order code-defined and hash-free.
struct StatField {
  const char* name;
  double (*get)(const StudySummary&);
};

constexpr StatField kStatFields[] = {
    {"events_dispatched",
     [](const StudySummary& s) {
       return static_cast<double>(s.events_dispatched);
     }},
    {"records", [](const StudySummary& s) {
       return static_cast<double>(s.records);
     }},
    {"total_ops", [](const StudySummary& s) {
       return static_cast<double>(s.total_ops);
     }},
    {"sim_end_seconds", [](const StudySummary& s) {
       return static_cast<double>(s.sim_end) / 1e6;
     }},
    {"idle_fraction", [](const StudySummary& s) { return s.idle_fraction; }},
    {"multiprogrammed_fraction",
     [](const StudySummary& s) { return s.multiprogrammed_fraction; }},
    {"single_node_job_fraction",
     [](const StudySummary& s) { return s.single_node_job_fraction; }},
    {"small_read_fraction",
     [](const StudySummary& s) { return s.small_read_fraction; }},
    {"small_write_fraction",
     [](const StudySummary& s) { return s.small_write_fraction; }},
    {"temporary_fraction",
     [](const StudySummary& s) { return s.temporary_fraction; }},
    {"mode0_fraction",
     [](const StudySummary& s) { return s.mode0_fraction; }},
};

std::string format_scale(double scale) {
  std::ostringstream os;
  os << scale;
  return os.str();
}

/// The figure-8 sweep points: 1-buffer and 50-buffer per-node caches.
std::vector<cache::ComputeCacheConfig> figure_compute_configs() {
  std::vector<cache::ComputeCacheConfig> configs(2);
  configs[0].buffers_per_node = 1;
  configs[1].buffers_per_node = 50;
  return configs;
}

/// The figure-9 sweep points: the full buffer grid under LRU, then FIFO.
std::vector<cache::IoNodeSimConfig> figure_io_configs(int io_nodes) {
  const auto buffers = analysis::fig9_buffer_grid();
  std::vector<cache::IoNodeSimConfig> configs;
  configs.reserve(2 * buffers.size());
  for (const cache::Policy policy :
       {cache::Policy::kLru, cache::Policy::kFifo}) {
    for (const double b : buffers) {
      cache::IoNodeSimConfig cfg;
      cfg.io_nodes = io_nodes;
      cfg.total_buffers = static_cast<std::size_t>(b);
      cfg.policy = policy;
      configs.push_back(cfg);
    }
  }
  return configs;
}

/// The cache figures (8/9), appended to the trace-derived figure set.  A
/// serial grouped SweepRunner covers each figure's whole buffer grid in one
/// trace pass per (policy, topology) group: campaign workers already
/// saturate the pool one study per thread, so the win here is fewer passes,
/// not more threads.  The runner is mode-agnostic — the materialized path
/// hands it an in-memory op vector, the streaming path a replay-op spill —
/// and the two produce bit-identical curves.
void append_cache_figures(analysis::FigureSet& set,
                          const cache::SweepRunner& runner, int io_nodes) {
  const auto fracs = analysis::fraction_grid();
  const auto compute = runner.run_compute(figure_compute_configs());
  const auto sample_hit_rates = [&](const cache::ComputeCacheResult& r) {
    std::vector<double> ys;
    ys.reserve(fracs.size());
    for (double x : fracs) ys.push_back(r.hit_rate_cdf.at(x));
    return ys;
  };
  set.add("fig8_1buf", fracs, sample_hit_rates(compute[0]));
  set.add("fig8_50buf", fracs, sample_hit_rates(compute[1]));

  const auto buffers = analysis::fig9_buffer_grid();
  const auto io = runner.run_io(figure_io_configs(io_nodes));
  std::vector<double> lru, fifo;
  lru.reserve(buffers.size());
  fifo.reserve(buffers.size());
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    lru.push_back(io[i].hit_rate);
    fifo.push_back(io[buffers.size() + i].hit_rate);
  }
  set.add("fig9_lru", buffers, std::move(lru));
  set.add("fig9_fifo", buffers, std::move(fifo));
}

}  // namespace

std::string describe_figure_sweep_plan(int io_nodes) {
  std::ostringstream os;
  os << "fig8 " << cache::plan_compute_sweep(figure_compute_configs()).describe()
     << "; fig9 "
     << cache::plan_io_sweep(figure_io_configs(io_nodes)).describe();
  return os.str();
}

double AggregateStat::ci95_half_width() const noexcept {
  // Delegates to the shared helper, which is defined (zero-width, never
  // NaN) for every replication count including n = 0 and n = 1.
  return util::ci95_half_width(summary);
}

StudySummary summarize_study(const std::string& label,
                             const StudyConfig& config,
                             const StudyOutput& output, bool with_figures) {
  StudySummary s;
  s.label = label;
  s.seed = config.workload.seed;
  s.scale = config.workload.scale;
  s.trace_digest = output.raw.digest();
  s.events_dispatched = output.events_dispatched;
  s.records = output.records;
  s.total_ops = output.total_ops;
  s.sim_end = output.sim_end;

  // The serial SessionStore constructor on purpose: campaign workers
  // already saturate the pool one study per thread, so nesting the
  // parallel builder would only add contention.
  const analysis::SessionStore store(output.sorted);
  const auto concurrency = analysis::analyze_job_concurrency(store);
  s.idle_fraction = concurrency.idle_fraction;
  s.multiprogrammed_fraction = concurrency.multiprogrammed_fraction;
  s.single_node_job_fraction =
      analysis::analyze_node_counts(store).single_node_job_fraction;
  const auto requests = analysis::analyze_request_sizes(output.sorted);
  s.small_read_fraction = requests.small_read_fraction;
  s.small_write_fraction = requests.small_write_fraction;
  s.temporary_fraction =
      analysis::analyze_file_population(store).temporary_fraction;
  s.mode0_fraction = analysis::analyze_mode_usage(store).mode0_fraction;

  if (with_figures) {
    s.figures = analysis::collect_trace_figures(
        store, requests, output.raw.header.block_size);
    const std::set<cache::SessionKey> read_only = store.read_only_sessions();
    const cache::SweepRunner runner(output.sorted, read_only);
    append_cache_figures(
        s.figures, runner,
        output.raw.header.io_nodes > 0 ? output.raw.header.io_nodes : 10);
  }
  return s;
}

StudySummary summarize_streamed_study(const std::string& label,
                                      const StudyConfig& config,
                                      StreamedStudyOutput&& output,
                                      bool with_figures) {
  StudySummary s;
  s.label = label;
  s.seed = config.workload.seed;
  s.scale = config.workload.scale;
  s.trace_digest = output.trace_digest;
  s.events_dispatched = output.events_dispatched;
  s.records = output.records;
  s.total_ops = output.total_ops;
  s.sim_end = output.sim_end;

  // The accumulators already ran during the one streaming merge; everything
  // below reads their finished state.  The session order is the serial
  // builder's, so every derived statistic — and every figure byte — matches
  // summarize_study on the materialized trace.
  const analysis::SessionStore& store = output.sessions;
  const auto concurrency = analysis::analyze_job_concurrency(store);
  s.idle_fraction = concurrency.idle_fraction;
  s.multiprogrammed_fraction = concurrency.multiprogrammed_fraction;
  s.single_node_job_fraction =
      analysis::analyze_node_counts(store).single_node_job_fraction;
  s.small_read_fraction = output.request_sizes.small_read_fraction;
  s.small_write_fraction = output.request_sizes.small_write_fraction;
  s.temporary_fraction =
      analysis::analyze_file_population(store).temporary_fraction;
  s.mode0_fraction = analysis::analyze_mode_usage(store).mode0_fraction;

  if (with_figures) {
    s.figures = analysis::collect_trace_figures(store, output.request_sizes,
                                                output.header.block_size);
    const std::set<cache::SessionKey> read_only = store.read_only_sessions();
    const cache::SweepRunner runner(std::move(output.replay_ops), read_only);
    append_cache_figures(
        s.figures, runner,
        output.header.io_nodes > 0 ? output.header.io_nodes : 10);
  }
  return s;
}

std::vector<analysis::FigureEnvelope> fold_figure_envelopes(
    const std::vector<StudySummary>& studies) {
  std::vector<const analysis::FigureSet*> sets;
  sets.reserve(studies.size());
  for (const auto& s : studies) sets.push_back(&s.figures);
  return analysis::fold_envelopes(sets);
}

std::vector<AggregateStat> aggregate_campaign(
    const std::vector<StudySummary>& studies) {
  std::vector<AggregateStat> out;
  out.reserve(std::size(kStatFields));
  for (const auto& field : kStatFields) {
    AggregateStat stat;
    stat.name = field.name;
    for (const auto& s : studies) stat.summary.add(field.get(s));
    out.push_back(std::move(stat));
  }
  return out;
}

CampaignResult CampaignRunner::run(
    const std::vector<CampaignStudy>& studies) const {
  CampaignResult result;
  result.studies.resize(studies.size());
  {
    const util::MutexLock lock(mutex_);
    completed_ = 0;
  }
  const auto run_one = [&](std::size_t i) {
    const CampaignStudy& study = studies[i];
    // Distinct indices: workers never touch the same slot, and the output
    // order matches the input order whatever the schedule was.
    if (options_.trace_mode == TraceMode::kStreaming) {
      StreamOptions sopts;
      sopts.spill_dir = options_.spill_dir;
      sopts.collect_replay_ops = options_.collect_figures;
      sopts.spill_budget_mb = options_.spill_budget_mb;
      StreamedStudyOutput output = run_streamed_study(study.config, sopts);
      result.studies[i] =
          summarize_streamed_study(study.label, study.config,
                                   std::move(output),
                                   options_.collect_figures);
    } else {
      const StudyOutput output = run_study(study.config);
      result.studies[i] = summarize_study(study.label, study.config, output,
                                          options_.collect_figures);
    }
    note_study_done(studies.size());
  };
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < studies.size(); ++i) run_one(i);
  } else {
    util::ThreadPool pool(options_.threads);
    // Audited: run_one writes only result.studies[i] (see its body above).
    // NOLINTNEXTLINE(charisma-shared-capture)
    util::parallel_for(pool, studies.size(), run_one);
  }
  result.aggregates = aggregate_campaign(result.studies);
  if (options_.collect_figures) {
    result.figure_envelopes = fold_figure_envelopes(result.studies);
  }
  return result;
}

std::size_t CampaignRunner::completed() const {
  const util::MutexLock lock(mutex_);
  return completed_;
}

void CampaignRunner::note_study_done(std::size_t total) const {
  const util::MutexLock lock(mutex_);
  ++completed_;
  if (options_.on_progress) options_.on_progress(completed_, total);
}

std::vector<CampaignStudy> seed_replications(const StudyConfig& base,
                                             std::size_t n,
                                             const std::string& prefix) {
  std::vector<CampaignStudy> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CampaignStudy study;
    study.config = base;
    study.config.workload.seed = base.workload.seed + i;
    study.label =
        prefix + "seed" + std::to_string(study.config.workload.seed);
    out.push_back(std::move(study));
  }
  return out;
}

std::vector<CampaignStudy> scale_sweep(
    const StudyConfig& base, const std::vector<double>& scales,
    const std::vector<std::uint64_t>& seeds) {
  CHECK(!scales.empty() && !seeds.empty(),
        "scale_sweep needs at least one scale and one seed");
  std::vector<CampaignStudy> out;
  out.reserve(scales.size() * seeds.size());
  for (const double scale : scales) {
    for (const std::uint64_t seed : seeds) {
      CampaignStudy study;
      study.config = base;
      study.config.workload.scale = scale;
      study.config.workload.seed = seed;
      study.label = "scale" + format_scale(scale) + "_seed" +
                    std::to_string(seed);
      out.push_back(std::move(study));
    }
  }
  return out;
}

}  // namespace charisma::core
