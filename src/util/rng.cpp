#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace charisma::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro's all-zero state is invalid; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() noexcept { return Rng(next()); }

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; regenerate on the (measure-zero) log(0) corner.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last entry
}

WeightedPicker::WeightedPicker(std::span<const double> weights) {
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    total += (w > 0.0 ? w : 0.0);
    cumulative_.push_back(total);
  }
}

std::size_t WeightedPicker::pick(Rng& rng) const noexcept {
  if (cumulative_.empty()) return 0;
  const double total = cumulative_.back();
  if (total <= 0.0) return 0;
  const double r = rng.uniform01() * total;
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), r);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

}  // namespace charisma::util
