// Differential test for the two event-queue implementations.
//
// The bucketed calendar queue must dispatch in exactly the same (at, seq)
// order as the reference binary heap — not just "a valid order".  The same
// RNG-driven schedule is replayed on both engines and the dispatch logs are
// compared element-for-element; a full study at scale 0.05 must then yield
// the identical trace digest under either queue.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/study.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace charisma::sim {
namespace {

using DispatchLog = std::vector<std::pair<MicroSec, int>>;

// Replays a deterministic pseudo-random schedule on one engine.  The RNG is
// consumed during dispatch, so the draws (and therefore the whole schedule)
// line up between two engines only when their dispatch orders are identical
// — a divergence amplifies instead of hiding.
class RandomSchedule {
 public:
  RandomSchedule(Engine& engine, std::uint64_t seed, int budget)
      : engine_(&engine), rng_(seed), budget_(budget) {}

  DispatchLog run() {
    // Seeds: bursts on shared timestamps plus arrivals scattered far enough
    // to straddle the bucketed queue's window (2048 x 128 us ~ 262 ms).
    for (int burst = 0; burst < 8; ++burst) {
      const auto at = static_cast<MicroSec>(rng_.uniform(2000));
      for (int j = 0; j < 5; ++j) spawn(at);
    }
    for (int i = 0; i < 64; ++i) {
      spawn(static_cast<MicroSec>(rng_.uniform(2'000'000)));
    }
    engine_->run();
    return std::move(log_);
  }

 private:
  void spawn(MicroSec at) {
    const int id = next_id_++;
    engine_->schedule_at(at, [this, id] { fire(id); });
  }

  void fire(int id) {
    log_.emplace_back(engine_->now(), id);
    if (next_id_ >= budget_) return;
    const std::uint64_t children = rng_.uniform(3);
    for (std::uint64_t c = 0; c < children; ++c) {
      MicroSec delay;
      const std::uint64_t kind = rng_.uniform(10);
      if (kind < 5) {
        delay = static_cast<MicroSec>(rng_.uniform(256));  // same bucket
      } else if (kind < 8) {
        delay = static_cast<MicroSec>(rng_.uniform(20'000));  // in window
      } else {
        // Beyond the window: lands in the overflow band and must migrate.
        delay = 300'000 + static_cast<MicroSec>(rng_.uniform(3'000'000));
      }
      spawn(engine_->now() + delay);
    }
    if (rng_.chance(0.1)) {
      // Same-timestamp burst scheduled during dispatch (at == now()).
      for (int j = 0; j < 3; ++j) spawn(engine_->now());
    }
  }

  Engine* engine_;
  util::Rng rng_;
  DispatchLog log_;
  int next_id_ = 0;
  int budget_;
};

TEST(EngineDifferential, RandomSchedulesDispatchIdentically) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 987'654'321ULL}) {
    Engine bucketed(QueueKind::kBucketed);
    Engine reference(QueueKind::kReferenceHeap);
    ASSERT_EQ(bucketed.queue_kind(), QueueKind::kBucketed);
    ASSERT_EQ(reference.queue_kind(), QueueKind::kReferenceHeap);
    const DispatchLog a = RandomSchedule(bucketed, seed, 4000).run();
    const DispatchLog b = RandomSchedule(reference, seed, 4000).run();
    ASSERT_GT(a.size(), 100u) << "schedule too small to mean anything";
    ASSERT_EQ(a, b) << "dispatch orders diverged for seed " << seed;
    EXPECT_EQ(bucketed.now(), reference.now());
    EXPECT_EQ(bucketed.dispatched_events(), reference.dispatched_events());
  }
}

// A fixed scenario aimed at the queue's edges: run_until deadlines exactly
// on, between, and before event times; scheduling into a bucket the cursor
// already passed; and draining an overflow-only queue.
DispatchLog run_until_scenario(Engine& e) {
  DispatchLog log;
  const auto mark = [&log, &e](int id) { log.emplace_back(e.now(), id); };
  for (int i = 0; i < 4; ++i) {
    e.schedule_at(100, [&mark, i] { mark(i); });
  }
  e.schedule_at(101, [&mark] { mark(10); });
  e.schedule_at(500'000, [&mark] { mark(11); });  // overflow band
  e.run_until(99);  // peeks but dispatches nothing
  log.emplace_back(e.now(), -1);
  e.run_until(100);  // the burst fires; 101 stays queued
  log.emplace_back(e.now(), -2);
  e.schedule_at(100, [&mark] { mark(12); });  // == now(), cursor passed it
  e.run_until(101);
  log.emplace_back(e.now(), -3);
  // Only the overflow event remains; add a nearer one, then drain.
  e.schedule_at(200'000, [&mark] { mark(13); });
  e.run();
  log.emplace_back(e.now(), -4);
  log.emplace_back(static_cast<MicroSec>(e.pending_events()), -5);
  return log;
}

TEST(EngineDifferential, RunUntilBoundariesMatch) {
  Engine bucketed(QueueKind::kBucketed);
  Engine reference(QueueKind::kReferenceHeap);
  EXPECT_EQ(run_until_scenario(bucketed), run_until_scenario(reference));
}

TEST(EngineDifferential, FarFutureOnlySchedulesMatch) {
  // Every event beyond the initial window: exercises repeated migration,
  // including events that re-enter the overflow band after a rebase.
  const auto scenario = [](Engine& e) {
    DispatchLog log;
    for (int i = 0; i < 40; ++i) {
      const auto at = static_cast<MicroSec>(1'000'000 + 270'000 * i);
      e.schedule_at(at, [&log, &e, i] {
        log.emplace_back(e.now(), i);
        if (i % 3 == 0) {
          e.schedule_in(650'000, [&log, &e, i] {
            log.emplace_back(e.now(), 1000 + i);
          });
        }
      });
    }
    e.run();
    return log;
  };
  Engine bucketed(QueueKind::kBucketed);
  Engine reference(QueueKind::kReferenceHeap);
  EXPECT_EQ(scenario(bucketed), scenario(reference));
}

TEST(EngineDifferential, StudyDigestsMatchAcrossQueues) {
  core::StudyConfig config;
  config.workload.scale = 0.05;
  config.workload.seed = 42;
  config.queue = QueueKind::kBucketed;
  const auto bucketed = core::run_study(config);
  config.queue = QueueKind::kReferenceHeap;
  const auto reference = core::run_study(config);

  ASSERT_GT(bucketed.raw.record_count(), 0u);
  EXPECT_EQ(bucketed.raw.digest(), reference.raw.digest());
  EXPECT_EQ(bucketed.events_dispatched, reference.events_dispatched);
  EXPECT_EQ(bucketed.sim_end, reference.sim_end);
  EXPECT_EQ(bucketed.records, reference.records);

  // CI's perf-smoke job cross-checks bench/perf_study against this run:
  // export CHARISMA_DIGEST_OUT=<path> and the digest lands there in the
  // same 0x%016llx format perf_study writes into BENCH_study.json.
  if (const char* out = std::getenv("CHARISMA_DIGEST_OUT")) {
    std::FILE* f = std::fopen(out, "w");
    ASSERT_NE(f, nullptr) << "cannot write digest to " << out;
    std::fprintf(f, "0x%016llx\n",
                 static_cast<unsigned long long>(bucketed.raw.digest()));
    std::fclose(f);
  }
}

}  // namespace
}  // namespace charisma::sim
