file(REMOVE_RECURSE
  "../bench/ablation_strided_io"
  "../bench/ablation_strided_io.pdb"
  "CMakeFiles/ablation_strided_io.dir/ablation_strided_io.cpp.o"
  "CMakeFiles/ablation_strided_io.dir/ablation_strided_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strided_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
