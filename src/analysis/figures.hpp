// Per-figure distribution aggregation (the ROADMAP's "full per-figure CDF
// aggregation" item).
//
// The paper's results are distributions, not scalars, so a campaign that
// wants error bars has to aggregate figure-by-figure: every study samples
// each figure's curve on a fixed, code-defined x grid (a FigureCurve), and
// the campaign folds the replications pointwise into envelope bands
// (FigureEnvelope: mean / min / max / 95% CI at every grid position).
// Fixed grids are what make the pointwise fold well-defined — each
// replication's empirical CDF has its own support, but all of them are
// sampled at the same x positions.
//
// This header covers the trace-derived figures (Figure 4, Figures 5/6,
// Figure 7, Tables 1-3); the cache figures (8/9) are appended by the core
// layer, which owns the cache simulators.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzers.hpp"
#include "analysis/session.hpp"
#include "util/histogram.hpp"

namespace charisma::analysis {

/// One figure's series, sampled on a fixed grid.  `name` doubles as the
/// exported TSV file stem (campaign_<name>.tsv).
struct FigureCurve {
  std::string name;
  std::vector<double> xs;  // grid, identical across replications by design
  std::vector<double> ys;  // measured value at each grid position
};

/// Every per-figure curve of one study, in a fixed code-defined order.
struct FigureSet {
  std::vector<FigureCurve> curves;

  /// Curve by name; nullptr when absent.
  [[nodiscard]] const FigureCurve* find(std::string_view name) const noexcept;
  void add(std::string name, std::vector<double> xs, std::vector<double> ys);
};

/// Pointwise envelope of one figure across replications: at each grid
/// position, the mean / min / max / normal-approximation 95% CI half-width
/// over every replication that produced the curve.  All columns are finite
/// for any replication count — a single replication yields the zero-width
/// band mean == min == max, ci95_half == 0.
struct FigureEnvelope {
  std::string name;
  std::vector<double> xs;
  std::vector<double> mean;
  std::vector<double> min;
  std::vector<double> max;
  std::vector<double> ci95_half;
  std::uint64_t replications = 0;

  [[nodiscard]] std::size_t size() const noexcept { return xs.size(); }
};

// ---- Fixed grids -----------------------------------------------------------

/// 0, 0.05, ..., 1.0 — the grid for every fraction-valued axis
/// (sequentiality, sharing, and cache hit-rate CDFs).
[[nodiscard]] std::vector<double> fraction_grid();

/// Log-spaced request-size positions, 64 B .. 33 MB (Figure 4's axis).
[[nodiscard]] std::vector<double> request_size_grid();

/// The I/O-node cache sweep's buffer counts (Figure 9's axis).
[[nodiscard]] std::vector<double> fig9_buffer_grid();

// ---- Collection ------------------------------------------------------------

/// Samples the trace-derived figures: Figure 4 (request-size CDFs by count
/// and by bytes), Figures 5/6 (per-class sequentiality CDFs), Figure 7
/// (per-class sharing CDFs), and Tables 1-3 (bucket fractions).  Figure 4
/// comes from `request_sizes` — the one figure whose input is the raw record
/// stream, not the session store — so both trace modes collect figures from
/// the same bounded inputs.
[[nodiscard]] FigureSet collect_trace_figures(
    const SessionStore& store, const RequestSizeResult& request_sizes,
    std::int64_t block_size);

/// Materialized-trace convenience overload: runs analyze_request_sizes on
/// `trace`, then collects as above.
[[nodiscard]] FigureSet collect_trace_figures(const SessionStore& store,
                                              const trace::SortedTrace& trace,
                                              std::int64_t block_size);

// ---- Envelope fold ---------------------------------------------------------

/// Folds per-study figure sets into one envelope per figure, pointwise
/// across replications.  Figures appear in first-seen order scanning `sets`
/// in input order and each curve is accumulated in input order, so the
/// result is bitwise reproducible for any campaign worker-thread count.
/// Curves sharing a name must share a grid (CHECK).
[[nodiscard]] std::vector<FigureEnvelope> fold_envelopes(
    const std::vector<const FigureSet*>& sets);

}  // namespace charisma::analysis
