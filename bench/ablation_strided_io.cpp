// Ablation A (paper §5 recommendation): strided I/O requests.
// Rewrites every per-node request stream into maximal strided requests and
// measures how many requests and I/O-node messages disappear.
#include "common.hpp"

#include "core/strided.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();
  const auto stats = core::rewrite_strided(
      ctx.study().sorted, ctx.study().raw.header.io_nodes,
      ctx.study().raw.header.block_size);
  std::printf("%s\n", stats.render().c_str());

  Comparison cmp("Ablation A: strided requests (S5)");
  cmp.row("claim", "strided requests effectively increase request size",
          "mean requests per stride: " +
              util::fmt(static_cast<double>(stats.original_requests) /
                        static_cast<double>(std::max<std::uint64_t>(
                            stats.strided_requests, 1))));
  cmp.percent_row("request-count reduction", 0.90,  // "(common) regularity"
                  stats.request_reduction());
  cmp.row("I/O-node message reduction", "lower overhead, fewer messages",
          util::fmt(stats.message_reduction() * 100.0) + "%");
  cmp.print();
  std::printf(
      "note: the paper gives no number for this — 90%% stands in for "
      "\"regular request and interval sizes were common\" (Tables 2/3).\n\n");
}

void BM_StridedRewrite(benchmark::State& state) {
  auto& ctx = Context::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rewrite_strided(
        ctx.study().sorted, 10, util::kBlockSize));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ctx.study().sorted.records.size()) *
      state.iterations());
}
BENCHMARK(BM_StridedRewrite)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Ablation A (strided I/O)", charisma::bench::reproduce)
