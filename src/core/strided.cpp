#include "core/strided.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "util/table.hpp"

namespace charisma::core {

using trace::EventKind;
using trace::Record;

namespace {

/// Distinct I/O nodes a byte range touches under one-block round-robin
/// striping.
std::int64_t io_nodes_touched(std::int64_t offset, std::int64_t bytes,
                              std::int64_t block_size, int io_nodes) {
  if (bytes <= 0) return 0;
  const std::int64_t first = offset / block_size;
  const std::int64_t last = (offset + bytes - 1) / block_size;
  return std::min<std::int64_t>(last - first + 1, io_nodes);
}

struct RunState {
  bool active = false;
  std::int64_t start_offset = 0;
  std::int64_t record = 0;
  std::int64_t interval = 0;  // valid from the third element on
  bool interval_known = false;
  std::int64_t count = 0;
  std::int64_t last_end = 0;
};

}  // namespace

StridedStats rewrite_strided(const trace::SortedTrace& trace, int io_nodes,
                             std::int64_t block_size) {
  StridedStats out;
  std::map<std::tuple<cfs::JobId, cfs::FileId, cfs::NodeId, bool>, RunState>
      streams;

  const auto flush = [&](RunState& run) {
    if (!run.active) return;
    ++out.strided_requests;
    if (run.count >= 2) ++out.runs_of_two_or_more;
    out.longest_run =
        std::max(out.longest_run, static_cast<std::uint64_t>(run.count));
    // One strided descriptor reaches each I/O node holding any element.
    const std::int64_t span =
        (run.count - 1) * (run.record + run.interval) + run.record;
    out.strided_messages += static_cast<std::uint64_t>(
        io_nodes_touched(run.start_offset, span, block_size, io_nodes));
    run = RunState{};
  };

  for (const Record& r : trace.records) {
    const bool is_read = r.kind == EventKind::kRead;
    if ((!is_read && r.kind != EventKind::kWrite) || r.bytes <= 0) continue;
    ++out.original_requests;
    out.original_messages += static_cast<std::uint64_t>(
        (r.offset + r.bytes - 1) / block_size - r.offset / block_size + 1);

    RunState& run = streams[{r.job, r.file, r.node, is_read}];
    if (!run.active) {
      run.active = true;
      run.start_offset = r.offset;
      run.record = r.bytes;
      run.count = 1;
      run.last_end = r.offset + r.bytes;
      continue;
    }
    const std::int64_t gap = r.offset - run.last_end;
    const bool same_record = r.bytes == run.record;
    if (same_record && gap >= 0 &&
        (!run.interval_known || gap == run.interval) &&
        (run.count >= 2 ? gap == run.interval : true)) {
      if (run.count == 1) {
        run.interval = gap;
        run.interval_known = true;
      }
      ++run.count;
      run.last_end = r.offset + r.bytes;
      continue;
    }
    // Pattern broke: emit the finished run, start a new one.
    flush(run);
    run.active = true;
    run.start_offset = r.offset;
    run.record = r.bytes;
    run.count = 1;
    run.last_end = r.offset + r.bytes;
  }
  for (auto& [key, run] : streams) flush(run);
  return out;
}

std::string StridedStats::render() const {
  util::Table t({"metric", "conventional", "strided", "reduction"});
  t.add_row({"requests", std::to_string(original_requests),
             std::to_string(strided_requests),
             util::fmt(request_reduction() * 100.0) + "%"});
  t.add_row({"I/O-node messages", std::to_string(original_messages),
             std::to_string(strided_messages),
             util::fmt(message_reduction() * 100.0) + "%"});
  std::ostringstream s;
  s << t.render();
  s << runs_of_two_or_more << " regular runs collapsed; longest run "
    << longest_run << " requests\n";
  return s.str();
}

}  // namespace charisma::core
