// §4.8 (final experiment): one-block compute-node buffers in front of
// 50-buffer I/O-node caches.  The paper saw the I/O-node hit rate drop only
// ~3%, implying its hits were mostly interprocess.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();
  // Both configurations go through one sweep; results come back in config
  // order no matter how many --threads the runner uses.
  std::vector<cache::IoNodeSimConfig> configs(2);
  for (auto& cfg : configs) {
    cfg.io_nodes = 10;
    cfg.total_buffers = 500;  // 50 buffers per I/O node
  }
  configs[1].compute_buffers_per_node = 1;
  const std::vector<cache::IoNodeSimResult> results =
      ctx.sweeps().run_io(configs);
  const cache::IoNodeSimResult& io_only = results[0];
  const cache::IoNodeSimResult& combined = results[1];

  util::Table t({"configuration", "I/O-node hit rate",
                 "requests absorbed up front"});
  t.add_row({"10 x 50-buffer I/O caches alone",
             util::fmt(io_only.hit_rate * 100.0) + "%", "0"});
  t.add_row({"+ 1-block compute-node buffers",
             util::fmt(combined.hit_rate * 100.0) + "%",
             std::to_string(combined.filtered_by_compute)});
  std::printf("%s\n", t.render().c_str());

  Comparison cmp("S4.8: combined compute-node + I/O-node caches");
  cmp.percent_row("I/O-node hit-rate drop with front caches",
                  analysis::paper::kCombinedHitRateDrop,
                  io_only.hit_rate - combined.hit_rate);
  cmp.row("conclusion", "I/O-node hits mostly interprocess",
          util::fmt(100.0 * (1.0 - (io_only.hit_rate - combined.hit_rate) /
                                       std::max(io_only.hit_rate, 1e-9))) +
              "% of the hit rate survives the front caches");
  cmp.print();
}

void BM_CombinedCacheSim(benchmark::State& state) {
  auto& ctx = Context::instance();
  cache::IoNodeSimConfig cfg;
  cfg.io_nodes = 10;
  cfg.total_buffers = 500;
  cfg.compute_buffers_per_node = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::simulate_io_cache(ctx.study().sorted, ctx.read_only(), cfg));
  }
}
BENCHMARK(BM_CombinedCacheSim)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("S4.8 (combined caches)", charisma::bench::reproduce)
