file(REMOVE_RECURSE
  "libcharisma_util.a"
)
