// Figure 9: trace-driven simulation of I/O-node caching — hit rate vs
// number of 4 KB buffers, LRU vs FIFO, 1..20 I/O nodes.
#include "common.hpp"

namespace charisma::bench {
namespace {

double run(std::size_t buffers, cache::Policy policy, int io_nodes) {
  auto& ctx = Context::instance();
  cache::IoNodeSimConfig cfg;
  cfg.total_buffers = buffers;
  cfg.policy = policy;
  cfg.io_nodes = io_nodes;
  return cache::simulate_io_cache(ctx.study().sorted, ctx.read_only(), cfg)
      .hit_rate;
}

void reproduce() {
  // The paper's main curve: hit rate vs total buffers, 10 I/O nodes.
  util::Table curve({"4K buffers", "LRU hit rate", "FIFO hit rate"});
  double lru90 = -1, fifo90 = -1;
  const double plateau = run(25000, cache::Policy::kLru, 10);
  for (std::size_t buffers :
       {100u, 250u, 500u, 1000u, 2000u, 4000u, 8000u, 16000u, 25000u}) {
    const double lru = run(buffers, cache::Policy::kLru, 10);
    const double fifo = run(buffers, cache::Policy::kFifo, 10);
    curve.add_row({std::to_string(buffers), util::fmt(lru, 3),
                   util::fmt(fifo, 3)});
    if (lru90 < 0 && lru >= 0.9 * plateau) {
      lru90 = static_cast<double>(buffers);
    }
    if (fifo90 < 0 && fifo >= 0.9 * plateau) {
      fifo90 = static_cast<double>(buffers);
    }
  }
  std::printf("%s\n", curve.render().c_str());

  // Sensitivity to the number of I/O nodes the buffers are spread over.
  util::Table spread({"I/O nodes", "LRU hit rate (4000 buffers)"});
  for (int io : {1, 2, 5, 10, 20}) {
    spread.add_row({std::to_string(io),
                    util::fmt(run(4000, cache::Policy::kLru, io), 3)});
  }
  std::printf("%s\n", spread.render().c_str());

  Comparison cmp("Figure 9: I/O-node caching");
  cmp.row("LRU buffers to approach the plateau", "~4000",
          lru90 > 0 ? util::fmt(lru90, 0) : ">25000");
  cmp.row("FIFO needs more buffers than LRU", "~20000 for the same hit rate",
          fifo90 > 0 ? util::fmt(fifo90, 0) : ">25000");
  cmp.row("hit rate at 4000 buffers (LRU)", "~90%",
          util::fmt(run(4000, cache::Policy::kLru, 10) * 100.0) + "%");
  cmp.row("sensitivity to I/O-node split", "little difference",
          util::fmt((run(4000, cache::Policy::kLru, 1) -
                     run(4000, cache::Policy::kLru, 20)) *
                        100.0,
                    2) +
              " points between 1 and 20 I/O nodes");
  cmp.print();
}

void BM_IoNodeCacheSim(benchmark::State& state) {
  auto& ctx = Context::instance();
  cache::IoNodeSimConfig cfg;
  cfg.total_buffers = static_cast<std::size_t>(state.range(0));
  cfg.policy = state.range(1) == 0 ? cache::Policy::kLru : cache::Policy::kFifo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::simulate_io_cache(ctx.study().sorted, ctx.read_only(), cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ctx.study().sorted.records.size()) *
      state.iterations());
}
BENCHMARK(BM_IoNodeCacheSim)
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 9 (I/O-node caching)", charisma::bench::reproduce)
