// Figure-aggregation unit tests: fixed grids, curve collection from a
// synthetic trace, and the pointwise envelope fold (hand-computed bands).
#include "analysis/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace charisma::analysis {
namespace {

using trace::EventKind;

trace::Record rec(EventKind kind, cfs::JobId job, cfs::NodeId node,
                  cfs::FileId file, std::int64_t offset = 0,
                  std::int64_t bytes = 0, util::MicroSec t = 0) {
  trace::Record r;
  r.kind = kind;
  r.job = job;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  r.timestamp = t;
  return r;
}

TEST(FigureGrids, AreFixedAndOrdered) {
  const auto fracs = fraction_grid();
  ASSERT_EQ(fracs.size(), 21u);
  EXPECT_EQ(fracs.front(), 0.0);
  EXPECT_EQ(fracs.back(), 1.0);
  EXPECT_DOUBLE_EQ(fracs[15], 0.75);  // the Figure 8 anchor position

  const auto sizes = request_size_grid();
  ASSERT_FALSE(sizes.empty());
  EXPECT_DOUBLE_EQ(sizes.front(), 64.0);
  EXPECT_GE(sizes.back(), 3.2e7);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }

  const auto buffers = fig9_buffer_grid();
  ASSERT_EQ(buffers.size(), 7u);
  EXPECT_EQ(buffers.front(), 250.0);
  EXPECT_EQ(buffers.back(), 16000.0);
}

TEST(FigureSetTest, AddAndFind) {
  FigureSet set;
  set.add("a", {1.0, 2.0}, {0.5, 1.0});
  ASSERT_NE(set.find("a"), nullptr);
  EXPECT_EQ(set.find("a")->ys[0], 0.5);
  EXPECT_EQ(set.find("missing"), nullptr);
  EXPECT_THROW(set.add("bad", {1.0}, {0.5, 1.0}), util::CheckFailure);
}

TEST(CollectTraceFigures, EmptyTraceYieldsZeroedCurves) {
  trace::SortedTrace t;
  const SessionStore store(t);
  const FigureSet set = collect_trace_figures(store, t, 4096);
  ASSERT_EQ(set.curves.size(), 15u);  // figs 4-7 + tables; cache figs are core's
  for (const auto& c : set.curves) {
    SCOPED_TRACE(c.name);
    ASSERT_EQ(c.xs.size(), c.ys.size());
    for (double y : c.ys) {
      EXPECT_EQ(y, 0.0);  // "no observations", never NaN
    }
  }
}

TEST(CollectTraceFigures, RequestSizeCurveReflectsTheTrace) {
  // One job, one file: two 100-byte reads and one 1e6-byte read.
  trace::SortedTrace t;
  t.header.trace_start = 0;
  t.header.trace_end = 100;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 5, 0, 0, 1),
      rec(EventKind::kRead, 1, 0, 5, 0, 100, 2),
      rec(EventKind::kRead, 1, 0, 5, 100, 100, 3),
      rec(EventKind::kRead, 1, 0, 5, 200, 1000000, 4),
      rec(EventKind::kClose, 1, 0, 5, 0, 0, 5),
  };
  const SessionStore store(t);
  const FigureSet set = collect_trace_figures(store, t, 4096);
  const FigureCurve* reads = set.find("fig4_reads");
  ASSERT_NE(reads, nullptr);
  // 2 of 3 requests are 100 bytes: every grid point in [100, 1e6) reads
  // 2/3, and the far end reaches 1.
  for (std::size_t i = 0; i < reads->xs.size(); ++i) {
    if (reads->xs[i] >= 100.0 && reads->xs[i] < 1e6) {
      EXPECT_NEAR(reads->ys[i], 2.0 / 3.0, 1e-12) << "x=" << reads->xs[i];
    }
  }
  EXPECT_DOUBLE_EQ(reads->ys.back(), 1.0);
  const FigureCurve* read_bytes = set.find("fig4_read_bytes");
  ASSERT_NE(read_bytes, nullptr);
  // By bytes the two small reads are 200 of 1000200 bytes moved.
  bool saw_small_share = false;
  for (std::size_t i = 0; i < read_bytes->xs.size(); ++i) {
    if (read_bytes->xs[i] >= 100.0 && read_bytes->xs[i] < 1e6) {
      EXPECT_NEAR(read_bytes->ys[i], 200.0 / 1000200.0, 1e-9);
      saw_small_share = true;
    }
  }
  EXPECT_TRUE(saw_small_share);
}

TEST(FoldEnvelopes, PointwiseBandsAreHandComputable) {
  FigureSet a, b, c;
  a.add("curve", {0.0, 1.0}, {0.2, 1.0});
  b.add("curve", {0.0, 1.0}, {0.4, 1.0});
  c.add("curve", {0.0, 1.0}, {0.6, 1.0});
  const auto envelopes = fold_envelopes({&a, &b, &c});
  ASSERT_EQ(envelopes.size(), 1u);
  const FigureEnvelope& env = envelopes[0];
  EXPECT_EQ(env.replications, 3u);
  ASSERT_EQ(env.size(), 2u);
  EXPECT_NEAR(env.mean[0], 0.4, 1e-12);
  EXPECT_EQ(env.min[0], 0.2);
  EXPECT_EQ(env.max[0], 0.6);
  // ci95 = 1.96 * stddev / sqrt(3) with sample stddev 0.2.
  EXPECT_NEAR(env.ci95_half[0], 1.96 * 0.2 / std::sqrt(3.0), 1e-12);
  // A column with zero spread keeps a zero-width interval.
  EXPECT_EQ(env.mean[1], 1.0);
  EXPECT_EQ(env.ci95_half[1], 0.0);
}

TEST(FoldEnvelopes, OrderFollowsFirstAppearance) {
  FigureSet a, b;
  a.add("second_alphabetically", {0.0}, {1.0});
  a.add("a_curve", {0.0}, {1.0});
  b.add("a_curve", {0.0}, {2.0});
  const auto envelopes = fold_envelopes({&a, &b});
  ASSERT_EQ(envelopes.size(), 2u);
  // Input order, not name order: the export layout is code-defined.
  EXPECT_EQ(envelopes[0].name, "second_alphabetically");
  EXPECT_EQ(envelopes[1].name, "a_curve");
  EXPECT_EQ(envelopes[1].replications, 2u);
  EXPECT_NEAR(envelopes[1].mean[0], 1.5, 1e-12);
}

TEST(FoldEnvelopes, NullAndEmptySetsAreSkipped) {
  FigureSet a;
  a.add("curve", {0.0}, {0.5});
  const FigureSet empty;
  const auto envelopes = fold_envelopes({nullptr, &empty, &a});
  ASSERT_EQ(envelopes.size(), 1u);
  EXPECT_EQ(envelopes[0].replications, 1u);
  EXPECT_EQ(envelopes[0].mean[0], 0.5);
  EXPECT_EQ(envelopes[0].ci95_half[0], 0.0);
  EXPECT_TRUE(fold_envelopes({}).empty());
}

}  // namespace
}  // namespace charisma::analysis
