#include "core/study.hpp"

#include <memory>
#include <optional>

#include "util/check.hpp"

namespace charisma::core {

TraceMode parse_trace_mode(const std::string& name) {
  if (name == "streaming") return TraceMode::kStreaming;
  if (name == "materialized") return TraceMode::kMaterialized;
  CHECK(false, "trace mode must be 'streaming' or 'materialized', got '",
        name, "'");
  return TraceMode::kStreaming;
}

StudyOutput run_study(const StudyConfig& config) {
  sim::EngineOptions eopts;
  eopts.queue = config.queue;
  eopts.threads = config.engine_threads;
  eopts.lp_count = config.machine.lp_count();
  // The sharded engine's window width: the minimum cross-node message
  // latency.  core derives it from the network model because sim sits below
  // net in the layering and cannot ask itself.
  eopts.lookahead = net::min_message_latency(config.machine.net);
  eopts.force_sharded = config.force_sharded_engine;
  sim::Engine engine(eopts);
  // The machine's clock skews must not depend on the workload draw.
  util::Rng machine_rng(config.workload.seed ^ 0xC10CC10CULL);
  ipsc::Machine machine(engine, config.machine, machine_rng);
  cfs::Runtime runtime(machine, config.runtime);
  trace::Collector collector(machine, config.collector);

  StudyOutput out;
  // The source is loaded exactly where the legacy pipeline called
  // generate(): nothing upstream of this point consumes randomness from the
  // workload draw, so the seam cannot shift the simulation.
  std::unique_ptr<workload::Source> source;
  std::optional<workload::Driver> driver;
  if (config.legacy_driver) {
    CHECK(config.source.method == "synthetic",
          "legacy_driver is the synthetic reference path; got source '",
          workload::to_string(config.source), "'");
    out.workload = workload::generate(config.workload);
    driver.emplace(machine, runtime, collector, out.workload);
  } else {
    source = workload::load_source(config.source, config.workload);
    out.workload = source->workload();
    driver.emplace(machine, runtime, collector, *source);
  }
  driver->run();

  out.jobs = driver->results();
  out.records = collector.records_seen();
  out.collector_messages = collector.messages_to_collector();
  out.trace_bytes = collector.trace_bytes_written();
  out.total_ops = driver->total_ops();
  out.events_dispatched = engine.dispatched_events();
  out.sim_end = engine.now();
  out.engine_threads = config.engine_threads;
  out.shard_stats = engine.shard_stats();
  for (int d = 0; d < machine.io_nodes(); ++d) {
    out.user_bytes_moved += machine.disk(d).bytes_moved();
  }
  out.raw = collector.take_trace();
  out.raw.header.seed = config.workload.seed;
  out.raw.header.label = kStudyTraceLabel;
  out.sorted = trace::postprocess(out.raw);
  return out;
}

StudyOutput run_study_at_scale(double scale, std::uint64_t seed) {
  StudyConfig config;
  config.workload.scale = scale;
  config.workload.seed = seed;
  return run_study(config);
}

}  // namespace charisma::core
