// The cache sweeps' op source (ROADMAP item 3).
//
// Cache sweeps are the one trace consumer that needs *multiple* passes, so a
// single push-based sink cannot feed them.  Instead, the streaming pipeline
// spills the pre-filtered replay ops (ReplayOpSink, a RecordSink) during the
// one postprocessing merge, and ReplayLog replays them chunk-by-chunk per
// pass — each traversal opens its own stream, so parallel sweep passes stay
// safe, and resident memory per pass is one fixed-size chunk instead of the
// op vector.
//
// Ops are stored varint/delta-encoded (3-4 bytes per op instead of the raw
// struct's 40): streams are bursty per (job, file) session and heavily
// sequential within a session, so a tag byte plus zigzag-LEB128 deltas
// captures most ops outright.  Chunks are self-contained (the predictor
// resets per chunk) and land in a memory tier charged against the study's
// shared trace::SpillBudget, overflowing — stickily, like the trace spill —
// to an anonymous temp file.  Sweeps re-read the ops once per pass (4x at
// current plans), so compactness pays on every pass.
//
// The read-only-session flag cannot be known while spilling (sessions finish
// only after the last record), so ops are encoded without it and the flag is
// resolved during traversal with the same per-(job, file) memoized set
// lookup prepare_replay uses — the streams are identical op for op.
//
// ReplayLog also wraps a plain in-memory op vector (the materialized
// reference path), so every simulator below it has exactly one op-source
// type and the two trace modes cannot drift.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/block_cache.hpp"
#include "trace/spill.hpp"
#include "util/check.hpp"

namespace charisma::cache {

using cfs::FileId;
using cfs::JobId;
using cfs::NodeId;
using SessionKey = std::pair<JobId, FileId>;

namespace detail {

/// One replayable data request, pre-filtered from the trace: only reads and
/// writes with positive byte counts survive, and the read-only-session
/// lookup is resolved once instead of per (config, record).
struct ReplayOp {
  FileId file = cfs::kNoFile;
  JobId job = cfs::kNoJob;
  NodeId node = 0;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  bool is_read = false;
  bool read_only_session = false;
};

// Tag-byte bits of the compact op encoding.  Unset "same"/"sequential" bits
// mean the corresponding zigzag-LEB128 delta varint follows, in tag-bit
// order: job+file (session), node, offset (vs. the previous op's end), bytes.
inline constexpr std::uint8_t kTagIsRead = 1u << 0;
inline constexpr std::uint8_t kTagSameSession = 1u << 1;
inline constexpr std::uint8_t kTagSequential = 1u << 2;
inline constexpr std::uint8_t kTagSameBytes = 1u << 3;
inline constexpr std::uint8_t kTagSameNode = 1u << 4;

/// Appends the compact encoding of ops[0..n) to `out`.  Self-contained: the
/// delta predictor starts from a fixed state, so a chunk decodes without any
/// earlier chunk.  read_only_session is not encoded.
void encode_ops(const ReplayOp* ops, std::size_t n,
                std::vector<std::uint8_t>& out);

/// Decodes exactly `n` ops from data[0..size) into out[0..n); returns the
/// bytes consumed.  Decoded ops carry read_only_session == false.  Throws
/// std::runtime_error on truncated or malformed input.
std::size_t decode_ops(const std::uint8_t* data, std::size_t size,
                       std::size_t n, ReplayOp* out);

}  // namespace detail

/// One encoded chunk resident in the memory tier.
struct ReplayOpChunk {
  std::uint32_t count = 0;           ///< ops in this chunk (≤ kChunkOps)
  std::vector<std::uint8_t> bytes;   ///< detail::encode_ops payload
};

/// A finished op spill: encoded chunks in the memory tier (a prefix of the
/// stream) and/or `[u32 count][u32 payload_len][payload]` frames in an
/// anonymous temp file (deleted with this object).  Op flags are unresolved.
class ReplayOpSpill {
 public:
  ReplayOpSpill() = default;
  ReplayOpSpill(ReplayOpSpill&&) noexcept = default;
  ReplayOpSpill& operator=(ReplayOpSpill&&) noexcept = default;
  ReplayOpSpill(const ReplayOpSpill&) = delete;
  ReplayOpSpill& operator=(const ReplayOpSpill&) = delete;
  ~ReplayOpSpill() = default;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] const std::vector<ReplayOpChunk>& mem_chunks() const noexcept {
    return mem_chunks_;
  }
  [[nodiscard]] std::uint64_t disk_chunks() const noexcept {
    return disk_chunks_;
  }
  /// Read path of the overflow file; empty when everything fit in memory.
  [[nodiscard]] const std::string& path() const noexcept {
    return file_.read_path();
  }
  /// Host ms the sink spent blocked in write(2) for overflow frames.
  [[nodiscard]] double write_ms() const noexcept { return write_ms_; }
  [[nodiscard]] std::int64_t disk_bytes() const noexcept {
    return disk_bytes_;
  }
  /// True when the sink's budget also admitted the *decoded* flat op array
  /// (count() × sizeof ReplayOp), reserved at finish() while the pool was
  /// alive.  ReplayLog then decodes once at construction and traversals
  /// skip per-pass chunk decoding; the expansion stays inside the study's
  /// RSS bound because it was charged to the same pool.
  [[nodiscard]] bool decode_resident() const noexcept {
    return decode_resident_;
  }

 private:
  friend class ReplayOpSink;
  std::vector<ReplayOpChunk> mem_chunks_;
  trace::SpillFile file_;
  std::uint64_t count_ = 0;
  std::uint64_t disk_chunks_ = 0;
  double write_ms_ = 0.0;
  std::int64_t disk_bytes_ = 0;
  bool decode_resident_ = false;
};

struct ReplayOpSinkOptions {
  /// Admission pool for the memory tier, shared with the trace spill writer;
  /// borrowed, must outlive the sink.  Null sends every chunk to disk.
  trace::SpillBudget* budget = nullptr;
  /// Directory for the anonymous overflow file ("" = $TMPDIR, then /tmp).
  std::string dir;
};

/// RecordSink that filters the postprocessed stream down to replayable data
/// requests and spills them as compact encoded chunks.  finish() hands out
/// the spill.
class ReplayOpSink final : public trace::RecordSink {
 public:
  explicit ReplayOpSink(ReplayOpSinkOptions options = {});
  void on_record(const trace::Record& r) override;
  [[nodiscard]] ReplayOpSpill finish();

 private:
  void flush_buffer();

  ReplayOpSinkOptions options_;
  ReplayOpSpill spill_;
  std::vector<detail::ReplayOp> buf_;
  bool overflowed_ = false;  // sticky, like the trace spill's memory tier
  bool file_created_ = false;
  bool finished_ = false;
};

/// The sweeps' one op-source type: either a borrowed/owned in-memory op
/// vector (flags already resolved — the materialized reference path) or an
/// owned op spill decoded chunk-by-chunk.  Spill-mode read-only flags are
/// resolved once, at construction, into a per-op bit array (the same
/// bake-once semantics prepare_replay gives the materialized path), so
/// traversals pay no session lookups.  Traversals are const and open
/// private streams, so concurrent passes from pool workers are safe in
/// both modes.
class ReplayLog {
 public:
  /// Ops streamed to traversal callbacks per chunk; bounds file-mode
  /// resident memory and gives multi-shape passes their L2-hot replay unit.
  static constexpr std::size_t kChunkOps = 4096;

  ReplayLog() = default;
  /// In-memory log; `ops` must carry resolved read_only_session flags.
  explicit ReplayLog(std::vector<detail::ReplayOp> ops)
      : ops_(std::move(ops)) {}
  /// Spill-backed log.  `read_only` is consumed here: one decode pass at
  /// construction resolves every op's read_only_session flag, so the set
  /// need not outlive the log.  When the spill's budget admitted the
  /// decoded array (decode_resident()), that pass lands the flat resolved
  /// ops and traversals run in in-memory mode; otherwise it fills a
  /// 1-bit-per-op flag array and traversals re-decode chunks.
  ReplayLog(ReplayOpSpill spill, const std::set<SessionKey>& read_only)
      : spill_(std::move(spill)),
        file_mode_(true),
        bytes_read_(std::make_unique<std::atomic<std::int64_t>>(0)) {
    if (spill_.decode_resident()) {
      ops_.reserve(static_cast<std::size_t>(spill_.count()));
      SessionKey last_key{cfs::kNoJob, cfs::kNoFile};
      bool last_read_only = false;
      for_each_decoded_chunk([&](detail::ReplayOp* ops, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
          detail::ReplayOp op = ops[i];
          const SessionKey key{op.job, op.file};
          if (key != last_key) {
            last_key = key;
            last_read_only = read_only.find(key) != read_only.end();
          }
          op.read_only_session = last_read_only;
          ops_.push_back(op);
        }
      });
      spill_ = ReplayOpSpill();  // drop the encoded tier; ops_ is the log
      file_mode_ = false;
      return;
    }
    resolve_read_only(read_only);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return file_mode_ ? static_cast<std::size_t>(spill_.count())
                      : ops_.size();
  }

  /// Disk bytes read back from the overflow file so far — the construction
  /// flag pass plus every traversal (thread-safe; zero for in-memory logs
  /// and all-resident spills).
  [[nodiscard]] std::int64_t spill_bytes_read() const noexcept {
    return bytes_read_ != nullptr
               ? bytes_read_->load(std::memory_order_relaxed)
               : 0;
  }

  /// Calls f(const detail::ReplayOp*, std::size_t) for successive chunks of
  /// at most kChunkOps ops, in stream order.
  template <typename F>
  void for_each_chunk(F&& f) const {
    if (!file_mode_) {
      for (std::size_t base = 0; base < ops_.size(); base += kChunkOps) {
        const std::size_t n = std::min(kChunkOps, ops_.size() - base);
        f(ops_.data() + base, n);
      }
      return;
    }
    std::uint64_t base = 0;
    for_each_decoded_chunk([&](detail::ReplayOp* ops, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t bit = base + i;
        ops[i].read_only_session =
            (read_only_bits_[bit >> 6] >> (bit & 63)) & 1;
      }
      f(static_cast<const detail::ReplayOp*>(ops), n);
      base += n;
    });
  }

  /// Calls f(const detail::ReplayOp&) for every op in stream order.
  template <typename F>
  void for_each(F&& f) const {
    for_each_chunk([&](const detail::ReplayOp* ops, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) f(ops[i]);
    });
  }

 private:
  /// Decodes every chunk (memory tier, then the disk tail) into a private
  /// buffer and yields f(detail::ReplayOp*, n) in stream order, flags
  /// unresolved.  Const and reentrant: each call opens its own stream.
  template <typename F>
  void for_each_decoded_chunk(F&& f) const {
    if (spill_.count() == 0) return;
    std::vector<detail::ReplayOp> buf(
        std::min<std::size_t>(kChunkOps,
                              static_cast<std::size_t>(spill_.count())));
    std::uint64_t remaining = spill_.count();
    const auto emit = [&](std::size_t n) {
      CHECK(n <= remaining, "replay spill overruns its declared op count");
      f(buf.data(), n);
      remaining -= n;
    };
    for (const auto& chunk : spill_.mem_chunks()) {
      CHECK(chunk.count <= buf.size(), "replay op chunk too large");
      const std::size_t used = detail::decode_ops(
          chunk.bytes.data(), chunk.bytes.size(), chunk.count, buf.data());
      CHECK(used == chunk.bytes.size(),
            "replay op chunk has trailing bytes");
      emit(chunk.count);
    }
    if (spill_.disk_chunks() > 0) {
      std::ifstream in(spill_.path(), std::ios::binary);
      if (!in) {
        throw std::runtime_error("cannot open replay spill: " +
                                 spill_.path());
      }
      std::vector<std::uint8_t> payload;
      for (std::uint64_t c = 0; c < spill_.disk_chunks(); ++c) {
        std::uint32_t count = 0;
        std::uint32_t len = 0;
        in.read(reinterpret_cast<char*>(&count), sizeof count);
        in.read(reinterpret_cast<char*>(&len), sizeof len);
        CHECK(in.good(), "replay spill truncated: ", spill_.path());
        CHECK(count <= buf.size(), "replay op chunk too large");
        payload.resize(len);
        in.read(reinterpret_cast<char*>(payload.data()),
                static_cast<std::streamsize>(len));
        CHECK(static_cast<std::uint32_t>(in.gcount()) == len,
              "replay spill truncated: ", spill_.path());
        const std::size_t used =
            detail::decode_ops(payload.data(), len, count, buf.data());
        CHECK(used == len, "replay op chunk has trailing bytes");
        bytes_read_->fetch_add(
            static_cast<std::int64_t>(sizeof count + sizeof len + len),
            std::memory_order_relaxed);
        emit(count);
      }
    }
    CHECK(remaining == 0, "replay spill ended short of its declared count");
  }

  /// One decode pass at construction: memoized set lookups (ops arrive in
  /// bursts for one (job, file), so one lookup covers the run — the memo
  /// survives chunk boundaries even though the decode predictor resets)
  /// fill a 1-bit-per-op array every traversal then reads for free.
  void resolve_read_only(const std::set<SessionKey>& read_only) {
    read_only_bits_.assign(
        static_cast<std::size_t>((spill_.count() + 63) / 64), 0);
    SessionKey last_key{cfs::kNoJob, cfs::kNoFile};
    bool last_read_only = false;
    std::uint64_t bit = 0;
    for_each_decoded_chunk([&](detail::ReplayOp* ops, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i, ++bit) {
        const SessionKey key{ops[i].job, ops[i].file};
        if (key != last_key) {
          last_key = key;
          last_read_only = read_only.find(key) != read_only.end();
        }
        if (last_read_only) read_only_bits_[bit >> 6] |= 1ull << (bit & 63);
      }
    });
  }

  std::vector<detail::ReplayOp> ops_;  // in-memory mode
  ReplayOpSpill spill_;                // spill mode
  /// 1 bit per op (spill mode): the read_only_session flags, baked once.
  std::vector<std::uint64_t> read_only_bits_;
  bool file_mode_ = false;
  // unique_ptr keeps the log movable; only traversals of disk chunks touch it.
  std::unique_ptr<std::atomic<std::int64_t>> bytes_read_;
};

}  // namespace charisma::cache
