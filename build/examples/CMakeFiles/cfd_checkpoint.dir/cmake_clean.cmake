file(REMOVE_RECURSE
  "CMakeFiles/cfd_checkpoint.dir/cfd_checkpoint.cpp.o"
  "CMakeFiles/cfd_checkpoint.dir/cfd_checkpoint.cpp.o.d"
  "cfd_checkpoint"
  "cfd_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
