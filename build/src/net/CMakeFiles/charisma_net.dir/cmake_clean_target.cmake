file(REMOVE_RECURSE
  "libcharisma_net.a"
)
