file(REMOVE_RECURSE
  "CMakeFiles/disk_tests.dir/disk/disk_test.cpp.o"
  "CMakeFiles/disk_tests.dir/disk/disk_test.cpp.o.d"
  "disk_tests"
  "disk_tests.pdb"
  "disk_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
