file(REMOVE_RECURSE
  "CMakeFiles/charisma_analysis.dir/analyzers.cpp.o"
  "CMakeFiles/charisma_analysis.dir/analyzers.cpp.o.d"
  "CMakeFiles/charisma_analysis.dir/iorate.cpp.o"
  "CMakeFiles/charisma_analysis.dir/iorate.cpp.o.d"
  "CMakeFiles/charisma_analysis.dir/session.cpp.o"
  "CMakeFiles/charisma_analysis.dir/session.cpp.o.d"
  "libcharisma_analysis.a"
  "libcharisma_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
