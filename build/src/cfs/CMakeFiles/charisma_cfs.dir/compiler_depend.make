# Empty compiler generated dependencies file for charisma_cfs.
# This may be replaced when dependencies are built.
