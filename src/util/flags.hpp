// A minimal --key=value command-line parser for the bench and example
// binaries (google-benchmark consumes its own flags; ours are removed from
// argv before handing over).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace charisma::util {

class Flags {
 public:
  /// Consumes `--key=value` (and bare `--key`, meaning "true") arguments
  /// matching one of the `known` names; everything else is left (in order)
  /// in remaining().
  Flags(int argc, char** argv, const std::vector<std::string>& known);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// argv entries not consumed by this parser (argv[0] first); the vector is
  /// usable as a replacement argv for benchmark::Initialize.
  [[nodiscard]] std::vector<char*>& remaining() { return remaining_; }
  [[nodiscard]] int remaining_argc() const {
    return static_cast<int>(remaining_.size());
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<char*> remaining_;
};

}  // namespace charisma::util
