#!/usr/bin/env bash
# Builds the Release tree and records an end-to-end perf study into
# BENCH_study.json at the repository root.  The file holds the measured
# stage timings for the default (bucketed-queue) engine, the same run under
# the reference heap queue, and — when a pre-change baseline file is passed
# — the end-to-end speedup against it, so perf regressions show up as diffs.
#
# Usage: tools/record_bench.sh [scale] [threads] [baseline.json]
#   scale          workload scale (default 0.2)
#   threads        sweep worker threads (default 0 = hardware concurrency)
#   baseline.json  optional perf_study JSON from the pre-change tree; embedded
#                  verbatim and used for the end-to-end speedup figure
#
# Requires jq (present in CI and the dev images).
set -euo pipefail

cd "$(dirname "$0")/.."
SCALE="${1:-0.2}"
THREADS="${2:-0}"
BASELINE="${3:-}"
BUILD=build-perf

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j "$(nproc)" --target perf_study > /dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_queue() { # queue-kind -> $TMP/<kind>.json
  echo "[record_bench] measuring $1 queue (scale=$SCALE threads=$THREADS)..."
  "$BUILD/bench/perf_study" --scale="$SCALE" --threads="$THREADS" \
      --queue="$1" --out="$TMP/$1.json" > /dev/null
}

run_queue bucketed
run_queue reference

if [ -n "$BASELINE" ]; then
  cp "$BASELINE" "$TMP/baseline.json"
else
  echo 'null' > "$TMP/baseline.json"
fi

jq -n \
  --slurpfile cur "$TMP/bucketed.json" \
  --slurpfile ref "$TMP/reference.json" \
  --slurpfile base "$TMP/baseline.json" \
  --arg kernel "$(uname -sr)" \
  --arg recorded "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --argjson cores "$(nproc)" \
  '{
     recorded_utc: $recorded,
     host: {kernel: $kernel, cores: $cores},
     current: $cur[0],
     reference_queue: $ref[0],
     baseline_pre_change: $base[0],
     speedup: {
       study_stage_vs_reference_queue:
         ($ref[0].stages_ms.study / $cur[0].stages_ms.study),
       end_to_end_vs_reference_queue:
         ($ref[0].stages_ms.total / $cur[0].stages_ms.total),
       end_to_end_vs_baseline:
         (if $base[0] == null then null
          else $base[0].stages_ms.total / $cur[0].stages_ms.total end)
     }
   }' > BENCH_study.json

echo "[record_bench] wrote BENCH_study.json:"
cat BENCH_study.json
