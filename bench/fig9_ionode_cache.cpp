// Figure 9: trace-driven simulation of I/O-node caching — hit rate vs
// number of 4 KB buffers, LRU vs FIFO, 1..20 I/O nodes.
#include "common.hpp"

namespace charisma::bench {
namespace {

cache::IoNodeSimConfig point(std::size_t buffers, cache::Policy policy,
                             int io_nodes) {
  cache::IoNodeSimConfig cfg;
  cfg.total_buffers = buffers;
  cfg.policy = policy;
  cfg.io_nodes = io_nodes;
  return cfg;
}

void reproduce() {
  auto& ctx = Context::instance();
  // The whole figure as one sweep: 9 buffer counts x {LRU, FIFO} at 10 I/O
  // nodes, then the spread sensitivity at 4000 buffers.  SweepRunner fans
  // the replays over --threads workers and returns them in config order, so
  // the printed tables are identical for every thread count.
  const std::size_t buffer_counts[] = {100,  250,  500,   1000,  2000,
                                       4000, 8000, 16000, 25000};
  constexpr std::size_t kCounts = std::size(buffer_counts);
  const int spreads[] = {1, 2, 5, 10, 20};
  std::vector<cache::IoNodeSimConfig> configs;
  for (const std::size_t buffers : buffer_counts) {
    configs.push_back(point(buffers, cache::Policy::kLru, 10));
    configs.push_back(point(buffers, cache::Policy::kFifo, 10));
  }
  for (const int io : spreads) {
    configs.push_back(point(4000, cache::Policy::kLru, io));
  }
  const std::vector<cache::IoNodeSimResult> results =
      ctx.sweeps().run_io(configs);
  const auto lru_at = [&](std::size_t i) { return results[2 * i].hit_rate; };
  const auto fifo_at = [&](std::size_t i) {
    return results[2 * i + 1].hit_rate;
  };
  const auto spread_at = [&](std::size_t i) {
    return results[2 * kCounts + i].hit_rate;
  };

  // The paper's main curve: hit rate vs total buffers, 10 I/O nodes.
  util::Table curve({"4K buffers", "LRU hit rate", "FIFO hit rate"});
  double lru90 = -1, fifo90 = -1;
  const double plateau = lru_at(kCounts - 1);
  for (std::size_t i = 0; i < kCounts; ++i) {
    curve.add_row({std::to_string(buffer_counts[i]),
                   util::fmt(lru_at(i), 3), util::fmt(fifo_at(i), 3)});
    if (lru90 < 0 && lru_at(i) >= 0.9 * plateau) {
      lru90 = static_cast<double>(buffer_counts[i]);
    }
    if (fifo90 < 0 && fifo_at(i) >= 0.9 * plateau) {
      fifo90 = static_cast<double>(buffer_counts[i]);
    }
  }
  std::printf("%s\n", curve.render().c_str());

  // Sensitivity to the number of I/O nodes the buffers are spread over.
  util::Table spread({"I/O nodes", "LRU hit rate (4000 buffers)"});
  for (std::size_t i = 0; i < std::size(spreads); ++i) {
    spread.add_row({std::to_string(spreads[i]),
                    util::fmt(spread_at(i), 3)});
  }
  std::printf("%s\n", spread.render().c_str());

  Comparison cmp("Figure 9: I/O-node caching");
  cmp.row("LRU buffers to approach the plateau", "~4000",
          lru90 > 0 ? util::fmt(lru90, 0) : ">25000");
  cmp.row("FIFO needs more buffers than LRU", "~20000 for the same hit rate",
          fifo90 > 0 ? util::fmt(fifo90, 0) : ">25000");
  cmp.row("hit rate at 4000 buffers (LRU)", "~90%",
          util::fmt(spread_at(3) * 100.0) + "%");
  cmp.row("sensitivity to I/O-node split", "little difference",
          util::fmt((spread_at(0) - spread_at(4)) * 100.0, 2) +
              " points between 1 and 20 I/O nodes");
  cmp.print();
}

void BM_IoNodeCacheSim(benchmark::State& state) {
  auto& ctx = Context::instance();
  cache::IoNodeSimConfig cfg;
  cfg.total_buffers = static_cast<std::size_t>(state.range(0));
  cfg.policy = state.range(1) == 0 ? cache::Policy::kLru : cache::Policy::kFifo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::simulate_io_cache(ctx.study().sorted, ctx.read_only(), cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ctx.study().sorted.records.size()) *
      state.iterations());
}
BENCHMARK(BM_IoNodeCacheSim)
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 9 (I/O-node caching)", charisma::bench::reproduce)
