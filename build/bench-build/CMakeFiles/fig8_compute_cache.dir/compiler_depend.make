# Empty compiler generated dependencies file for fig8_compute_cache.
# This may be replaced when dependencies are built.
