file(REMOVE_RECURSE
  "CMakeFiles/charisma_sim.dir/clock.cpp.o"
  "CMakeFiles/charisma_sim.dir/clock.cpp.o.d"
  "CMakeFiles/charisma_sim.dir/engine.cpp.o"
  "CMakeFiles/charisma_sim.dir/engine.cpp.o.d"
  "libcharisma_sim.a"
  "libcharisma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
