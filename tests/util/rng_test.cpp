#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace charisma::util {
namespace {

TEST(SplitMix64, AdvancesStateDeterministically) {
  std::uint64_t s1 = 12345, s2 = 12345;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1 - 1 + splitmix64(s2));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(99);
  Rng child = a.fork();
  const std::uint64_t c0 = child.next();
  // Replaying: fork consumes exactly one parent draw.
  Rng b(99);
  (void)b.next();
  Rng child2(Rng(99).next());
  EXPECT_EQ(c0, child2.next());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRangeInclusiveBounds) {
  Rng rng(11);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
  EXPECT_EQ(rng.uniform_range(5, 5), 5);
  EXPECT_EQ(rng.uniform_range(5, 4), 5);  // degenerate clamps to lo
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(40.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 40.0, 1.0);
}

TEST(Rng, LognormalMedianMatches) {
  Rng rng(31);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(3.0, 1.0);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(3.0), 0.8);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(37);
  const std::array<double, 4> w = {0.0, 1.0, 0.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, WeightedProportions) {
  Rng rng(41);
  const std::array<double, 3> w = {1.0, 2.0, 1.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted(w)];
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
}

TEST(Rng, WeightedNegativeTreatedAsZero) {
  Rng rng(43);
  const std::array<double, 3> w = {-5.0, 1.0, -2.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(WeightedPicker, MatchesWeightedSemantics) {
  const std::array<double, 4> w = {2.0, 0.0, 1.0, 1.0};
  WeightedPicker picker(w);
  Rng rng(53);
  std::array<int, 4> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[picker.pick(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
}

TEST(WeightedPicker, EmptyIsSafe) {
  WeightedPicker picker;
  Rng rng(59);
  EXPECT_EQ(picker.pick(rng), 0u);
  EXPECT_TRUE(picker.empty());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, Uniform01MeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST_P(RngSeedSweep, UniformIsRoughlyUnbiasedModSmallBound) {
  Rng rng(GetParam());
  std::array<int, 5> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform(5)];
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.2, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 1234, 99999,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace charisma::util
