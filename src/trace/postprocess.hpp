// Trace postprocessing (paper §3.2): data realignment, clock
// synchronization, and chronological sorting.
//
// Raw trace files hold per-node blocks whose records carry drifting local
// timestamps.  Each block was stamped when it left its node (local clock)
// and when it reached the collector (reference clock); from these pairs we
// fit, per node, a linear local->reference mapping by least squares and
// re-timestamp every record.  The result is "a closer approximation" of the
// true event order — still approximate, which is why the analyses (like the
// paper's) lean on spatial rather than temporal information.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/spill.hpp"
#include "trace/trace_file.hpp"

namespace charisma::trace {

/// local -> reference mapping: reference ~= scale * local + offset.
struct ClockFit {
  double scale = 1.0;
  double offset = 0.0;
  std::size_t samples = 0;

  [[nodiscard]] MicroSec apply(MicroSec local) const noexcept;
};

/// Fits one ClockFit per node from the blocks' double timestamps.
[[nodiscard]] std::unordered_map<NodeId, ClockFit> fit_clocks(
    const TraceFile& trace);
/// Same fit from a spilled trace's block index — the stamps are all the fit
/// needs, so no record payload is read.
[[nodiscard]] std::unordered_map<NodeId, ClockFit> fit_clocks(
    const SpilledTrace& trace);

/// A postprocessed trace: records with corrected timestamps in
/// chronological order (stable within equal timestamps).
struct SortedTrace {
  TraceHeader header;
  std::vector<Record> records;

  [[nodiscard]] std::size_t size() const noexcept { return records.size(); }
};

/// Full pipeline: fit clocks, correct every record, stable-sort.
[[nodiscard]] SortedTrace postprocess(const TraceFile& trace);

/// What the streaming merge measured (host time, not simulated time).
struct StreamMergeStats {
  /// Host ms the merge was *blocked* on block loads: synchronous reads and
  /// decodes plus waits for not-yet-finished prefetches.  Overlapped
  /// prefetch-worker time is deliberately not included — it was never paid
  /// on the merge's critical path.
  double read_ms = 0.0;
  /// Host ms spent pushing record batches into the sinks.
  double sink_ms = 0.0;
  std::int64_t disk_bytes_read = 0;  ///< payload bytes loaded from disk
  std::uint64_t mem_blocks = 0;      ///< blocks served by the memory tier
  std::uint64_t disk_blocks = 0;     ///< blocks read back from the file
};

struct StreamMergeOptions {
  /// Keep one background-prefetched next block per node cursor, overlapping
  /// disk reads with record correction and sink pushes.  Only engages when
  /// the trace has disk-tier blocks; memory-tier blocks always decode
  /// synchronously (they are resident, there is nothing to overlap).
  bool prefetch = true;
  StreamMergeStats* stats = nullptr;  ///< optional measurement out-param
};

/// Streaming pipeline (ROADMAP item 3): the same stable k-way merge, but
/// reading one block per node-cursor from the spilled trace and pushing each
/// corrected record to every sink instead of materializing the sorted
/// vector.  Record order and timestamps are bit-identical to postprocess()
/// on the materialized equivalent; peak memory is one in-flight block per
/// node (plus one prefetched block per node when enabled) and the sinks' own
/// bounded state.  Returns the record count pushed.
std::uint64_t stream_postprocess(const SpilledTrace& trace,
                                 const std::vector<RecordSink*>& sinks,
                                 const StreamMergeOptions& options = {});

/// Counts adjacent-pair inversions of `reference_order` (a permutation of
/// record indices in true order) within `t` — the postprocessing quality
/// metric used by the tests.
[[nodiscard]] std::uint64_t count_order_inversions(
    const std::vector<MicroSec>& true_times,
    const std::vector<MicroSec>& estimated_times);

}  // namespace charisma::trace
