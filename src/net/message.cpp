#include "net/message.hpp"

#include <cmath>

#include "util/check.hpp"

namespace charisma::net {

std::int64_t MessageModel::fragments(std::int64_t bytes) const noexcept {
  if (bytes <= 0) return 1;
  return (bytes + params_.fragment_bytes - 1) / params_.fragment_bytes;
}

MicroSec MessageModel::transfer_time(NodeId from, NodeId to,
                                     std::int64_t bytes) const {
  return transfer_time_hops(cube_->hops(from, to), bytes);
}

MicroSec MessageModel::transfer_time_hops(int hops,
                                          std::int64_t bytes) const {
  util::check(hops >= 0, "negative hop count");
  util::check(bytes >= 0, "negative message size");
  const std::int64_t frags = fragments(bytes);
  const double byte_time = params_.per_byte * static_cast<double>(bytes);
  return params_.software_overhead + frags * params_.per_fragment +
         static_cast<MicroSec>(hops) * params_.per_hop +
         static_cast<MicroSec>(std::llround(byte_time));
}

MicroSec MessageModel::min_latency() const noexcept {
  return min_message_latency(params_);
}

MicroSec min_message_latency(const MessageCostParams& params) noexcept {
  return params.software_overhead + params.per_fragment + params.per_hop;
}

}  // namespace charisma::net
