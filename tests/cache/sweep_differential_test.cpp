// Sweep-mode differential suite: for a real (scale-0.05) generated trace,
// every fig 8 / fig 9 / §4.8 configuration — plus the IP-aware ablation —
// must produce bit-identical results between SweepMode::kPerConfig (the
// reference: one full replay per point) and SweepMode::kGrouped (stack
// simulation for LRU, batched replay for the rest), for the serial runner
// and for pools of 1 / 2 / 8 threads.  "Bit-identical" means every counter
// and every derived double, including the full per-job hit-rate CDF.
//
// This is the contract that lets the grouped path be the default everywhere
// (figures, benches, the perf harness) without a fidelity re-audit: same
// bits in, same bits out, only faster.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/session.hpp"
#include "cache/simulators.hpp"
#include "core/study.hpp"
#include "util/thread_pool.hpp"

namespace charisma::cache {
namespace {

constexpr double kScale = 0.05;
constexpr std::uint64_t kSeed = 42;

/// One real study shared by every test in the binary; the reference results
/// are computed once (serial, per-config) and reused by each comparison.
struct Fixture {
  core::StudyOutput output;
  std::set<SessionKey> read_only;
  std::vector<ComputeCacheConfig> compute_configs;
  std::vector<IoNodeSimConfig> io_configs;
  std::vector<ComputeCacheResult> compute_reference;
  std::vector<IoNodeSimResult> io_reference;

  Fixture() : output(core::run_study_at_scale(kScale, kSeed)) {
    const analysis::SessionStore store(output.sorted);
    read_only = store.read_only_sessions();
    compute_configs = make_compute_configs();
    io_configs = make_io_configs();
    const SweepRunner serial(output.sorted, read_only);
    compute_reference =
        serial.run_compute(compute_configs, SweepMode::kPerConfig);
    io_reference = serial.run_io(io_configs, SweepMode::kPerConfig);
  }

  /// The fig 8 grid the perf harness sweeps, plus a duplicate point (the
  /// grouped path must fan one simulated point out to both slots).
  static std::vector<ComputeCacheConfig> make_compute_configs() {
    std::vector<ComputeCacheConfig> configs;
    for (const std::size_t buffers : {1u, 10u, 50u, 10u}) {
      ComputeCacheConfig cfg;
      cfg.buffers_per_node = buffers;
      configs.push_back(cfg);
    }
    return configs;
  }

  /// Every shape the fig 9 / §4.8 benches and the perf harness sweep:
  /// the buffer grid under LRU, FIFO and IP-aware, the io-node spread,
  /// the §4.8 front-cache pair, and capacity edge cases (total_buffers
  /// below io_nodes -> zero per-node buffers; duplicated totals).
  static std::vector<IoNodeSimConfig> make_io_configs() {
    std::vector<IoNodeSimConfig> configs;
    for (const std::size_t buffers : {100u, 500u, 2000u, 8000u, 500u}) {
      for (const Policy policy :
           {Policy::kLru, Policy::kFifo, Policy::kInterprocessAware}) {
        IoNodeSimConfig cfg;
        cfg.total_buffers = buffers;
        cfg.policy = policy;
        configs.push_back(cfg);
      }
    }
    for (const int io : {1, 2, 5, 10, 20}) {
      IoNodeSimConfig cfg;
      cfg.total_buffers = 4000;
      cfg.io_nodes = io;
      configs.push_back(cfg);
    }
    for (const std::size_t front : {0u, 1u}) {
      IoNodeSimConfig cfg;  // §4.8 combined-cache pair
      cfg.total_buffers = 500;
      cfg.compute_buffers_per_node = front;
      configs.push_back(cfg);
    }
    IoNodeSimConfig tiny;  // rounds to zero buffers per node
    tiny.total_buffers = 3;
    configs.push_back(tiny);
    return configs;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_identical(const util::Cdf& a, const util::Cdf& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << "point " << i;
    EXPECT_EQ(a.points()[i].cumulative_fraction,
              b.points()[i].cumulative_fraction)
        << "point " << i;
  }
}

void expect_identical(const ComputeCacheResult& a, const ComputeCacheResult& b,
                      std::size_t config) {
  SCOPED_TRACE("compute config " + std::to_string(config));
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.job_hit_rates, b.job_hit_rates);
  EXPECT_EQ(a.fraction_jobs_zero, b.fraction_jobs_zero);
  EXPECT_EQ(a.fraction_jobs_above_75, b.fraction_jobs_above_75);
  EXPECT_EQ(a.overall_hit_rate(), b.overall_hit_rate());
  expect_identical(a.hit_rate_cdf, b.hit_rate_cdf);
  EXPECT_EQ(a.describe(), b.describe());
}

void expect_identical(const IoNodeSimResult& a, const IoNodeSimResult& b,
                      std::size_t config) {
  SCOPED_TRACE("io config " + std::to_string(config));
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.request_hits, b.request_hits);
  EXPECT_EQ(a.block_accesses, b.block_accesses);
  EXPECT_EQ(a.block_hits, b.block_hits);
  EXPECT_EQ(a.filtered_by_compute, b.filtered_by_compute);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.block_hit_rate, b.block_hit_rate);
  EXPECT_EQ(a.describe(), b.describe());
}

void expect_matches_reference(const SweepRunner& runner) {
  const Fixture& f = fixture();
  const auto compute = runner.run_compute(f.compute_configs,
                                          SweepMode::kGrouped);
  ASSERT_EQ(compute.size(), f.compute_configs.size());
  for (std::size_t i = 0; i < compute.size(); ++i) {
    expect_identical(f.compute_reference[i], compute[i], i);
  }
  const auto io = runner.run_io(f.io_configs, SweepMode::kGrouped);
  ASSERT_EQ(io.size(), f.io_configs.size());
  for (std::size_t i = 0; i < io.size(); ++i) {
    expect_identical(f.io_reference[i], io[i], i);
  }
}

TEST(SweepDifferential, GroupedMatchesPerConfigSerially) {
  const Fixture& f = fixture();
  const SweepRunner serial(f.output.sorted, f.read_only);
  expect_matches_reference(serial);
}

TEST(SweepDifferential, GroupedMatchesPerConfigAcrossThreadCounts) {
  const Fixture& f = fixture();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    util::ThreadPool pool(threads);
    const SweepRunner runner(f.output.sorted, f.read_only, pool);
    expect_matches_reference(runner);
  }
}

TEST(SweepDifferential, PerConfigModeIsAlsoThreadCountInvariant) {
  // The reference mode itself must not depend on the pool either, or the
  // differential baseline would be ill-defined.
  const Fixture& f = fixture();
  util::ThreadPool pool(8);
  const SweepRunner runner(f.output.sorted, f.read_only, pool);
  const auto compute = runner.run_compute(f.compute_configs,
                                          SweepMode::kPerConfig);
  for (std::size_t i = 0; i < compute.size(); ++i) {
    expect_identical(f.compute_reference[i], compute[i], i);
  }
  const auto io = runner.run_io(f.io_configs, SweepMode::kPerConfig);
  for (std::size_t i = 0; i < io.size(); ++i) {
    expect_identical(f.io_reference[i], io[i], i);
  }
}

TEST(SweepDifferential, PlansCoverEveryConfigWithFewerPasses) {
  const Fixture& f = fixture();
  const SweepPlan compute_plan = plan_compute_sweep(f.compute_configs);
  EXPECT_EQ(compute_plan.configs(), f.compute_configs.size());
  EXPECT_EQ(compute_plan.passes(), 1u);       // one block size -> one pass
  EXPECT_EQ(compute_plan.simulated_points(), 3u);  // {1, 10, 50}, 10 deduped

  const SweepPlan io_plan = plan_io_sweep(f.io_configs);
  EXPECT_EQ(io_plan.configs(), f.io_configs.size());
  EXPECT_LT(io_plan.passes(), f.io_configs.size() / 2);
  std::size_t stack_passes = 0;
  std::size_t batched_passes = 0;
  std::size_t multi_passes = 0;
  for (const SweepGroup& g : io_plan.groups) {
    if (g.kind == SweepGroup::Kind::kStack) ++stack_passes;
    if (g.kind == SweepGroup::Kind::kBatched) ++batched_passes;
    if (g.kind == SweepGroup::Kind::kMulti) ++multi_passes;
    if (g.kind != SweepGroup::Kind::kReplay) EXPECT_GT(g.configs, 1u);
    EXPECT_LE(g.simulated, g.configs);
  }
  // The main grid: one LRU stack pass; FIFO and IP-aware batched passes.
  // The five leftovers (the io-node spread minus io=10, plus the front=1
  // point) fuse into one multi-topology pass instead of five replays.
  EXPECT_EQ(stack_passes, 1u);
  EXPECT_EQ(batched_passes, 2u);
  EXPECT_EQ(multi_passes, 1u);
  EXPECT_EQ(io_plan.passes(), 4u);
  EXPECT_FALSE(io_plan.describe().empty());
}

}  // namespace
}  // namespace charisma::cache
