#include "cache/replay.hpp"

#include "trace/record.hpp"

namespace charisma::cache {

namespace {

// Charged per memory-tier chunk on top of the encoded payload: the chunk
// struct plus the payload vector's bookkeeping/allocator overhead.
constexpr std::int64_t kMemChunkOverhead = 48;

inline std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

namespace detail {

void encode_ops(const ReplayOp* ops, std::size_t n,
                std::vector<std::uint8_t>& out) {
  JobId prev_job = cfs::kNoJob;
  FileId prev_file = cfs::kNoFile;
  NodeId prev_node = 0;
  std::int64_t prev_end = 0;
  std::int64_t prev_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ReplayOp& op = ops[i];
    const bool same_session = op.job == prev_job && op.file == prev_file;
    const bool same_node = op.node == prev_node;
    const bool sequential = op.offset == prev_end;
    const bool same_bytes = op.bytes == prev_bytes;
    std::uint8_t tag = op.is_read ? kTagIsRead : 0;
    if (same_session) tag |= kTagSameSession;
    if (same_node) tag |= kTagSameNode;
    if (sequential) tag |= kTagSequential;
    if (same_bytes) tag |= kTagSameBytes;
    out.push_back(tag);
    if (!same_session) {
      put_varint(out, zigzag(static_cast<std::int64_t>(op.job) - prev_job));
      put_varint(out, zigzag(static_cast<std::int64_t>(op.file) - prev_file));
    }
    if (!same_node) {
      put_varint(out, zigzag(static_cast<std::int64_t>(op.node) - prev_node));
    }
    if (!sequential) put_varint(out, zigzag(op.offset - prev_end));
    if (!same_bytes) put_varint(out, zigzag(op.bytes - prev_bytes));
    prev_job = op.job;
    prev_file = op.file;
    prev_node = op.node;
    prev_bytes = op.bytes;
    prev_end = op.offset + op.bytes;
  }
}

std::size_t decode_ops(const std::uint8_t* data, std::size_t size,
                       std::size_t n, ReplayOp* out) {
  std::size_t pos = 0;
  const auto varint = [&]() -> std::uint64_t {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos >= size) {
        throw std::runtime_error("replay op chunk truncated");
      }
      const std::uint8_t b = data[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
      shift += 7;
      if (shift >= 64) {
        throw std::runtime_error("replay op varint overflow");
      }
    }
  };
  JobId prev_job = cfs::kNoJob;
  FileId prev_file = cfs::kNoFile;
  NodeId prev_node = 0;
  std::int64_t prev_end = 0;
  std::int64_t prev_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pos >= size) throw std::runtime_error("replay op chunk truncated");
    const std::uint8_t tag = data[pos++];
    ReplayOp op;
    op.is_read = (tag & kTagIsRead) != 0;
    if ((tag & kTagSameSession) != 0) {
      op.job = prev_job;
      op.file = prev_file;
    } else {
      op.job = static_cast<JobId>(prev_job + unzigzag(varint()));
      op.file = static_cast<FileId>(prev_file + unzigzag(varint()));
    }
    op.node = (tag & kTagSameNode) != 0
                  ? prev_node
                  : static_cast<NodeId>(prev_node + unzigzag(varint()));
    op.offset = (tag & kTagSequential) != 0 ? prev_end
                                            : prev_end + unzigzag(varint());
    op.bytes = (tag & kTagSameBytes) != 0 ? prev_bytes
                                          : prev_bytes + unzigzag(varint());
    out[i] = op;
    prev_job = op.job;
    prev_file = op.file;
    prev_node = op.node;
    prev_bytes = op.bytes;
    prev_end = op.offset + op.bytes;
  }
  return pos;
}

}  // namespace detail

ReplayOpSink::ReplayOpSink(ReplayOpSinkOptions options)
    : options_(std::move(options)) {
  buf_.reserve(ReplayLog::kChunkOps);
}

void ReplayOpSink::on_record(const trace::Record& r) {
  const bool is_read = r.kind == trace::EventKind::kRead;
  if ((!is_read && r.kind != trace::EventKind::kWrite) || r.bytes <= 0) {
    return;
  }
  // read_only_session stays unencoded: sessions are still accumulating
  // while this sink runs, so ReplayLog resolves the flag at read time.
  buf_.push_back(
      {r.file, r.job, r.node, r.offset, r.bytes, is_read, false});
  ++spill_.count_;
  if (buf_.size() >= ReplayLog::kChunkOps) flush_buffer();
}

void ReplayOpSink::flush_buffer() {
  if (buf_.empty()) return;
  std::vector<std::uint8_t> encoded;
  encoded.reserve(buf_.size() * 4);
  detail::encode_ops(buf_.data(), buf_.size(), encoded);
  const auto payload = static_cast<std::int64_t>(encoded.size());
  const auto count = static_cast<std::uint32_t>(buf_.size());
  buf_.clear();
  if (!overflowed_ && options_.budget != nullptr &&
      options_.budget->try_reserve(payload + kMemChunkOverhead)) {
    spill_.mem_chunks_.push_back({count, std::move(encoded)});
    return;
  }
  overflowed_ = true;  // sticky: the resident chunks stay a stream prefix
  if (!file_created_) {
    spill_.file_ = trace::SpillFile::create_anonymous(options_.dir, "ops");
    file_created_ = true;
  }
  // One frame per chunk: [u32 op count][u32 payload length][payload].
  std::vector<std::uint8_t> frame;
  frame.reserve(8 + encoded.size());
  const auto put32 = [&frame](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    frame.insert(frame.end(), p, p + sizeof v);
  };
  put32(count);
  put32(static_cast<std::uint32_t>(encoded.size()));
  frame.insert(frame.end(), encoded.begin(), encoded.end());
  spill_.write_ms_ +=
      trace::spill_write(spill_.file_.fd(), frame.data(), frame.size());
  spill_.disk_bytes_ += static_cast<std::int64_t>(frame.size());
  ++spill_.disk_chunks_;
}

ReplayOpSpill ReplayOpSink::finish() {
  CHECK(!finished_, "ReplayOpSink::finish called twice");
  finished_ = true;
  flush_buffer();
  // Offer the decoded expansion to the same admission pool while it is
  // still alive: sweeps re-decode the chunks once per pass, so when the
  // budget can also hold the flat ReplayOp array, ReplayLog decodes once
  // at construction instead.  Charged here, like every other reservation,
  // so the study's RSS bound (streaming residue + budget) still holds by
  // construction.  A null budget means all-disk — never resident.
  if (spill_.disk_chunks_ == 0 && options_.budget != nullptr &&
      options_.budget->try_reserve(static_cast<std::int64_t>(
          spill_.count_ * sizeof(detail::ReplayOp)))) {
    spill_.decode_resident_ = true;
  }
  return std::move(spill_);
}

}  // namespace charisma::cache
