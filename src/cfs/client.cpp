#include "cfs/client.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace charisma::cfs {

Client::Client(Runtime& runtime, NodeId node, ClientParams params)
    : runtime_(&runtime), node_(node), params_(params) {
  util::check(node >= 0 && node < runtime.machine().compute_nodes(),
              "client node out of range");
}

OpenResult Client::open(JobId job, const std::string& path,
                        std::uint8_t flags, IoMode mode) {
  auto& engine = runtime_->machine().engine();
  OpenResult r = runtime_->fs().open(job, node_, path, flags, mode,
                                     engine.now());
  if (!r.ok) return r;
  const Fd fd = kFirstFd + static_cast<Fd>(handles_.size());
  handles_.push_back(Handle{r.file, job});
  ++open_count_;
  r.fd = fd;
  // Metadata round-trip to I/O node 0 (the directory server in CFS).
  r.completed_at = engine.now() + params_.call_overhead +
                   runtime_->machine().compute_to_io(
                       node_, 0, params_.request_message_bytes) *
                       2;
  return r;
}

MicroSec Client::execute(const Handle& h, const Reservation& r,
                         bool is_write) {
  auto& machine = runtime_->machine();
  const MicroSec start = r.not_before + params_.call_overhead;
  if (r.bytes == 0) return start;

  MicroSec completion = start;
  plan_scratch_.clear();
  runtime_->fs().plan_into(h.file, r.offset, r.bytes, plan_scratch_);
  for (const BlockAccess& a : plan_scratch_) {
    ++io_messages_;
    // Request descriptor to the I/O node (plus the data for writes).
    const std::int64_t outbound =
        params_.request_message_bytes + (is_write ? a.bytes : 0);
    const MicroSec arrival =
        start + machine.compute_to_io(node_, a.io_node, outbound);
    IoNode& server = runtime_->io_node(a.io_node);
    const MicroSec served =
        is_write ? server.serve_write(arrival, h.file, a.file_block,
                                      a.disk_offset, a.bytes)
                 : server.serve_read(arrival, h.file, a.file_block,
                                     a.disk_offset, a.bytes);
    // Reply (with the data for reads).
    const std::int64_t inbound = is_write ? 32 : a.bytes;
    completion = std::max(
        completion, served + machine.compute_to_io(node_, a.io_node, inbound));
  }
  return completion;
}

IoResult Client::read(Fd fd, std::int64_t bytes) {
  IoResult result;
  auto& engine = runtime_->machine().engine();
  result.completed_at = engine.now();
  const Handle* h = find_handle(fd);
  if (h == nullptr) {
    result.error = "bad file descriptor";
    return result;
  }
  Reservation r = runtime_->fs().reserve_read(h->job, node_, h->file, bytes,
                                              engine.now());
  if (!r.ok) {
    result.error = r.error;
    return result;
  }
  result.ok = true;
  result.offset = r.offset;
  result.bytes = r.bytes;
  result.completed_at = execute(*h, r, /*is_write=*/false);
  return result;
}

IoResult Client::write(Fd fd, std::int64_t bytes) {
  IoResult result;
  auto& engine = runtime_->machine().engine();
  result.completed_at = engine.now();
  const Handle* h = find_handle(fd);
  if (h == nullptr) {
    result.error = "bad file descriptor";
    return result;
  }
  Reservation r = runtime_->fs().reserve_write(h->job, node_, h->file, bytes,
                                               engine.now());
  if (!r.ok) {
    result.error = r.error;
    return result;
  }
  result.ok = true;
  result.offset = r.offset;
  result.bytes = r.bytes;
  result.extended_file = r.extends_file;
  result.completed_at = execute(*h, r, /*is_write=*/true);
  return result;
}

IoResult Client::read_strided(Fd fd, std::int64_t record,
                              std::int64_t interval, std::int64_t count) {
  IoResult result;
  auto& machine = runtime_->machine();
  auto& engine = machine.engine();
  // Error contract (client.hpp): a failed call reports the call time itself
  // as completed_at — never a stale or advanced timestamp — and zero bytes.
  result.completed_at = engine.now();
  const Handle* h = find_handle(fd);
  if (h == nullptr) {
    result.error = "bad file descriptor";
    return result;
  }
  auto& fs = runtime_->fs();
  Reservation r = fs.reserve_strided_read(h->job, node_, h->file, record,
                                          interval, count, engine.now());
  if (!r.ok) {
    result.error = r.error;
    return result;
  }
  result.ok = true;
  result.offset = r.offset;
  result.bytes = r.bytes;
  const MicroSec start = r.not_before + params_.call_overhead;
  result.completed_at = start;
  if (r.bytes == 0) return result;

  // Gather every element's block accesses, then group by I/O node: ONE
  // strided descriptor message per involved I/O node (that is the point).
  // The machine has ~10 I/O nodes, so the grouping is a flat bucket per
  // node — reused across calls — instead of a per-call ordered map.
  plan_scratch_.clear();
  std::int64_t remaining = r.bytes;
  for (std::int64_t k = 0; k < count && remaining > 0; ++k) {
    const std::int64_t elem = r.offset + k * (record + interval);
    const std::int64_t take = std::min(record, remaining);
    fs.plan_into(h->file, elem, take, plan_scratch_);
    remaining -= take;
  }
  const auto io_count = static_cast<std::size_t>(runtime_->io_node_count());
  if (strided_groups_.size() < io_count) strided_groups_.resize(io_count);
  for (auto& group : strided_groups_) group.clear();
  for (const BlockAccess& a : plan_scratch_) {
    strided_groups_[static_cast<std::size_t>(a.io_node)].push_back(a);
  }
  // Ascending I/O-node order, element order within a node — the same
  // iteration order the ordered-map grouping produced.
  for (std::size_t io = 0; io < io_count; ++io) {
    const auto& accesses = strided_groups_[io];
    if (accesses.empty()) continue;
    ++io_messages_;
    const MicroSec arrival =
        start + machine.compute_to_io(node_, static_cast<int>(io),
                                      params_.request_message_bytes);
    IoNode& server = runtime_->io_node(static_cast<int>(io));
    MicroSec served = arrival;
    std::int64_t node_bytes = 0;
    for (const BlockAccess& a : accesses) {
      served = std::max(served,
                        server.serve_read(arrival, h->file, a.file_block,
                                          a.disk_offset, a.bytes));
      node_bytes += a.bytes;
    }
    result.completed_at =
        std::max(result.completed_at,
                 served + machine.compute_to_io(node_, static_cast<int>(io),
                                                node_bytes));
  }
  return result;
}

std::optional<std::int64_t> Client::seek(Fd fd, std::int64_t offset,
                                         Whence whence) {
  const Handle* h = find_handle(fd);
  if (h == nullptr) return std::nullopt;
  return runtime_->fs().seek(h->job, node_, h->file, offset, whence);
}

std::optional<std::int64_t> Client::close(Fd fd) {
  const Handle* h = find_handle(fd);
  if (h == nullptr) return std::nullopt;
  const auto size = runtime_->fs().close(h->job, node_, h->file);
  handles_[static_cast<std::size_t>(fd - kFirstFd)] = Handle{};
  --open_count_;
  return size;
}

bool Client::unlink(JobId job, const std::string& path) {
  const auto file = runtime_->fs().lookup(path);
  if (!file) return false;
  const bool ok = runtime_->fs().unlink(job, path);
  if (ok) {
    for (int i = 0; i < runtime_->io_node_count(); ++i) {
      runtime_->io_node(i).invalidate(*file);
    }
  }
  return ok;
}

FileId Client::file_of(Fd fd) const {
  const Handle* h = find_handle(fd);
  return h == nullptr ? kNoFile : h->file;
}

JobId Client::job_of(Fd fd) const {
  const Handle* h = find_handle(fd);
  return h == nullptr ? kNoJob : h->job;
}

}  // namespace charisma::cfs
