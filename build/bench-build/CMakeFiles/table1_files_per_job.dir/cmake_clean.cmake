file(REMOVE_RECURSE
  "../bench/table1_files_per_job"
  "../bench/table1_files_per_job.pdb"
  "CMakeFiles/table1_files_per_job.dir/table1_files_per_job.cpp.o"
  "CMakeFiles/table1_files_per_job.dir/table1_files_per_job.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_files_per_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
