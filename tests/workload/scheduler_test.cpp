#include "workload/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace charisma::workload {
namespace {

TEST(SubcubeAllocator, FullMachineAllocation) {
  SubcubeAllocator a(7);
  EXPECT_EQ(a.total_nodes(), 128);
  EXPECT_EQ(a.free_nodes(), 128);
  EXPECT_EQ(a.allocate(128), 0);
  EXPECT_EQ(a.free_nodes(), 0);
  EXPECT_EQ(a.allocate(1), -1);
  a.release(0, 128);
  EXPECT_EQ(a.free_nodes(), 128);
}

TEST(SubcubeAllocator, SplitsAndAlignsSubcubes) {
  SubcubeAllocator a(4);  // 16 nodes
  const auto b8 = a.allocate(8);
  const auto b4 = a.allocate(4);
  const auto b2 = a.allocate(2);
  const auto b1 = a.allocate(1);
  for (auto [base, size] : {std::pair{b8, 8}, {b4, 4}, {b2, 2}, {b1, 1}}) {
    EXPECT_GE(base, 0);
    EXPECT_EQ(base % size, 0) << "unaligned subcube";
  }
  EXPECT_EQ(a.free_nodes(), 1);
  EXPECT_EQ(a.allocate(2), -1);
  EXPECT_EQ(a.allocate(1), b1 ^ 1);
}

TEST(SubcubeAllocator, AllocationsAreDisjoint) {
  SubcubeAllocator a(5);
  std::set<std::int32_t> used;
  for (int size : {8, 4, 4, 8, 2, 2, 2, 1, 1}) {
    const auto base = a.allocate(size);
    ASSERT_GE(base, 0);
    for (int i = 0; i < size; ++i) {
      EXPECT_TRUE(used.insert(base + i).second) << "node reused";
    }
  }
  EXPECT_EQ(a.free_nodes(), 0);
}

TEST(SubcubeAllocator, CoalescesBuddiesOnRelease) {
  SubcubeAllocator a(3);
  const auto x = a.allocate(4);
  const auto y = a.allocate(4);
  a.release(x, 4);
  a.release(y, 4);
  // Fully coalesced: the whole cube is allocatable again.
  EXPECT_EQ(a.allocate(8), 0);
}

TEST(SubcubeAllocator, FragmentationBlocksBigJobs) {
  SubcubeAllocator a(3);
  const auto x = a.allocate(1);
  ASSERT_EQ(x, 0);
  (void)a.allocate(1);
  // 6 nodes free but no aligned 8-cube.
  EXPECT_EQ(a.allocate(8), -1);
  EXPECT_EQ(a.allocate(4), 4);
}

TEST(SubcubeAllocator, RejectsInvalidArguments) {
  SubcubeAllocator a(3);
  EXPECT_THROW((void)a.allocate(3), util::CheckFailure);   // not a power of 2
  EXPECT_THROW((void)a.allocate(0), util::CheckFailure);
  EXPECT_EQ(a.allocate(16), -1);  // larger than machine
  EXPECT_THROW(a.release(1, 2), util::CheckFailure);  // misaligned
}

TEST(SubcubeAllocator, RandomAllocReleaseNeverLeaksNodes) {
  util::Rng rng(99);
  SubcubeAllocator a(6);
  std::vector<std::pair<std::int32_t, std::int32_t>> held;
  for (int step = 0; step < 2000; ++step) {
    if (rng.chance(0.55) || held.empty()) {
      const std::int32_t size = 1 << rng.uniform_range(0, 6);
      const auto base = a.allocate(size);
      if (base >= 0) held.emplace_back(base, size);
    } else {
      const auto i = rng.uniform(held.size());
      a.release(held[i].first, held[i].second);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    }
    std::int32_t in_use = 0;
    for (const auto& [b, s] : held) in_use += s;
    ASSERT_EQ(a.free_nodes(), 64 - in_use);
  }
  for (const auto& [b, s] : held) a.release(b, s);
  EXPECT_EQ(a.allocate(64), 0);  // fully coalesced at the end
}

}  // namespace
}  // namespace charisma::workload
