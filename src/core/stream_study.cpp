#include "core/stream_study.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace charisma::core {

std::string spill_file_path(const std::string& dir, const char* tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  if (base.back() != '/') base += '/';
  std::ostringstream os;
  os << base << "charisma_" << tag << "_" << ::getpid() << "_"
     << counter.fetch_add(1, std::memory_order_relaxed) << ".spill";
  return os.str();
}

StreamedStudyOutput run_streamed_study(const StudyConfig& config,
                                       const StreamOptions& options) {
  // The rig mirrors run_study exactly — same construction order, same rng
  // derivation — so both modes drive the identical simulation.
  sim::EngineOptions eopts;
  eopts.queue = config.queue;
  eopts.threads = config.engine_threads;
  eopts.lp_count = config.machine.lp_count();
  eopts.lookahead = net::min_message_latency(config.machine.net);
  eopts.force_sharded = config.force_sharded_engine;
  sim::Engine engine(eopts);
  util::Rng machine_rng(config.workload.seed ^ 0xC10CC10CULL);
  ipsc::Machine machine(engine, config.machine, machine_rng);
  cfs::Runtime runtime(machine, config.runtime);
  trace::Collector collector(machine, config.collector);
  // The spill header is written up front, so the annotation run_study
  // applies after the fact must be final before the first block lands.
  collector.annotate(config.workload.seed, kStudyTraceLabel);
  collector.start_spilling(spill_file_path(options.spill_dir, "trace"));

  StreamedStudyOutput out;
  // Same source dispatch as run_study; the seam sits exactly where the
  // legacy pipeline called generate().
  std::unique_ptr<workload::Source> source;
  std::optional<workload::Driver> driver;
  if (config.legacy_driver) {
    CHECK(config.source.method == "synthetic",
          "legacy_driver is the synthetic reference path; got source '",
          workload::to_string(config.source), "'");
    out.workload = workload::generate(config.workload);
    driver.emplace(machine, runtime, collector, out.workload);
  } else {
    source = workload::load_source(config.source, config.workload);
    out.workload = source->workload();
    driver.emplace(machine, runtime, collector, *source);
  }
  driver->run();

  out.jobs = driver->results();
  out.records = collector.records_seen();
  out.collector_messages = collector.messages_to_collector();
  out.trace_bytes = collector.trace_bytes_written();
  out.total_ops = driver->total_ops();
  out.events_dispatched = engine.dispatched_events();
  out.sim_end = engine.now();
  out.engine_threads = config.engine_threads;
  out.shard_stats = engine.shard_stats();
  for (int d = 0; d < machine.io_nodes(); ++d) {
    out.user_bytes_moved += machine.disk(d).bytes_moved();
  }

  const trace::SpilledTrace spilled = collector.take_spilled();
  out.header = spilled.header;
  out.trace_digest = spilled.digest();

  // One merge pass feeds every consumer; per-sink state is bounded
  // (sessions, histograms, a timeline, one op chunk), never the trace.
  analysis::SessionAccumulator sessions(options.track_coverage);
  analysis::RequestSizeAccumulator request_sizes;
  analysis::IoRateAccumulator io_rate(out.header.trace_start,
                                      out.header.trace_end);
  std::optional<cache::ReplayOpSink> ops;
  std::vector<trace::RecordSink*> sinks{&sessions, &request_sizes, &io_rate};
  if (options.collect_replay_ops) {
    ops.emplace(spill_file_path(options.spill_dir, "ops"));
    sinks.push_back(&*ops);
  }
  out.streamed_records = trace::stream_postprocess(spilled, sinks);

  out.sessions = sessions.take(out.header);
  out.request_sizes = request_sizes.finish();
  out.io_rate = io_rate.finish();
  if (ops.has_value()) out.replay_ops = ops->finish();
  return out;  // `spilled` unlinks the raw-trace spill here
}

}  // namespace charisma::core
