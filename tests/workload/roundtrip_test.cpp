// Round-trip lock on the chwl schema: export a synthetic workload through
// the Source seam, replay the log, and the resulting study must be
// bit-identical — same trace digest — as running the synthetic source
// directly.  This is what makes the text schema self-validating: any field
// the exporter drops or the reader misparses shifts the simulation and
// breaks the digest.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/stream_study.hpp"
#include "core/study.hpp"
#include "workload/replay.hpp"
#include "workload/source.hpp"

namespace charisma {
namespace {

class RoundTripTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  // Unique per test: ctest runs the tests of this fixture as concurrent
  // processes, which must not collide on the log file.
  std::string path_ =
      ::testing::TempDir() + "charisma_roundtrip_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".chwl";

  [[nodiscard]] static core::StudyConfig smoke_config() {
    core::StudyConfig config;
    config.workload = workload::WorkloadConfig::smoke();
    return config;
  }

  void export_synthetic(const core::StudyConfig& config) {
    workload::SourceSpec spec;  // default: synthetic
    const auto source = workload::load_source(spec, config.workload);
    workload::export_source_log(*source, path_);
  }

  [[nodiscard]] core::StudyConfig replay_config(
      const core::StudyConfig& base) const {
    core::StudyConfig config = base;
    config.source.method = "replay";
    config.source.path = path_;
    return config;
  }
};

TEST_F(RoundTripTest, ExportedSyntheticReplaysToIdenticalDigest) {
  const core::StudyConfig config = smoke_config();
  const core::StudyOutput direct = core::run_study(config);
  export_synthetic(config);
  const core::StudyOutput replayed = core::run_study(replay_config(config));

  EXPECT_EQ(direct.raw.digest(), replayed.raw.digest());
  EXPECT_EQ(direct.total_ops, replayed.total_ops);
  EXPECT_EQ(direct.records, replayed.records);
  EXPECT_EQ(direct.sorted.records.size(), replayed.sorted.records.size());
  ASSERT_EQ(direct.jobs.size(), replayed.jobs.size());
  for (std::size_t i = 0; i < direct.jobs.size(); ++i) {
    EXPECT_EQ(direct.jobs[i].end, replayed.jobs[i].end) << "job " << i;
    EXPECT_EQ(direct.jobs[i].ops, replayed.jobs[i].ops) << "job " << i;
    EXPECT_EQ(direct.jobs[i].io_errors, replayed.jobs[i].io_errors)
        << "job " << i;
  }
}

TEST_F(RoundTripTest, ReplayedLogStreamsToTheSameDigestToo) {
  const core::StudyConfig config = smoke_config();
  const core::StudyOutput direct = core::run_study(config);
  export_synthetic(config);
  const core::StreamedStudyOutput streamed =
      core::run_streamed_study(replay_config(config));
  EXPECT_EQ(direct.raw.digest(), streamed.trace_digest);
}

TEST_F(RoundTripTest, ExportIsIdempotent) {
  // Exporting the replayed log again must reproduce the file byte-for-byte
  // (modulo the hand-written original's comments, which the exporter never
  // emits — so compare export(replay(export(x))) against export(x)).
  const core::StudyConfig config = smoke_config();
  export_synthetic(config);

  const std::string second_path = path_ + ".2";
  {
    const auto replayed = workload::make_replay_source(path_, config.workload);
    workload::export_source_log(*replayed, second_path);
  }
  std::ifstream a(path_, std::ios::binary);
  std::ifstream b(second_path, std::ios::binary);
  std::ostringstream a_bytes;
  std::ostringstream b_bytes;
  a_bytes << a.rdbuf();
  b_bytes << b.rdbuf();
  std::remove(second_path.c_str());
  ASSERT_FALSE(a_bytes.str().empty());
  EXPECT_EQ(a_bytes.str(), b_bytes.str());
}

TEST_F(RoundTripTest, CheckpointSourceRoundTripsThroughTheLogToo) {
  core::StudyConfig config = smoke_config();
  config.source.method = "checkpoint";
  config.workload.checkpoint.size_tib = 0.0005;
  config.workload.checkpoint.nodes = 8;
  config.workload.checkpoint.mtti_hours = 1.0;
  config.workload.scale = 1.0;
  config.workload.checkpoint.runtime_hours = 0.05;
  const core::StudyOutput direct = core::run_study(config);

  const auto source = workload::load_source(config.source, config.workload);
  workload::export_source_log(*source, path_);
  const core::StudyOutput replayed = core::run_study(replay_config(config));
  EXPECT_EQ(direct.raw.digest(), replayed.raw.digest());
  EXPECT_GT(direct.total_ops, 0u);
}

}  // namespace
}  // namespace charisma
