
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfs/client.cpp" "src/cfs/CMakeFiles/charisma_cfs.dir/client.cpp.o" "gcc" "src/cfs/CMakeFiles/charisma_cfs.dir/client.cpp.o.d"
  "/root/repo/src/cfs/file_system.cpp" "src/cfs/CMakeFiles/charisma_cfs.dir/file_system.cpp.o" "gcc" "src/cfs/CMakeFiles/charisma_cfs.dir/file_system.cpp.o.d"
  "/root/repo/src/cfs/io_node.cpp" "src/cfs/CMakeFiles/charisma_cfs.dir/io_node.cpp.o" "gcc" "src/cfs/CMakeFiles/charisma_cfs.dir/io_node.cpp.o.d"
  "/root/repo/src/cfs/runtime.cpp" "src/cfs/CMakeFiles/charisma_cfs.dir/runtime.cpp.o" "gcc" "src/cfs/CMakeFiles/charisma_cfs.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipsc/CMakeFiles/charisma_ipsc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/charisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/charisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/charisma_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charisma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
