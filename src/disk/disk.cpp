#include "disk/disk.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace charisma::disk {

MicroSec Disk::service_time(std::int64_t offset,
                            std::int64_t bytes) const noexcept {
  MicroSec t = params_.controller_overhead;
  if (head_ != offset) {
    // Scale the seek with the fraction of the disk crossed, plus a half
    // rotation to reach the sector.  A contiguous request skips both.
    const double span = params_.capacity_bytes > 0
                            ? std::abs(static_cast<double>(offset - std::max<std::int64_t>(head_, 0))) /
                                  static_cast<double>(params_.capacity_bytes)
                            : 0.0;
    const double seek =
        static_cast<double>(params_.average_seek) * std::sqrt(std::min(1.0, span));
    t += static_cast<MicroSec>(std::llround(seek));
    t += params_.rotation / 2;
  }
  if (params_.bytes_per_us > 0.0) {
    t += static_cast<MicroSec>(
        std::llround(static_cast<double>(bytes) / params_.bytes_per_us));
  }
  return t;
}

MicroSec Disk::submit(MicroSec now, std::int64_t offset, std::int64_t bytes) {
  util::check(now >= 0 && offset >= 0 && bytes >= 0, "bad disk request");
  const MicroSec start = std::max(now, free_at_);
  const MicroSec service = service_time(offset, bytes);
  free_at_ = start + service;
  head_ = offset + bytes;
  ++requests_;
  bytes_ += bytes;
  busy_ += service;
  return free_at_;
}

double Disk::utilization(MicroSec now) const noexcept {
  if (now <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(busy_) / static_cast<double>(now));
}

}  // namespace charisma::disk
