// Sharded engine backend: one calendar queue per group of logical processes
// (LPs — simulated machine nodes), synchronized by a conservative window
// protocol in the CODES tradition.
//
// The machine model's callbacks mutate shared state (the CFS metadata, the
// per-I/O-node disk arms, the trace collector) synchronously and the disks
// serve requests in call order, so the trace digest pins one global dispatch
// order: the serial engine's (at, seq) tie-break.  The coordinator therefore
// keeps *dispatch* on one thread — preserving that order bit-for-bit — and
// parallelizes everything around it: each shard's queue maintenance (bucket
// inserts, overflow migration, sorted-run harvesting) runs on worker threads
// between dispatch bursts.
//
// Window protocol, per conservative window:
//   1. drain   — each shard with staged cross-shard events flushes its SPSC
//                inboxes into its own calendar queue (parallel, per shard);
//   2. bound   — global_next = min over shard queues' earliest event; the
//                horizon is global_next + lookahead, where the lookahead is
//                the minimum cross-LP message latency (net::MessageModel
//                software overhead + first-fragment + per-byte floor — every
//                cross-node interaction in the machine model goes through a
//                message, so no event below the horizon can spawn another
//                event below it on a different LP);
//   3. harvest — each shard with events below the horizon drains them, in
//                (at, seq) order, into a sorted run (parallel, per shard);
//   4. dispatch— the coordinator merges the per-shard runs plus a local
//                binary heap of same-window schedules, invoking callbacks in
//                exactly the serial engine's global (at, seq) order.
// Events scheduled during dispatch route by timestamp: below the horizon
// they enter the dispatch heap (zero-latency self-sends stay safe because
// dispatch is centralized); at or beyond it they stage in a per-(producer
// shard, target shard) SPSC buffer until the next window boundary.
//
// Workers never run user callbacks — only queue surgery — so there is no
// exception marshalling and no callback-visible concurrency.  Task handoff
// is a lock-free claim protocol: the coordinator publishes per-shard tasks,
// claims unclaimed ones itself (so a 1-core host degrades to the pure
// inline path with no syscalls), and spins out stragglers.  Workers spin
// briefly between batches, then park on a condition variable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace charisma::sim {

struct ShardedOptions {
  QueueKind queue = kDefaultQueueKind;
  /// Number of LP-group shards (each with a private event queue).
  int shards = 2;
  /// Number of logical processes; LPs map to shards round-robin so the
  /// simulated machine's low node ids (which first-fit allocation keeps
  /// busiest) spread across shards.
  int lp_count = 1;
  /// Conservative window half-width in simulated microseconds; clamped to
  /// >= 1 so the horizon always lies strictly above the earliest event.
  MicroSec lookahead = 1;
  /// Queue-surgery worker threads; -1 picks shards - 1 (the coordinator
  /// itself is the remaining thread).  0 runs every task inline.
  int worker_threads = -1;
};

/// Coordinator-side counters, stable once the run is quiescent.
struct ShardStats {
  std::uint64_t windows = 0;    ///< conservative windows advanced
  std::uint64_t direct = 0;     ///< below-horizon schedules via dispatch heap
  std::uint64_t staged = 0;     ///< cross-window schedules via SPSC staging
  std::uint64_t harvested = 0;  ///< events harvested out of shard queues
  std::uint64_t worker_tasks = 0;  ///< drain/harvest tasks run by workers
  std::uint64_t inline_tasks = 0;  ///< tasks the coordinator ran itself
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(const ShardedOptions& options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Routes one event; must be called from the dispatching thread only.
  /// The engine assigns `ev.seq` in schedule order before routing, so the
  /// merge order here reproduces the serial engine's exactly.
  void schedule(int lp, Event&& ev);

  /// Earliest pending time across every shard, heap, and staging buffer;
  /// advances window boundaries as needed.  False when fully drained.
  [[nodiscard]] bool next_time(MicroSec* at);
  /// The globally (at, seq)-least pending event, left in place; nullptr
  /// when drained.  Invalidated by schedule() — move the callback out and
  /// call drop_front() before invoking it.
  [[nodiscard]] Event* front();
  /// Consumes the event front() returned and attributes subsequent staged
  /// sends to its shard's SPSC row.
  void drop_front();

  [[nodiscard]] int shard_count() const noexcept { return shard_count_; }
  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] MicroSec lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] int shard_of_lp(int lp) const noexcept {
    return lp % shard_count_;
  }
  /// Counters; call only while dispatch is quiescent (no batch in flight).
  [[nodiscard]] ShardStats stats() const;

 private:
  enum class Task : std::uint8_t { kNone, kDrain, kHarvest, kClaimed };

  /// Fields split by writer: `queue`, `run`, `next` are written by whichever
  /// thread claims the shard's task (handoff via the claim/outstanding
  /// barrier); `inbox` rows are written by the coordinator during dispatch
  /// and consumed by the drain task; `staged` is coordinator-only.
  struct alignas(64) Shard {
    EventQueue queue;
    /// Harvested sorted run for the current window; [run_head, size()) are
    /// not yet dispatched.
    std::vector<Event> run;
    std::size_t run_head = 0;
    /// inbox[p]: events staged by producer row p (one row per shard plus
    /// one for schedules from outside dispatch).  Single producer (the
    /// coordinator, during dispatch), single consumer (the drain task).
    std::vector<std::vector<Event>> inbox;
    std::size_t staged = 0;  ///< total events across inbox rows
    MicroSec next = 0;       ///< queue's earliest event after the last task
    bool has_next = false;
    std::atomic<Task> task{Task::kNone};
    std::uint64_t tasks_by_worker = 0;

    explicit Shard(QueueKind kind, std::size_t producer_rows)
        : queue(kind), inbox(producer_rows) {}
  };

  /// Entry in the same-window dispatch heap; carries the target LP so
  /// drop_front can attribute follow-on staged sends to the right row.
  struct HeapEntry {
    Event ev;
    std::int32_t lp = 0;
  };
  struct HeapEntryAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      return EventAfter{}(a.ev, b.ev);
    }
  };

  /// Locates the (at, seq)-least event among shard runs and the dispatch
  /// heap; returns nullptr (and leaves front_shard_ untouched) when the
  /// current window is exhausted.
  Event* find_front();
  /// Flushes staging, computes the next horizon, harvests; false when no
  /// events remain anywhere.  Precondition: find_front() == nullptr.
  bool advance_window();
  /// Publishes `kind` for every shard index in `targets` and returns once
  /// all have run (workers + coordinator inline claims).
  void run_batch(Task kind, const std::vector<int>& targets);
  /// Claims and runs one shard's published task; false if already taken.
  bool try_claim(int shard, bool by_worker);
  void run_task(Shard& sh, Task kind);
  void worker_loop();
  void wake_workers();

  int shard_count_;
  int lp_count_;
  MicroSec lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<HeapEntry> heap_;  // min-heap under HeapEntryAfter

  /// Horizon of the current window; events below it dispatch this window.
  /// Starts at MicroSec min so every pre-run schedule stages.
  MicroSec horizon_;
  /// SPSC row schedules are attributed to: the shard of the most recently
  /// dispatched event, or the external row (== shard_count_) outside
  /// dispatch.
  int producer_row_;
  /// Where the current front() lives: a shard index, or -1 for the heap.
  int front_shard_ = -1;
  std::vector<int> batch_targets_;  // scratch, reused every window

  ShardStats stats_;

  // ---- task fan-out ----
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> parked_{0};
  util::Mutex park_mutex_;
  std::condition_variable_any park_cv_;
  std::uint64_t wake_epoch_ CHARISMA_GUARDED_BY(park_mutex_) = 0;
  std::vector<std::thread> workers_;
};

}  // namespace charisma::sim
