#include "cfs/io_node.hpp"

#include <gtest/gtest.h>

namespace charisma::cfs {
namespace {

disk::DiskParams fast_disk() {
  disk::DiskParams p;
  p.average_seek = 1000;
  p.rotation = 800;
  p.bytes_per_us = 10.0;
  p.controller_overhead = 10;
  return p;
}

TEST(IoNode, NoCacheAlwaysGoesToDisk) {
  disk::Disk d(fast_disk());
  IoNode node(0, d);  // cache_buffers = 0
  (void)node.serve_read(0, 1, 0, 0, 100);
  (void)node.serve_read(100000, 1, 0, 0, 100);
  EXPECT_EQ(node.requests(), 2u);
  EXPECT_EQ(node.cache_hits(), 0u);
  EXPECT_EQ(node.disk_reads(), 2u);
}

TEST(IoNode, CachedBlockHits) {
  disk::Disk d(fast_disk());
  IoNodeParams p;
  p.cache_buffers = 4;
  p.request_overhead = 50;
  IoNode node(0, d, p);
  const MicroSec miss_done = node.serve_read(0, 1, 0, 0, 100);
  EXPECT_EQ(node.disk_reads(), 1u);
  // Same block again: served from memory at fixed overhead.
  const MicroSec hit_done = node.serve_read(miss_done, 1, 0, 0, 100);
  EXPECT_EQ(hit_done, miss_done + 50);
  EXPECT_EQ(node.cache_hits(), 1u);
  EXPECT_EQ(node.disk_reads(), 1u);
}

TEST(IoNode, MissReadsWholeBlockFromDisk) {
  disk::Disk d(fast_disk());
  IoNodeParams p;
  p.cache_buffers = 4;
  IoNode node(0, d, p);
  (void)node.serve_read(0, 1, 5, 5 * 4096 + 100, 10);  // partial-block read
  EXPECT_EQ(d.bytes_moved(), 4096);  // whole enclosing block fetched
}

TEST(IoNode, WriteThroughPopulatesCache) {
  disk::Disk d(fast_disk());
  IoNodeParams p;
  p.cache_buffers = 4;
  IoNode node(0, d, p);
  (void)node.serve_write(0, 1, 0, 0, 100);
  EXPECT_EQ(node.disk_writes(), 1u);
  (void)node.serve_read(100000, 1, 0, 0, 100);
  EXPECT_EQ(node.cache_hits(), 1u);
  EXPECT_EQ(node.disk_reads(), 0u);
}

TEST(IoNode, LruEvictsColdest) {
  disk::Disk d(fast_disk());
  IoNodeParams p;
  p.cache_buffers = 2;
  IoNode node(0, d, p);
  (void)node.serve_read(0, 1, 0, 0, 10);   // A
  (void)node.serve_read(1000, 1, 1, 4096, 10);   // B
  (void)node.serve_read(2000, 1, 0, 0, 10);      // touch A
  (void)node.serve_read(3000, 1, 2, 8192, 10);   // C evicts B
  (void)node.serve_read(400000, 1, 0, 0, 10);    // A still hits
  EXPECT_EQ(node.cache_hits(), 2u);
  (void)node.serve_read(500000, 1, 1, 4096, 10);  // B was evicted
  EXPECT_EQ(node.cache_hits(), 2u);
  EXPECT_EQ(node.disk_reads(), 4u);
}

TEST(IoNode, InvalidateDropsFileBlocks) {
  disk::Disk d(fast_disk());
  IoNodeParams p;
  p.cache_buffers = 8;
  IoNode node(0, d, p);
  (void)node.serve_read(0, 1, 0, 0, 10);
  (void)node.serve_read(1000, 2, 0, 4096, 10);
  node.invalidate(1);
  (void)node.serve_read(200000, 1, 0, 0, 10);  // miss: invalidated
  (void)node.serve_read(300000, 2, 0, 4096, 10);  // hit: other file intact
  EXPECT_EQ(node.cache_hits(), 1u);
}

TEST(IoNode, ConcurrentRequestsQueueAtDisk) {
  disk::Disk d(fast_disk());
  IoNode node(0, d);
  const MicroSec c1 = node.serve_read(0, 1, 0, 0, 4096);
  const MicroSec c2 = node.serve_read(0, 1, 100, 100 * 4096, 4096);
  EXPECT_GT(c2, c1);  // second waits for the first's disk service
}

}  // namespace
}  // namespace charisma::cfs
