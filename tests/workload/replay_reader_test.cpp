// Golden-fixture and malformed-input tests for the chwl replay reader.
//
// The committed fixtures under tests/workload/data/ are the parser's
// contract: tiny.chwl pins the exact op streams a well-formed log compiles
// to; torn.chwl and garbage.chwl prove the tolerant/strict split and that a
// bad byte costs a typed ReplayFormatError, never a crash or an unbounded
// allocation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "workload/replay.hpp"
#include "workload/source.hpp"

namespace charisma::workload {
namespace {

std::string fixture(const char* name) {
  return std::string(CHARISMA_WORKLOAD_TEST_DATA_DIR "/") + name;
}

/// Writes `text` (verbatim — no newline appended) as a temp log.
class TempLog {
 public:
  // pid + counter: ctest runs each test as its own concurrent process, so
  // the name must be unique across processes, not just within one.
  explicit TempLog(const std::string& text)
      : path_(::testing::TempDir() + "charisma_replay_" +
              std::to_string(::getpid()) + "_" + std::to_string(counter_++) +
              ".chwl") {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << text;
  }
  ~TempLog() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempLog::counter_ = 0;

TEST(ReplayReader, TinyFixtureMetadata) {
  WorkloadConfig config;
  const ReplayLog log = ReplayLog::load(fixture("tiny.chwl"), config);
  EXPECT_FALSE(log.truncated());
  const GeneratedWorkload& w = log.workload();
  EXPECT_EQ(w.window, 60000000);
  ASSERT_EQ(w.inputs.size(), 1u);
  EXPECT_EQ(w.inputs[0].bytes, 4096);
  EXPECT_EQ(w.inputs[0].path, "in/seed.dat");
  ASSERT_EQ(w.jobs.size(), 2u);
  EXPECT_EQ(w.jobs[0].job, 7);
  EXPECT_EQ(w.jobs[0].arrival, 1000);
  EXPECT_EQ(w.jobs[0].nodes, 2);
  EXPECT_TRUE(w.jobs[0].traced);
  EXPECT_EQ(w.jobs[0].archetype, Archetype::kRwUpdate);
  EXPECT_EQ(w.jobs[1].job, 9);
  EXPECT_EQ(w.jobs[1].arrival, 5000);
  EXPECT_EQ(w.jobs[1].nodes, 1);
  EXPECT_FALSE(w.jobs[1].traced);
  EXPECT_EQ(w.jobs[1].archetype, Archetype::kPostprocess);
}

TEST(ReplayReader, TinyFixtureGoldenOpStreams) {
  const ReplayLog log = ReplayLog::load(fixture("tiny.chwl"), {});
  const JobScripts first = log.compile_job(0);
  // Paths intern in file order: rank 0 opens out/a.dat before rank 1
  // touches the input.
  ASSERT_EQ(first.paths.size(), 2u);
  EXPECT_EQ(first.paths[0], "out/a.dat");
  EXPECT_EQ(first.paths[1], "in/seed.dat");
  ASSERT_EQ(first.nodes.size(), 2u);

  const std::vector<Op>& r0 = first.nodes[0].ops;
  ASSERT_EQ(r0.size(), 11u);
  EXPECT_EQ(r0[0].kind, OpKind::kThink);
  EXPECT_EQ(r0[0].think, 250);
  EXPECT_EQ(r0[1].kind, OpKind::kOpen);
  EXPECT_EQ(r0[1].flags, cfs::kRead | cfs::kWrite | cfs::kCreate);
  EXPECT_EQ(r0[1].mode, cfs::IoMode::kIndependent);
  EXPECT_EQ(r0[1].path, 0);
  EXPECT_EQ(r0[2].kind, OpKind::kWrite);
  EXPECT_EQ(r0[2].bytes, 1024);
  EXPECT_EQ(r0[3].kind, OpKind::kBarrier);
  EXPECT_EQ(r0[4].kind, OpKind::kSeek);
  EXPECT_EQ(r0[4].offset, 2048);
  EXPECT_EQ(r0[4].whence, cfs::Whence::kSet);
  EXPECT_EQ(r0[5].offset, -8);
  EXPECT_EQ(r0[5].whence, cfs::Whence::kCurrent);
  EXPECT_EQ(r0[6].whence, cfs::Whence::kEnd);
  EXPECT_EQ(r0[7].whence, cfs::Whence::kSet);
  EXPECT_EQ(r0[8].kind, OpKind::kRead);
  EXPECT_EQ(r0[8].bytes, 8);
  EXPECT_EQ(r0[9].kind, OpKind::kClose);
  EXPECT_EQ(r0[9].think, 20);
  EXPECT_EQ(r0[10].kind, OpKind::kUnlink);
  EXPECT_EQ(r0[10].path, 0);

  const std::vector<Op>& r1 = first.nodes[1].ops;
  ASSERT_EQ(r1.size(), 4u);
  EXPECT_EQ(r1[0].kind, OpKind::kOpen);
  EXPECT_EQ(r1[0].flags, cfs::kRead);
  EXPECT_EQ(r1[0].think, 10);
  EXPECT_EQ(r1[0].path, 1);
  EXPECT_EQ(r1[1].kind, OpKind::kRead);
  EXPECT_EQ(r1[1].bytes, 512);
  EXPECT_EQ(r1[2].kind, OpKind::kBarrier);
  EXPECT_EQ(r1[2].think, 5);
  EXPECT_EQ(r1[3].kind, OpKind::kClose);

  const JobScripts second = log.compile_job(1);
  ASSERT_EQ(second.paths.size(), 1u);
  EXPECT_EQ(second.paths[0], "tmp/scratch");
  ASSERT_EQ(second.nodes.size(), 1u);
  const std::vector<Op>& s0 = second.nodes[0].ops;
  ASSERT_EQ(s0.size(), 3u);
  EXPECT_EQ(s0[0].kind, OpKind::kOpen);
  EXPECT_EQ(s0[1].kind, OpKind::kWrite);
  EXPECT_EQ(s0[1].bytes, 64);
  EXPECT_EQ(s0[1].think, 1);
  EXPECT_EQ(s0[2].kind, OpKind::kClose);
}

TEST(ReplayReader, TinyFixtureLoadsThroughTheSourceSeam) {
  SourceSpec spec;
  spec.method = "replay";
  spec.path = fixture("tiny.chwl");
  const auto source = load_source(spec, {});
  ASSERT_EQ(source->workload().jobs.size(), 2u);
  // Pull rank 1 of job 0 through the Source API: the stream must end with
  // kEnd and stay kEnd on further pulls.
  (void)source->start_job(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(source->next(0, 1).kind, OpKind::kEnd) << "op " << i;
  }
  EXPECT_EQ(source->next(0, 1).kind, OpKind::kEnd);
  EXPECT_EQ(source->next(0, 1).kind, OpKind::kEnd);
  source->end_job(0);
}

TEST(ReplayReader, TornFixtureStrictThrowsTolerantSalvages) {
  EXPECT_THROW((void)ReplayLog::load(fixture("torn.chwl"), {}),
               ReplayFormatError);
  bool truncated = false;
  const ReplayLog log =
      ReplayLog::load(fixture("torn.chwl"), {}, /*tolerant=*/true, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(log.truncated());
  ASSERT_EQ(log.workload().jobs.size(), 1u);
  // The torn final line ("op 0 wri", no newline) is dropped; the two
  // complete op lines before it survive.
  const JobScripts scripts = log.compile_job(0);
  ASSERT_EQ(scripts.nodes.size(), 1u);
  ASSERT_EQ(scripts.nodes[0].ops.size(), 2u);
  EXPECT_EQ(scripts.nodes[0].ops[0].kind, OpKind::kOpen);
  EXPECT_EQ(scripts.nodes[0].ops[1].kind, OpKind::kWrite);
  EXPECT_EQ(scripts.nodes[0].ops[1].bytes, 4096);
}

TEST(ReplayReader, GarbageFixtureThrowsTypedError) {
  // The fixture's byte count overflows int64: the reader must fail with a
  // line-numbered ReplayFormatError in BOTH modes (garbage is never
  // salvageable, only a torn tail is).
  for (const bool tolerant : {false, true}) {
    try {
      (void)ReplayLog::load(fixture("garbage.chwl"), {}, tolerant);
      FAIL() << "tolerant=" << tolerant << " accepted garbage";
    } catch (const ReplayFormatError& e) {
      EXPECT_NE(std::string(e.what()).find("chwl line 6"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ReplayReader, MissingMagicThrows) {
  const TempLog log("window 100\nend chwl\n");
  EXPECT_THROW((void)ReplayLog::load(log.path(), {}, /*tolerant=*/true),
               ReplayFormatError);
}

TEST(ReplayReader, MissingFileThrows) {
  EXPECT_THROW((void)ReplayLog::load(fixture("no_such.chwl"), {}),
               ReplayFormatError);
}

TEST(ReplayReader, RejectsStructuralGarbage) {
  // Each entry: a malformed body (appended after the magic line) and the
  // substring its error must carry.
  const struct {
    const char* body;
    const char* message;
  } kCases[] = {
      {"op 0 think 5\n", "op line before any job"},
      {"job 1 0 1 1 cfd_solver\nop 7 think 5\n", "op rank"},
      {"job 1 0 1 1 cfd_solver\nop 0 frobnicate 5\n", "unknown op verb"},
      {"job 1 0 1 1 cfd_solver\nop 0 seek 0 sideways 0 f\n", "seek whence"},
      {"job 1 0 1 1 cfd_solver\nop 0 read 5 0\n", "takes"},
      {"job 1 0 1 1 nonesuch\n", "unknown archetype"},
      {"job 1 0 1 1 cfd_solver\njob 1 9 1 1 cfd_solver\n", "duplicate job"},
      {"job 1 9 1 1 cfd_solver\njob 2 0 1 1 cfd_solver\n", "arrival order"},
      {"job 1 0 0 1 cfd_solver\n", "nodes"},
      {"window 5\nwindow 5\n", "duplicate window"},
      {"job 1 0 1 1 cfd_solver\nwindow 5\n", "window must precede jobs"},
      {"job 1 0 1 1 cfd_solver\ninput 5 f\n", "input lines must precede"},
      {"mystery 1\n", "unknown directive"},
      {"end chwl\nop 0 think 5\n", "content after"},
  };
  for (const auto& c : kCases) {
    const TempLog log(std::string("chwl 1\n") + c.body + "end chwl\n");
    try {
      (void)ReplayLog::load(log.path(), {}, /*tolerant=*/true);
      FAIL() << "accepted: " << c.body;
    } catch (const ReplayFormatError& e) {
      EXPECT_NE(std::string(e.what()).find(c.message), std::string::npos)
          << "body '" << c.body << "' raised '" << e.what() << "'";
    }
  }
}

TEST(ReplayReader, BoundsLineLengthBeforeAllocating) {
  // A single multi-megabyte line must be rejected at the 4 KiB cap, not
  // buffered whole.
  std::string text = "chwl 1\nwindow 100\njob 1 0 1 1 cfd_solver\nop 0 open "
                     "1 0 0 ";
  text.append(1u << 20, 'x');
  text += "\nend chwl\n";
  const TempLog log(text);
  try {
    (void)ReplayLog::load(log.path(), {}, /*tolerant=*/true);
    FAIL() << "accepted an oversized line";
  } catch (const ReplayFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos)
        << e.what();
  }
}

TEST(ReplayReader, BoundsNodeCountBeforeAllocating) {
  // nodes > 2^20 is rejected while parsing the job line — before any
  // per-rank script vector is sized from it.
  const TempLog log("chwl 1\nwindow 100\njob 1 0 99999999999 1 cfd_solver\n"
                    "end chwl\n");
  try {
    (void)ReplayLog::load(log.path(), {}, /*tolerant=*/true);
    FAIL() << "accepted an absurd node count";
  } catch (const ReplayFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
}

TEST(ReplayReader, EmptyAndCommentOnlyLogs) {
  const TempLog empty("");
  EXPECT_THROW((void)ReplayLog::load(empty.path(), {}, /*tolerant=*/true),
               ReplayFormatError);
  // Header + footer and nothing else is a valid (zero-job) log.
  const TempLog bare("# nothing here\nchwl 1\nend chwl\n");
  const ReplayLog log = ReplayLog::load(bare.path(), {});
  EXPECT_TRUE(log.workload().jobs.empty());
  EXPECT_TRUE(log.workload().inputs.empty());
}

TEST(ReplayReader, UnterminatedFooterIsComplete) {
  // A final "end chwl" with no trailing newline is content-evidently
  // complete: strict mode accepts it.
  const TempLog log("chwl 1\nwindow 100\nend chwl");
  const ReplayLog strict = ReplayLog::load(log.path(), {});
  EXPECT_FALSE(strict.truncated());
}

TEST(ReplayReader, CrLfLinesParse) {
  const TempLog log("chwl 1\r\nwindow 100\r\njob 1 0 1 1 system\r\n"
                    "op 0 think 5\r\nend chwl\r\n");
  const ReplayLog parsed = ReplayLog::load(log.path(), {});
  ASSERT_EQ(parsed.workload().jobs.size(), 1u);
  const JobScripts scripts = parsed.compile_job(0);
  ASSERT_EQ(scripts.nodes[0].ops.size(), 1u);
  EXPECT_EQ(scripts.nodes[0].ops[0].think, 5);
}

}  // namespace
}  // namespace charisma::workload
