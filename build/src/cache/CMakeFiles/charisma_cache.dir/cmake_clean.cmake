file(REMOVE_RECURSE
  "CMakeFiles/charisma_cache.dir/block_cache.cpp.o"
  "CMakeFiles/charisma_cache.dir/block_cache.cpp.o.d"
  "CMakeFiles/charisma_cache.dir/prefetch.cpp.o"
  "CMakeFiles/charisma_cache.dir/prefetch.cpp.o.d"
  "CMakeFiles/charisma_cache.dir/simulators.cpp.o"
  "CMakeFiles/charisma_cache.dir/simulators.cpp.o.d"
  "libcharisma_cache.a"
  "libcharisma_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
