#include "sim/engine.hpp"

#include "util/check.hpp"

namespace charisma::sim {

void Engine::schedule_at(MicroSec at, Callback fn) {
  // A stale event would silently dispatch at the wrong time: the priority
  // queue orders by `at`, so a past timestamp jumps the whole queue.
  CHECK(at >= now_, "schedule_at(", at, ") is in the past: now()=", now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(MicroSec delay, Callback fn) {
  CHECK(delay >= 0, "schedule_in(", delay, ") with a negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the callback must be moved out before pop.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  // Monotone dispatch: simulated time never moves backwards.
  CHECK(ev.at >= now_, "event at t=", ev.at, " dispatched after now()=", now_);
  now_ = ev.at;
  ++dispatched_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(MicroSec deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace charisma::sim
