// Shared vocabulary types for the Concurrent File System model.
#pragma once

#include <cstdint>
#include <string>

#include "net/hypercube.hpp"
#include "util/units.hpp"

namespace charisma::cfs {

using net::NodeId;
using util::MicroSec;

/// Unique id of a file (inode number).  Never reused, even after deletion,
/// so trace analysis can key on it.
using FileId = std::int32_t;
inline constexpr FileId kNoFile = -1;

/// Job identifier assigned by the workload scheduler.
using JobId = std::int32_t;
inline constexpr JobId kNoJob = -1;

/// Per-client open-file descriptor.
using Fd = std::int32_t;
inline constexpr Fd kBadFd = -1;

/// CFS I/O modes (paper §2.4).
enum class IoMode : std::uint8_t {
  kIndependent = 0,  // mode 0: each process has its own file pointer
  kShared = 1,       // mode 1: one shared pointer, first-come-first-served
  kOrdered = 2,      // mode 2: shared pointer, round-robin node order
  kFixed = 3,        // mode 3: round-robin AND identical access sizes
};

[[nodiscard]] constexpr const char* to_string(IoMode m) noexcept {
  switch (m) {
    case IoMode::kIndependent: return "mode0";
    case IoMode::kShared: return "mode1";
    case IoMode::kOrdered: return "mode2";
    case IoMode::kFixed: return "mode3";
  }
  return "?";
}

/// Open flags (bitmask).
enum OpenFlags : std::uint8_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
};

enum class Whence : std::uint8_t { kSet, kCurrent, kEnd };

/// Result of a data operation, in the terms the tracer records.
///
/// Failure contract: when ok is false, `bytes` is 0, `extended_file` is
/// false, and `completed_at` equals the simulated time the call was made —
/// a failed operation consumes no simulated time, and callers must never
/// see a stale or advanced timestamp on an error path.
struct IoResult {
  bool ok = false;
  std::int64_t offset = 0;       // file offset the operation started at
  std::int64_t bytes = 0;        // bytes actually transferred
  MicroSec completed_at = 0;     // simulated completion time
  bool extended_file = false;    // write grew the file
  std::string error;             // empty when ok
};

struct OpenResult {
  bool ok = false;
  Fd fd = kBadFd;
  FileId file = kNoFile;
  bool created = false;
  MicroSec completed_at = 0;
  std::string error;
};

}  // namespace charisma::cfs
