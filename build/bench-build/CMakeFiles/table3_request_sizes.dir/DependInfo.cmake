
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_request_sizes.cpp" "bench-build/CMakeFiles/table3_request_sizes.dir/table3_request_sizes.cpp.o" "gcc" "bench-build/CMakeFiles/table3_request_sizes.dir/table3_request_sizes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/charisma_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/charisma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/charisma_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/charisma_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/charisma_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/charisma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cfs/CMakeFiles/charisma_cfs.dir/DependInfo.cmake"
  "/root/repo/build/src/ipsc/CMakeFiles/charisma_ipsc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/charisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/charisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/charisma_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charisma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
