# Empty compiler generated dependencies file for charisma_trace.
# This may be replaced when dependencies are built.
