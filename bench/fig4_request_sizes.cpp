// Figure 4: CDF of reads (and writes) by request size, by count and by
// data volume.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_request_sizes(Context::instance().study().sorted);
  std::printf("%s\n", result.render().c_str());

  std::printf("reads-by-count series:\n%s\n",
              result.reads_by_count
                  .render_series(util::log_spaced(100, 4e6, 2))
                  .c_str());
  std::printf("reads-by-bytes series:\n%s\n",
              result.reads_by_bytes
                  .render_series(util::log_spaced(100, 4e6, 2))
                  .c_str());

  Comparison cmp("Figure 4: request sizes");
  cmp.percent_row("reads under 4000 B", analysis::paper::kSmallReadFraction,
                  result.small_read_fraction);
  cmp.percent_row("data moved by those reads",
                  analysis::paper::kSmallReadDataFraction,
                  result.small_read_data_fraction);
  cmp.percent_row("writes under 4000 B",
                  analysis::paper::kSmallWriteFraction,
                  result.small_write_fraction);
  cmp.percent_row("data moved by those writes",
                  analysis::paper::kSmallWriteDataFraction,
                  result.small_write_data_fraction);
  cmp.row("spikes", "counts: small sizes; data: 1 MB (one job)",
          "4 KB write share " +
              util::fmt((result.writes_by_count.at(4096) -
                         result.writes_by_count.at(4095)) *
                        100.0) +
              "%, 1 MB data share " +
              util::fmt((result.reads_by_bytes.at(1 << 20) -
                         result.reads_by_bytes.at((1 << 20) - 1)) *
                        100.0) +
              "%");
  cmp.print();
}

void BM_RequestSizeAnalysis(benchmark::State& state) {
  const auto& trace = Context::instance().study().sorted;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_request_sizes(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(trace.records.size()) * state.iterations());
}
BENCHMARK(BM_RequestSizeAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 4 (request sizes)", charisma::bench::reproduce)
