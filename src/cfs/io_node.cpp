#include "cfs/io_node.hpp"

#include <algorithm>

namespace charisma::cfs {

IoNode::IoNode(int id, disk::Disk& disk, IoNodeParams params)
    : id_(id), disk_(&disk), params_(params) {}

bool IoNode::cache_lookup(const BlockKey& key) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void IoNode::cache_insert(const BlockKey& key) {
  if (params_.cache_buffers == 0) return;
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, lru_.begin());
  if (cache_.size() > params_.cache_buffers) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

MicroSec IoNode::serve_read(MicroSec arrival, FileId file,
                            std::int64_t file_block, std::int64_t disk_offset,
                            std::int64_t bytes) {
  ++requests_;
  const BlockKey key{file, file_block};
  if (params_.cache_buffers > 0 && cache_lookup(key)) {
    ++hits_;
    return arrival + params_.request_overhead;
  }
  // Miss: read the whole enclosing block from disk (CFS caches block-sized
  // buffers), then serve from memory.
  const std::int64_t in_block = disk_offset % params_.block_size;
  const std::int64_t block_start = disk_offset - in_block;
  const std::int64_t read_bytes =
      params_.cache_buffers > 0 ? params_.block_size : bytes;
  const std::int64_t read_from =
      params_.cache_buffers > 0 ? block_start : disk_offset;
  ++disk_reads_;
  const MicroSec done =
      disk_->submit(arrival + params_.request_overhead, read_from, read_bytes);
  cache_insert(key);
  return done;
}

MicroSec IoNode::serve_write(MicroSec arrival, FileId file,
                             std::int64_t file_block, std::int64_t disk_offset,
                             std::int64_t bytes) {
  ++requests_;
  const BlockKey key{file, file_block};
  // Write-through: the block lands in the cache AND goes to disk.
  ++disk_writes_;
  const MicroSec done =
      disk_->submit(arrival + params_.request_overhead, disk_offset, bytes);
  cache_insert(key);
  return done;
}

void IoNode::invalidate(FileId file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->file == file) {
      cache_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace charisma::cfs
