# Empty dependencies file for cfd_checkpoint.
# This may be replaced when dependencies are built.
