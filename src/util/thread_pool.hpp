// A small fixed-size thread pool with a parallel_for helper.
//
// Used by the analysis layer and the cache parameter sweeps (Figure 9 runs
// the full-trace simulation once per I/O-node count).  The discrete-event
// simulator itself is sequential — event order is the whole point — so the
// pool only ever parallelizes independent read-only passes over a trace.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace charisma::util {

class ThreadPool {
 public:
  /// `threads == 0` picks the hardware concurrency (at least one).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task; the returned future rethrows any task exception.
  /// Worker threads never swallow a throw: every exception a task raises is
  /// captured into its future (tests/util/thread_pool_test.cpp pins this).
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  // condition_variable_any waits on the annotated Mutex directly.
  std::condition_variable_any cv_;
  std::condition_variable_any idle_cv_;
  std::queue<std::packaged_task<void()>> queue_ CHARISMA_GUARDED_BY(mutex_);
  std::size_t in_flight_ CHARISMA_GUARDED_BY(mutex_) = 0;
  bool stop_ CHARISMA_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [0, n), split into contiguous chunks across the
/// pool.  Rethrows the first failure (the exception of the lowest-index
/// chunk that threw), but only after every chunk has finished — the caller's
/// `body` and captures stay borrowable for the whole call even on the error
/// path.  `body` must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace charisma::util
