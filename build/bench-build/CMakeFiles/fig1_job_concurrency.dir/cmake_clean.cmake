file(REMOVE_RECURSE
  "../bench/fig1_job_concurrency"
  "../bench/fig1_job_concurrency.pdb"
  "CMakeFiles/fig1_job_concurrency.dir/fig1_job_concurrency.cpp.o"
  "CMakeFiles/fig1_job_concurrency.dir/fig1_job_concurrency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_job_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
