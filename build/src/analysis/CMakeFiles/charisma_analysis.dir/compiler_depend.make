# Empty compiler generated dependencies file for charisma_analysis.
# This may be replaced when dependencies are built.
