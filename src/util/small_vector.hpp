// A vector with inline storage for the first N elements.
//
// The CFS request path builds a short-lived block plan for every read and
// write; a std::vector there means one malloc/free per simulated I/O
// operation.  SmallVector keeps the common small case (requests under a few
// blocks) entirely inside the owning object, and — combined with clear()
// retaining heap capacity — makes a reused scratch buffer allocation-free in
// steady state even for large requests.
//
// Deliberately minimal: exactly the operations the hot paths need
// (push_back / emplace_back / clear / reserve / iteration / indexing), no
// insert/erase, no allocator parameter.  Move-constructing relocates heap
// storage by pointer swap and inline storage element by element.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace charisma::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be at least one element");
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "elements relocate on growth; a throwing move could "
                "half-move the buffer");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept : data_(inline_data()), capacity_(N) {}

  SmallVector(const SmallVector& other) : SmallVector() {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    adopt(std::move(other));
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (const T& v : other) push_back(v);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    release();
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
    adopt(std::move(other));
    return *this;
  }

  ~SmallVector() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while the elements still live inside the object itself.
  [[nodiscard]] bool is_inline() const noexcept {
    return data_ == inline_data();
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) grow_to(wanted);
  }

  /// Destroys the elements but keeps the storage (inline or heap), so a
  /// reused scratch buffer stops allocating once its high-water capacity is
  /// reached.
  void clear() noexcept {
    std::destroy_n(data_, size_);
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    DCHECK(size_ > 0, "pop_back on empty SmallVector");
    --size_;
    std::destroy_at(data_ + size_);
  }

 private:
  [[nodiscard]] T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  [[nodiscard]] const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow_to(std::size_t wanted) {
    const std::size_t new_capacity = wanted < 2 * N ? 2 * N : wanted;
    T* fresh = static_cast<T*>(
        ::operator new(new_capacity * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
    }
    std::destroy_n(data_, size_);
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  /// Steals `other`'s contents; *this must be empty and inline.
  void adopt(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  /// Destroys elements and frees heap storage (used by dtor / move-assign).
  void release() noexcept {
    clear();
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace charisma::util
