// Discrete-event simulation engine.
//
// The machine model (compute nodes, network, disks, the trace collector) is
// written as callbacks scheduled on this engine.  Determinism rules:
//   * time is integer microseconds (util::MicroSec);
//   * ties are broken by schedule order (a monotone sequence number), so a
//    (seed, config) pair always produces the identical event interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace charisma::sim {

using util::MicroSec;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] MicroSec now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t dispatched_events() const noexcept {
    return dispatched_;
  }

  /// Schedules `fn` at absolute time `at` (>= now).
  void schedule_at(MicroSec at, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now.
  void schedule_in(MicroSec delay, Callback fn);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= `deadline`; afterwards now() == max(deadline,
  /// now()).  Events scheduled beyond the deadline remain queued.
  void run_until(MicroSec deadline);
  /// Dispatches the single earliest event; returns false if none remain.
  bool step();

 private:
  struct Event {
    MicroSec at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  MicroSec now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace charisma::sim
