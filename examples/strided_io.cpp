// Strided I/O demo (paper §5): the same interleaved access expressed as a
// seek/read loop versus one strided request, comparing messages and
// simulated latency — the argument the paper closes with.
//
//   strided_io [--nodes=16] [--record=512]
#include <cstdio>
#include <memory>
#include <vector>

#include "cfs/client.hpp"
#include "util/flags.hpp"

using namespace charisma;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"nodes", "record"});
  const auto P = static_cast<std::int32_t>(flags.get_int("nodes", 16));
  const std::int64_t rec = flags.get_int("record", 512);

  sim::Engine engine;
  util::Rng rng(3);
  ipsc::Machine machine(engine, ipsc::MachineConfig::nas_ames(), rng);
  cfs::Runtime cfs(machine);

  // Stage a shared grid.
  const std::int64_t grid_bytes = 2 * util::kMiB;
  {
    cfs::Client staging(cfs, 0);
    auto g = staging.open(1, "mesh.g", cfs::kWrite | cfs::kCreate,
                          cfs::IoMode::kIndependent);
    (void)staging.write(g.fd, grid_bytes);
    (void)staging.close(g.fd);
  }
  const std::int64_t records = grid_bytes / rec;
  const std::int64_t per_node = records / P;

  // --- Conventional: every node seek/reads its records one by one. ------
  std::vector<std::unique_ptr<cfs::Client>> loop_clients;
  util::MicroSec loop_done = engine.now();
  std::uint64_t loop_messages = 0;
  for (std::int32_t n = 0; n < P; ++n) {
    loop_clients.push_back(std::make_unique<cfs::Client>(cfs, n));
    cfs::Client& c = *loop_clients.back();
    auto g = c.open(2, "mesh.g", cfs::kRead, cfs::IoMode::kIndependent);
    (void)c.seek(g.fd, n * rec, cfs::Whence::kSet);
    for (std::int64_t k = 0; k < per_node; ++k) {
      const auto r = c.read(g.fd, rec);
      if (!r.ok || r.bytes == 0) break;
      loop_done = std::max(loop_done, r.completed_at);
      (void)c.seek(g.fd, (P - 1) * rec, cfs::Whence::kCurrent);
    }
    (void)c.close(g.fd);
    loop_messages += c.io_messages();
  }
  const util::MicroSec loop_elapsed = loop_done - engine.now();
  engine.run_until(loop_done);

  // --- Strided: every node issues ONE request for the same pattern. -----
  std::vector<std::unique_ptr<cfs::Client>> strided_clients;
  util::MicroSec strided_done = engine.now();
  std::uint64_t strided_messages = 0;
  const util::MicroSec t1 = engine.now();
  for (std::int32_t n = 0; n < P; ++n) {
    strided_clients.push_back(std::make_unique<cfs::Client>(cfs, n));
    cfs::Client& c = *strided_clients.back();
    auto g = c.open(3, "mesh.g", cfs::kRead, cfs::IoMode::kIndependent);
    (void)c.seek(g.fd, n * rec, cfs::Whence::kSet);
    const auto r = c.read_strided(g.fd, rec, (P - 1) * rec, per_node);
    strided_done = std::max(strided_done, r.completed_at);
    (void)c.close(g.fd);
    strided_messages += c.io_messages();
  }
  const util::MicroSec strided_elapsed = strided_done - t1;

  std::printf("interleaved read of %s by %d nodes (record %lld B):\n\n",
              util::format_bytes(grid_bytes).c_str(), P,
              static_cast<long long>(rec));
  std::printf("  conventional loop: %llu I/O messages, finished in %s\n",
              static_cast<unsigned long long>(loop_messages),
              util::format_duration(loop_elapsed).c_str());
  std::printf("  strided requests:  %llu I/O messages, finished in %s\n",
              static_cast<unsigned long long>(strided_messages),
              util::format_duration(strided_elapsed).c_str());
  std::printf(
      "\n\"A strided request can express a regular request and interval "
      "size ... effectively increasing the request size [and] lowering "
      "overhead.\" (S5)\n");
  return 0;
}
