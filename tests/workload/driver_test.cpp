#include "workload/driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace charisma::workload {
namespace {

struct Harness {
  explicit Harness(double scale, std::uint64_t seed = 11) : rng(seed) {
    WorkloadConfig wc;
    wc.scale = scale;
    wc.seed = seed;
    workload = generate(wc);
    machine.emplace(engine, ipsc::MachineConfig::nas_ames(), rng);
    runtime.emplace(*machine);
    collector.emplace(*machine);
    driver.emplace(*machine, *runtime, *collector, workload);
  }

  sim::Engine engine;
  util::Rng rng;
  GeneratedWorkload workload;
  std::optional<ipsc::Machine> machine;
  std::optional<cfs::Runtime> runtime;
  std::optional<trace::Collector> collector;
  std::optional<Driver> driver;
};

TEST(Driver, RunsEveryJobToCompletion) {
  Harness h(0.05);
  h.driver->run();
  const auto& results = h.driver->results();
  EXPECT_EQ(results.size(), h.workload.jobs.size());
  for (const auto& r : results) {
    EXPECT_GE(r.start, r.arrival);
    EXPECT_GT(r.end, r.start);
    EXPECT_EQ(r.io_errors, 0u) << "job " << r.job << " ("
                               << to_string(r.archetype) << ")";
  }
  EXPECT_EQ(h.driver->clamped_jobs(), 0u);
}

TEST(Driver, ConcurrencyNeverExceedsJobSlots) {
  Harness h(0.08, 21);
  h.driver->run();
  struct Ev {
    util::MicroSec t;
    int delta;
  };
  std::vector<Ev> evs;
  for (const auto& j : h.driver->results()) {
    evs.push_back({j.start, +1});
    evs.push_back({j.end, -1});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    return a.t != b.t ? a.t < b.t : a.delta < b.delta;
  });
  int level = 0, max_level = 0;
  for (const auto& e : evs) {
    level += e.delta;
    max_level = std::max(max_level, level);
  }
  EXPECT_LE(max_level, 8);
}

TEST(Driver, EmitsBalancedJobAndFileEvents) {
  Harness h(0.05, 31);
  h.driver->run();
  const auto trace = h.collector->take_trace();
  std::map<cfs::JobId, int> job_balance;
  std::map<std::pair<cfs::JobId, cfs::FileId>, std::map<cfs::NodeId, int>>
      open_balance;
  std::uint64_t starts = 0;
  for (const auto& block : trace.blocks) {
    for (const auto& r : block.records) {
      switch (r.kind) {
        case trace::EventKind::kJobStart:
          ++job_balance[r.job];
          ++starts;
          break;
        case trace::EventKind::kJobEnd:
          --job_balance[r.job];
          break;
        case trace::EventKind::kOpen:
          ++open_balance[{r.job, r.file}][r.node];
          break;
        case trace::EventKind::kClose:
          --open_balance[{r.job, r.file}][r.node];
          break;
        default:
          break;
      }
    }
  }
  EXPECT_EQ(starts, h.workload.jobs.size());
  for (const auto& [job, bal] : job_balance) {
    EXPECT_EQ(bal, 0) << "job " << job << " start/end unbalanced";
  }
  for (const auto& [key, nodes] : open_balance) {
    for (const auto& [node, bal] : nodes) {
      EXPECT_EQ(bal, 0) << "open/close unbalanced on file " << key.second;
    }
  }
}

TEST(Driver, UntracedJobsLeaveNoFileRecords) {
  Harness h(0.05, 41);
  h.driver->run();
  std::map<cfs::JobId, bool> traced;
  for (const auto& spec : h.workload.jobs) traced[spec.job] = spec.traced;
  const auto trace = h.collector->take_trace();
  for (const auto& block : trace.blocks) {
    for (const auto& r : block.records) {
      if (r.kind == trace::EventKind::kJobStart ||
          r.kind == trace::EventKind::kJobEnd) {
        continue;
      }
      EXPECT_TRUE(traced.at(r.job))
          << "record from untraced job " << r.job;
    }
  }
}

TEST(Driver, DeterministicAcrossRuns) {
  Harness a(0.03, 51), b(0.03, 51);
  a.driver->run();
  b.driver->run();
  const auto ta = a.collector->take_trace();
  const auto tb = b.collector->take_trace();
  ASSERT_EQ(ta.record_count(), tb.record_count());
  ASSERT_EQ(ta.blocks.size(), tb.blocks.size());
  for (std::size_t i = 0; i < ta.blocks.size(); ++i) {
    ASSERT_EQ(ta.blocks[i].records.size(), tb.blocks[i].records.size());
    EXPECT_EQ(ta.blocks[i].sent_local, tb.blocks[i].sent_local);
    for (std::size_t r = 0; r < ta.blocks[i].records.size(); ++r) {
      EXPECT_EQ(ta.blocks[i].records[r].timestamp,
                tb.blocks[i].records[r].timestamp);
      EXPECT_EQ(ta.blocks[i].records[r].offset,
                tb.blocks[i].records[r].offset);
    }
  }
  EXPECT_EQ(a.engine.now(), b.engine.now());
}

TEST(Driver, SubcubesAreReleasedEventually) {
  Harness h(0.05, 61);
  h.driver->run();
  // After the run, restarting a full-machine allocation must be possible;
  // verify indirectly: the biggest job in the mix ran.
  bool big_ran = false;
  for (const auto& r : h.driver->results()) {
    if (r.nodes == 128) big_ran = r.end > 0;
  }
  EXPECT_TRUE(big_ran);
}

TEST(Driver, ModeRetriesStayBounded) {
  Harness h(0.3, 71);  // big enough to draw shared-pointer jobs
  h.driver->run();
  // Retries happen (mode 2 polling) but never run away.
  EXPECT_LT(h.driver->mode_retries(), 100000u);
}

}  // namespace
}  // namespace charisma::workload
