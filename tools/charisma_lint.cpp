// charisma_lint — determinism and concurrency-safety guard for the tree.
//
// Scans <root>/{src,bench,tools,tests,examples} for the hazards that break
// the simulator's determinism contract (see tools/lint_rules.hpp and
// docs/static-analysis.md): wall-clock reads, raw RNGs, floats, hash-order
// iteration, shared-mutable lambda captures in parallel regions,
// pointer-keyed ordering, parallel float folds, layering back-edges, and
// stale suppressions.  Registered as a ctest test, so `ctest` fails the
// build the moment one lands in a result-producing path.
//
// Usage:
//   charisma_lint [root] [--rule=NAME ...] [--format=gcc|json]
//   charisma_lint --list-rules
//
//   --rule=NAME   report only the named rule(s); repeatable
//   --format=gcc  one "path:line: [rule] message" per line (default)
//   --format=json a JSON array of {file, line, rule, message}
//
// Exit codes: 0 clean, 1 findings, 2 usage or scan error.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "tools/lint_rules.hpp"

namespace {

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "charisma_lint: %s\n", error);
  std::fprintf(stderr,
               "usage: charisma_lint [root] [--rule=NAME ...] "
               "[--format=gcc|json] | --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "gcc";
  std::vector<std::string> only_rules;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : charisma::lint::known_rules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: charisma_lint [root] [--rule=NAME ...] "
          "[--format=gcc|json] | --list-rules\n");
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      const std::string name = arg.substr(7);
      const auto& known = charisma::lint::known_rules();
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        return usage(("unknown rule '" + name + "' (see --list-rules)")
                         .c_str());
      }
      only_rules.push_back(name);
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "gcc" && format != "json") {
        return usage("--format must be gcc or json");
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) return usage(("unknown flag " + arg).c_str());
    root = arg;
  }

  try {
    auto findings = charisma::lint::scan_tree(root);
    if (!only_rules.empty()) {
      findings.erase(
          std::remove_if(findings.begin(), findings.end(),
                         [&only_rules](const charisma::lint::Finding& f) {
                           return std::find(only_rules.begin(),
                                            only_rules.end(),
                                            f.rule) == only_rules.end();
                         }),
          findings.end());
    }
    if (format == "json") {
      std::fputs(charisma::lint::format_json(findings).c_str(), stdout);
      return findings.empty() ? 0 : 1;
    }
    for (const auto& f : findings) {
      std::printf("%s\n", charisma::lint::format(f).c_str());
    }
    if (!findings.empty()) {
      std::printf("charisma_lint: %zu finding(s) in '%s'\n", findings.size(),
                  root.c_str());
      return 1;
    }
    std::printf("charisma_lint: clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "charisma_lint: %s\n", e.what());
    return 2;
  }
}
