# Empty compiler generated dependencies file for fig6_consecutive.
# This may be replaced when dependencies are built.
