// Byte-size and time units shared across the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace charisma::util {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// The CFS striping unit and the iPSC message fragment size (both 4 KB).
inline constexpr std::int64_t kBlockSize = 4 * kKiB;

/// Simulated time is kept in integer microseconds to make event ordering
/// exact and traces byte-reproducible.
using MicroSec = std::int64_t;

inline constexpr MicroSec kMicrosecond = 1;
inline constexpr MicroSec kMillisecond = 1000;
inline constexpr MicroSec kSecond = 1000 * kMillisecond;
inline constexpr MicroSec kMinute = 60 * kSecond;
inline constexpr MicroSec kHour = 60 * kMinute;

/// "1.2 MB", "532 KB", "17 B" — for report output.
[[nodiscard]] std::string format_bytes(std::int64_t bytes);
/// "2h 13m", "42.0s", "15ms" — for report output.
[[nodiscard]] std::string format_duration(MicroSec t);
/// "12.3%" with one decimal.
[[nodiscard]] std::string format_percent(double fraction);

}  // namespace charisma::util
