// Figure 3: CDF of file sizes at close.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_file_sizes(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  std::printf("CDF series (bytes\\tF(x)):\n%s\n",
              result.cdf
                  .render_series(util::log_spaced(100, 2.5e7, 2))
                  .c_str());

  Comparison cmp("Figure 3: file sizes");
  cmp.row("bulk of the files", "10 KB .. 1 MB",
          util::fmt(result.fraction_between_10k_1m * 100.0) +
              "% in 10 KB .. 1 MB");
  cmp.row("median size", "~100 KB (read off the CDF)",
          util::format_bytes(result.median));
  cmp.row("size clusters", "e.g. ~25 KB and ~250 KB (1-2 apps each)",
          "CDF jump at 25 KB: " +
              util::fmt((result.cdf.at(26e3) - result.cdf.at(21e3)) * 100.0) +
              "% of files");
  cmp.print();
}

void BM_FileSizeAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_file_sizes(store));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(store.sessions().size()) *
      state.iterations());
}
BENCHMARK(BM_FileSizeAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 3 (file sizes)", charisma::bench::reproduce)
