file(REMOVE_RECURSE
  "libcharisma_ipsc.a"
)
