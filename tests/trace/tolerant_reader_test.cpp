// The crash-salvaging trace reader.
#include <gtest/gtest.h>

#include <fstream>

#include "trace/postprocess.hpp"
#include "trace/trace_file.hpp"

namespace charisma::trace {
namespace {

class TolerantReaderTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "charisma_tolerant.chtr";

  static TraceFile sample(int blocks) {
    TraceFile t;
    t.header.compute_nodes = 4;
    t.header.io_nodes = 2;
    t.header.label = "crashy";
    for (int b = 0; b < blocks; ++b) {
      TraceBlock block;
      block.node = b % 4;
      block.sent_local = b * 1000;
      block.recv_global = b * 1000 + 50;
      for (int i = 0; i < 8; ++i) {
        Record r;
        r.kind = EventKind::kRead;
        r.node = block.node;
        r.timestamp = b * 1000 + i;
        r.bytes = 100;
        block.records.push_back(r);
      }
      t.blocks.push_back(std::move(block));
    }
    return t;
  }

  void truncate_to(std::size_t bytes) {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(std::min(bytes, contents.size())));
  }

  std::size_t file_size() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return static_cast<std::size_t>(in.tellg());
  }
};

TEST_F(TolerantReaderTest, IntactFileReadsFully) {
  sample(10).write(path_);
  bool truncated = true;
  const auto t = TraceFile::read_tolerant(path_, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(t.blocks.size(), 10u);
  EXPECT_EQ(t.record_count(), 80u);
}

TEST_F(TolerantReaderTest, SalvagesCompleteBlocksFromCrashedTrace) {
  sample(10).write(path_);
  const std::size_t full = file_size();
  truncate_to(full - 100);  // lose the tail mid-block
  EXPECT_THROW(TraceFile::read(path_), std::runtime_error);
  bool truncated = false;
  const auto t = TraceFile::read_tolerant(path_, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_GE(t.blocks.size(), 8u);
  EXPECT_LT(t.blocks.size(), 10u);
  EXPECT_EQ(t.header.label, "crashy");
  // Every salvaged block is complete.
  for (const auto& b : t.blocks) EXPECT_EQ(b.records.size(), 8u);
}

TEST_F(TolerantReaderTest, SalvagedTracePostprocessesCleanly) {
  sample(20).write(path_);
  truncate_to(file_size() / 2);
  const auto t = TraceFile::read_tolerant(path_);
  const auto sorted = postprocess(t);
  EXPECT_EQ(sorted.records.size(), t.record_count());
}

TEST_F(TolerantReaderTest, HeaderDamageStillThrows) {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << "CHARIS";  // not even a whole magic
  out.close();
  EXPECT_THROW(TraceFile::read_tolerant(path_), std::runtime_error);
}

}  // namespace
}  // namespace charisma::trace
