#include "core/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace charisma::core {
namespace {

TEST(ExportFigures, WritesEverySeries) {
  const auto study = run_study_at_scale(0.02, 33);
  const std::string dir = ::testing::TempDir() + "charisma_export";
  std::filesystem::create_directories(dir);
  const auto result = export_figures(study, dir);
  EXPECT_GE(result.files_written, 14);
  for (const char* name :
       {"fig1.tsv", "fig2.tsv", "fig3.tsv", "fig4.tsv", "fig5_read_only.tsv",
        "fig6_write_only.tsv", "fig7_read_bytes.tsv", "fig8_1buf.tsv",
        "fig9.tsv", "iorate.tsv", "plots.gp"}) {
    const std::filesystem::path p = std::filesystem::path(dir) / name;
    EXPECT_TRUE(std::filesystem::exists(p)) << name;
    EXPECT_GT(std::filesystem::file_size(p), 10u) << name;
  }
  // TSVs start with a header comment and have numeric rows.
  std::ifstream f(std::filesystem::path(dir) / "fig4.tsv");
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line[0], '#');
  std::getline(f, line);
  EXPECT_NE(line.find('\t'), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ExportFigures, FailsCleanlyOnBadDirectory) {
  const auto study = run_study_at_scale(0.01, 34);
  EXPECT_THROW(export_figures(study, "/nonexistent-dir/nope"),
               std::runtime_error);
}

}  // namespace
}  // namespace charisma::core
