#include "trace/instrumented_client.hpp"

#include <gtest/gtest.h>

namespace charisma::trace {
namespace {

class InstrumentedClientTest : public ::testing::Test {
 protected:
  InstrumentedClientTest()
      : rng_(1),
        machine_(engine_, ipsc::MachineConfig::tiny(), rng_),
        runtime_(machine_),
        collector_(machine_),
        raw_(runtime_, 0),
        client_(raw_, collector_) {}

  std::vector<Record> drain() {
    collector_.flush_all();
    std::vector<Record> out;
    for (const auto& b : collector_.take_trace().blocks) {
      out.insert(out.end(), b.records.begin(), b.records.end());
    }
    return out;
  }

  sim::Engine engine_;
  util::Rng rng_;
  ipsc::Machine machine_;
  cfs::Runtime runtime_;
  Collector collector_;
  cfs::Client raw_;
  InstrumentedClient client_;
};

TEST_F(InstrumentedClientTest, FullSessionEmitsExpectedRecords) {
  const auto open = client_.open(1, "f", cfs::kRead | cfs::kWrite | cfs::kCreate,
                                 cfs::IoMode::kIndependent);
  ASSERT_TRUE(open.ok);
  (void)client_.write(open.fd, 500);
  (void)client_.seek(open.fd, 0, cfs::Whence::kSet);
  (void)client_.read(open.fd, 200);
  (void)client_.close(open.fd);
  EXPECT_TRUE(client_.unlink(1, "f"));

  const auto records = drain();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records[0].kind, EventKind::kOpen);
  EXPECT_EQ(open_mode(records[0].aux), cfs::IoMode::kIndependent);
  EXPECT_EQ(records[0].bytes, 1);  // created
  EXPECT_EQ(records[1].kind, EventKind::kWrite);
  EXPECT_EQ(records[1].bytes, 500);
  EXPECT_EQ(records[1].offset, 0);
  EXPECT_EQ(records[1].aux, 500);  // requested
  EXPECT_EQ(records[2].kind, EventKind::kSeek);
  EXPECT_EQ(records[2].offset, 0);
  EXPECT_EQ(records[3].kind, EventKind::kRead);
  EXPECT_EQ(records[3].bytes, 200);
  EXPECT_EQ(records[4].kind, EventKind::kClose);
  EXPECT_EQ(records[4].aux, 500);  // size at close
  EXPECT_EQ(records[5].kind, EventKind::kDelete);
  for (const auto& r : records) {
    EXPECT_EQ(r.job, 1);
    EXPECT_EQ(r.node, 0);
    EXPECT_EQ(r.file, open.file);
  }
}

TEST_F(InstrumentedClientTest, ClippedReadRecordsGrantedAndRequested) {
  const auto open = client_.open(1, "f", cfs::kRead | cfs::kWrite | cfs::kCreate,
                                 cfs::IoMode::kIndependent);
  (void)client_.write(open.fd, 100);
  (void)client_.seek(open.fd, 0, cfs::Whence::kSet);
  (void)client_.read(open.fd, 5000);
  const auto records = drain();
  const auto& read = records[3];
  EXPECT_EQ(read.kind, EventKind::kRead);
  EXPECT_EQ(read.bytes, 100);   // granted
  EXPECT_EQ(read.aux, 5000);    // requested
}

TEST_F(InstrumentedClientTest, FailedOperationsEmitNothing) {
  (void)client_.open(1, "missing", cfs::kRead, cfs::IoMode::kIndependent);
  (void)client_.read(99, 10);
  EXPECT_FALSE(client_.unlink(1, "missing"));
  EXPECT_TRUE(drain().empty());
}

TEST_F(InstrumentedClientTest, UntracedClientEmitsNothing) {
  InstrumentedClient quiet(raw_, collector_, /*traced=*/false);
  EXPECT_FALSE(quiet.traced());
  const auto open = quiet.open(1, "f", cfs::kWrite | cfs::kCreate,
                               cfs::IoMode::kIndependent);
  ASSERT_TRUE(open.ok);  // the I/O itself still happens
  (void)quiet.write(open.fd, 100);
  (void)quiet.close(open.fd);
  EXPECT_TRUE(drain().empty());
  EXPECT_EQ(runtime_.fs().stats(open.file)->size, 100);
}

TEST_F(InstrumentedClientTest, OpsStillPerformIo) {
  const auto open = client_.open(1, "f", cfs::kWrite | cfs::kCreate,
                                 cfs::IoMode::kIndependent);
  const auto w = client_.write(open.fd, 12345);
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(runtime_.fs().stats(open.file)->size, 12345);
}

}  // namespace
}  // namespace charisma::trace
