# Empty dependencies file for sec46_mode_usage.
# This may be replaced when dependencies are built.
