
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/collector.cpp" "src/trace/CMakeFiles/charisma_trace.dir/collector.cpp.o" "gcc" "src/trace/CMakeFiles/charisma_trace.dir/collector.cpp.o.d"
  "/root/repo/src/trace/instrumented_client.cpp" "src/trace/CMakeFiles/charisma_trace.dir/instrumented_client.cpp.o" "gcc" "src/trace/CMakeFiles/charisma_trace.dir/instrumented_client.cpp.o.d"
  "/root/repo/src/trace/postprocess.cpp" "src/trace/CMakeFiles/charisma_trace.dir/postprocess.cpp.o" "gcc" "src/trace/CMakeFiles/charisma_trace.dir/postprocess.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/charisma_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/charisma_trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/trace_file.cpp" "src/trace/CMakeFiles/charisma_trace.dir/trace_file.cpp.o" "gcc" "src/trace/CMakeFiles/charisma_trace.dir/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfs/CMakeFiles/charisma_cfs.dir/DependInfo.cmake"
  "/root/repo/build/src/ipsc/CMakeFiles/charisma_ipsc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/charisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/charisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/charisma_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charisma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
