#include "net/hypercube.hpp"

#include <bit>

#include "util/check.hpp"

namespace charisma::net {

Hypercube::Hypercube(int dimension) : dimension_(dimension) {
  util::check(dimension >= 0 && dimension <= 20,
              "hypercube dimension out of range");
}

int Hypercube::hops(NodeId from, NodeId to) const {
  util::check(contains(from) && contains(to), "node id out of range");
  return std::popcount(static_cast<std::uint32_t>(from ^ to));
}

NodeId Hypercube::neighbor(NodeId n, int dim) const {
  util::check(contains(n), "node id out of range");
  util::check(dim >= 0 && dim < dimension_, "dimension out of range");
  return n ^ (NodeId{1} << dim);
}

bool Hypercube::are_neighbors(NodeId a, NodeId b) const {
  return hops(a, b) == 1;
}

std::vector<NodeId> Hypercube::route(NodeId from, NodeId to) const {
  std::vector<NodeId> path;
  path.reserve(static_cast<std::size_t>(hops(from, to)) + 1);
  route_into(from, to, path);
  return path;
}

int Hypercube::route_into(NodeId from, NodeId to,
                          std::vector<NodeId>& out) const {
  util::check(contains(from) && contains(to), "node id out of range");
  out.clear();
  out.push_back(from);
  NodeId cur = from;
  // E-cube: correct differing bits from the lowest dimension upward.
  for (int dim = 0; dim < dimension_; ++dim) {
    const NodeId bit = NodeId{1} << dim;
    if ((cur ^ to) & bit) {
      cur ^= bit;
      out.push_back(cur);
    }
  }
  return static_cast<int>(out.size()) - 1;
}

int Hypercube::dimension_for(NodeId nodes) {
  util::check(nodes >= 1, "need at least one node");
  int d = 0;
  while ((NodeId{1} << d) < nodes) ++d;
  return d;
}

}  // namespace charisma::net
