#include "cache/stack_sim.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace charisma::cache {

SegmentedLruStack::SegmentedLruStack(
    const std::vector<std::size_t>& capacities) {
  CHECK(!capacities.empty(), "segmented stack needs at least one capacity");
  CHECK(std::adjacent_find(capacities.begin(), capacities.end(),
                           std::greater_equal<>()) == capacities.end(),
        "segmented stack capacities must be strictly increasing");
  // A zero capacity never hits and never stores, so it contributes no
  // segment; its bucket index is simply skipped (distinct capacities mean
  // at most one zero, in front).
  zero_offset_ = capacities.front() == 0 ? 1 : 0;
  capacities_.assign(capacities.begin() + zero_offset_, capacities.end());
  CHECK(!capacities_.empty(), "segmented stack needs a nonzero capacity");
  segments_ = capacities_.size();
  const std::size_t max_capacity = capacities_.back();
  CHECK(max_capacity + segments_ < kNil,
        "segmented stack capacity exceeds the slab index range");

  // Slab indices [0, segments_) are the boundary sentinels, linked in
  // capacity order; blocks are appended after them.
  nodes_.reserve(segments_ + max_capacity);
  for (std::uint32_t i = 0; i < segments_; ++i) {
    Node s;
    s.prev = i == 0 ? kNil : i - 1;
    s.next = i + 1 < segments_ ? i + 1 : kNil;
    s.seg = i;
    nodes_.push_back(s);
  }
  head_ = 0;

  const std::size_t buckets =
      std::bit_ceil(std::max<std::size_t>(16, max_capacity * 2));
  slots_.resize(buckets);
  mask_ = buckets - 1;
}

void SegmentedLruStack::unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) nodes_[n.next].prev = n.prev;
}

void SegmentedLruStack::insert_before(std::uint32_t pos, std::uint32_t idx) {
  Node& n = nodes_[idx];
  Node& p = nodes_[pos];
  n.prev = p.prev;
  n.next = pos;
  if (p.prev != kNil) {
    nodes_[p.prev].next = idx;
  } else {
    head_ = idx;
  }
  p.prev = idx;
}

void SegmentedLruStack::push_front(std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.prev = kNil;
  n.next = head_;
  nodes_[head_].prev = idx;  // the list always holds the sentinels
  head_ = idx;
}

void SegmentedLruStack::promote(std::uint32_t idx, std::uint32_t seg) {
  if (head_ == idx) return;  // already the most recent block
  unlink(idx);
  // Re-fronting pushes every block above the old position one place down,
  // so exactly one block crosses each boundary the hit came from below.
  // Segments 0..seg-1 were full (the block sat below them), so each
  // sentinel's prev is a real block.
  for (std::uint32_t j = 0; j < seg; ++j) {
    const std::uint32_t r = nodes_[j].prev;
    unlink(r);
    insert_before(nodes_[j].next, r);
    nodes_[r].seg = j + 1;
  }
  push_front(idx);
  nodes_[idx].seg = 0;
}

void SegmentedLruStack::insert_cold(const BlockKey& key) {
  // The new front pushes every resident block one place down: one block
  // crosses each boundary whose segment is full; past the largest capacity
  // the block is evicted (indistinguishable from cold from then on).
  for (std::uint32_t j = 0; j < segments_; ++j) {
    if (size_ < capacities_[j]) break;
    const std::uint32_t r = nodes_[j].prev;
    unlink(r);
    if (j + 1 == segments_) {  // falls off the largest simulated cache
      erase_slot_for(nodes_[r].key);
      free_.push_back(r);
      --size_;
      break;
    }
    insert_before(nodes_[j].next, r);
    nodes_[r].seg = j + 1;
  }

  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  nodes_[idx].key = key;
  nodes_[idx].seg = 0;
  push_front(idx);
  ++size_;
  // Eviction's backward-shift erase may rearrange the probe chain, so the
  // insertion slot is probed after it rather than reused from the lookup.
  const std::size_t slot = probe(key);
  DCHECK(slots_[slot].node == kEmptySlot,
         "double-insert of block into the stack index");
  slots_[slot] = Slot{key, idx};
  DCHECK(size_ <= capacities_.back(), "stack outgrew the largest capacity");
}

void SegmentedLruStack::touch(const BlockKey& key) {
  const std::size_t slot = probe(key);
  if (slots_[slot].node != kEmptySlot) {
    const std::uint32_t idx = slots_[slot].node;
    promote(idx, nodes_[idx].seg);
  } else {
    insert_cold(key);
  }
}

std::size_t SegmentedLruStack::access(const BlockKey& key) {
  const std::size_t slot = probe(key);
  if (slots_[slot].node != kEmptySlot) {
    const std::uint32_t idx = slots_[slot].node;
    const std::uint32_t seg = nodes_[idx].seg;
    promote(idx, seg);
    return seg + zero_offset_;
  }
  insert_cold(key);
  return segments_ + zero_offset_;
}

void SegmentedLruStack::erase_slot_for(const BlockKey& key) {
  std::size_t gap = probe(key);
  CHECK(slots_[gap].node != kEmptySlot, "evicted block (file=", key.file,
        ", block=", key.block, ") missing from the stack index");
  // Backward-shift deletion, as in BlockCache: pull chain entries back over
  // the gap so lookups never need tombstones.
  std::size_t scan = gap;
  for (;;) {
    slots_[gap].node = kEmptySlot;
    for (;;) {
      scan = (scan + 1) & mask_;
      if (slots_[scan].node == kEmptySlot) return;
      const std::size_t home = BlockKeyHash{}(slots_[scan].key) & mask_;
      const bool movable = (scan > gap) ? (home <= gap || home > scan)
                                        : (home <= gap && home > scan);
      if (movable) {
        slots_[gap] = slots_[scan];
        gap = scan;
        break;
      }
    }
  }
}

namespace detail {
namespace {

/// (job, node) -> SegmentedLruStack with the same last-lookup memo as
/// PerNodeCaches (replay streams are long runs of one node's requests).
class PerNodeStacks {
 public:
  explicit PerNodeStacks(const std::vector<std::size_t>& capacities)
      : capacities_(capacities) {}

  SegmentedLruStack& at(JobId job, NodeId node) {
    if (last_ != nullptr && job == last_job_ && node == last_node_) {
      return *last_;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job)) << 32) |
        static_cast<std::uint32_t>(node);
    auto it = stacks_.find(key);
    if (it == stacks_.end()) {
      it = stacks_.emplace(key, SegmentedLruStack(capacities_)).first;
    }
    last_job_ = job;
    last_node_ = node;
    last_ = &it->second;
    return *last_;
  }

 private:
  const std::vector<std::size_t>& capacities_;
  // Keyed by packed (job, node); never iterated, so hash order is safe.
  std::unordered_map<std::uint64_t, SegmentedLruStack> stacks_;
  JobId last_job_ = cfs::kNoJob;
  NodeId last_node_ = -1;
  SegmentedLruStack* last_ = nullptr;
};

/// Open-addressing map from block to its per-capacity FIFO insertion
/// sequence numbers, stored inline (one probe reaches everything the FIFO
/// group pass needs for a block).  A block whose stamps are all stale is
/// indistinguishable from one never seen, so when the table fills it is
/// compacted against a caller-supplied liveness predicate before it is
/// allowed to grow: live entries are bounded by the summed cache
/// capacities, which keeps the table cache-resident no matter how many
/// distinct blocks the trace touches.
class FifoSeqTable {
 public:
  explicit FifoSeqTable(std::size_t k) : k_(k) { rehash(1u << 16); }

  /// The k sequence counters for `key`, zero-initialized on first touch.
  /// `live(key, seqs)` says whether an entry still matters (some stamp is
  /// within its capacity's window) — consulted only on compaction.
  template <typename Live>
  std::uint32_t* at(const BlockKey& key, const Live& live) {
    DCHECK(key.file != cfs::kNoFile, "block key uses the empty-slot marker");
    if ((size_ + 1) * 2 > keys_.size()) compact_or_grow(live);
    const std::size_t i = probe(key);
    if (keys_[i].file == cfs::kNoFile) {
      keys_[i] = key;
      ++size_;
    }
    return &seqs_[i * k_];
  }

 private:
  [[nodiscard]] std::size_t probe(const BlockKey& key) const {
    std::size_t i = BlockKeyHash{}(key) & mask_;
    while (keys_[i].file != cfs::kNoFile && !(keys_[i] == key)) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void rehash(std::size_t buckets) {
    keys_.assign(buckets, BlockKey{});  // kNoFile marks a vacant slot
    seqs_.assign(buckets * k_, 0);
    mask_ = buckets - 1;
  }

  /// Rebuilds the table with only the live entries, doubling the bucket
  /// count when the survivors alone would leave it more than a quarter
  /// full (so successive compactions stay amortized-cheap).
  template <typename Live>
  void compact_or_grow(const Live& live) {
    std::vector<BlockKey> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_seqs = std::move(seqs_);
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i].file != cfs::kNoFile &&
          live(old_keys[i], &old_seqs[i * k_])) {
        ++survivors;
      } else {
        old_keys[i].file = cfs::kNoFile;
      }
    }
    std::size_t buckets = old_keys.size();
    if ((survivors + 1) * 4 > buckets) buckets *= 2;
    rehash(buckets);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i].file == cfs::kNoFile) continue;
      const std::size_t j = probe(old_keys[i]);
      keys_[j] = old_keys[i];
      std::copy_n(&old_seqs[i * k_], k_, &seqs_[j * k_]);
    }
    size_ = survivors;
  }

  std::size_t k_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<BlockKey> keys_;
  std::vector<std::uint32_t> seqs_;
};

}  // namespace

std::vector<ComputeCacheResult> stack_compute_group(
    const ReplayLog& ops, std::int64_t block_size,
    const std::vector<std::size_t>& buffer_counts) {
  util::check(block_size > 0, "bad block size");
  const std::size_t k = buffer_counts.size();

  // One segmented stack per (job, node) stands in for the caches of every
  // buffer count at once.  Per job, bucket each request by the smallest
  // capacity that would have served all its blocks (the worst block's
  // bucket).
  PerNodeStacks stacks(buffer_counts);
  std::map<JobId, std::vector<std::uint64_t>> per_job;  // k+1 buckets
  std::vector<std::uint64_t>* last_buckets = nullptr;
  JobId last_job = cfs::kNoJob;
  std::uint64_t total_reads = 0;

  // Audited: ReplayLog traversals run the lambda inline on this thread.
  // NOLINTNEXTLINE(charisma-shared-capture)
  ops.for_each([&](const ReplayOp& op) {
    if (!op.is_read || !op.read_only_session) return;
    SegmentedLruStack& stack = stacks.at(op.job, op.node);
    const auto [first, last] = span_of(op, block_size);
    // "Fully satisfied from the local buffer": every touched block present
    // before the request runs, so all block buckets are measured against
    // the stack state at request start (peek), and only then does the
    // request touch them.
    std::size_t worst = 0;
    for (std::int64_t b = first; b <= last; ++b) {
      worst = std::max(worst, stack.peek({op.file, b}));
    }
    for (std::int64_t b = first; b <= last; ++b) {
      stack.touch({op.file, b});
    }
    if (last_buckets == nullptr || op.job != last_job) {
      auto [it, inserted] = per_job.try_emplace(op.job);
      if (inserted) it->second.assign(k + 1, 0);
      last_job = op.job;
      last_buckets = &it->second;
    }
    ++(*last_buckets)[worst];
    ++total_reads;
  });

  // Finalize one result per capacity.  The per-job loop mirrors
  // replay_compute_cache exactly — same job order (ordered map), same
  // accumulation order and arithmetic — so every derived double is
  // bit-identical to the per-config replay's.
  std::vector<ComputeCacheResult> out(k);
  for (ComputeCacheResult& r : out) r.reads = total_reads;
  for (const auto& [job, buckets] : per_job) {
    std::uint64_t job_reads = 0;
    for (const std::uint64_t count : buckets) job_reads += count;
    std::uint64_t job_hits = 0;
    for (std::size_t i = 0; i < k; ++i) {
      job_hits += buckets[i];
      ComputeCacheResult& r = out[i];
      const double rate = hit_fraction(job_hits, job_reads);
      r.hits += job_hits;
      r.job_hit_rates.push_back(rate);
      if (rate <= 0.0) r.fraction_jobs_zero += 1.0;
      if (rate > 0.75) r.fraction_jobs_above_75 += 1.0;
    }
  }
  for (ComputeCacheResult& r : out) {
    if (!r.job_hit_rates.empty()) {
      const auto n = static_cast<double>(r.job_hit_rates.size());
      r.fraction_jobs_zero /= n;
      r.fraction_jobs_above_75 /= n;
    }
    r.hit_rate_cdf = util::Cdf::from_samples(r.job_hit_rates);
  }
  return out;
}

std::vector<IoNodeSimResult> stack_io_group(
    const ReplayLog& ops, const IoNodeSimConfig& shape,
    const std::vector<std::size_t>& per_node_buffers) {
  util::check(shape.io_nodes >= 1, "need at least one I/O node");
  util::check(shape.block_size > 0, "bad block size");
  CHECK(shape.policy == Policy::kLru,
        "stack simulation requires the inclusion property (LRU only), got ",
        to_string(shape.policy));
  const std::size_t k = per_node_buffers.size();

  // One segmented stack per I/O node (blocks stripe round-robin), one §4.8
  // front-cache set shared by every capacity: the front setting is part of
  // the group key, so the filtered stream is the same for all of them.
  std::vector<SegmentedLruStack> nodes;
  nodes.reserve(static_cast<std::size_t>(shape.io_nodes));
  for (int i = 0; i < shape.io_nodes; ++i) nodes.emplace_back(per_node_buffers);
  PerNodeCaches front(shape.compute_buffers_per_node, Policy::kLru);
  std::uint64_t requests = 0;
  std::uint64_t block_accesses = 0;
  std::uint64_t filtered = 0;
  std::vector<std::uint64_t> request_buckets(k + 1, 0);
  std::vector<std::uint64_t> block_buckets(k + 1, 0);

  // Audited: ReplayLog traversals run the lambda inline on this thread.
  // NOLINTNEXTLINE(charisma-shared-capture)
  ops.for_each([&](const ReplayOp& op) {
    const auto [first, last] = span_of(op, shape.block_size);

    if (shape.compute_buffers_per_node > 0 && op.is_read &&
        op.read_only_session) {
      BlockCache& cache = front.at(op.job, op.node);
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        if (!cache.contains({op.file, b})) {
          full_hit = false;
          break;
        }
      }
      for (std::int64_t b = first; b <= last; ++b) {
        (void)cache.access({op.file, b}, op.node);
      }
      if (full_hit) {
        ++filtered;
        return;  // never reaches the I/O nodes
      }
    }

    ++requests;
    // The request is a hit in a capacity-C cache iff every touched block
    // hits, i.e. iff the worst block's bucket does.  Buckets are measured
    // access-by-access (not at request start): that is what the per-config
    // replay does, since each block access updates the cache before the
    // next block of the same request is looked up.
    std::size_t worst = 0;
    for (std::int64_t b = first; b <= last; ++b) {
      const std::size_t d =
          nodes[static_cast<std::size_t>(b % shape.io_nodes)].access(
              {op.file, b});
      ++block_accesses;
      ++block_buckets[d];
      worst = std::max(worst, d);
    }
    ++request_buckets[worst];
  });

  std::vector<IoNodeSimResult> out(k);
  std::uint64_t request_hits = 0;
  std::uint64_t block_hits = 0;
  for (std::size_t i = 0; i < k; ++i) {
    request_hits += request_buckets[i];
    block_hits += block_buckets[i];
    out[i].requests = requests;
    out[i].request_hits = request_hits;
    out[i].block_accesses = block_accesses;
    out[i].block_hits = block_hits;
    out[i].filtered_by_compute = filtered;
    out[i].finalize_rates();
  }
  return out;
}

std::vector<IoNodeSimResult> fifo_io_group(
    const ReplayLog& ops, const IoNodeSimConfig& shape,
    const std::vector<std::size_t>& per_node_buffers) {
  util::check(shape.io_nodes >= 1, "need at least one I/O node");
  util::check(shape.block_size > 0, "bad block size");
  CHECK(shape.policy == Policy::kFifo,
        "the shared-hash group pass models FIFO only, got ",
        to_string(shape.policy));
  const std::size_t k = per_node_buffers.size();
  CHECK(k <= 16, "FIFO group pass is limited to 16 capacities, got ", k);
  const auto io_nodes = static_cast<std::size_t>(shape.io_nodes);

  // FIFO never reorders on a hit, so an inserted block stays cached exactly
  // until `capacity` further insertions land on its (capacity, node) queue.
  // That makes eviction *implicit*: stamp each insertion with the queue's
  // running sequence number, and a block is present iff its stamp is within
  // the last `capacity` insertions.  Evictions never write anything, and one
  // probe of the shared table reaches every capacity's stamp for the block
  // (a block always stripes to the same I/O node, so its queues are fixed).
  // 32-bit stamps are safe: a queue sees at most one insertion per block
  // access, and traces are far below 2^32 block accesses per node.
  FifoSeqTable table(k);
  std::vector<std::uint32_t> insertions(k * io_nodes, 0);
  const auto live = [&](const BlockKey& key, const std::uint32_t* seq) {
    const std::uint32_t* ins =
        &insertions[static_cast<std::size_t>(key.block) % io_nodes * k];
    for (std::size_t c = 0; c < k; ++c) {
      if (seq[c] != 0 && ins[c] - seq[c] < per_node_buffers[c]) return true;
    }
    return false;
  };
  PerNodeCaches front(shape.compute_buffers_per_node, Policy::kLru);
  std::uint64_t requests = 0;
  std::uint64_t block_accesses = 0;
  std::uint64_t filtered = 0;
  std::vector<std::uint64_t> block_hits(k, 0);
  std::vector<std::uint64_t> request_hits(k, 0);

  // Audited: ReplayLog traversals run the lambda inline on this thread.
  // NOLINTNEXTLINE(charisma-shared-capture)
  ops.for_each([&](const ReplayOp& op) {
    const auto [first, last] = span_of(op, shape.block_size);

    if (shape.compute_buffers_per_node > 0 && op.is_read &&
        op.read_only_session) {
      BlockCache& cache = front.at(op.job, op.node);
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        if (!cache.contains({op.file, b})) {
          full_hit = false;
          break;
        }
      }
      for (std::int64_t b = first; b <= last; ++b) {
        (void)cache.access({op.file, b}, op.node);
      }
      if (full_hit) {
        ++filtered;
        return;
      }
    }

    ++requests;
    std::uint16_t request_mask = static_cast<std::uint16_t>((1u << k) - 1);
    for (std::int64_t b = first; b <= last; ++b) {
      ++block_accesses;
      std::uint32_t* seq = table.at({op.file, b}, live);
      std::uint32_t* ins =
          &insertions[static_cast<std::size_t>(b) % io_nodes * k];
      for (std::size_t c = 0; c < k; ++c) {
        // Stamp 0 means "never inserted"; a stale stamp (>= capacity
        // insertions ago) means the block has been implicitly evicted.
        if (seq[c] != 0 && ins[c] - seq[c] < per_node_buffers[c]) {
          ++block_hits[c];
          continue;  // FIFO: a hit leaves the cache untouched
        }
        request_mask &= static_cast<std::uint16_t>(~(1u << c));
        // A zero capacity never hits and never stores.
        if (per_node_buffers[c] != 0) seq[c] = ++ins[c];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (request_mask & (1u << c)) ++request_hits[c];
    }
  });

  std::vector<IoNodeSimResult> out(k);
  for (std::size_t c = 0; c < k; ++c) {
    out[c].requests = requests;
    out[c].request_hits = request_hits[c];
    out[c].block_accesses = block_accesses;
    out[c].block_hits = block_hits[c];
    out[c].filtered_by_compute = filtered;
    out[c].finalize_rates();
  }
  return out;
}

}  // namespace detail
}  // namespace charisma::cache
