# Empty dependencies file for cfs_tests.
# This may be replaced when dependencies are built.
