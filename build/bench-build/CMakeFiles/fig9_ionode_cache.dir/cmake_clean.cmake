file(REMOVE_RECURSE
  "../bench/fig9_ionode_cache"
  "../bench/fig9_ionode_cache.pdb"
  "CMakeFiles/fig9_ionode_cache.dir/fig9_ionode_cache.cpp.o"
  "CMakeFiles/fig9_ionode_cache.dir/fig9_ionode_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ionode_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
