// Differential tests for the sharded (conservative-window) engine backend.
//
// The contract under test: for every shard count, the sharded engine
// dispatches in exactly the serial engine's (at, seq) order — not just "a
// valid conservative order" — so a full study yields the identical trace
// digest.  The window protocol's edges get targeted coverage: zero-latency
// self-sends and cross-LP sends during dispatch, events landing exactly on
// the horizon, and run_until deadlines that peek across window boundaries.
//
// The suite name carries "Sharded" so CI's TSan job picks it up: worker
// threads do real queue surgery here whenever a window fans out.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "core/study.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace charisma::sim {
namespace {

constexpr int kLpCount = 16;
constexpr MicroSec kLookahead = 77;  // the NAS model's min message latency

/// (dispatch time, event id, LP) — the id doubles as the schedule order, so
/// comparing logs compares the full (at, seq) dispatch order.
using DispatchLog = std::vector<std::tuple<MicroSec, int, int>>;

Engine make_engine(QueueKind queue, int threads, bool force_sharded) {
  EngineOptions options;
  options.queue = queue;
  options.threads = threads;
  options.lp_count = kLpCount;
  options.lookahead = kLookahead;
  options.force_sharded = force_sharded;
  return Engine(options);
}

// Replays a deterministic pseudo-random LP-tagged schedule.  The RNG is
// consumed during dispatch, so the draws (and therefore the whole schedule)
// line up between two engines only when their dispatch orders are identical
// — a divergence amplifies instead of hiding.  Delays deliberately straddle
// every window-protocol regime: zero-latency, below-lookahead, mid-window,
// and beyond the calendar span (overflow band + migration).
class LpRandomSchedule {
 public:
  LpRandomSchedule(Engine& engine, std::uint64_t seed, int budget)
      : engine_(&engine), rng_(seed), budget_(budget) {}

  DispatchLog run() {
    for (int burst = 0; burst < 8; ++burst) {
      const auto at = static_cast<MicroSec>(rng_.uniform(2000));
      for (int j = 0; j < 5; ++j) spawn(next_lp(), at);
    }
    for (int i = 0; i < 64; ++i) {
      spawn(next_lp(), static_cast<MicroSec>(rng_.uniform(2'000'000)));
    }
    engine_->run();
    return std::move(log_);
  }

 private:
  int next_lp() { return static_cast<int>(rng_.uniform(kLpCount)); }

  void spawn(int lp, MicroSec at) {
    const int id = next_id_++;
    engine_->schedule_at_lp(lp, at, [this, id, lp] { fire(id, lp); });
  }

  void fire(int id, int lp) {
    log_.emplace_back(engine_->now(), id, lp);
    if (next_id_ >= budget_) return;
    const std::uint64_t children = rng_.uniform(3);
    for (std::uint64_t c = 0; c < children; ++c) {
      MicroSec delay;
      const std::uint64_t kind = rng_.uniform(12);
      if (kind < 2) {
        delay = 0;  // zero-latency (self- or cross-LP) send
      } else if (kind < 5) {
        delay = static_cast<MicroSec>(rng_.uniform(kLookahead + 1));
      } else if (kind < 9) {
        delay = static_cast<MicroSec>(rng_.uniform(20'000));
      } else {
        delay = 300'000 + static_cast<MicroSec>(rng_.uniform(3'000'000));
      }
      spawn(next_lp(), engine_->now() + delay);
    }
    if (rng_.chance(0.1)) {
      // Same-timestamp burst scheduled during dispatch (at == now()),
      // spread over LPs — the heap and the harvested runs must interleave
      // by seq alone.
      for (int j = 0; j < 3; ++j) spawn(next_lp(), engine_->now());
    }
  }

  Engine* engine_;
  util::Rng rng_;
  DispatchLog log_;
  int next_id_ = 0;
  int budget_;
};

TEST(ShardedEngine, RandomSchedulesMatchSerialForEveryShardCount) {
  for (const QueueKind queue :
       {QueueKind::kBucketed, QueueKind::kReferenceHeap}) {
    for (const std::uint64_t seed : {1ULL, 42ULL, 987'654'321ULL}) {
      Engine serial = make_engine(queue, 1, /*force_sharded=*/false);
      ASSERT_FALSE(serial.sharded());
      const DispatchLog expected =
          LpRandomSchedule(serial, seed, 4000).run();
      ASSERT_GT(expected.size(), 100u) << "schedule too small to mean much";

      for (const int threads : {1, 2, 4, 8}) {
        Engine sharded = make_engine(queue, threads, /*force_sharded=*/true);
        ASSERT_TRUE(sharded.sharded());
        ASSERT_EQ(sharded.shard_count(), threads);
        const DispatchLog got =
            LpRandomSchedule(sharded, seed, 4000).run();
        ASSERT_EQ(got, expected) << "dispatch diverged at " << threads
                                 << " shards, seed " << seed;
        EXPECT_EQ(sharded.now(), serial.now());
        EXPECT_EQ(sharded.dispatched_events(), serial.dispatched_events());
        EXPECT_EQ(sharded.pending_events(), 0u);
        const ShardStats stats = sharded.shard_stats();
        EXPECT_GT(stats.windows, 0u);
        EXPECT_GT(stats.direct, 0u) << "no same-window schedules exercised";
        EXPECT_GT(stats.staged, 0u) << "no cross-window schedules exercised";
      }
    }
  }
}

// Events scheduled during dispatch exactly at the horizon must stage (wait
// for the next window); one microsecond below it must dispatch in the same
// window.  Both paths must land in serial (at, seq) order either way.
TEST(ShardedEngine, EventsExactlyAtTheHorizonStageForTheNextWindow) {
  Engine e = make_engine(kDefaultQueueKind, 2, /*force_sharded=*/true);
  std::vector<int> order;
  // The first window's horizon is 100 + kLookahead.
  e.schedule_at_lp(0, 100, [&] {
    const MicroSec horizon = 100 + kLookahead;
    e.schedule_at_lp(1, horizon, [&] { order.push_back(2); });      // staged
    e.schedule_at_lp(1, horizon - 1, [&] { order.push_back(1); });  // direct
    order.push_back(0);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  const ShardStats stats = e.shard_stats();
  EXPECT_EQ(stats.staged, 2u);  // the pre-run seed + the at-horizon send
  EXPECT_GE(stats.direct, 1u);
  EXPECT_EQ(e.dispatched_events(), 3u);
}

TEST(ShardedEngine, ZeroLatencySelfAndCrossSendsDispatchInSeqOrder) {
  Engine e = make_engine(kDefaultQueueKind, 4, /*force_sharded=*/true);
  std::vector<int> order;
  e.schedule_at_lp(3, 50, [&] {
    order.push_back(0);
    e.schedule_in_lp(3, 0, [&] { order.push_back(1); });   // self, same time
    e.schedule_in_lp(7, 0, [&] { order.push_back(2); });   // cross, same time
    e.schedule_in_lp(11, 0, [&] {
      order.push_back(3);
      e.schedule_in_lp(3, 0, [&] { order.push_back(4); });  // nested
    });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(e.now(), 50);
}

// run_until must honor window boundaries: peeking the next event time may
// advance windows but must not dispatch past the deadline, and idle time
// advances now() just like the serial engine.
TEST(ShardedEngine, RunUntilBoundariesMatchSerial) {
  const auto scenario = [](Engine& e) {
    DispatchLog log;
    const auto mark = [&log, &e](int id) { log.emplace_back(e.now(), id, 0); };
    for (int i = 0; i < 4; ++i) {
      e.schedule_at_lp(i % kLpCount, 100, [&mark, i] { mark(i); });
    }
    e.schedule_at_lp(5, 101, [&mark] { mark(10); });
    e.schedule_at_lp(6, 500'000, [&mark] { mark(11); });  // overflow band
    e.run_until(99);  // peeks but dispatches nothing
    log.emplace_back(e.now(), -1, 0);
    log.emplace_back(static_cast<MicroSec>(e.pending_events()), -2, 0);
    e.run_until(100);  // the burst fires; 101 stays queued
    log.emplace_back(e.now(), -3, 0);
    e.schedule_at_lp(2, 100, [&mark] { mark(12); });  // == now()
    e.run_until(101);
    log.emplace_back(e.now(), -4, 0);
    e.schedule_at_lp(9, 200'000, [&mark] { mark(13); });
    e.run();
    log.emplace_back(e.now(), -5, 0);
    log.emplace_back(static_cast<MicroSec>(e.pending_events()), -6, 0);
    e.run_until(600'000);  // idle advance past the last event
    log.emplace_back(e.now(), -7, 0);
    return log;
  };
  Engine serial = make_engine(kDefaultQueueKind, 1, /*force_sharded=*/false);
  const DispatchLog expected = scenario(serial);
  for (const int threads : {1, 2, 8}) {
    Engine sharded = make_engine(kDefaultQueueKind, threads, true);
    EXPECT_EQ(scenario(sharded), expected) << threads << " shards";
  }
}

TEST(ShardedEngine, SchedulingInThePastThrowsAndKeepsStateIntact) {
  Engine e = make_engine(kDefaultQueueKind, 2, /*force_sharded=*/true);
  e.schedule_at_lp(0, 100, [] {});
  e.run();
  ASSERT_EQ(e.now(), 100);
  EXPECT_THROW(e.schedule_at_lp(1, 99, [] {}), util::CheckFailure);
  EXPECT_EQ(e.pending_events(), 0u);
  // The engine stays usable: at == now() is allowed, including re-entry
  // after the failed schedule.
  bool ran = false;
  e.schedule_at_lp(1, 100, [&] { ran = true; });
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_TRUE(ran);
}

// The acceptance bar for the tentpole: a full study's trace digest is
// bit-identical between the serial engine and the sharded engine at every
// tested shard count (1 via force_sharded, then 2/4/8).
TEST(ShardedEngineStudy, DigestsMatchSerialAcrossShardCounts) {
  core::StudyConfig config;
  config.workload.scale = 0.05;
  config.workload.seed = 42;
  const auto serial = core::run_study(config);
  ASSERT_GT(serial.raw.record_count(), 0u);

  for (const int threads : {1, 2, 4, 8}) {
    core::StudyConfig sharded = config;
    sharded.engine_threads = threads;
    sharded.force_sharded_engine = true;
    const auto out = core::run_study(sharded);
    EXPECT_EQ(out.raw.digest(), serial.raw.digest())
        << "digest diverged at " << threads << " engine threads";
    EXPECT_EQ(out.events_dispatched, serial.events_dispatched);
    EXPECT_EQ(out.records, serial.records);
    EXPECT_EQ(out.sim_end, serial.sim_end);
  }
}

}  // namespace
}  // namespace charisma::sim
