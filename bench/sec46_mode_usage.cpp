// §4.6: CFS I/O-mode usage — over 99% of files used mode 0.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_mode_usage(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  Comparison cmp("S4.6: synchronization / I/O modes");
  cmp.percent_row("files opened in mode 0 (independent pointers)",
                  analysis::paper::kMode0Fraction, result.mode0_fraction);
  cmp.row("why", "1-2 request/interval sizes, but often more than one",
          "shared pointers used by " +
              std::to_string(result.sessions_by_mode[1] +
                             result.sessions_by_mode[2] +
                             result.sessions_by_mode[3]) +
              " files");
  cmp.print();
}

void BM_ModeUsageAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_mode_usage(store));
  }
}
BENCHMARK(BM_ModeUsageAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("S4.6 (I/O mode usage)", charisma::bench::reproduce)
