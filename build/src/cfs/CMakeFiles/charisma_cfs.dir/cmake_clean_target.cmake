file(REMOVE_RECURSE
  "libcharisma_cfs.a"
)
