#include "analysis/figures.hpp"

#include <map>

#include "analysis/analyzers.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace charisma::analysis {

const FigureCurve* FigureSet::find(std::string_view name) const noexcept {
  for (const auto& c : curves) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void FigureSet::add(std::string name, std::vector<double> xs,
                    std::vector<double> ys) {
  CHECK(xs.size() == ys.size(), "figure ", name, ": ", xs.size(), " xs vs ",
        ys.size(), " ys");
  curves.push_back({std::move(name), std::move(xs), std::move(ys)});
}

std::vector<double> fraction_grid() {
  std::vector<double> xs;
  xs.reserve(21);
  for (int i = 0; i <= 20; ++i) xs.push_back(static_cast<double>(i) / 20.0);
  return xs;
}

std::vector<double> request_size_grid() {
  // log_spaced stops at the last exponent <= hi; append the endpoint so the
  // grid covers the full 32 MB axis of the paper's Figure 4.
  std::vector<double> xs = util::log_spaced(64, 3.3e7, 6);
  if (xs.empty() || xs.back() < 3.3e7) xs.push_back(3.3e7);
  return xs;
}

std::vector<double> fig9_buffer_grid() {
  return {250, 500, 1000, 2000, 4000, 8000, 16000};
}

namespace {

/// Samples `cdf` at every grid position.  An empty CDF yields all-zero ys
/// (Cdf::at returns 0), keeping "no observations" distinct from NaN.
std::vector<double> sample(const util::Cdf& cdf,
                           const std::vector<double>& xs) {
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(cdf.at(x));
  return ys;
}

/// Bucket counts -> fraction of `total` per bucket (0s when total is 0).
template <std::size_t N>
std::vector<double> bucket_fractions(const std::array<std::int64_t, N>& counts,
                                     std::int64_t total) {
  std::vector<double> ys;
  ys.reserve(N);
  for (const std::int64_t c : counts) {
    ys.push_back(total > 0
                     ? static_cast<double>(c) / static_cast<double>(total)
                     : 0.0);
  }
  return ys;
}

std::vector<double> index_grid(std::size_t n, double first) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(first + static_cast<double>(i));
  }
  return xs;
}

}  // namespace

FigureSet collect_trace_figures(const SessionStore& store,
                                const trace::SortedTrace& trace,
                                std::int64_t block_size) {
  return collect_trace_figures(store, analyze_request_sizes(trace),
                               block_size);
}

FigureSet collect_trace_figures(const SessionStore& store,
                                const RequestSizeResult& request_sizes,
                                std::int64_t block_size) {
  FigureSet set;
  const auto sizes = request_size_grid();
  const auto fracs = fraction_grid();

  {  // Figure 4: request sizes, by request count and weighted by bytes.
    const auto& r = request_sizes;
    set.add("fig4_reads", sizes, sample(r.reads_by_count, sizes));
    set.add("fig4_read_bytes", sizes, sample(r.reads_by_bytes, sizes));
    set.add("fig4_writes", sizes, sample(r.writes_by_count, sizes));
    set.add("fig4_write_bytes", sizes, sample(r.writes_by_bytes, sizes));
  }
  {  // Figures 5/6: per-class sequential / consecutive fractions.
    const auto r = analyze_sequentiality(store);
    set.add("fig5_read_only", fracs, sample(r.read_only.sequential_cdf, fracs));
    set.add("fig5_write_only", fracs,
            sample(r.write_only.sequential_cdf, fracs));
    set.add("fig5_read_write", fracs,
            sample(r.read_write.sequential_cdf, fracs));
    set.add("fig6_read_only", fracs,
            sample(r.read_only.consecutive_cdf, fracs));
    set.add("fig6_write_only", fracs,
            sample(r.write_only.consecutive_cdf, fracs));
  }
  {  // Figure 7: sharing among concurrently open files.
    const auto r = analyze_sharing(store, block_size);
    set.add("fig7_read_bytes", fracs,
            sample(r.read_only.byte_shared_cdf, fracs));
    set.add("fig7_read_blocks", fracs,
            sample(r.read_only.block_shared_cdf, fracs));
    set.add("fig7_write_bytes", fracs,
            sample(r.write_only.byte_shared_cdf, fracs));
  }
  {  // Tables 1-3: bucket fractions on index grids.
    const auto t1 = analyze_files_per_job(store);
    set.add("table1_files_per_job", index_grid(t1.buckets.size(), 1),
            bucket_fractions(t1.buckets, t1.traced_jobs_with_files));
    const auto t2 = analyze_intervals(store);
    set.add("table2_interval_sizes", index_grid(t2.buckets.size(), 0),
            bucket_fractions(t2.buckets, t2.total_files));
    const auto t3 = analyze_request_regularity(store);
    set.add("table3_request_sizes", index_grid(t3.buckets.size(), 0),
            bucket_fractions(t3.buckets, t3.total_files));
  }
  return set;
}

std::vector<FigureEnvelope> fold_envelopes(
    const std::vector<const FigureSet*>& sets) {
  // name -> position in `out`; the map is only a lookup index, iteration
  // (and therefore output order) follows first appearance in input order.
  std::vector<FigureEnvelope> out;
  std::map<std::string, std::size_t, std::less<>> index;
  std::vector<std::vector<util::Summary>> columns;  // parallel to `out`

  for (const FigureSet* set : sets) {
    if (set == nullptr) continue;
    for (const auto& curve : set->curves) {
      auto it = index.find(curve.name);
      if (it == index.end()) {
        it = index.emplace(curve.name, out.size()).first;
        FigureEnvelope env;
        env.name = curve.name;
        env.xs = curve.xs;
        out.push_back(std::move(env));
        columns.emplace_back(curve.xs.size());
      }
      FigureEnvelope& env = out[it->second];
      CHECK(curve.xs == env.xs, "figure ", curve.name,
            ": replications disagree on the sample grid");
      auto& cols = columns[it->second];
      for (std::size_t i = 0; i < curve.ys.size(); ++i) {
        cols[i].add(curve.ys[i]);
      }
      ++env.replications;
    }
  }

  for (std::size_t f = 0; f < out.size(); ++f) {
    FigureEnvelope& env = out[f];
    env.mean.reserve(env.xs.size());
    env.min.reserve(env.xs.size());
    env.max.reserve(env.xs.size());
    env.ci95_half.reserve(env.xs.size());
    for (const util::Summary& s : columns[f]) {
      env.mean.push_back(s.mean());
      env.min.push_back(s.min());
      env.max.push_back(s.max());
      env.ci95_half.push_back(util::ci95_half_width(s));
    }
  }
  return out;
}

}  // namespace charisma::analysis
