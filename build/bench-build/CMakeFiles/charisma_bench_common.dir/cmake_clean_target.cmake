file(REMOVE_RECURSE
  "libcharisma_bench_common.a"
)
