# Empty dependencies file for fig9_ionode_cache.
# This may be replaced when dependencies are built.
