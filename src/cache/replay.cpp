#include "cache/replay.hpp"

#include "trace/record.hpp"

namespace charisma::cache {

ReplayOpSink::ReplayOpSink(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open replay spill: " + path_);
  }
  buf_.reserve(ReplayLog::kChunkOps);
}

void ReplayOpSink::on_record(const trace::Record& r) {
  const bool is_read = r.kind == trace::EventKind::kRead;
  if ((!is_read && r.kind != trace::EventKind::kWrite) || r.bytes <= 0) {
    return;
  }
  // read_only_session stays false on disk: sessions are still accumulating
  // while this sink runs, so ReplayLog resolves the flag at read time.
  buf_.push_back(
      {r.file, r.job, r.node, r.offset, r.bytes, is_read, false});
  ++count_;
  if (buf_.size() >= ReplayLog::kChunkOps) flush_buffer();
}

void ReplayOpSink::flush_buffer() {
  if (buf_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size() *
                                          sizeof(detail::ReplayOp)));
  if (!out_) throw std::runtime_error("replay spill write failed: " + path_);
  buf_.clear();
}

ReplayOpSpill ReplayOpSink::finish() {
  CHECK(!finished_, "ReplayOpSink::finish called twice");
  finished_ = true;
  flush_buffer();
  out_.flush();
  if (!out_) throw std::runtime_error("replay spill write failed: " + path_);
  out_.close();
  return ReplayOpSpill(path_, count_);
}

}  // namespace charisma::cache
