// Figure 6: CDF of consecutive access to files on a per-node basis.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_sequentiality(Context::instance().store());

  const auto series = [](const util::Cdf& cdf) {
    return cdf.render_series({0.0, 0.2, 0.4, 0.6, 0.8, 0.999, 1.0});
  };
  std::printf("read-only %% consecutive CDF:\n%s\n",
              series(result.read_only.consecutive_cdf).c_str());
  std::printf("write-only %% consecutive CDF:\n%s\n",
              series(result.write_only.consecutive_cdf).c_str());
  std::printf("read-write %% consecutive CDF:\n%s\n",
              series(result.read_write.consecutive_cdf).c_str());

  Comparison cmp("Figure 6: consecutive access");
  cmp.percent_row("write-only files 100% consecutive",
                  analysis::paper::kWriteOnlyFullyConsecutive,
                  result.write_only.fully_consecutive);
  cmp.percent_row("read-only files 100% consecutive",
                  analysis::paper::kReadOnlyFullyConsecutive,
                  result.read_only.fully_consecutive);
  cmp.row("non-consecutive sequential read-only files",
          "interleaved access (bytes skipped between requests)",
          util::fmt((result.read_only.fully_sequential -
                     result.read_only.fully_consecutive) *
                    100.0) +
              "% sequential-but-not-consecutive");
  cmp.print();
}

void BM_ConsecutiveAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_sequentiality(store));
  }
}
BENCHMARK(BM_ConsecutiveAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 6 (consecutive access)",
                    charisma::bench::reproduce)
