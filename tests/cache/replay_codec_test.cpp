// The compact replay-op codec (varint/delta chunks) and the tiered
// ReplayOpSink behind it: decoded ops must be field-identical to the raw
// structs, and a spill-backed ReplayLog must replay the exact stream a
// materialized prepare_replay-style filter produces, whatever the budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/replay.hpp"
#include "trace/record.hpp"
#include "trace/spill.hpp"

namespace charisma::cache {
namespace {

using detail::ReplayOp;

/// Field-wise equality: padding bytes make memcmp on the struct unreliable.
[[nodiscard]] bool same_op(const ReplayOp& a, const ReplayOp& b) {
  return a.file == b.file && a.job == b.job && a.node == b.node &&
         a.offset == b.offset && a.bytes == b.bytes &&
         a.is_read == b.is_read &&
         a.read_only_session == b.read_only_session;
}

[[nodiscard]] std::vector<ReplayOp> roundtrip(const std::vector<ReplayOp>& ops) {
  std::vector<std::uint8_t> bytes;
  detail::encode_ops(ops.data(), ops.size(), bytes);
  std::vector<ReplayOp> out(ops.size());
  const std::size_t used =
      detail::decode_ops(bytes.data(), bytes.size(), ops.size(), out.data());
  EXPECT_EQ(used, bytes.size());
  return out;
}

void expect_roundtrip(const std::vector<ReplayOp>& ops) {
  const std::vector<ReplayOp> back = roundtrip(ops);
  ASSERT_EQ(back.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    // read_only_session is deliberately not encoded; decoded ops carry false.
    ReplayOp want = ops[i];
    want.read_only_session = false;
    EXPECT_TRUE(same_op(back[i], want)) << "op " << i;
  }
}

TEST(ReplayCodec, SequentialSameSessionRunEncodesOneByteOps) {
  std::vector<ReplayOp> ops;
  std::int64_t off = 0;
  for (int i = 0; i < 64; ++i) {
    ops.push_back({7, 3, 5, off, 4096, true, false});
    off += 4096;
  }
  std::vector<std::uint8_t> bytes;
  detail::encode_ops(ops.data(), ops.size(), bytes);
  // First op pays for the session/node/bytes varints; every later op is
  // same-session, sequential, same-bytes, same-node: exactly one tag byte.
  EXPECT_LT(bytes.size(), ops.size() + 16);
  expect_roundtrip(ops);
}

TEST(ReplayCodec, MixedPatternsRoundTrip) {
  std::vector<ReplayOp> ops;
  // Session switches, interleaved nodes, rewrites (negative offset deltas),
  // byte-size churn, reads and writes.
  ops.push_back({1, 1, 0, 0, 100, true, false});
  ops.push_back({1, 1, 0, 100, 100, true, false});   // sequential
  ops.push_back({1, 1, 0, 0, 100, false, false});    // seek back (negative)
  ops.push_back({2, 1, 3, 500, 9, false, false});    // new file, new node
  ops.push_back({2, 1, 3, 509, 17, true, false});    // bytes change
  ops.push_back({1, 2, 3, 0, 17, true, false});      // new job, same file id
  ops.push_back({cfs::kNoFile, cfs::kNoJob, 0, 0, 1, false, false});
  expect_roundtrip(ops);
}

TEST(ReplayCodec, ExtremeValuesRoundTrip) {
  const std::int64_t big = std::int64_t{1} << 60;
  std::vector<ReplayOp> ops;
  ops.push_back({1 << 30, 1 << 20, 1000, big, big / 2, true, false});
  ops.push_back({1 << 30, 1 << 20, 1000, -big, 1, false, false});
  ops.push_back({0, 0, 0, 0, big, true, false});
  expect_roundtrip(ops);
}

TEST(ReplayCodec, DecodeRejectsTruncatedInput) {
  std::vector<ReplayOp> ops{{7, 3, 5, 1234, 56, true, false}};
  std::vector<std::uint8_t> bytes;
  detail::encode_ops(ops.data(), ops.size(), bytes);
  ASSERT_GT(bytes.size(), 1u);
  ReplayOp out;
  EXPECT_THROW(
      (void)detail::decode_ops(bytes.data(), bytes.size() - 1, 1, &out),
      std::runtime_error);
}

// ---- The sink + spill + log pipeline against a reference filter. ----

/// A synthetic postprocessed record stream exercising the filter (non-data
/// kinds, zero-byte requests) and the codec (sessions, strides, rewrites).
[[nodiscard]] std::vector<trace::Record> synthetic_stream(int n) {
  std::vector<trace::Record> records;
  for (int i = 0; i < n; ++i) {
    trace::Record r;
    r.job = 1 + (i / 97) % 5;
    r.file = 10 + (i / 31) % 7;
    r.node = i % 13;
    r.offset = (i % 5 == 0) ? 0 : static_cast<std::int64_t>(i) * 512;
    r.bytes = (i % 11 == 0) ? 0 : 512 + (i % 3) * 1024;  // some filtered out
    r.kind = (i % 7 == 0)   ? trace::EventKind::kOpen
             : (i % 2 == 0) ? trace::EventKind::kRead
                            : trace::EventKind::kWrite;
    r.timestamp = i;
    records.push_back(r);
  }
  return records;
}

/// The materialized-reference filter: what prepare_replay keeps.
[[nodiscard]] std::vector<ReplayOp> reference_ops(
    const std::vector<trace::Record>& records,
    const std::set<SessionKey>& read_only) {
  std::vector<ReplayOp> ops;
  for (const auto& r : records) {
    if (!r.is_data() || r.bytes <= 0) continue;
    ReplayOp op{r.file,  r.job,
                r.node,  r.offset,
                r.bytes, r.kind == trace::EventKind::kRead,
                false};
    op.read_only_session =
        read_only.find({op.job, op.file}) != read_only.end();
    ops.push_back(op);
  }
  return ops;
}

void expect_log_matches_reference(std::int64_t budget_bytes, int n) {
  const std::vector<trace::Record> records = synthetic_stream(n);
  const std::set<SessionKey> read_only{{1, 10}, {2, 12}, {4, 16}};
  const std::vector<ReplayOp> want = reference_ops(records, read_only);

  trace::SpillBudget budget(budget_bytes);
  ReplayOpSinkOptions opts;
  opts.budget = &budget;
  ReplayOpSink sink(opts);
  for (const auto& r : records) sink.on_record(r);
  ReplayOpSpill spill = sink.finish();
  EXPECT_EQ(spill.count(), want.size());

  const ReplayLog log(std::move(spill), read_only);
  std::vector<ReplayOp> got;
  std::size_t max_chunk = 0;
  log.for_each_chunk([&](const ReplayOp* ops, std::size_t count) {
    max_chunk = std::max(max_chunk, count);
    got.insert(got.end(), ops, ops + count);
  });
  EXPECT_LE(max_chunk, ReplayLog::kChunkOps);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(same_op(got[i], want[i])) << "op " << i;
  }
}

TEST(ReplayOpSinkTiers, AllMemoryBudgetMatchesReference) {
  expect_log_matches_reference(std::int64_t{64} << 20, 5000);
}

TEST(ReplayOpSinkTiers, ZeroBudgetAllDiskMatchesReference) {
  expect_log_matches_reference(0, 5000);
}

TEST(ReplayOpSinkTiers, MixedBudgetMatchesReference) {
  // Roughly one encoded chunk's worth of budget, so the stream splits
  // mid-way and the predictor reset at the memory/disk seam is exercised.
  expect_log_matches_reference(50000, 20000);
}

TEST(ReplayOpSinkTiers, MultiChunkStreamCrossesChunkBoundaries) {
  // > 2 x kChunkOps surviving ops forces several chunks in each tier.
  expect_log_matches_reference(4000, 3 * 4096 * 2);
}

TEST(ReplayOpSinkTiers, MixedBudgetActuallySplitsTiers) {
  const std::vector<trace::Record> records = synthetic_stream(20000);
  trace::SpillBudget budget(50000);
  ReplayOpSinkOptions opts;
  opts.budget = &budget;
  ReplayOpSink sink(opts);
  for (const auto& r : records) sink.on_record(r);
  const ReplayOpSpill spill = sink.finish();
  EXPECT_GT(spill.mem_chunks().size(), 0u);
  EXPECT_GT(spill.disk_chunks(), 0u);
  EXPECT_GT(spill.disk_bytes(), 0);
  EXPECT_FALSE(spill.path().empty());
}

TEST(ReplayOpSinkTiers, EmptyStreamYieldsEmptySpill) {
  ReplayOpSink sink;
  ReplayOpSpill spill = sink.finish();
  EXPECT_EQ(spill.count(), 0u);
  const std::set<SessionKey> read_only;
  const ReplayLog log(std::move(spill), read_only);
  std::size_t calls = 0;
  log.for_each_chunk(
      [&calls](const ReplayOp*, std::size_t n) { calls += n; });
  EXPECT_EQ(calls, 0u);
}

}  // namespace
}  // namespace charisma::cache
