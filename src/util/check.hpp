// Invariant checking.
//
// Simulator invariants are checked in all build types: a silently corrupt
// trace would invalidate every downstream experiment, and the checks are
// nowhere near the hot paths' cost.
//
// Two layers:
//   * check(cond, msg)           — the original function form, still valid.
//   * CHECK(cond, parts...)      — macro form; extra arguments are streamed
//     into the failure message, so call sites can report the offending
//     values: CHECK(at >= now, "schedule_at(", at, ") behind now=", now).
//   * DCHECK(cond, parts...)     — same, but compiled out under NDEBUG;
//     for audits too hot or too paranoid to carry in release runs.
//
// Failures throw CheckFailure (never abort): tests assert on them, and the
// bench drivers surface them as a failed experiment instead of a core dump.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace charisma::util {

/// Thrown when a simulator invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Streams every part into one string ("" for zero parts).
template <typename... Parts>
[[nodiscard]] std::string check_message(const Parts&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return {};
  } else {
    std::ostringstream out;
    (out << ... << parts);
    return std::move(out).str();
  }
}

[[noreturn]] inline void check_fail(std::string_view kind,
                                    std::string_view expression,
                                    const std::string& message,
                                    std::source_location loc) {
  std::string what = std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": " + std::string(kind) +
                     "(" + std::string(expression) + ") failed";
  if (!message.empty()) {
    what += ": ";
    what += message;
  }
  throw CheckFailure(what);
}

}  // namespace detail

/// Throws CheckFailure with file:line context when `condition` is false.
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckFailure(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": " +
                       std::string(message));
  }
}

}  // namespace charisma::util

/// Always-on invariant audit.  Extra arguments are streamed into the message.
#define CHARISMA_CHECK(condition, ...)                                  \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::charisma::util::detail::check_fail(                             \
          "CHECK", #condition,                                          \
          ::charisma::util::detail::check_message(__VA_ARGS__),         \
          ::std::source_location::current());                           \
    }                                                                   \
  } while (false)

#if defined(NDEBUG) && !defined(CHARISMA_FORCE_DCHECKS)
#define CHARISMA_DCHECK_IS_ON 0
/// Debug-only audit: compiled out (arguments unevaluated) in release builds.
#define CHARISMA_DCHECK(condition, ...) \
  do {                                  \
  } while (false)
#else
#define CHARISMA_DCHECK_IS_ON 1
#define CHARISMA_DCHECK(condition, ...) CHARISMA_CHECK(condition, __VA_ARGS__)
#endif

// Short spellings, yielded if some other library claimed them first.
#ifndef CHECK
#define CHECK CHARISMA_CHECK
#endif
#ifndef DCHECK
#define DCHECK CHARISMA_DCHECK
#endif
