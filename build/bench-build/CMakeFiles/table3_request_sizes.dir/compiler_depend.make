# Empty compiler generated dependencies file for table3_request_sizes.
# This may be replaced when dependencies are built.
