// Discrete-event simulation engine.
//
// The machine model (compute nodes, network, disks, the trace collector) is
// written as callbacks scheduled on this engine.  Determinism rules:
//   * time is integer microseconds (util::MicroSec);
//   * ties are broken by schedule order (a monotone sequence number), so a
//    (seed, config) pair always produces the identical event interleaving.
//
// Two interchangeable event queues implement that contract:
//   * kBucketed (default): a two-level calendar queue — near-future events
//     hash into fixed-width time buckets (each bucket a small sorted run),
//     far-future events wait in a sorted overflow band and migrate into the
//     bucket window when it advances.  O(1) amortized per event instead of
//     the binary heap's O(log n) on large pending sets.
//   * kReferenceHeap: the original std::priority_queue, kept for
//     differential testing (tests/sim/engine_differential_test.cpp) and
//     selectable as the build default with -DCHARISMA_REFERENCE_QUEUE=ON.
// Both dispatch in exactly the same (at, seq) order; the digest-identity
// tests enforce it.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_callback.hpp"
#include "util/units.hpp"

namespace charisma::sim {

using util::MicroSec;

enum class QueueKind : std::uint8_t { kBucketed, kReferenceHeap };

#if defined(CHARISMA_REFERENCE_QUEUE)
inline constexpr QueueKind kDefaultQueueKind = QueueKind::kReferenceHeap;
#else
inline constexpr QueueKind kDefaultQueueKind = QueueKind::kBucketed;
#endif

class Engine {
 public:
  using Callback = InlineCallback;

  explicit Engine(QueueKind queue = kDefaultQueueKind);

  /// Current simulated time.
  [[nodiscard]] MicroSec now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t dispatched_events() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] QueueKind queue_kind() const noexcept { return kind_; }

  /// Schedules `fn` at absolute time `at` (>= now).
  void schedule_at(MicroSec at, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now.
  void schedule_in(MicroSec delay, Callback fn);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= `deadline`; afterwards now() == max(deadline,
  /// now()).  Events scheduled beyond the deadline remain queued.
  void run_until(MicroSec deadline);
  /// Dispatches the single earliest event; returns false if none remain.
  bool step();

 private:
  struct Event {
    MicroSec at = 0;
    std::uint64_t seq = 0;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// The two-level calendar queue.  Level 1: kBucketCount buckets of
  /// kBucketWidth microseconds each, covering [window_start_, window_start_
  /// + kSpan); each bucket keeps its pending events sorted by (at, seq)
  /// from `head` onward.  Level 2: a binary-heap overflow band for events
  /// at or beyond the window, migrated bucket-ward when the window empties.
  class BucketQueue {
   public:
    static constexpr int kBucketShift = 7;  // 128 us per bucket
    static constexpr MicroSec kBucketWidth = MicroSec{1} << kBucketShift;
    // Span = 2.1 s of simulated time.  The window must comfortably cover
    // the workload's compute think times (hundreds of ms to ~1 s): every
    // event scheduled past the window takes a round trip through the
    // overflow binary heap, which costs more than the whole bucketed path.
    // 16384 bucket headers are 512 KiB — noise next to a study's trace.
    static constexpr std::size_t kBucketCount = 16384;
    static constexpr MicroSec kSpan =
        kBucketWidth * static_cast<MicroSec>(kBucketCount);

    BucketQueue()
        : buckets_(kBucketCount), occupied_(kBucketCount / 64, 0) {}

    void push(Event&& ev);
    /// Earliest pending time; false when empty.  May advance the bucket
    /// cursor but never reorders or migrates events.
    [[nodiscard]] bool next_time(MicroSec* at);
    /// The (at, seq)-least event, left in place; queue must be non-empty.
    /// The pointer is invalidated by any push — callers move the callback
    /// out and call drop_front() before dispatching it.
    [[nodiscard]] Event* front();
    /// Removes the event front() returned; queue must be non-empty.
    void drop_front();
    [[nodiscard]] std::size_t size() const noexcept {
      return in_window_ + overflow_.size();
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

   private:
    struct Bucket {
      std::vector<Event> events;  // sorted by (at, seq) from `head` on
      std::size_t head = 0;
    };

    void insert_in_window(Event&& ev);
    /// Rebases the window onto the earliest overflow event and moves every
    /// overflow event inside the new window into its bucket.
    void migrate_overflow();

    /// Index of the first live bucket at or after `from`; in_window_ must
    /// be non-zero.  One countr_zero step per 64 buckets, so sparse windows
    /// (an event, then hundreds of empty buckets of think time) cost a few
    /// word loads instead of a per-bucket walk.
    [[nodiscard]] std::size_t next_live_bucket(std::size_t from) const;

    std::vector<Bucket> buckets_;
    /// Bit b set iff buckets_[b] has pending events (head < events.size()).
    std::vector<std::uint64_t> occupied_;
    std::vector<Event> overflow_;  // min-heap under Later
    MicroSec window_start_ = 0;    // multiple of kBucketWidth
    std::size_t cursor_ = 0;       // no non-empty bucket before this index
    std::size_t in_window_ = 0;
  };

  using ReferenceQueue =
      std::priority_queue<Event, std::vector<Event>, Later>;

  QueueKind kind_;
  BucketQueue bucketed_;
  ReferenceQueue heap_;
  MicroSec now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace charisma::sim
