#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace charisma::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == '%' || c == 'e' || c == 'x' ||
          c == ',')) {
      return false;
    }
  }
  return true;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
  return *this;
}

Table& Table::add_rule() {
  pending_rule_ = true;
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&widths] {
    std::string s;
    for (std::size_t w : widths) {
      s += '+';
      s.append(w + 2, '-');
    }
    s += "+\n";
    return s;
  }();

  const auto emit_row = [&](std::ostringstream& out,
                            const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = looks_numeric(cells[c]);
      const std::size_t pad = widths[c] - cells[c].size();
      out << "| ";
      if (right) out << std::string(pad, ' ');
      out << cells[c];
      if (!right) out << std::string(pad, ' ');
      out << ' ';
    }
    out << "|\n";
  };

  std::ostringstream out;
  out << rule;
  emit_row(out, header_);
  out << rule;
  for (const auto& row : rows_) {
    if (row.rule_before) out << rule;
    emit_row(out, row.cells);
  }
  out << rule;
  return out.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

}  // namespace charisma::util
