#include "sim/clock.hpp"

#include <cmath>

namespace charisma::sim {

MicroSec DriftingClock::local_time(MicroSec t) const noexcept {
  const double elapsed = static_cast<double>(t - sync_time_);
  const double skewed = elapsed * (1.0 + drift_ppm_ * 1e-6);
  return sync_time_ + offset_ + static_cast<MicroSec>(std::llround(skewed));
}

MicroSec DriftingClock::true_time(MicroSec local) const noexcept {
  const double skewed = static_cast<double>(local - sync_time_ - offset_);
  const double elapsed = skewed / (1.0 + drift_ppm_ * 1e-6);
  return sync_time_ + static_cast<MicroSec>(std::llround(elapsed));
}

DriftingClock DriftingClock::random(util::Rng& rng, MicroSec sync_time,
                                    double max_drift_ppm,
                                    MicroSec max_offset) {
  const double drift = (rng.uniform01() * 2.0 - 1.0) * max_drift_ppm;
  const MicroSec offset =
      max_offset > 0 ? rng.uniform_range(-max_offset, max_offset) : 0;
  return DriftingClock(sync_time, offset, drift);
}

}  // namespace charisma::sim
