#include "trace/postprocess.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numeric>

#include "util/check.hpp"

namespace charisma::trace {

MicroSec ClockFit::apply(MicroSec local) const noexcept {
  return static_cast<MicroSec>(
      std::llround(scale * static_cast<double>(local) + offset));
}

namespace {

struct FitAcc {
  double sum_l = 0, sum_g = 0, sum_ll = 0, sum_lg = 0;
  std::size_t n = 0;
};

// Shared by both fit_clocks overloads: TraceBlock and SpillBlock expose the
// same stamp fields, which are all the least-squares fit consumes.
template <typename Blocks>
std::unordered_map<NodeId, ClockFit> fit_clocks_from(const Blocks& blocks) {
  // Ordered map: the fitting loop below iterates, and iteration order must
  // not depend on hash layout (charisma-unordered-iter).
  std::map<NodeId, FitAcc> accs;
  for (const auto& b : blocks) {
    auto& a = accs[b.node];
    const auto l = static_cast<double>(b.sent_local);
    const auto g = static_cast<double>(b.recv_global);
    a.sum_l += l;
    a.sum_g += g;
    a.sum_ll += l * l;
    a.sum_lg += l * g;
    ++a.n;
  }
  std::unordered_map<NodeId, ClockFit> fits;
  for (const auto& [node, a] : accs) {
    ClockFit fit;
    fit.samples = a.n;
    const auto n = static_cast<double>(a.n);
    const double denom = n * a.sum_ll - a.sum_l * a.sum_l;
    if (a.n >= 2 && std::abs(denom) > 1e-6) {
      fit.scale = (n * a.sum_lg - a.sum_l * a.sum_g) / denom;
      // Clock rates are within a few hundred ppm of unity; a wilder fit
      // means the samples were degenerate (e.g. all at one instant).
      if (fit.scale < 0.99 || fit.scale > 1.01) fit.scale = 1.0;
      fit.offset = (a.sum_g - fit.scale * a.sum_l) / n;
    } else if (a.n >= 1) {
      fit.scale = 1.0;
      fit.offset = (a.sum_g - a.sum_l) / n;
    }
    fits.emplace(node, fit);
  }
  return fits;
}

}  // namespace

std::unordered_map<NodeId, ClockFit> fit_clocks(const TraceFile& trace) {
  return fit_clocks_from(trace.blocks);
}

std::unordered_map<NodeId, ClockFit> fit_clocks(const SpilledTrace& trace) {
  return fit_clocks_from(trace.blocks);
}

SortedTrace postprocess(const TraceFile& trace) {
  const auto fits = fit_clocks(trace);
  SortedTrace out;
  out.header = trace.header;
  out.records.reserve(trace.record_count());

  // The global sort is a stable k-way merge of one run per node, not a
  // stable_sort over the whole array: the collector enforces monotone
  // per-node record times, blocks land in trace.blocks in flush order, and
  // ClockFit::apply is a monotone map, so each node's records — read across
  // its blocks in order — are already sorted by (corrected time, position
  // in the concatenated block stream).  Merging with that exact key yields
  // the same output a stable_sort by corrected time would, in one pass
  // instead of log(n) merge passes over every record.
  struct Cursor {
    // (block, concatenated offset of its first record), in flush order.
    std::vector<std::pair<const TraceBlock*, std::size_t>> blocks;
    std::size_t bi = 0;  // current block
    std::size_t ri = 0;  // next record within it
    const ClockFit* fit = nullptr;
  };
  // Ordered map: heap seeding below iterates (charisma-unordered-iter).
  std::map<NodeId, Cursor> cursors;
  std::size_t offset = 0;
  for (const auto& b : trace.blocks) {
    if (!b.records.empty()) cursors[b.node].blocks.emplace_back(&b, offset);
    offset += b.records.size();
  }

  struct Head {
    MicroSec ts = 0;       // corrected timestamp of the cursor's record
    std::size_t idx = 0;   // its concatenated position (stability key)
    Cursor* cur = nullptr;
  };
  const auto later = [](const Head& a, const Head& b) noexcept {
    return a.ts != b.ts ? a.ts > b.ts : a.idx > b.idx;
  };
  const auto head_of = [](Cursor& c) noexcept {
    const auto& [block, start] = c.blocks[c.bi];
    const Record& r = block->records[c.ri];
    const MicroSec ts =
        c.fit != nullptr ? c.fit->apply(r.timestamp) : r.timestamp;
    return Head{ts, start + c.ri, &c};
  };

  std::vector<Head> heap;
  heap.reserve(cursors.size());
  for (auto& [node, c] : cursors) {
    const auto it = fits.find(node);
    c.fit = it == fits.end() ? nullptr : &it->second;
    heap.push_back(head_of(c));
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Head h = heap.back();
    heap.pop_back();
    Cursor& c = *h.cur;
    const TraceBlock* block = c.blocks[c.bi].first;
    Record r = block->records[c.ri];
    r.timestamp = h.ts;
    out.records.push_back(r);
    if (++c.ri == block->records.size()) {
      c.ri = 0;
      ++c.bi;
    }
    if (c.bi < c.blocks.size()) {
      const Head next = head_of(c);
      DCHECK(next.ts >= h.ts, "node ", block->node,
             " produced non-monotone corrected times: ", next.ts, " after ",
             h.ts);
      heap.push_back(next);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return out;
}

std::uint64_t stream_postprocess(const SpilledTrace& trace,
                                 const std::vector<RecordSink*>& sinks) {
  const auto fits = fit_clocks(trace);

  // Same merge as postprocess(), same key — (corrected time, position in
  // the concatenated block stream) — but each cursor holds only its current
  // block's decoded records, read back from the spill file on demand, so the
  // resident set is one block per node regardless of trace length.
  struct Cursor {
    // (block index into trace.blocks, concatenated offset of its first
    // record), in flush order.
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    std::size_t bi = 0;  // current block
    std::size_t ri = 0;  // next record within it
    const ClockFit* fit = nullptr;
    std::vector<Record> buf;  // current block's records
  };
  // Ordered map: heap seeding below iterates (charisma-unordered-iter).
  std::map<NodeId, Cursor> cursors;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
    const SpillBlock& b = trace.blocks[i];
    if (b.count > 0) cursors[b.node].blocks.emplace_back(i, offset);
    offset += b.count;
  }

  std::ifstream in = trace.open_payload();
  const auto load_current = [&](Cursor& c) {
    trace.read_block(c.blocks[c.bi].first, in, c.buf);
  };

  struct Head {
    MicroSec ts = 0;       // corrected timestamp of the cursor's record
    std::size_t idx = 0;   // its concatenated position (stability key)
    Cursor* cur = nullptr;
  };
  const auto later = [](const Head& a, const Head& b) noexcept {
    return a.ts != b.ts ? a.ts > b.ts : a.idx > b.idx;
  };
  const auto head_of = [](Cursor& c) noexcept {
    const Record& r = c.buf[c.ri];
    const MicroSec ts =
        c.fit != nullptr ? c.fit->apply(r.timestamp) : r.timestamp;
    return Head{ts, c.blocks[c.bi].second + c.ri, &c};
  };

  std::vector<Head> heap;
  heap.reserve(cursors.size());
  for (auto& [node, c] : cursors) {
    const auto it = fits.find(node);
    c.fit = it == fits.end() ? nullptr : &it->second;
    load_current(c);
    heap.push_back(head_of(c));
  }
  std::make_heap(heap.begin(), heap.end(), later);

  std::uint64_t pushed = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Head h = heap.back();
    heap.pop_back();
    Cursor& c = *h.cur;
    Record r = c.buf[c.ri];
    r.timestamp = h.ts;
    for (RecordSink* sink : sinks) sink->on_record(r);
    ++pushed;
    if (++c.ri == c.buf.size()) {
      c.ri = 0;
      ++c.bi;
      if (c.bi < c.blocks.size()) load_current(c);
    }
    if (c.bi < c.blocks.size()) {
      const Head next = head_of(c);
      DCHECK(next.ts >= h.ts,
             "a node produced non-monotone corrected times: ", next.ts,
             " after ", h.ts);
      heap.push_back(next);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return pushed;
}

std::uint64_t count_order_inversions(
    const std::vector<MicroSec>& true_times,
    const std::vector<MicroSec>& estimated_times) {
  const std::size_t n = true_times.size();
  if (n != estimated_times.size() || n < 2) return 0;
  // Order events by estimated time (stable), then count inversions of the
  // true-time sequence with a merge sort.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return estimated_times[a] < estimated_times[b];
                   });
  std::vector<MicroSec> seq(n);
  for (std::size_t i = 0; i < n; ++i) seq[i] = true_times[order[i]];

  std::uint64_t inversions = 0;
  std::vector<MicroSec> tmp(n);
  const std::function<void(std::size_t, std::size_t)> sort_count =
      [&](std::size_t lo, std::size_t hi) {
        if (hi - lo < 2) return;
        const std::size_t mid = lo + (hi - lo) / 2;
        sort_count(lo, mid);
        sort_count(mid, hi);
        std::size_t i = lo, j = mid, k = lo;
        while (i < mid && j < hi) {
          if (seq[i] <= seq[j]) {
            tmp[k++] = seq[i++];
          } else {
            inversions += mid - i;
            tmp[k++] = seq[j++];
          }
        }
        while (i < mid) tmp[k++] = seq[i++];
        while (j < hi) tmp[k++] = seq[j++];
        std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                  tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                  seq.begin() + static_cast<std::ptrdiff_t>(lo));
      };
  sort_count(0, n);
  return inversions;
}

}  // namespace charisma::trace
