// util::Mutex — std::mutex with Clang Thread Safety Analysis capability
// annotations, plus a MutexLock RAII guard the analysis tracks.
//
// libstdc++'s std::mutex has no capability annotations, so a member declared
// CHARISMA_GUARDED_BY(some_std_mutex) teaches the analysis nothing.  This
// wrapper is API-compatible where the tree needs it (BasicLockable plus
// try_lock), so std::condition_variable_any can wait on it directly.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace charisma::util {

class CHARISMA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CHARISMA_ACQUIRE() { impl_.lock(); }
  void unlock() CHARISMA_RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool try_lock() CHARISMA_TRY_ACQUIRE(true) {
    return impl_.try_lock();
  }

 private:
  std::mutex impl_;
};

/// std::lock_guard equivalent the analysis understands: holding a MutexLock
/// is holding the mutex, for the analysis and for real.
class CHARISMA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHARISMA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CHARISMA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace charisma::util
