// Darshan-style workload log replay (the "replay" workload source) and the
// matching exporter.
//
// The log is the pluggable-source counterpart of a Darshan-lite I/O trace:
// per-rank open/read/write/seek/close/unlink/think/barrier events, enough
// to re-drive the simulated CFS through the same Driver as the synthetic
// generator.  export_source_log() writes one from ANY Source, which makes
// the schema self-validating (export a synthetic workload, replay it, and
// the trace digest must match bit for bit — the round-trip test pins this)
// and gives charisma_analyze its --dump-workload debugging tool.
//
// Schema ("chwl" v1, line-oriented text; '#' lines and blank lines are
// ignored; paths contain no whitespace; all times are microseconds):
//
//   chwl 1
//   window <usec>                          tracing-window length
//   input <bytes> <path>                   pre-populated file (0+ lines)
//   job <id> <arrival> <nodes> <traced 0|1> <archetype>
//   op <rank> think <think>
//   op <rank> barrier <think>
//   op <rank> open <flags> <mode> <think> <path>
//   op <rank> read <bytes> <think> <path>
//   op <rank> write <bytes> <think> <path>
//   op <rank> seek <offset> <set|cur|end> <think> <path>
//   op <rank> close <think> <path>
//   op <rank> unlink <think> <path>
//   end chwl
//
// A job's op lines follow its `job` line (jobs in nondecreasing arrival
// order, ids unique); within a job each rank's ops appear in program order,
// ranks interleaved freely.  <flags> is the cfs::OpenFlags bitmask, <mode>
// the numeric cfs::IoMode, <archetype> a workload::to_string(Archetype)
// name (reporting only — scripts come from the op lines).
//
// Reader contract (in the spirit of trace::SpilledTrace): one bounded
// indexing scan at load — line length, node counts, byte counts, and rank
// ranges are range-checked before anything is allocated from them, so a
// garbage byte can cost a typed ReplayFormatError but never an unbounded
// allocation or a crash.  A log cut off mid-write (missing footer / torn
// final line) loads in tolerant mode with `truncated` set and the torn tail
// dropped; strict mode (what studies use — partial scripts could strand
// ranks at a barrier) throws.  Job scripts are materialized per job at
// start_job() by re-reading that job's byte region, never the whole log.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/source.hpp"

namespace charisma::workload {

/// Typed parse/validation error; the message carries the 1-based line.
class ReplayFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An indexed chwl log: job/input metadata resident, op bytes on disk.
class ReplayLog {
 public:
  /// Scans and validates the whole log.  `config` seeds the returned
  /// workload's WorkloadConfig (the log itself carries no seed).  Strict
  /// mode throws ReplayFormatError on a missing footer or torn final line;
  /// tolerant mode drops the tail and sets *truncated.
  [[nodiscard]] static ReplayLog load(const std::string& path,
                                      const WorkloadConfig& config,
                                      bool tolerant = false,
                                      bool* truncated = nullptr);

  [[nodiscard]] const GeneratedWorkload& workload() const noexcept {
    return workload_;
  }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Re-reads and compiles one job's op region.  Allocation is proportional
  /// to that job's ops (validated at load), never the log.
  [[nodiscard]] JobScripts compile_job(std::size_t spec_index) const;

 private:
  /// Byte range [begin, end) of a job's op lines, for compile_job's seek.
  struct JobRegion {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::size_t first_line = 1;  // 1-based, for error messages
  };

  GeneratedWorkload workload_;
  std::vector<JobRegion> regions_;  // parallel to workload_.jobs
  std::string path_;
  bool truncated_ = false;
};

/// The "replay" method factory: strict-loads `path` into a Source.
[[nodiscard]] std::unique_ptr<Source> make_replay_source(
    const std::string& path, const WorkloadConfig& config);

/// Writes `source`'s whole workload as a chwl v1 log.  Pulls every job
/// through the Source seam (start_job/next/end_job), so at most one job's
/// scripts are resident.  CHECK-fails on unwritable paths or path-table
/// entries containing whitespace.
void export_source_log(Source& source, const std::string& path);

}  // namespace charisma::workload
