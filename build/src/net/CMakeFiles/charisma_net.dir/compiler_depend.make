# Empty compiler generated dependencies file for charisma_net.
# This may be replaced when dependencies are built.
