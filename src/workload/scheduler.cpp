#include "workload/scheduler.hpp"

#include <bit>

#include "util/check.hpp"

namespace charisma::workload {

SubcubeAllocator::SubcubeAllocator(int dimension)
    : dimension_(dimension), free_(std::int32_t{1} << dimension) {
  util::check(dimension >= 0 && dimension <= 20, "bad allocator dimension");
  free_lists_.resize(static_cast<std::size_t>(dimension) + 1);
  free_lists_[static_cast<std::size_t>(dimension)].insert(0);
}

int SubcubeAllocator::order_of(std::int32_t nodes) {
  util::check(nodes >= 1 && std::has_single_bit(static_cast<std::uint32_t>(nodes)),
              "subcube size must be a power of two");
  return std::bit_width(static_cast<std::uint32_t>(nodes)) - 1;
}

std::int32_t SubcubeAllocator::allocate(std::int32_t nodes) {
  const int want = order_of(nodes);
  if (want > dimension_) return -1;
  // Find the smallest free subcube that fits.
  int have = want;
  while (have <= dimension_ &&
         free_lists_[static_cast<std::size_t>(have)].empty()) {
    ++have;
  }
  if (have > dimension_) return -1;
  auto& from = free_lists_[static_cast<std::size_t>(have)];
  std::int32_t base = *from.begin();
  from.erase(from.begin());
  // Split down to the requested order, freeing the upper buddies.
  while (have > want) {
    --have;
    const std::int32_t buddy = base + (std::int32_t{1} << have);
    free_lists_[static_cast<std::size_t>(have)].insert(buddy);
  }
  free_ -= nodes;
  return base;
}

void SubcubeAllocator::release(std::int32_t base, std::int32_t nodes) {
  int order = order_of(nodes);
  util::check(base >= 0 && base + nodes <= total_nodes() &&
                  base % nodes == 0,
              "bad subcube release");
  free_ += nodes;
  // Coalesce with buddies while possible.
  while (order < dimension_) {
    const std::int32_t buddy = base ^ (std::int32_t{1} << order);
    auto& list = free_lists_[static_cast<std::size_t>(order)];
    const auto it = list.find(buddy);
    if (it == list.end()) break;
    list.erase(it);
    base = std::min(base, buddy);
    ++order;
  }
  free_lists_[static_cast<std::size_t>(order)].insert(base);
}

}  // namespace charisma::workload
