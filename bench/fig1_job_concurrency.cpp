// Figure 1: amount of time the machine spent with N jobs running.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result = analysis::analyze_job_concurrency(
      Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  Comparison cmp("Figure 1: concurrent jobs");
  cmp.percent_row("machine idle (0 jobs)", analysis::paper::kIdleFraction,
                  result.idle_fraction);
  cmp.percent_row("multiprogrammed (>1 job)",
                  analysis::paper::kMultiprogrammedFraction,
                  result.multiprogrammed_fraction);
  cmp.row("max concurrent jobs", analysis::paper::kMaxConcurrentJobs,
          result.max_concurrent, 0);
  cmp.print();
}

void BM_JobConcurrencyAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_job_concurrency(store));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(store.job_events().size()) *
      state.iterations());
}
BENCHMARK(BM_JobConcurrencyAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 1 (job concurrency)",
                    charisma::bench::reproduce)
