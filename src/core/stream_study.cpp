#include "core/stream_study.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace charisma::core {

std::string spill_file_path(const std::string& dir, const char* tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  if (base.back() != '/') base += '/';
  std::ostringstream os;
  os << base << "charisma_" << tag << "_" << ::getpid() << "_"
     << counter.fetch_add(1, std::memory_order_relaxed) << ".spill";
  return os.str();
}

StreamedStudyOutput run_streamed_study(const StudyConfig& config,
                                       const StreamOptions& options) {
  // The rig mirrors run_study exactly — same construction order, same rng
  // derivation — so both modes drive the identical simulation.
  sim::EngineOptions eopts;
  eopts.queue = config.queue;
  eopts.threads = config.engine_threads;
  eopts.lp_count = config.machine.lp_count();
  eopts.lookahead = net::min_message_latency(config.machine.net);
  eopts.force_sharded = config.force_sharded_engine;
  sim::Engine engine(eopts);
  util::Rng machine_rng(config.workload.seed ^ 0xC10CC10CULL);
  ipsc::Machine machine(engine, config.machine, machine_rng);
  cfs::Runtime runtime(machine, config.runtime);
  trace::Collector collector(machine, config.collector);
  // The spill header is written up front, so the annotation run_study
  // applies after the fact must be final before the first block lands.
  collector.annotate(config.workload.seed, kStudyTraceLabel);
  // One shared memory-tier pool for both spills (trace blocks and replay-op
  // chunks): reservations are never returned, so peak RSS is bounded by the
  // streaming window plus this budget no matter how the two spills split it.
  const std::int64_t budget_mb = options.spill_budget_mb >= 0
                                     ? options.spill_budget_mb
                                     : config.spill_budget_mb;
  const std::string& spill_dir =
      !options.spill_dir.empty() ? options.spill_dir : config.spill_dir;
  trace::SpillBudget budget(budget_mb * (std::int64_t{1} << 20));
  trace::SpillWriterOptions wopts;
  wopts.budget = &budget;
  wopts.async = options.async_spill;
  collector.start_spilling(trace::SpillTarget::anonymous_in(spill_dir),
                           wopts);

  StreamedStudyOutput out;
  // Same source dispatch as run_study; the seam sits exactly where the
  // legacy pipeline called generate().
  std::unique_ptr<workload::Source> source;
  std::optional<workload::Driver> driver;
  if (config.legacy_driver) {
    CHECK(config.source.method == "synthetic",
          "legacy_driver is the synthetic reference path; got source '",
          workload::to_string(config.source), "'");
    out.workload = workload::generate(config.workload);
    driver.emplace(machine, runtime, collector, out.workload);
  } else {
    source = workload::load_source(config.source, config.workload);
    out.workload = source->workload();
    driver.emplace(machine, runtime, collector, *source);
  }
  driver->run();

  out.jobs = driver->results();
  out.records = collector.records_seen();
  out.collector_messages = collector.messages_to_collector();
  out.trace_bytes = collector.trace_bytes_written();
  out.total_ops = driver->total_ops();
  out.events_dispatched = engine.dispatched_events();
  out.sim_end = engine.now();
  out.engine_threads = config.engine_threads;
  out.shard_stats = engine.shard_stats();
  for (int d = 0; d < machine.io_nodes(); ++d) {
    out.user_bytes_moved += machine.disk(d).bytes_moved();
  }

  const trace::SpilledTrace spilled = collector.take_spilled();
  out.header = spilled.header;
  util::Stopwatch digest_sw;
  out.trace_digest = spilled.digest();
  const double digest_ms = digest_sw.elapsed_ms();

  // One merge pass feeds every consumer; per-sink state is bounded
  // (sessions, histograms, a timeline, one op chunk), never the trace.
  analysis::SessionAccumulator sessions(options.track_coverage);
  std::optional<analysis::RequestSizeAccumulator> request_sizes;
  std::optional<analysis::IoRateAccumulator> io_rate;
  std::optional<cache::ReplayOpSink> ops;
  std::vector<trace::RecordSink*> sinks{&sessions};
  if (options.collect_rate_figures) {
    request_sizes.emplace();
    io_rate.emplace(out.header.trace_start, out.header.trace_end);
    sinks.push_back(&*request_sizes);
    sinks.push_back(&*io_rate);
  }
  if (options.collect_replay_ops) {
    cache::ReplayOpSinkOptions oopts;
    oopts.budget = &budget;
    oopts.dir = spill_dir;
    ops.emplace(std::move(oopts));
    sinks.push_back(&*ops);
  }
  trace::StreamMergeStats merge_stats;
  trace::StreamMergeOptions mopts;
  mopts.prefetch = options.prefetch;
  mopts.stats = &merge_stats;
  out.streamed_records = trace::stream_postprocess(spilled, sinks, mopts);

  out.sessions = sessions.take(out.header);
  if (request_sizes.has_value()) out.request_sizes = request_sizes->finish();
  if (io_rate.has_value()) out.io_rate = io_rate->finish();
  if (ops.has_value()) out.replay_ops = ops->finish();

  const trace::SpillWriterStats& wstats = spilled.write_stats();
  out.spill.spill_write_ms = wstats.write_ms + out.replay_ops.write_ms();
  out.spill.spill_read_ms = merge_stats.read_ms;
  out.spill.digest_ms = digest_ms;
  out.spill.sink_ms = merge_stats.sink_ms;
  out.spill.append_stall_ms = wstats.append_stall_ms;
  out.spill.spill_bytes_written =
      wstats.disk_bytes + out.replay_ops.disk_bytes();
  // digest() re-reads every disk payload byte once; the merge's disk reads
  // come on top.  Sweep-pass re-reads accrue later via SweepRunner.
  out.spill.spill_bytes_read =
      spilled.disk_payload_bytes() + merge_stats.disk_bytes_read;
  out.spill.trace_blocks_in_memory = wstats.mem_blocks;
  out.spill.trace_blocks_on_disk = wstats.disk_blocks;
  out.spill.ops_chunks_in_memory = out.replay_ops.mem_chunks().size();
  out.spill.ops_chunks_on_disk = out.replay_ops.disk_chunks();
  out.spill.spill_budget_mb = budget_mb;
  return out;  // `spilled` unlinks the raw-trace spill here
}

}  // namespace charisma::core
