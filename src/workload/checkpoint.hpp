// Daly-interval checkpoint-restart workload source (the "checkpoint"
// method).
//
// Models the classic defensive-I/O archetype catalogued alongside CODES's
// checkpoint generator: an application of `nodes` ranks computes for Daly's
// optimum checkpoint interval, barriers, and dumps an aggregate
// `size_tib` image split evenly across per-rank files in `chunk_bytes`
// requests, repeating until `runtime_hours` of (scaled) runtime is covered.
// The interval comes from Daly's higher-order estimate of the optimum
// checkpoint interval; the plan below is exposed so property tests can pin
// its invariants (interval monotone in MTTI, total bytes = image size x
// dump count) without running a simulation.
#pragma once

#include <cstdint>

#include "workload/config.hpp"
#include "workload/generator.hpp"

namespace charisma::workload {

/// Daly's higher-order optimum checkpoint interval, seconds.  `dump` is the
/// time one checkpoint takes (size/bw), `mtti` the mean time to interrupt;
/// both seconds.  For dump >= 2*mtti the estimate degenerates to mtti.
/// Nondecreasing in mtti for any fixed dump >= 0.
[[nodiscard]] double daly_interval_seconds(double dump, double mtti);

/// The integer schedule a CheckpointConfig compiles to.
struct CheckpointPlan {
  double dump_seconds = 0;      // delta = size / bandwidth
  double interval_seconds = 0;  // tau = Daly optimum compute interval
  std::int64_t dumps = 0;       // floor(runtime / (tau + delta))
  std::int64_t image_bytes = 0; // aggregate bytes per dump
  std::int32_t nodes = 1;       // writer ranks
  /// Sum over ranks of one dump's per-rank bytes; == image_bytes (rank 0
  /// absorbs the division remainder).
  [[nodiscard]] std::int64_t bytes_per_rank(std::int32_t rank) const noexcept;
};

/// Derives the schedule.  `scale` multiplies the runtime (CI smoke runs);
/// a zero/negative scaled runtime yields zero dumps.
[[nodiscard]] CheckpointPlan plan_checkpoints(const CheckpointConfig& config,
                                              double scale);

/// The single-job arrival stream for the checkpoint source.  Deterministic
/// in (config.seed, config).
[[nodiscard]] GeneratedWorkload build_checkpoint_workload(
    const WorkloadConfig& config);

/// Compiles the checkpoint job's per-rank scripts: per dump, a tau-long
/// compute think on a barrier, then open/chunked-writes/close of the rank's
/// slice.  Deterministic in (spec.seed, config); the seed only skews rank
/// start-up (SPMD ranks never start in lockstep).
[[nodiscard]] JobScripts build_checkpoint_scripts(const JobSpec& spec,
                                                  const CheckpointConfig& config,
                                                  double scale);

}  // namespace charisma::workload
