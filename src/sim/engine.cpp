#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace charisma::sim {

namespace {

/// Orders events ascending by (at, seq) for the in-bucket sorted runs.
struct Earlier {
  bool operator()(const std::pair<MicroSec, std::uint64_t>& key,
                  const auto& ev) const noexcept {
    return key.first != ev.at ? key.first < ev.at : key.second < ev.seq;
  }
};

}  // namespace

// ---- BucketQueue -----------------------------------------------------------

void Engine::BucketQueue::insert_in_window(Event&& ev) {
  const auto idx = static_cast<std::size_t>((ev.at - window_start_) >>
                                            kBucketShift);
  DCHECK(idx < kBucketCount, "bucket index ", idx, " out of range");
  Bucket& b = buckets_[idx];
  if (b.head >= b.events.size()) {
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  // Keep [head, end) sorted by (at, seq).  seq grows monotonically, so the
  // dominant schedule pattern (same or later timestamps) appends at the
  // end; test for that with one compare before paying for upper_bound.
  if (b.events.empty() || !Earlier{}(std::make_pair(ev.at, ev.seq),
                                     b.events.back())) {
    b.events.push_back(std::move(ev));
  } else {
    const auto pos = std::upper_bound(
        b.events.begin() + static_cast<std::ptrdiff_t>(b.head),
        b.events.end(), std::make_pair(ev.at, ev.seq), Earlier{});
    b.events.insert(pos, std::move(ev));
  }
  ++in_window_;
  // A peek may already have advanced the cursor past this bucket; pull it
  // back so the new event is not skipped.
  cursor_ = std::min(cursor_, idx);
}

void Engine::BucketQueue::push(Event&& ev) {
  if (ev.at < window_start_ + kSpan) {
    // Engine::schedule_at guarantees ev.at >= now() >= window_start_.
    insert_in_window(std::move(ev));
  } else {
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void Engine::BucketQueue::migrate_overflow() {
  DCHECK(in_window_ == 0 && !overflow_.empty(),
         "migration needs an empty window and a populated overflow band");
  // Rebase the window onto the earliest far event.  The caller pops that
  // event immediately, so simulated time catches up to window_start_ before
  // any schedule_at can target the gap below it.
  window_start_ =
      (overflow_.front().at >> kBucketShift) << kBucketShift;
  cursor_ = 0;
  const MicroSec window_end = window_start_ + kSpan;
  while (!overflow_.empty() && overflow_.front().at < window_end) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    insert_in_window(std::move(overflow_.back()));
    overflow_.pop_back();
  }
}

std::size_t Engine::BucketQueue::next_live_bucket(std::size_t from) const {
  std::size_t w = from >> 6;
  std::uint64_t word = occupied_[w] >> (from & 63);
  if (word != 0) return from + static_cast<std::size_t>(std::countr_zero(word));
  do {
    ++w;
    DCHECK(w < occupied_.size(), "window count out of sync");
  } while (occupied_[w] == 0);
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(occupied_[w]));
}

bool Engine::BucketQueue::next_time(MicroSec* at) {
  if (in_window_ > 0) {
    cursor_ = next_live_bucket(cursor_);
    const Bucket& b = buckets_[cursor_];
    *at = b.events[b.head].at;
    return true;
  }
  if (!overflow_.empty()) {
    *at = overflow_.front().at;
    return true;
  }
  return false;
}

Engine::Event* Engine::BucketQueue::front() {
  if (in_window_ == 0) migrate_overflow();
  // migrate_overflow guarantees at least one in-window event, so the scan
  // always lands on a live bucket.
  cursor_ = next_live_bucket(cursor_);
  Bucket& b = buckets_[cursor_];
  return &b.events[b.head];
}

void Engine::BucketQueue::drop_front() {
  Bucket& b = buckets_[cursor_];
  DCHECK(b.head < b.events.size(), "drop_front() without a front event");
  ++b.head;
  --in_window_;
  if (b.head == b.events.size()) {
    b.events.clear();  // keeps capacity for the next window lap
    b.head = 0;
    occupied_[cursor_ >> 6] &= ~(std::uint64_t{1} << (cursor_ & 63));
  }
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine(QueueKind queue) : kind_(queue) {}

std::size_t Engine::pending_events() const noexcept {
  return kind_ == QueueKind::kBucketed ? bucketed_.size() : heap_.size();
}

void Engine::schedule_at(MicroSec at, Callback fn) {
  // A stale event would silently dispatch at the wrong time: both queues
  // order by `at`, so a past timestamp jumps everything pending.
  CHECK(at >= now_, "schedule_at(", at, ") is in the past: now()=", now_);
  Event ev{at, next_seq_++, std::move(fn)};
  if (kind_ == QueueKind::kBucketed) {
    bucketed_.push(std::move(ev));
  } else {
    heap_.push(std::move(ev));
  }
}

void Engine::schedule_in(MicroSec delay, Callback fn) {
  CHECK(delay >= 0, "schedule_in(", delay, ") with a negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (kind_ == QueueKind::kBucketed) {
    if (bucketed_.empty()) return false;
    Event* ev = bucketed_.front();
    // Monotone dispatch: simulated time never moves backwards.
    CHECK(ev->at >= now_, "event at t=", ev->at,
          " dispatched after now()=", now_);
    now_ = ev->at;
    ++dispatched_;
    // Move only the callback out of the slot — the callback may schedule
    // new events, which can reallocate the bucket the slot lives in.
    Callback fn = std::move(ev->fn);
    bucketed_.drop_front();
    fn();
    return true;
  }
  if (heap_.empty()) return false;
  // priority_queue::top is const; the callback must be moved out before
  // pop.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  CHECK(ev.at >= now_, "event at t=", ev.at, " dispatched after now()=", now_);
  now_ = ev.at;
  ++dispatched_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(MicroSec deadline) {
  if (kind_ == QueueKind::kBucketed) {
    MicroSec at;
    while (bucketed_.next_time(&at) && at <= deadline) step();
  } else {
    while (!heap_.empty() && heap_.top().at <= deadline) step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace charisma::sim
