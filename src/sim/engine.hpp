// Discrete-event simulation engine.
//
// The machine model (compute nodes, network, disks, the trace collector) is
// written as callbacks scheduled on this engine.  Determinism rules:
//   * time is integer microseconds (util::MicroSec);
//   * ties are broken by schedule order (a monotone sequence number), so a
//    (seed, config) pair always produces the identical event interleaving.
//
// The pending-event set lives in one of two interchangeable queues
// (sim/event_queue.hpp): the default two-level calendar queue or the
// reference binary heap kept for differential testing.  Both dispatch in
// exactly the same (at, seq) order; the digest-identity tests enforce it.
//
// With EngineOptions::threads > 1 the engine runs sharded: callers tag each
// schedule with a logical-process id (the simulated machine node, via
// schedule_at_lp / schedule_in_lp) and the pending set splits into one
// queue per shard of LPs, synchronized by a conservative lookahead window
// (sim/sharded.hpp).  Dispatch order — and therefore the trace digest — is
// bit-identical to the serial engine for every shard count.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/inline_callback.hpp"
#include "util/units.hpp"

namespace charisma::sim {

class ShardCoordinator;
struct ShardStats;

struct EngineOptions {
  QueueKind queue = kDefaultQueueKind;
  /// Total threads the engine may use, coordinator included; 1 is the
  /// serial engine (byte-identical to the pre-sharding implementation),
  /// N > 1 shards the LPs into N groups with N-1 queue-surgery workers.
  int threads = 1;
  /// Number of logical processes callers will tag events with; ignored by
  /// the serial engine.
  int lp_count = 1;
  /// Conservative window half-width (the minimum cross-LP message latency,
  /// in simulated microseconds); ignored by the serial engine.
  MicroSec lookahead = 1;
  /// Runs the sharded coordinator even at threads == 1 (no workers, every
  /// task inline) — for differential tests of the window protocol itself.
  bool force_sharded = false;
};

class Engine {
 public:
  using Callback = InlineCallback;

  explicit Engine(QueueKind queue = kDefaultQueueKind);
  explicit Engine(const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] MicroSec now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t dispatched_events() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] QueueKind queue_kind() const noexcept { return kind_; }
  /// Whether the sharded coordinator backs this engine.
  [[nodiscard]] bool sharded() const noexcept { return sharded_ != nullptr; }
  [[nodiscard]] int shard_count() const noexcept;
  /// Sharded-backend counters; nullopt-like (all zero) when serial.  Call
  /// only between runs.
  [[nodiscard]] ShardStats shard_stats() const;

  /// Schedules `fn` at absolute time `at` (>= now) on LP 0.
  void schedule_at(MicroSec at, Callback fn) {
    schedule_at_lp(0, at, std::move(fn));
  }
  /// Schedules `fn` after `delay` (>= 0) from now on LP 0.
  void schedule_in(MicroSec delay, Callback fn) {
    schedule_in_lp(0, delay, std::move(fn));
  }
  /// Schedules `fn` at absolute time `at` (>= now) on logical process `lp`
  /// (a simulated machine node; must be < EngineOptions::lp_count when
  /// sharded).  The serial engine ignores the tag.
  void schedule_at_lp(int lp, MicroSec at, Callback fn);
  void schedule_in_lp(int lp, MicroSec delay, Callback fn);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= `deadline`; afterwards now() == max(deadline,
  /// now()).  Events scheduled beyond the deadline remain queued.
  void run_until(MicroSec deadline);
  /// Dispatches the single earliest event; returns false if none remain.
  bool step();

 private:
  QueueKind kind_;
  EventQueue queue_;  // serial backend (unused when sharded_ is set)
  std::unique_ptr<ShardCoordinator> sharded_;
  MicroSec now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace charisma::sim
