// The paper's trace-driven cache simulations.
//
//  * Compute-node simulation (Figure 8): per-node caches of one-block
//    read-only buffers with LRU replacement; a hit is a read fully
//    satisfied locally (no I/O-node message).  Reported as a CDF of
//    per-job hit rates.
//  * I/O-node simulation (Figure 9): 4 KB buffers split evenly over N I/O
//    nodes, LRU or FIFO (or our IP-aware policy, ablation B); files assumed
//    striped round-robin at one-block granularity.
//  * Combined simulation (§4.8): one-block compute-node buffers in front of
//    the I/O-node caches; measures how much intraprocess locality the
//    front caches strip from the I/O-node stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/replay.hpp"
#include "trace/postprocess.hpp"
#include "util/histogram.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace charisma::cache {

using cfs::JobId;

namespace detail {

/// Materialized-path op builder: filters `trace` down to replayable data
/// requests with resolved read-only flags (the streaming path spills the
/// same stream through ReplayOpSink instead — see cache/replay.hpp).
[[nodiscard]] std::vector<ReplayOp> prepare_replay(
    const trace::SortedTrace& trace, const std::set<SessionKey>& read_only);

/// First and last file block a request touches.
struct BlockSpan {
  std::int64_t first;
  std::int64_t last;
};
[[nodiscard]] inline BlockSpan span_of(const ReplayOp& op, std::int64_t bs) {
  return {op.offset / bs,
          (op.offset + std::max<std::int64_t>(op.bytes, 1) - 1) / bs};
}

/// (job, node) -> BlockCache with a memo of the last lookup: replay streams
/// are long runs of one node's requests, so most lookups hit the memo.
/// Shared by the per-config replays, the batched replays, and the stack
/// simulator's §4.8 front caches.
class PerNodeCaches {
 public:
  PerNodeCaches(std::size_t buffers, Policy policy)
      : buffers_(buffers), policy_(policy) {}

  BlockCache& at(JobId job, NodeId node) {
    if (last_ != nullptr && job == last_job_ && node == last_node_) {
      return *last_;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job)) << 32) |
        static_cast<std::uint32_t>(node);
    const auto [it, inserted] = caches_.try_emplace(key, buffers_, policy_);
    last_job_ = job;
    last_node_ = node;
    last_ = &it->second;
    return *last_;
  }

 private:
  std::size_t buffers_;
  Policy policy_;
  // Keyed by packed (job, node); never iterated, so hash order is safe.
  std::unordered_map<std::uint64_t, BlockCache> caches_;
  JobId last_job_ = cfs::kNoJob;
  NodeId last_node_ = -1;
  BlockCache* last_ = nullptr;
};

}  // namespace detail

// ---- Figure 8 -------------------------------------------------------------

struct ComputeCacheConfig {
  std::size_t buffers_per_node = 1;
  std::int64_t block_size = util::kBlockSize;
};

/// hits / total as a fraction, 0 when there were no attempts.  The one
/// derivation every cache-simulation result and report line shares, so the
/// per-config and grouped paths cannot drift.
[[nodiscard]] constexpr double hit_fraction(std::uint64_t hits,
                                            std::uint64_t total) noexcept {
  return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

struct ComputeCacheResult {
  std::vector<double> job_hit_rates;  // jobs with >= 1 eligible read
  util::Cdf hit_rate_cdf;
  double fraction_jobs_zero = 0.0;
  double fraction_jobs_above_75 = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] double overall_hit_rate() const noexcept {
    return hit_fraction(hits, reads);
  }

  /// One-line counter summary (shared by the perf harness's sweep-mode
  /// cross-check lines).
  [[nodiscard]] std::string describe() const;
};

/// `read_only` restricts caching to read-only sessions, as the paper did
/// (write caching would need a consistency protocol).
[[nodiscard]] ComputeCacheResult simulate_compute_cache(
    const trace::SortedTrace& trace, const std::set<SessionKey>& read_only,
    const ComputeCacheConfig& config);

// ---- Figure 9 / §4.8 -------------------------------------------------------

struct IoNodeSimConfig {
  int io_nodes = 10;
  std::size_t total_buffers = 4000;  // split evenly over the I/O nodes
  Policy policy = Policy::kLru;
  std::int64_t block_size = util::kBlockSize;
  /// > 0 adds per-compute-node read-only front caches (§4.8).
  std::size_t compute_buffers_per_node = 0;
};

struct IoNodeSimResult {
  /// Requests reaching the I/O nodes; a request is a hit when every block
  /// it touches is already cached (it needs no disk I/O anywhere).
  std::uint64_t requests = 0;
  std::uint64_t request_hits = 0;
  std::uint64_t block_accesses = 0;
  std::uint64_t block_hits = 0;
  std::uint64_t filtered_by_compute = 0;  // requests absorbed up front
  double hit_rate = 0.0;        // request-level (the paper's Figure 9 axis)
  double block_hit_rate = 0.0;  // block-level, for the ablation commentary

  /// Derives hit_rate / block_hit_rate from the counters.  Every simulation
  /// path (per-config replay, batched replay, stack simulation) finishes
  /// through this one helper so the derived fields cannot drift.
  void finalize_rates() noexcept {
    hit_rate = hit_fraction(request_hits, requests);
    block_hit_rate = hit_fraction(block_hits, block_accesses);
  }

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] IoNodeSimResult simulate_io_cache(
    const trace::SortedTrace& trace, const std::set<SessionKey>& read_only,
    const IoNodeSimConfig& config);

// ---- Parameter sweeps ------------------------------------------------------

/// How SweepRunner executes a batch of configurations.
enum class SweepMode : std::uint8_t {
  /// Reference: one full trace replay per configuration point.
  kPerConfig,
  /// Group configs by (policy, topology, front-cache setting); LRU groups run
  /// one stack-simulation pass covering every buffer count (Mattson), the
  /// rest run one batched replay stepping all configs per record.  Groups
  /// left with a single point (the Figure 9 I/O-node-count spread, the §4.8
  /// front singleton) fuse into one multi-topology pass stepping every
  /// shape's own cache set per op.  Results are bit-identical to kPerConfig
  /// (the differential tests enforce it).
  kGrouped,
};

[[nodiscard]] constexpr const char* to_string(SweepMode m) noexcept {
  switch (m) {
    case SweepMode::kPerConfig: return "per-config";
    case SweepMode::kGrouped: return "grouped";
  }
  return "?";
}

/// One pass of a grouped sweep, for introspection: how many config slots it
/// covers and how many distinct cache points it actually simulates (configs
/// collapsing to the same per-node buffer count are deduplicated).
struct SweepGroup {
  enum class Kind : std::uint8_t {
    kStack,    ///< single-pass LRU stack simulation, all buffer counts at once
    kBatched,  ///< one decode pass stepping every config per record
    kReplay,   ///< plain per-config replay (group has one distinct point)
    /// Fused single-point topologies: one pass stepping several otherwise
    /// ungroupable shapes (distinct io_nodes / front / policy) at once.
    /// The displayed policy is the first folded member's.
    kMulti,
  };
  Kind kind = Kind::kReplay;
  Policy policy = Policy::kLru;
  std::size_t configs = 0;    ///< config slots this pass covers
  std::size_t simulated = 0;  ///< distinct cache points simulated in the pass
};

[[nodiscard]] constexpr const char* to_string(SweepGroup::Kind k) noexcept {
  switch (k) {
    case SweepGroup::Kind::kStack: return "stack";
    case SweepGroup::Kind::kBatched: return "batched";
    case SweepGroup::Kind::kReplay: return "replay";
    case SweepGroup::Kind::kMulti: return "multi";
  }
  return "?";
}

/// The grouped execution plan for a config batch — the sweep analogue of
/// SweepRunner::replay_ops(): how much work a grouped run actually does.
struct SweepPlan {
  std::vector<SweepGroup> groups;

  [[nodiscard]] std::size_t passes() const noexcept { return groups.size(); }
  [[nodiscard]] std::size_t configs() const noexcept;
  [[nodiscard]] std::size_t simulated_points() const noexcept;
  /// e.g. "28 configs in 8 passes: LRU/stack(11->9) FIFO/batched(9->9) ...".
  [[nodiscard]] std::string describe() const;
};

/// The plan run_compute / run_io would execute in SweepMode::kGrouped.
/// Purely structural — no trace needed.
[[nodiscard]] SweepPlan plan_compute_sweep(
    const std::vector<ComputeCacheConfig>& configs);
[[nodiscard]] SweepPlan plan_io_sweep(
    const std::vector<IoNodeSimConfig>& configs);

/// Runs cache-simulation sweeps over one immutable trace.  Results always
/// come back in configuration order, making the output invariant under the
/// pool's thread count — the sweep benches and the perf harness depend on
/// that.
///
/// The trace is pre-filtered once (detail::prepare_replay) so replays touch
/// only data requests and never repeat the read-only-session set lookups.
/// In the default SweepMode::kGrouped, configurations are further grouped by
/// (policy, topology, front-cache setting) and each *group* costs one trace
/// pass — exact LRU stack simulation for every buffer count at once, batched
/// replay for the non-inclusive policies — and the groups (not the points)
/// fan out over the thread pool.
class SweepRunner {
 public:
  /// Serial runner: passes execute inline on the calling thread.  The
  /// references are borrowed and must outlive the runner.
  SweepRunner(const trace::SortedTrace& trace,
              const std::set<SessionKey>& read_only);
  /// Pooled runner: independent passes fan out over `pool`.
  SweepRunner(const trace::SortedTrace& trace,
              const std::set<SessionKey>& read_only, util::ThreadPool& pool);
  /// Streaming runners: replay a spilled op file per pass instead of an
  /// in-memory op vector.  `read_only` is borrowed and must outlive the
  /// runner (it resolves the spilled ops' read-only flags per traversal).
  SweepRunner(ReplayOpSpill ops, const std::set<SessionKey>& read_only);
  SweepRunner(ReplayOpSpill ops, const std::set<SessionKey>& read_only,
              util::ThreadPool& pool);

  /// Figure 8 points, one result per config, in config order.
  [[nodiscard]] std::vector<ComputeCacheResult> run_compute(
      const std::vector<ComputeCacheConfig>& configs,
      SweepMode mode = SweepMode::kGrouped) const;
  /// Figure 9 / §4.8 points, one result per config, in config order.
  [[nodiscard]] std::vector<IoNodeSimResult> run_io(
      const std::vector<IoNodeSimConfig>& configs,
      SweepMode mode = SweepMode::kGrouped) const;

  [[nodiscard]] std::size_t replay_ops() const noexcept {
    return log_.size();
  }

  /// Disk bytes sweep passes have read back from the op spill's overflow
  /// file so far (zero for materialized runners and all-resident spills).
  [[nodiscard]] std::int64_t spill_bytes_read() const noexcept {
    return log_.spill_bytes_read();
  }

  /// Total trace passes this runner has executed across every run_compute /
  /// run_io call — the cost ledger the grouped-mode speedup claims rest on
  /// (kGrouped must replay fewer passes than kPerConfig for the same
  /// configs).  Thread-safe: sweeps may run concurrently from pool threads.
  [[nodiscard]] std::size_t passes_executed() const;

 private:
  /// parallel_for over the pool when one was given, else a serial loop.
  /// Bumps the passes_executed() ledger by `n` once every pass finished.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& body) const;

  ReplayLog log_;
  util::ThreadPool* pool_ = nullptr;
  mutable util::Mutex mutex_;
  mutable std::size_t passes_executed_ CHARISMA_GUARDED_BY(mutex_) = 0;
};

}  // namespace charisma::cache
