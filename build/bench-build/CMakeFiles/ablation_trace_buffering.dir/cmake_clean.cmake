file(REMOVE_RECURSE
  "../bench/ablation_trace_buffering"
  "../bench/ablation_trace_buffering.pdb"
  "CMakeFiles/ablation_trace_buffering.dir/ablation_trace_buffering.cpp.o"
  "CMakeFiles/ablation_trace_buffering.dir/ablation_trace_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
