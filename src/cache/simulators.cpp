#include "cache/simulators.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace charisma::cache {

using trace::EventKind;
using trace::Record;

namespace {

/// First and last file block a request touches.
struct BlockSpan {
  std::int64_t first;
  std::int64_t last;
};
BlockSpan span_of(const Record& r, std::int64_t bs) {
  return {r.offset / bs, (r.offset + std::max<std::int64_t>(r.bytes, 1) - 1) / bs};
}

}  // namespace

ComputeCacheResult simulate_compute_cache(const trace::SortedTrace& trace,
                                          const std::set<SessionKey>& read_only,
                                          const ComputeCacheConfig& config) {
  util::check(config.block_size > 0, "bad block size");
  ComputeCacheResult out;
  // One cache per (job, node): node reuse across jobs must not leak blocks.
  std::map<std::pair<JobId, NodeId>, BlockCache> caches;
  struct JobCount {
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
  };
  std::map<JobId, JobCount> per_job;

  for (const Record& r : trace.records) {
    if (r.kind != EventKind::kRead || r.bytes <= 0) continue;
    if (read_only.find({r.job, r.file}) == read_only.end()) continue;
    auto [it, inserted] = caches.try_emplace(
        std::make_pair(r.job, r.node), config.buffers_per_node, Policy::kLru);
    BlockCache& cache = it->second;
    const auto [first, last] = span_of(r, config.block_size);
    // "Fully satisfied from the local buffer": every touched block present
    // before the request runs.
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      if (!cache.contains({r.file, b})) {
        full_hit = false;
        break;
      }
    }
    for (std::int64_t b = first; b <= last; ++b) {
      (void)cache.access({r.file, b}, r.node);
    }
    auto& jc = per_job[r.job];
    ++jc.reads;
    ++out.reads;
    if (full_hit) {
      ++jc.hits;
      ++out.hits;
    }
  }

  for (const auto& [job, jc] : per_job) {
    const double rate = jc.reads ? static_cast<double>(jc.hits) /
                                       static_cast<double>(jc.reads)
                                 : 0.0;
    out.job_hit_rates.push_back(rate);
    if (rate <= 0.0) out.fraction_jobs_zero += 1.0;
    if (rate > 0.75) out.fraction_jobs_above_75 += 1.0;
  }
  if (!out.job_hit_rates.empty()) {
    const auto n = static_cast<double>(out.job_hit_rates.size());
    out.fraction_jobs_zero /= n;
    out.fraction_jobs_above_75 /= n;
  }
  out.hit_rate_cdf = util::Cdf::from_samples(out.job_hit_rates);
  return out;
}

IoNodeSimResult simulate_io_cache(const trace::SortedTrace& trace,
                                  const std::set<SessionKey>& read_only,
                                  const IoNodeSimConfig& config) {
  util::check(config.io_nodes >= 1, "need at least one I/O node");
  util::check(config.block_size > 0, "bad block size");
  IoNodeSimResult out;

  const std::size_t per_node =
      config.total_buffers / static_cast<std::size_t>(config.io_nodes);
  std::vector<BlockCache> io_caches;
  io_caches.reserve(static_cast<std::size_t>(config.io_nodes));
  for (int i = 0; i < config.io_nodes; ++i) {
    io_caches.emplace_back(per_node, config.policy);
  }
  std::map<std::pair<JobId, NodeId>, BlockCache> compute;

  for (const Record& r : trace.records) {
    const bool is_read = r.kind == EventKind::kRead;
    if ((!is_read && r.kind != EventKind::kWrite) || r.bytes <= 0) continue;
    const auto [first, last] = span_of(r, config.block_size);

    if (config.compute_buffers_per_node > 0 && is_read &&
        read_only.count({r.job, r.file}) > 0) {
      auto [it, inserted] =
          compute.try_emplace(std::make_pair(r.job, r.node),
                              config.compute_buffers_per_node, Policy::kLru);
      BlockCache& front = it->second;
      bool full_hit = true;
      for (std::int64_t b = first; b <= last; ++b) {
        if (!front.contains({r.file, b})) {
          full_hit = false;
          break;
        }
      }
      for (std::int64_t b = first; b <= last; ++b) {
        (void)front.access({r.file, b}, r.node);
      }
      if (full_hit) {
        ++out.filtered_by_compute;
        continue;  // never reaches the I/O nodes
      }
    }

    // Round-robin striping at one-block granularity (paper §4.8).  The
    // request is "fully satisfied from the buffer" when every block it
    // touches is already resident (Figure 8's definition, applied here to
    // the I/O-node caches).
    ++out.requests;
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      BlockCache& cache =
          io_caches[static_cast<std::size_t>(b % config.io_nodes)];
      ++out.block_accesses;
      if (cache.access({r.file, b}, r.node)) {
        ++out.block_hits;
      } else {
        full_hit = false;
      }
    }
    if (full_hit) ++out.request_hits;
  }
  out.hit_rate = out.requests ? static_cast<double>(out.request_hits) /
                                    static_cast<double>(out.requests)
                              : 0.0;
  out.block_hit_rate =
      out.block_accesses ? static_cast<double>(out.block_hits) /
                               static_cast<double>(out.block_accesses)
                         : 0.0;
  return out;
}

std::string IoNodeSimResult::describe() const {
  std::ostringstream s;
  s << "requests=" << requests << " hits=" << request_hits << " hit_rate="
    << hit_rate << " block_hit_rate=" << block_hit_rate;
  if (filtered_by_compute > 0) {
    s << " filtered=" << filtered_by_compute;
  }
  return s.str();
}

}  // namespace charisma::cache
