// Shared scaffolding for the per-figure/table bench binaries.
//
// Every binary:
//   1. runs the CHARISMA study once at --scale (default 0.2, --seed 42),
//   2. prints the paper-vs-measured reproduction rows for its experiment,
//   3. runs google-benchmark timings of the underlying kernel.
//
// Absolute counts scale with --scale; all percentages/shapes are
// scale-invariant, which is what the comparisons check.  --threads sizes
// the shared worker pool used for session building and cache-parameter
// sweeps (0 = hardware concurrency); every reported number is identical for
// every thread count.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/analyzers.hpp"
#include "analysis/paper.hpp"
#include "cache/simulators.hpp"
#include "core/study.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace charisma::bench {

/// The study shared by one binary's reproduction output and benchmarks.
class Context {
 public:
  static Context& instance();

  /// Must be called from main() before use.  May be called again: each call
  /// discards any study built under the previous configuration, so a
  /// configure() is never silently ignored.
  void configure(double scale, std::uint64_t seed, std::size_t threads = 0);

  [[nodiscard]] const core::StudyOutput& study();
  [[nodiscard]] const analysis::SessionStore& store();
  [[nodiscard]] const std::set<cache::SessionKey>& read_only();
  /// Worker pool sized by --threads; shared by the sweeps and the session
  /// build.
  [[nodiscard]] util::ThreadPool& pool();
  /// Sweep runner over the configured study's trace.
  [[nodiscard]] cache::SweepRunner& sweeps();
  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  void ensure();

  double scale_ = 0.2;
  std::uint64_t seed_ = 42;
  std::size_t threads_ = 0;
  bool configured_ = false;
  bool built_ = false;
  std::optional<core::StudyOutput> study_;
  std::optional<analysis::SessionStore> store_;
  std::optional<std::set<cache::SessionKey>> read_only_;
  std::optional<util::ThreadPool> pool_;
  std::optional<cache::SweepRunner> sweeps_;
};

/// A two-column paper-vs-measured comparison table builder.
class Comparison {
 public:
  explicit Comparison(std::string title);
  Comparison& row(const std::string& metric, const std::string& paper,
                  const std::string& measured);
  Comparison& row(const std::string& metric, double paper, double measured,
                  int precision = 1);
  Comparison& percent_row(const std::string& metric, double paper_fraction,
                          double measured_fraction);
  void print() const;

 private:
  std::string title_;
  util::Table table_;
};

/// Standard main body: parses --scale/--seed/--threads, calls `reproduce`,
/// then runs the registered benchmarks with the remaining argv.
int bench_main(int argc, char** argv, const char* experiment,
               void (*reproduce)());

}  // namespace charisma::bench

#define CHARISMA_BENCH_MAIN(experiment, reproduce_fn)                \
  int main(int argc, char** argv) {                                  \
    return charisma::bench::bench_main(argc, argv, experiment,       \
                                       reproduce_fn);                \
  }
