# Empty compiler generated dependencies file for table1_files_per_job.
# This may be replaced when dependencies are built.
