// Strided-I/O ablation (paper §5).
//
// The paper's closing recommendation: "it would be better to support strided
// I/O requests ... A strided request can express a regular request and
// interval size (which were common in our workload), effectively increasing
// the request size [and] lowering overhead."  This module measures exactly
// that: it re-expresses each node's per-file request stream as maximal
// (offset, record, interval, count) strided requests and counts how many
// requests and I/O-node messages disappear.
#pragma once

#include <cstdint>
#include <string>

#include "trace/postprocess.hpp"

namespace charisma::core {

struct StridedRequest {
  std::int64_t offset = 0;
  std::int64_t record = 0;    // bytes per element
  std::int64_t interval = 0;  // bytes skipped between elements
  std::int64_t count = 0;
};

struct StridedStats {
  std::uint64_t original_requests = 0;
  std::uint64_t strided_requests = 0;
  std::uint64_t original_messages = 0;  // one per touched block (CFS)
  std::uint64_t strided_messages = 0;   // one per involved I/O node per request
  std::uint64_t runs_of_two_or_more = 0;
  std::uint64_t longest_run = 0;

  [[nodiscard]] double request_reduction() const noexcept {
    return original_requests
               ? 1.0 - static_cast<double>(strided_requests) /
                           static_cast<double>(original_requests)
               : 0.0;
  }
  [[nodiscard]] double message_reduction() const noexcept {
    return original_messages
               ? 1.0 - static_cast<double>(strided_messages) /
                           static_cast<double>(original_messages)
               : 0.0;
  }
  [[nodiscard]] std::string render() const;
};

/// Greedy maximal-run rewriting of every (job, file, node) data stream.
[[nodiscard]] StridedStats rewrite_strided(const trace::SortedTrace& trace,
                                           int io_nodes,
                                           std::int64_t block_size);

}  // namespace charisma::core
