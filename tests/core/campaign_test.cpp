// Campaign runner tests: the parallel fan-out must be invisible in the
// results — same studies, same digests, same aggregates, any thread count.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

namespace charisma::core {
namespace {

StudyConfig smoke_base() {
  StudyConfig config;
  config.workload = workload::WorkloadConfig::smoke();
  return config;
}

std::vector<CampaignStudy> four_studies() {
  return scale_sweep(smoke_base(), {0.01, 0.02}, {7, 8});
}

TEST(CampaignTest, ThreadCountDoesNotChangeResults) {
  const auto studies = four_studies();
  const CampaignRunner serial(CampaignOptions{.threads = 1});
  const CampaignRunner parallel(CampaignOptions{.threads = 4});
  const CampaignResult a = serial.run(studies);
  const CampaignResult b = parallel.run(studies);

  ASSERT_EQ(a.studies.size(), studies.size());
  ASSERT_EQ(b.studies.size(), studies.size());
  for (std::size_t i = 0; i < studies.size(); ++i) {
    SCOPED_TRACE(studies[i].label);
    EXPECT_EQ(a.studies[i].label, b.studies[i].label);
    EXPECT_EQ(a.studies[i].label, studies[i].label);
    EXPECT_EQ(a.studies[i].seed, b.studies[i].seed);
    EXPECT_EQ(a.studies[i].scale, b.studies[i].scale);
    // The determinism anchor: byte-identical traces per study.
    EXPECT_EQ(a.studies[i].trace_digest, b.studies[i].trace_digest);
    EXPECT_EQ(a.studies[i].events_dispatched, b.studies[i].events_dispatched);
    EXPECT_EQ(a.studies[i].records, b.studies[i].records);
    EXPECT_EQ(a.studies[i].total_ops, b.studies[i].total_ops);
    EXPECT_EQ(a.studies[i].sim_end, b.studies[i].sim_end);
    EXPECT_EQ(a.studies[i].idle_fraction, b.studies[i].idle_fraction);
    EXPECT_EQ(a.studies[i].multiprogrammed_fraction,
              b.studies[i].multiprogrammed_fraction);
    EXPECT_EQ(a.studies[i].small_read_fraction,
              b.studies[i].small_read_fraction);
    EXPECT_EQ(a.studies[i].mode0_fraction, b.studies[i].mode0_fraction);
  }

  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  for (std::size_t i = 0; i < a.aggregates.size(); ++i) {
    SCOPED_TRACE(a.aggregates[i].name);
    EXPECT_EQ(a.aggregates[i].name, b.aggregates[i].name);
    EXPECT_EQ(a.aggregates[i].summary.count(), b.aggregates[i].summary.count());
    // Bitwise equality: each study's statistic is deterministic and the
    // aggregation order is the input order, so the floating-point sums
    // are reproducible exactly.
    EXPECT_EQ(a.aggregates[i].summary.mean(), b.aggregates[i].summary.mean());
    EXPECT_EQ(a.aggregates[i].summary.stddev(),
              b.aggregates[i].summary.stddev());
    EXPECT_EQ(a.aggregates[i].ci95_half_width(),
              b.aggregates[i].ci95_half_width());
  }
}

TEST(CampaignTest, DistinctSeedsYieldDistinctDigests) {
  const CampaignRunner runner(CampaignOptions{.threads = 2});
  const auto result =
      runner.run(seed_replications(smoke_base(), 2));
  ASSERT_EQ(result.studies.size(), 2u);
  EXPECT_NE(result.studies[0].trace_digest, result.studies[1].trace_digest);
  EXPECT_GT(result.studies[0].records, 0u);
  EXPECT_GT(result.studies[1].records, 0u);
}

TEST(CampaignTest, ProgressCallbackCountsEveryStudyExactlyOnce) {
  const auto studies = four_studies();
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  CampaignOptions options{.threads = 4};
  // The runner invokes on_progress under its own mutex, so plain
  // containers are safe here even with four workers.
  options.on_progress = [&seen](std::size_t done, std::size_t total) {
    seen.emplace_back(done, total);
  };
  const CampaignRunner runner(options);
  EXPECT_EQ(runner.completed(), 0u);

  (void)runner.run(studies);
  ASSERT_EQ(seen.size(), studies.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, i + 1);  // monotone: 1, 2, ..., total
    EXPECT_EQ(seen[i].second, studies.size());
  }
  EXPECT_EQ(runner.completed(), studies.size());

  // Each run() starts its own count; the ledger never accumulates across
  // campaigns.
  seen.clear();
  (void)runner.run(seed_replications(smoke_base(), 2));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.back(), (std::pair<std::size_t, std::size_t>{2u, 2u}));
  EXPECT_EQ(runner.completed(), 2u);
}

TEST(CampaignTest, SummariesCarryMeasuredFractions) {
  const CampaignRunner runner(CampaignOptions{.threads = 1});
  const auto result = runner.run(seed_replications(smoke_base(), 1));
  ASSERT_EQ(result.studies.size(), 1u);
  const StudySummary& s = result.studies[0];
  for (const double f :
       {s.idle_fraction, s.multiprogrammed_fraction,
        s.single_node_job_fraction, s.small_read_fraction,
        s.small_write_fraction, s.temporary_fraction, s.mode0_fraction}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Mode 0 dominates the paper's workload; the smoke workload keeps that.
  EXPECT_GT(s.mode0_fraction, 0.5);
}

TEST(CampaignTest, SeedReplicationsEnumerateSeeds) {
  const auto studies = seed_replications(smoke_base(), 3, "rep_");
  ASSERT_EQ(studies.size(), 3u);
  const std::uint64_t base_seed = smoke_base().workload.seed;
  for (std::size_t i = 0; i < studies.size(); ++i) {
    EXPECT_EQ(studies[i].config.workload.seed, base_seed + i);
    EXPECT_EQ(studies[i].label,
              "rep_seed" + std::to_string(base_seed + i));
  }
}

TEST(CampaignTest, ScaleSweepCrossesScalesAndSeeds) {
  const auto studies = scale_sweep(smoke_base(), {0.01, 0.05}, {1, 2, 3});
  ASSERT_EQ(studies.size(), 6u);
  EXPECT_EQ(studies[0].label, "scale0.01_seed1");
  EXPECT_EQ(studies[5].label, "scale0.05_seed3");
  EXPECT_EQ(studies[3].config.workload.scale, 0.05);
  EXPECT_EQ(studies[3].config.workload.seed, 1u);
}

TEST(CampaignTest, AggregateConfidenceInterval) {
  std::vector<StudySummary> studies(4);
  for (std::size_t i = 0; i < studies.size(); ++i) {
    studies[i].idle_fraction = 0.2 + 0.1 * static_cast<double>(i);
  }
  const auto aggregates = aggregate_campaign(studies);
  const AggregateStat* idle = nullptr;
  for (const auto& a : aggregates) {
    if (a.name == "idle_fraction") idle = &a;
  }
  ASSERT_NE(idle, nullptr);
  EXPECT_EQ(idle->summary.count(), 4u);
  EXPECT_NEAR(idle->summary.mean(), 0.35, 1e-12);
  EXPECT_NEAR(idle->ci95_half_width(),
              1.96 * idle->summary.stddev() / 2.0, 1e-12);

  // A single study has no spread to estimate.
  const auto one = aggregate_campaign({studies[0]});
  for (const auto& a : one) EXPECT_EQ(a.ci95_half_width(), 0.0);
}

}  // namespace
}  // namespace charisma::core
