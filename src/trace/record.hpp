// CHARISMA event records.
//
// The paper defines a self-descriptive trace format: a header record
// followed by one event record per file-system event, including job starts
// and ends (recorded by a separate mechanism) and every read, write, open,
// close, seek, and delete (paper §3.1).  Records carry the *node-local*
// timestamp; mapping to a common timebase is the postprocessor's job.
#pragma once

#include <cstdint>
#include <string>

#include "cfs/types.hpp"

namespace charisma::trace {

using cfs::FileId;
using cfs::JobId;
using cfs::NodeId;
using util::MicroSec;

/// Pseudo node id for records stamped by the service node's reference
/// clock (job starts/ends); the postprocessor leaves these uncorrected.
inline constexpr NodeId kServiceNode = -1;

enum class EventKind : std::uint8_t {
  kJobStart = 1,
  kJobEnd = 2,
  kOpen = 3,
  kClose = 4,
  kRead = 5,
  kWrite = 6,
  kSeek = 7,
  kDelete = 8,
};

[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// One trace event.  Field use by kind:
///   kJobStart: aux = number of compute nodes allocated to the job
///   kJobEnd:   (ids only)
///   kOpen:     aux = (mode << 8) | open flags; bytes = 1 if created
///   kClose:    aux = file size at close
///   kRead/kWrite: offset, bytes = bytes transferred; aux = bytes requested
///   kSeek:     offset = resulting offset
///   kDelete:   (file id names the victim)
struct Record {
  MicroSec timestamp = 0;  // node-local clock (uncorrected)
  JobId job = cfs::kNoJob;
  FileId file = cfs::kNoFile;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  std::int64_t aux = 0;
  NodeId node = 0;
  EventKind kind = EventKind::kJobStart;
  std::uint8_t mode = 0;  // I/O mode for open/read/write records

  [[nodiscard]] bool is_data() const noexcept {
    return kind == EventKind::kRead || kind == EventKind::kWrite;
  }

  /// Size of the on-disk encoding (fixed).
  static constexpr std::size_t kEncodedSize = 44;
  /// Encodes into exactly kEncodedSize bytes at `out`.
  void encode(std::uint8_t* out) const noexcept;
  /// Decodes from exactly kEncodedSize bytes.
  [[nodiscard]] static Record decode(const std::uint8_t* in) noexcept;

  [[nodiscard]] std::string debug_string() const;
};

/// Packs/unpacks the kOpen aux field.
[[nodiscard]] constexpr std::int64_t pack_open_aux(std::uint8_t flags,
                                                   cfs::IoMode mode) noexcept {
  return (static_cast<std::int64_t>(mode) << 8) | flags;
}
[[nodiscard]] constexpr std::uint8_t open_flags(std::int64_t aux) noexcept {
  return static_cast<std::uint8_t>(aux & 0xff);
}
[[nodiscard]] constexpr cfs::IoMode open_mode(std::int64_t aux) noexcept {
  return static_cast<cfs::IoMode>((aux >> 8) & 0xff);
}

}  // namespace charisma::trace
