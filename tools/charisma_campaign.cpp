// charisma_campaign — runs a batch of studies (seed replications x scale
// points) in parallel and reports per-study digests plus aggregate paper
// statistics with 95% confidence intervals.
//
//   charisma_campaign [--seeds=42,43,44] [--scales=0.2] [--threads=N]
//                     [--queue=bucketed|heap] [--smoke] [--figures=0|1]
//                     [--workload=synthetic|replay:<path>|checkpoint]
//                     [--out=DIR]
//
//   --seeds:   comma-separated workload seeds (default 42,43,44,45)
//   --scales:  comma-separated workload scales (default 0.2)
//   --workload: workload source behind the generator seam (default
//              synthetic; replay:<chwl path> replays a logged workload,
//              checkpoint runs the Daly-interval checkpoint archetype with
//              the --chkpoint-size/bw/runtime/mtti/nodes/chunk knobs)
//   --threads: campaign worker threads; 0 = hardware concurrency,
//              1 = serial (default 0)
//   --engine-threads: threads per study's event engine (default 1 = serial;
//              >1 shards each study's LPs with conservative windows — the
//              digests are identical either way, so the determinism diffs
//              cover this axis too)
//   --smoke:   use the tiny smoke workload/machine (CI cross-checks)
//   --figures: sample per-figure curves and fold envelope bands across the
//              replications (default 1; 0 skips the analyzer/cache replays
//              for pure-throughput runs)
//   --progress: print "finished/total" to stderr as studies complete
//              (stderr only, so the stdout determinism diffs in CI are
//              unaffected)
//   --out:     also write campaign_studies.tsv / campaign_aggregate.tsv
//              plus one campaign_<figure>.tsv envelope per figure
//
// The per-study digest lines and the per-figure envelope TSVs are the
// determinism contract: CI runs the same campaign at --threads=1 and
// --threads=2 and diffs both.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/export.hpp"
#include "util/flags.hpp"
#include "workload/source.hpp"

using namespace charisma;

namespace {

// Wall time is reporting-only (studies/min throughput), never simulation
// input.
using WallClock = std::chrono::steady_clock;  // NOLINT(charisma-wallclock)

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: charisma_campaign [--seeds=42,43] [--scales=0.2] "
               "[--threads=N] [--engine-threads=N] [--queue=bucketed|heap] "
               "[--smoke] [--figures=0|1] [--progress] "
               "[--workload=synthetic|replay:<path>|checkpoint] "
               "[--chkpoint-*=...] [--spill-budget-mb=N] [--spill-dir=DIR] "
               "[--out=DIR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> known{"seeds",   "scales",   "threads",
                                 "engine-threads", "queue", "smoke",
                                 "figures", "progress", "workload", "out",
                                 "spill-budget-mb", "spill-dir"};
  for (const auto& name : workload::checkpoint_flag_names()) {
    known.push_back(name);
  }
  util::Flags flags(argc, argv, known);
  if (flags.remaining_argc() > 1) return usage();

  std::vector<std::uint64_t> seeds;
  for (const auto& s : split_list(flags.get("seeds", "42,43,44,45"))) {
    seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
  }
  std::vector<double> scales;
  for (const auto& s : split_list(flags.get("scales", "0.2"))) {
    scales.push_back(std::strtod(s.c_str(), nullptr));
  }
  if (seeds.empty() || scales.empty()) return usage();

  core::StudyConfig base;
  if (flags.get_bool("smoke", false)) {
    // Tiny workload for CI determinism cross-checks; --seeds/--scales still
    // apply on top.
    base.workload = workload::WorkloadConfig::smoke();
  }
  const std::string queue = flags.get("queue", "bucketed");
  if (queue == "heap") {
    base.queue = sim::QueueKind::kReferenceHeap;
  } else if (queue != "bucketed") {
    return usage();
  }
  base.engine_threads = static_cast<int>(flags.get_int("engine-threads", 1));
  if (base.engine_threads < 1) return usage();
  base.source = workload::parse_source_spec(flags.get("workload", "synthetic"));
  workload::apply_checkpoint_flags(flags, &base.workload);

  const auto studies = core::scale_sweep(base, scales, seeds);
  core::CampaignOptions options;
  options.threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  options.collect_figures = flags.get_bool("figures", true);
  // Per-study memory-tier budget; note campaign RSS scales with
  // threads x budget when studies overflow it.
  options.spill_budget_mb = flags.get_int("spill-budget-mb", -1);
  options.spill_dir = flags.get("spill-dir", "");
  if (options.collect_figures) {
    // How many trace passes the cache figures cost per replication, so
    // throughput comparisons across versions are self-describing.
    std::printf("figure sweep plan: %s\n",
                core::describe_figure_sweep_plan().c_str());
  }
  if (flags.get_bool("progress", false)) {
    // stderr, never stdout: the stdout study/digest lines are the
    // determinism contract CI diffs across thread counts.
    options.on_progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "progress: %zu/%zu studies\n", done, total);
    };
  }
  const core::CampaignRunner runner(options);

  const auto start = WallClock::now();
  const core::CampaignResult result = runner.run(studies);
  const double seconds =
      std::chrono::duration<double>(WallClock::now() - start).count();

  for (const auto& s : result.studies) {
    std::printf("study %-24s seed=%llu scale=%g digest=0x%016llx "
                "events=%llu records=%llu ops=%llu\n",
                s.label.c_str(), static_cast<unsigned long long>(s.seed),
                s.scale, static_cast<unsigned long long>(s.trace_digest),
                static_cast<unsigned long long>(s.events_dispatched),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.total_ops));
  }
  std::printf("aggregate over %zu studies:\n", result.studies.size());
  for (const auto& a : result.aggregates) {
    std::printf("  %-26s mean=%.6g stddev=%.6g ci95=+-%.6g min=%.6g "
                "max=%.6g\n",
                a.name.c_str(), a.summary.mean(), a.summary.stddev(),
                a.ci95_half_width(), a.summary.min(), a.summary.max());
  }
  for (const auto& env : result.figure_envelopes) {
    // One line per figure so the envelope fold is diffable in CI too; the
    // band summary is the widest max-min spread over the grid.
    double spread = 0.0;
    for (std::size_t i = 0; i < env.size(); ++i) {
      spread = std::max(spread, env.max[i] - env.min[i]);
    }
    std::printf("figure %-24s points=%zu reps=%llu max_band=%.6g\n",
                env.name.c_str(), env.size(),
                static_cast<unsigned long long>(env.replications), spread);
  }
  const std::size_t effective_threads =
      options.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.threads;
  std::printf("campaign: %zu studies, %zu threads, %.2f s wall, "
              "%.2f studies/min\n",
              result.studies.size(), effective_threads, seconds,
              seconds > 0 ? 60.0 * static_cast<double>(
                                       result.studies.size()) / seconds
                          : 0.0);

  if (flags.has("out")) {
    const auto exported =
        core::export_campaign(result, flags.get("out", "."));
    std::printf("wrote %d campaign files to %s\n", exported.files_written,
                exported.directory.c_str());
  }
  return 0;
}
