// Subcube scheduler.
//
// The iPSC/860 space-shares the hypercube: a P-node job (P a power of two)
// gets a dimension-aligned subcube.  This is a classic buddy allocator over
// node ids; fragmentation and the FIFO queue it feeds shape Figure 1's
// concurrent-job profile.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/hypercube.hpp"

namespace charisma::workload {

class SubcubeAllocator {
 public:
  /// Manages 2^dimension nodes.
  explicit SubcubeAllocator(int dimension);

  [[nodiscard]] int dimension() const noexcept { return dimension_; }
  [[nodiscard]] std::int32_t total_nodes() const noexcept {
    return std::int32_t{1} << dimension_;
  }
  [[nodiscard]] std::int32_t free_nodes() const noexcept { return free_; }

  /// Allocates an aligned subcube of `nodes` (power of two); returns the
  /// base node id, or -1 if no aligned free subcube exists.
  [[nodiscard]] std::int32_t allocate(std::int32_t nodes);
  /// Releases a previously allocated subcube.
  void release(std::int32_t base, std::int32_t nodes);

 private:
  [[nodiscard]] static int order_of(std::int32_t nodes);

  int dimension_;
  std::int32_t free_;
  // free_lists_[k] holds base ids of free subcubes of 2^k nodes.
  std::vector<std::set<std::int32_t>> free_lists_;
};

}  // namespace charisma::workload
