// Paper-fidelity checks: measured statistics vs the published values.
//
// Each check compares one statistic measured from a trace (by the analyzers
// in this library — never echoed from the generator configuration) against
// the corresponding analysis::paper constant, with a documented absolute
// tolerance band.  The bands (EXPERIMENTS.md "Fidelity bands") bound how far
// the reproduction is allowed to drift from the paper before the regression
// suite (tests/analysis/paper_fidelity_test.cpp) fails ctest.
//
// The cache figures (Figure 8) need the cache simulators, which live above
// this library; callers that have run them pass the measured values in via
// CacheFigures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzers.hpp"
#include "analysis/session.hpp"

namespace charisma::analysis {

/// One measured-vs-published comparison.
struct FidelityCheck {
  std::string figure;  // "fig1" .. "fig9", "table1" .. "table3", "sec4.2"...
  std::string name;    // statistic, unique within the suite
  double measured = 0.0;
  double expected = 0.0;   // the paper's value
  double tolerance = 0.0;  // absolute band around `expected`

  [[nodiscard]] double delta() const noexcept { return measured - expected; }
  [[nodiscard]] bool pass() const noexcept {
    return delta() <= tolerance && -delta() <= tolerance;
  }
};

/// Figure 8 statistics measured by cache::simulate_compute_cache (one
/// buffer per node, the paper's configuration).
struct CacheFigures {
  double jobs_above_hit_rate_75 = 0.0;
  double jobs_at_zero_hit_rate = 0.0;
};

/// Runs every trace-derived check (Figures 1-7, Tables 1-3, §4.2, §4.6)
/// and, when `cache` is non-null, the Figure 8 checks.  Order is fixed and
/// code-defined.  `request_sizes` is the finished Figure 4 analysis — the
/// streaming pipeline passes its accumulator result, the materialized
/// overload below computes it from the sorted trace.
[[nodiscard]] std::vector<FidelityCheck> check_paper_fidelity(
    const SessionStore& store, const RequestSizeResult& request_sizes,
    std::int64_t block_size, const CacheFigures* cache = nullptr);

/// Convenience for materialized traces: measures the request sizes itself.
[[nodiscard]] std::vector<FidelityCheck> check_paper_fidelity(
    const SessionStore& store, const trace::SortedTrace& trace,
    std::int64_t block_size, const CacheFigures* cache = nullptr);

/// Renders the checks as an aligned table with per-row PASS/DRIFT verdicts.
[[nodiscard]] std::string render_fidelity(
    const std::vector<FidelityCheck>& checks);

}  // namespace charisma::analysis
