// CHARISMA-specific lint rules.
//
// The simulator's determinism contract (sim/engine.hpp) cannot be enforced
// by the type system: any wall-clock read, raw libc RNG, or iteration over a
// hash container in a result-producing path silently breaks the "same
// (seed, config) => same trace" guarantee that every bench depends on.  This
// engine scans source token-wise (comments and string literals blanked) for
// those hazards.  It is deliberately a heuristic, not a parser: the rules
// are tuned so the clean tree has zero findings and each hazard class is
// caught at its call site, with a NOLINT comment naming the charisma rule
// as the audited escape hatch.
//
// Rules:
//   charisma-wallclock      wall-clock reads (system_clock, time(), ...)
//   charisma-raw-random     rand()/srand()/std::random_device outside
//                           util/rng (the only sanctioned entropy source)
//   charisma-unordered-iter range-for over an unordered_map/unordered_set in
//                           an ordering-sensitive (analysis/report/export)
//                           file: hash order leaks into results
//   charisma-float-time     `float` anywhere in the simulator: simulated
//                           time and byte counts overflow a 24-bit mantissa
//   charisma-unknown-suppression  a suppression comment naming no known
//                           charisma rule (a stale escape hatch hides
//                           nothing but doubt)
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace charisma::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Path-derived rule context.
struct FileClass {
  /// util/rng is the one place allowed to talk about raw entropy sources.
  bool rng_exempt = false;
  /// Analysis/report/export/postprocess code: iteration order becomes
  /// output order, so hash-container iteration is nondeterminism.
  bool ordering_sensitive = false;
};

/// Derives the rule context from a (repo-relative or absolute) path.
[[nodiscard]] FileClass classify_path(std::string_view path);

/// Runs every rule over one translation unit's text.
[[nodiscard]] std::vector<Finding> scan_source(std::string_view file_label,
                                               std::string_view content,
                                               const FileClass& cls);

/// Scans root/{src,bench,tools} recursively (*.cpp, *.hpp), deterministic
/// file order.  Throws std::runtime_error if none of those directories
/// exists (wrong root is a usage error, not a clean tree).
[[nodiscard]] std::vector<Finding> scan_tree(const std::string& root);

/// Names of all rules, for --list-rules and suppression validation.
[[nodiscard]] const std::vector<std::string>& known_rules();

/// "path:line: [rule] message" — one line, stable across runs.
[[nodiscard]] std::string format(const Finding& f);

}  // namespace charisma::lint
