// CHARISMA-specific lint rules.
//
// The simulator's determinism contract (sim/engine.hpp) cannot be enforced
// by the type system: any wall-clock read, raw libc RNG, or iteration over a
// hash container in a result-producing path silently breaks the "same
// (seed, config) => same trace" guarantee that every bench depends on.  As
// the tree grows parallel execution paths (thread-pooled campaigns, sweep
// runners, and soon a sharded event engine), a second hazard class appears:
// shared-mutable state smuggled into worker threads through lambda captures,
// pointer-valued ordering that varies with ASLR, and float folds whose value
// depends on thread interleaving.
//
// This engine scans source in multiple passes over one token-blanked buffer
// (comments and string-literal contents blanked): token rules, a
// brace/paren-aware scope and lambda-capture analysis, a pointer-ordering
// pass, a parallel-fold pass, an include-graph layering pass, and a
// suppression audit.  It is deliberately a heuristic, not a parser: the
// rules are tuned so the clean tree has zero findings and each hazard class
// is caught at its call site, with a NOLINT comment naming the charisma rule
// as the audited escape hatch.
//
// Rules:
//   charisma-wallclock      wall-clock reads (system_clock, time(), ...)
//   charisma-raw-random     rand()/srand()/std::random_device outside
//                           util/rng (the only sanctioned entropy source)
//   charisma-unordered-iter range-for over an unordered_map/unordered_set in
//                           an ordering-sensitive (analysis/report/export)
//                           file: hash order leaks into results
//   charisma-float-time     `float` anywhere in the simulator: simulated
//                           time and byte counts overflow a 24-bit mantissa
//   charisma-shared-capture a lambda passed to ThreadPool::submit,
//                           parallel_for, or a SweepRunner entry point
//                           captures a non-const local by reference (or uses
//                           a default [&] capture): shared-mutable state
//                           escaping into a parallel region
//   charisma-pointer-order  std::map/std::set keyed on a raw pointer, or
//                           std::sort over a vector of pointers: pointer
//                           order is allocation order and varies run to run
//   charisma-parallel-fold  floating-point accumulation (+=/-=) inside a
//                           parallel_for/submit body: the fold order depends
//                           on thread interleaving; use per-index slots,
//                           util::Summary, or analysis::fold_envelopes
//   charisma-layering       a quoted #include whose target module sits above
//                           (or beside) the including file's module in the
//                           layering DAG (see layer_rank_of)
//   charisma-trace-materialize  a whole-trace std::vector<Record>
//                           materialization buffer, or a full-vector
//                           .records() accessor call, outside the trace
//                           module's reference path (or tests): the
//                           streaming pipeline's O(window) RSS guarantee
//                           dies the moment a consumer collects the record
//                           stream; push through trace::RecordSink instead
//   charisma-unknown-suppression  a suppression comment naming no known
//                           charisma rule (a stale escape hatch hides
//                           nothing but doubt)
//   charisma-unused-suppression   a suppression naming a known charisma rule
//                           on a line where that rule would not have fired
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace charisma::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Path-derived rule context.
struct FileClass {
  /// util/rng is the one place allowed to talk about raw entropy sources.
  bool rng_exempt = false;
  /// Analysis/report/export/postprocess code: iteration order becomes
  /// output order, so hash-container iteration is nondeterminism.
  bool ordering_sensitive = false;
  /// tests/lint/data fixtures are deliberately hazardous and only ever
  /// scanned by the golden tests; scan_source returns no findings for them.
  bool lint_fixture = false;
  /// The materialized-trace reference path (the trace module itself) plus
  /// tests, which build small fixture traces by hand: the only places
  /// allowed to hold a whole-trace record vector.
  bool trace_reference = false;
  /// Module the file belongs to ("util", "cfs", ..., "bench", "tests");
  /// empty when the path carries no module (layering pass disabled).
  std::string module;
  /// The module's rank in the layering DAG; -1 when unknown.
  int layer_rank = -1;
};

/// Derives the rule context from a (repo-relative or absolute) path.
[[nodiscard]] FileClass classify_path(std::string_view path);

/// Rank of a module in the layering DAG, -1 for unknown modules.  An
/// include edge is legal only toward a strictly lower rank (or inside one
/// module).  The DAG, bottom-up — a refinement of
///   util <- {net,disk,sim} <- {ipsc,cfs,trace} <- {cache,workload}
///        <- {analysis,core} <- {bench,tools} <- {tests,examples}
/// with trace above cfs because trace records speak cfs ids:
///   util=0; net,disk,sim=1; ipsc=2; cfs=3; trace=4; cache,workload=5;
///   analysis=6; core=7; bench,tools=8; tests,examples=9.
[[nodiscard]] int layer_rank_of(std::string_view module);

/// Runs every rule over one translation unit's text.
[[nodiscard]] std::vector<Finding> scan_source(std::string_view file_label,
                                               std::string_view content,
                                               const FileClass& cls);

/// Scans root/{src,bench,tools,tests,examples} recursively (*.cpp, *.hpp)
/// in deterministic file order, skipping the tests/lint/data fixtures.
/// Throws std::runtime_error if none of those directories exists (wrong
/// root is a usage error, not a clean tree).
[[nodiscard]] std::vector<Finding> scan_tree(const std::string& root);

/// Names of all rules, for --list-rules and suppression validation.
[[nodiscard]] const std::vector<std::string>& known_rules();

/// "path:line: [rule] message" — one line, stable across runs (the gcc-ish
/// default output; editors parse the path:line: prefix).
[[nodiscard]] std::string format(const Finding& f);

/// The whole findings list as a JSON array of {file, line, rule, message}
/// objects, for downstream tooling (--format=json).
[[nodiscard]] std::string format_json(const std::vector<Finding>& findings);

}  // namespace charisma::lint
