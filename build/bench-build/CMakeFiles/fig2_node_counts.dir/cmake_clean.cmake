file(REMOVE_RECURSE
  "../bench/fig2_node_counts"
  "../bench/fig2_node_counts.pdb"
  "CMakeFiles/fig2_node_counts.dir/fig2_node_counts.cpp.o"
  "CMakeFiles/fig2_node_counts.dir/fig2_node_counts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_node_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
