#include "net/hypercube.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "util/check.hpp"

namespace charisma::net {
namespace {

TEST(Hypercube, BasicProperties) {
  const Hypercube cube(7);
  EXPECT_EQ(cube.dimension(), 7);
  EXPECT_EQ(cube.node_count(), 128);
  EXPECT_TRUE(cube.contains(0));
  EXPECT_TRUE(cube.contains(127));
  EXPECT_FALSE(cube.contains(128));
  EXPECT_FALSE(cube.contains(-1));
}

TEST(Hypercube, DimensionZeroIsSingleNode) {
  const Hypercube cube(0);
  EXPECT_EQ(cube.node_count(), 1);
  EXPECT_EQ(cube.hops(0, 0), 0);
  EXPECT_EQ(cube.route(0, 0), std::vector<NodeId>{0});
}

TEST(Hypercube, HopsIsHammingDistance) {
  const Hypercube cube(7);
  EXPECT_EQ(cube.hops(0, 0), 0);
  EXPECT_EQ(cube.hops(0, 1), 1);
  EXPECT_EQ(cube.hops(0, 127), 7);
  EXPECT_EQ(cube.hops(0b1010101, 0b0101010), 7);
  EXPECT_EQ(cube.hops(5, 6), 2);
}

TEST(Hypercube, HopsIsSymmetric) {
  const Hypercube cube(5);
  for (NodeId a = 0; a < 32; a += 3) {
    for (NodeId b = 0; b < 32; b += 5) {
      EXPECT_EQ(cube.hops(a, b), cube.hops(b, a));
    }
  }
}

TEST(Hypercube, NeighborFlipsOneBit) {
  const Hypercube cube(4);
  EXPECT_EQ(cube.neighbor(0, 0), 1);
  EXPECT_EQ(cube.neighbor(0, 3), 8);
  EXPECT_EQ(cube.neighbor(cube.neighbor(5, 2), 2), 5);  // involution
  EXPECT_TRUE(cube.are_neighbors(4, 5));
  EXPECT_FALSE(cube.are_neighbors(4, 7));
  EXPECT_THROW((void)cube.neighbor(0, 4), util::CheckFailure);
}

TEST(Hypercube, DimensionFor) {
  EXPECT_EQ(Hypercube::dimension_for(1), 0);
  EXPECT_EQ(Hypercube::dimension_for(2), 1);
  EXPECT_EQ(Hypercube::dimension_for(3), 2);
  EXPECT_EQ(Hypercube::dimension_for(128), 7);
  EXPECT_EQ(Hypercube::dimension_for(129), 8);
  EXPECT_THROW(Hypercube::dimension_for(0), util::CheckFailure);
}

TEST(Hypercube, OutOfRangeThrows) {
  const Hypercube cube(3);
  EXPECT_THROW((void)cube.hops(0, 8), util::CheckFailure);
  EXPECT_THROW((void)cube.route(-1, 0), util::CheckFailure);
  EXPECT_THROW(Hypercube(-1), util::CheckFailure);
  EXPECT_THROW(Hypercube(21), util::CheckFailure);
}

class RouteProperty
    : public ::testing::TestWithParam<std::pair<NodeId, NodeId>> {};

TEST_P(RouteProperty, EcubeRouteIsValidAndMinimal) {
  const Hypercube cube(7);
  const auto [from, to] = GetParam();
  const auto path = cube.route(from, to);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), from);
  EXPECT_EQ(path.back(), to);
  EXPECT_EQ(static_cast<int>(path.size()) - 1, cube.hops(from, to));
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(cube.are_neighbors(path[i - 1], path[i]));
  }
  // E-cube corrects dimensions lowest-first: flipped bits ascend.
  int last_dim = -1;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const int dim = std::countr_zero(
        static_cast<std::uint32_t>(path[i - 1] ^ path[i]));
    EXPECT_GT(dim, last_dim);
    last_dim = dim;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RouteProperty,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(0, 127),
                      std::make_pair(127, 0), std::make_pair(5, 80),
                      std::make_pair(64, 63), std::make_pair(100, 37),
                      std::make_pair(1, 2)));

TEST(Hypercube, RouteIntoMatchesRoute) {
  const Hypercube cube(7);
  std::vector<NodeId> scratch;
  for (const auto [from, to] :
       {std::make_pair(0, 0), std::make_pair(0, 127), std::make_pair(5, 80),
        std::make_pair(100, 37)}) {
    const int hops = cube.route_into(from, to, scratch);
    EXPECT_EQ(hops, cube.hops(from, to));
    EXPECT_EQ(scratch, cube.route(from, to));
  }
}

TEST(Hypercube, RouteIntoReusesCapacity) {
  const Hypercube cube(7);
  std::vector<NodeId> scratch;
  (void)cube.route_into(0, 127, scratch);  // longest route: 8 entries
  const auto cap = scratch.capacity();
  ASSERT_GE(cap, 8u);
  (void)cube.route_into(1, 2, scratch);  // shorter route, same buffer
  EXPECT_EQ(scratch.size(), 3u);
  EXPECT_EQ(scratch.capacity(), cap);
}

TEST(Hypercube, RoutePreReservesExactly) {
  const Hypercube cube(7);
  const auto path = cube.route(0, 127);
  EXPECT_EQ(path.size(), 8u);
  // route() reserves hops+1 up front, so no growth doubling happened.
  EXPECT_EQ(path.capacity(), 8u);
}

}  // namespace
}  // namespace charisma::net
