// Ablation C: the tracing instrumentation's own perturbation (paper §3.1).
// Compares per-node 4 KB trace buffering against the rejected design of one
// collector message per event, and checks the "<1% of total traffic" claim.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();
  const auto& study = ctx.study();

  // The buffered run already happened inside the study; the unbuffered
  // message count equals the record count by construction.
  const double reduction =
      study.records > 0
          ? 1.0 - static_cast<double>(study.collector_messages) /
                      static_cast<double>(study.records)
          : 0.0;
  const double traffic_share =
      study.user_bytes_moved > 0
          ? static_cast<double>(study.trace_bytes) /
                static_cast<double>(study.user_bytes_moved)
          : 0.0;

  util::Table t({"metric", "value"});
  t.add_row({"event records generated", std::to_string(study.records)});
  t.add_row({"collector messages (4 KB node buffers)",
             std::to_string(study.collector_messages)});
  t.add_row({"collector messages (unbuffered design)",
             std::to_string(study.records)});
  t.add_row({"trace bytes written",
             util::format_bytes(study.trace_bytes)});
  t.add_row({"total disk traffic",
             util::format_bytes(study.user_bytes_moved)});
  std::printf("%s\n", t.render().c_str());

  Comparison cmp("Ablation C: trace-collection perturbation (S3.1)");
  cmp.row("message reduction from node buffering", ">90%",
          util::fmt(reduction * 100.0) + "%");
  cmp.row("trace share of total traffic", "<1%",
          util::fmt(traffic_share * 100.0, 2) + "%");
  cmp.print();
}

/// Times the instrumentation hot path: appending one record through the
/// buffered collector (the per-CFS-call overhead the paper worried about).
void BM_CollectorAppend(benchmark::State& state) {
  sim::Engine engine;
  util::Rng rng(1);
  ipsc::Machine machine(engine, ipsc::MachineConfig::nas_ames(), rng);
  trace::CollectorParams params;
  params.buffer_on_nodes = state.range(0) != 0;
  trace::Collector collector(machine, params);
  trace::Record r;
  r.kind = trace::EventKind::kRead;
  r.job = 1;
  r.file = 1;
  r.bytes = 100;
  std::int64_t i = 0;
  for (auto _ : state) {
    r.node = static_cast<cfs::NodeId>(i++ % 128);
    collector.append(r);
    if (i % 100000 == 0) {
      state.PauseTiming();
      (void)collector.take_trace();  // keep memory bounded
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CollectorAppend)->Arg(1)->Arg(0);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Ablation C (trace buffering)", charisma::bench::reproduce)
