#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace charisma::util {

void Summary::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const noexcept {
  // m2_ is nonnegative in exact arithmetic but can round a hair below zero
  // after merge(); clamp so stddev() never goes NaN.
  return n_ > 1 ? std::max(0.0, m2_) / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double ci95_half_width(const Summary& s) noexcept {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace charisma::util
