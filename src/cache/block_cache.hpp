// Trace-driven block cache with pluggable replacement.
//
// Used by the paper's three cache simulations (compute-node, I/O-node,
// combined).  Policies: LRU and FIFO (the paper's §4.8), plus the
// interprocess-aware policy the paper's §5 calls for ("replacement policies
// other than LRU or FIFO should be developed ... to optimize for
// interprocess locality") — it preferentially evicts blocks that many
// distinct nodes have already consumed, since an interleaved or broadcast
// block is dead once every party has read it.
//
// The cache is allocation-free in steady state: resident blocks live in a
// slab of intrusively linked nodes (slots reused on eviction), indexed by an
// open-addressing table sized once at construction to keep the load factor
// at or below 1/2.  The sweep runner replays the whole trace through one of
// these per configuration point, so the per-access cost — not asymptotics —
// is what the fig8/fig9/§4.8 benches actually pay.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cfs/types.hpp"

namespace charisma::cache {

using cfs::FileId;
using cfs::NodeId;

struct BlockKey {
  FileId file = cfs::kNoFile;
  std::int64_t block = 0;
  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(k.file))
                       << 40) ^
                      static_cast<std::uint64_t>(k.block);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

enum class Policy : std::uint8_t { kLru, kFifo, kInterprocessAware };

[[nodiscard]] constexpr const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kLru: return "LRU";
    case Policy::kFifo: return "FIFO";
    case Policy::kInterprocessAware: return "IP-aware";
  }
  return "?";
}

class BlockCache {
 public:
  BlockCache(std::size_t capacity, Policy policy);

  /// Touches `key` on behalf of `node`; returns true on hit.  Misses insert
  /// the block (evicting per policy when full).  capacity == 0 never hits.
  bool access(const BlockKey& key, NodeId node);

  [[nodiscard]] bool contains(const BlockKey& key) const {
    return capacity_ != 0 && slots_[probe(key)].node != kEmptySlot;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    return accesses_ ? static_cast<double>(hits_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;        // list terminator
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;  // vacant slot

  // Slab node on the intrusive recency list: front (head_) = most recent
  // (LRU) / newest (FIFO); prev points toward the front.
  struct Node {
    BlockKey key;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  // Open-addressing slot mapping a resident key to its slab node.
  struct Slot {
    BlockKey key;
    std::uint32_t node = kEmptySlot;
  };

  /// Linear-probes for `key`: returns the slot holding it, or the first
  /// empty slot of its probe chain when absent (the insertion point).
  /// Terminates because the table always has vacant slots (load <= 1/2).
  [[nodiscard]] std::size_t probe(const BlockKey& key) const {
    std::size_t i = BlockKeyHash{}(key) & mask_;
    while (slots_[i].node != kEmptySlot && !(slots_[i].key == key)) {
      i = (i + 1) & mask_;
    }
    return i;
  }
  void unlink(std::uint32_t idx);
  void push_front(std::uint32_t idx);
  /// Removes one block per policy; returns its slab index for reuse.
  std::uint32_t evict_one();
  void erase_slot_for(const BlockKey& key);

  std::size_t capacity_;
  Policy policy_;
  std::size_t mask_ = 0;  // slots_.size() - 1; slots_ is a power of two
  std::vector<Slot> slots_;
  std::vector<Node> nodes_;
  std::vector<std::unordered_set<NodeId>> accessors_;  // IP-aware only
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t accesses_ = 0;

  static constexpr std::size_t kEvictionScan = 8;  // IP-aware candidate set
};

}  // namespace charisma::cache
