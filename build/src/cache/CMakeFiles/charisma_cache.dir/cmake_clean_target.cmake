file(REMOVE_RECURSE
  "libcharisma_cache.a"
)
