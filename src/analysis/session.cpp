#include "analysis/session.hpp"

#include <algorithm>
#include <unordered_map>

namespace charisma::analysis {

double NodeAccessStats::sequential_fraction() const noexcept {
  return requests > 1
             ? static_cast<double>(sequential) / static_cast<double>(requests - 1)
             : 1.0;
}

double NodeAccessStats::consecutive_fraction() const noexcept {
  return requests > 1
             ? static_cast<double>(consecutive) / static_cast<double>(requests - 1)
             : 1.0;
}

const char* to_string(AccessClass c) noexcept {
  switch (c) {
    case AccessClass::kUntouched: return "untouched";
    case AccessClass::kReadOnly: return "read-only";
    case AccessClass::kWriteOnly: return "write-only";
    case AccessClass::kReadWrite: return "read-write";
  }
  return "?";
}

AccessClass FileSession::access_class() const noexcept {
  if (reads > 0 && writes > 0) return AccessClass::kReadWrite;
  if (reads > 0) return AccessClass::kReadOnly;
  if (writes > 0) return AccessClass::kWriteOnly;
  return AccessClass::kUntouched;
}

void merge_range(std::vector<ByteRange>& ranges, ByteRange r) {
  if (r.end <= r.begin) return;
  // Fast path: extends or follows the last range (the dominant sequential
  // case).
  if (!ranges.empty() && r.begin >= ranges.back().begin) {
    if (r.begin <= ranges.back().end) {
      ranges.back().end = std::max(ranges.back().end, r.end);
      return;
    }
    ranges.push_back(r);
    return;
  }
  // General case: find insertion point and coalesce.
  auto it = std::lower_bound(
      ranges.begin(), ranges.end(), r,
      [](const ByteRange& a, const ByteRange& b) { return a.begin < b.begin; });
  it = ranges.insert(it, r);
  // Coalesce left.
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->end >= it->begin) {
      prev->end = std::max(prev->end, it->end);
      it = ranges.erase(it);
      it = std::prev(it);
    }
  }
  // Coalesce right.
  auto next = std::next(it);
  while (next != ranges.end() && it->end >= next->begin) {
    it->end = std::max(it->end, next->end);
    next = ranges.erase(next);
  }
}

std::int64_t bytes_covered_by_at_least(
    const std::vector<const std::vector<ByteRange>*>& coverages, int k) {
  // Sweep over range endpoints counting active coverages.
  struct Edge {
    std::int64_t x;
    int delta;
  };
  std::vector<Edge> edges;
  for (const auto* cov : coverages) {
    for (const auto& r : *cov) {
      edges.push_back({r.begin, +1});
      edges.push_back({r.end, -1});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.x != b.x ? a.x < b.x : a.delta > b.delta;
  });
  std::int64_t covered = 0;
  int active = 0;
  std::int64_t last_x = 0;
  for (const auto& e : edges) {
    if (active >= k) covered += e.x - last_x;
    last_x = e.x;
    active += e.delta;
  }
  return covered;
}

namespace detail {

/// Streaming accumulator shared by the serial and parallel builds.  Feed it
/// records in trace order (per session); it owns the grown session list.
class SessionBuilder {
 public:
  explicit SessionBuilder(bool track_coverage)
      : track_coverage_(track_coverage) {}

  void add(const Record& r) {
    switch (r.kind) {
      case EventKind::kJobStart:
      case EventKind::kJobEnd: {
        JobEvent e;
        e.job = r.job;
        e.time = r.timestamp;
        e.nodes = static_cast<std::int32_t>(r.aux);
        e.start = r.kind == EventKind::kJobStart;
        job_events_.push_back(e);
        break;
      }
      case EventKind::kOpen: {
        const std::size_t si = session_of(r);
        FileSession& s = sessions_[si];
        s.mode = trace::open_mode(r.aux);
        if (r.bytes != 0) s.created_here = true;
        ++s.total_opens;
        const int now_open = ++open_now_[si];
        s.max_concurrent_opens = std::max(s.max_concurrent_opens, now_open);
        s.per_node.try_emplace(r.node);
        break;
      }
      case EventKind::kClose: {
        const std::size_t si = session_of(r);
        FileSession& s = sessions_[si];
        auto& n = open_now_[si];
        if (n > 0) --n;
        s.size_at_close = r.aux;
        s.last_close = r.timestamp;
        break;
      }
      case EventKind::kRead:
      case EventKind::kWrite: {
        FileSession& s = sessions_[session_of(r)];
        const bool is_read = r.kind == EventKind::kRead;
        if (is_read) {
          ++s.reads;
          s.bytes_read += r.bytes;
        } else {
          ++s.writes;
          s.bytes_written += r.bytes;
        }
        s.request_sizes.insert(r.bytes);
        auto& ns = s.per_node[r.node];
        if (ns.requests > 0) {
          if (r.offset > ns.last_offset) ++ns.sequential;
          if (r.offset == ns.last_end) ++ns.consecutive;
          s.interval_sizes.insert(r.offset - ns.last_end);
        }
        ++ns.requests;
        ns.last_offset = r.offset;
        ns.last_end = r.offset + r.bytes;
        if (track_coverage_) {
          merge_range(ns.coverage, {r.offset, r.offset + r.bytes});
        }
        break;
      }
      case EventKind::kSeek:
        break;  // repositioning shows up in the next request's offset
      case EventKind::kDelete: {
        sessions_[session_of(r)].deleted_here = true;
        break;
      }
    }
  }

  /// Drops coverage for single-node sessions (memory) and hands out the
  /// accumulated state.
  void finish() {
    for (auto& s : sessions_) {
      if (s.per_node.size() <= 1) {
        for (auto& [node, ns] : s.per_node) {
          ns.coverage.clear();
          ns.coverage.shrink_to_fit();
        }
      }
    }
  }

  std::vector<FileSession>& sessions() { return sessions_; }
  std::vector<JobEvent>& job_events() { return job_events_; }

 private:
  std::size_t session_of(const Record& r) {
    const auto key = std::make_pair(r.job, r.file);
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    index_.emplace(key, sessions_.size());
    FileSession s;
    s.job = r.job;
    s.file = r.file;
    s.first_open = r.timestamp;
    sessions_.push_back(std::move(s));
    return sessions_.size() - 1;
  }

  bool track_coverage_;
  std::vector<FileSession> sessions_;
  std::vector<JobEvent> job_events_;
  std::map<std::pair<JobId, FileId>, std::size_t> index_;
  std::unordered_map<std::size_t, int> open_now_;
};

}  // namespace detail

SessionAccumulator::SessionAccumulator(bool track_coverage)
    : builder_(std::make_unique<detail::SessionBuilder>(track_coverage)) {}

SessionAccumulator::~SessionAccumulator() = default;

void SessionAccumulator::on_record(const Record& r) { builder_->add(r); }

SessionStore SessionAccumulator::take(const trace::TraceHeader& header) {
  builder_->finish();
  SessionStore store;
  store.start_ = header.trace_start;
  store.end_ = header.trace_end;
  store.sessions_ = std::move(builder_->sessions());
  store.job_events_ = std::move(builder_->job_events());
  return store;
}

SessionStore::SessionStore(const trace::SortedTrace& trace,
                           bool track_coverage) {
  start_ = trace.header.trace_start;
  end_ = trace.header.trace_end;
  detail::SessionBuilder builder(track_coverage);
  for (const Record& r : trace.records) builder.add(r);
  builder.finish();
  sessions_ = std::move(builder.sessions());
  job_events_ = std::move(builder.job_events());
}

SessionStore SessionStore::build_parallel(const trace::SortedTrace& trace,
                                          util::ThreadPool& pool,
                                          bool track_coverage) {
  SessionStore store;
  store.start_ = trace.header.trace_start;
  store.end_ = trace.header.trace_end;

  // Pass 1 (serial): job events, plus a per-shard index of the records each
  // worker will consume.  Sharding by (job, file) keeps every session's
  // stream whole and ordered within one shard.  The shard count is a fixed
  // constant — NOT the pool width — so the merged session order (and thus
  // any output derived from it) is identical no matter how many threads
  // execute the shards.
  constexpr std::size_t shards = 64;
  std::vector<std::vector<std::uint32_t>> shard_records(shards);
  for (std::uint32_t i = 0; i < trace.records.size(); ++i) {
    const Record& r = trace.records[i];
    if (r.kind == EventKind::kJobStart || r.kind == EventKind::kJobEnd) {
      JobEvent e;
      e.job = r.job;
      e.time = r.timestamp;
      e.nodes = static_cast<std::int32_t>(r.aux);
      e.start = r.kind == EventKind::kJobStart;
      store.job_events_.push_back(e);
      continue;
    }
    const auto h = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.job)) *
             0x9e3779b97f4a7c15ULL ^
         static_cast<std::uint32_t>(r.file)) %
        shards);
    shard_records[h].push_back(i);
  }

  // Pass 2 (parallel): independent builders per shard.
  std::vector<detail::SessionBuilder> builders;
  builders.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    builders.emplace_back(track_coverage);
  }
  // Audited: each worker owns builders[s] and shard_records[s] for exactly
  // one shard index — no two iterations share a slot.
  // NOLINTNEXTLINE(charisma-shared-capture)
  util::parallel_for(pool, shards, [&](std::size_t s) {
    for (const std::uint32_t i : shard_records[s]) {
      builders[s].add(trace.records[i]);
    }
    builders[s].finish();
  });

  // Merge: shard session sets are disjoint by construction.
  std::size_t total = 0;
  for (auto& b : builders) total += b.sessions().size();
  store.sessions_.reserve(total);
  for (auto& b : builders) {
    for (auto& s : b.sessions()) store.sessions_.push_back(std::move(s));
  }
  return store;
}

std::set<std::pair<JobId, FileId>> SessionStore::read_only_sessions() const {
  std::set<std::pair<JobId, FileId>> out;
  for (const auto& s : sessions_) {
    if (s.access_class() == AccessClass::kReadOnly) {
      out.emplace(s.job, s.file);
    }
  }
  return out;
}

}  // namespace charisma::analysis
