# Empty compiler generated dependencies file for ipsc_tests.
# This may be replaced when dependencies are built.
