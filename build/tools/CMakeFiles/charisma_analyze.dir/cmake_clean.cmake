file(REMOVE_RECURSE
  "CMakeFiles/charisma_analyze.dir/charisma_analyze.cpp.o"
  "CMakeFiles/charisma_analyze.dir/charisma_analyze.cpp.o.d"
  "charisma_analyze"
  "charisma_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
