#include "trace/record.hpp"

#include <cstring>
#include <sstream>

namespace charisma::trace {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kJobStart: return "JOB_START";
    case EventKind::kJobEnd: return "JOB_END";
    case EventKind::kOpen: return "OPEN";
    case EventKind::kClose: return "CLOSE";
    case EventKind::kRead: return "READ";
    case EventKind::kWrite: return "WRITE";
    case EventKind::kSeek: return "SEEK";
    case EventKind::kDelete: return "DELETE";
  }
  return "?";
}

namespace {
template <typename T>
void put(std::uint8_t*& p, T v) noexcept {
  std::memcpy(p, &v, sizeof v);  // host little-endian (x86-64)
  p += sizeof v;
}
template <typename T>
T take(const std::uint8_t*& p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof v);
  p += sizeof v;
  return v;
}
}  // namespace

void Record::encode(std::uint8_t* out) const noexcept {
  std::uint8_t* p = out;
  put<std::int64_t>(p, timestamp);
  put<std::int64_t>(p, offset);
  put<std::int64_t>(p, bytes);
  put<std::int64_t>(p, aux);
  put<std::int32_t>(p, job);
  put<std::int32_t>(p, file);
  put<std::int16_t>(p, static_cast<std::int16_t>(node));
  put<std::uint8_t>(p, static_cast<std::uint8_t>(kind));
  put<std::uint8_t>(p, mode);
  static_assert(Record::kEncodedSize == 8 * 4 + 4 * 2 + 2 + 1 + 1);
}

Record Record::decode(const std::uint8_t* in) noexcept {
  const std::uint8_t* p = in;
  Record r;
  r.timestamp = take<std::int64_t>(p);
  r.offset = take<std::int64_t>(p);
  r.bytes = take<std::int64_t>(p);
  r.aux = take<std::int64_t>(p);
  r.job = take<std::int32_t>(p);
  r.file = take<std::int32_t>(p);
  r.node = take<std::int16_t>(p);
  r.kind = static_cast<EventKind>(take<std::uint8_t>(p));
  r.mode = take<std::uint8_t>(p);
  return r;
}

std::string Record::debug_string() const {
  std::ostringstream out;
  out << to_string(kind) << " t=" << timestamp << " job=" << job
      << " node=" << node << " file=" << file << " off=" << offset
      << " bytes=" << bytes << " aux=" << aux;
  return out.str();
}

}  // namespace charisma::trace
