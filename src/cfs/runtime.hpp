// CfsRuntime: the assembled file system — metadata layer plus one IoNode
// server per machine I/O node.  Clients (one per compute node) share it.
#pragma once

#include <memory>
#include <vector>

#include "cfs/file_system.hpp"
#include "cfs/io_node.hpp"
#include "ipsc/machine.hpp"

namespace charisma::cfs {

struct RuntimeParams {
  FileSystemParams fs;
  IoNodeParams io;
};

class Runtime {
 public:
  /// Builds a CFS over the machine's I/O nodes.  `params.fs.io_nodes` is
  /// overwritten with the machine's I/O-node count.
  Runtime(ipsc::Machine& machine, RuntimeParams params = {});

  [[nodiscard]] ipsc::Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] FileSystem& fs() noexcept { return fs_; }
  [[nodiscard]] const FileSystem& fs() const noexcept { return fs_; }
  [[nodiscard]] IoNode& io_node(int i);
  [[nodiscard]] int io_node_count() const noexcept {
    return static_cast<int>(io_nodes_.size());
  }

 private:
  ipsc::Machine* machine_;
  FileSystem fs_;
  std::vector<std::unique_ptr<IoNode>> io_nodes_;
};

}  // namespace charisma::cfs
