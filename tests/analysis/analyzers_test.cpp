#include "analysis/analyzers.hpp"

#include <gtest/gtest.h>

namespace charisma::analysis {
namespace {

using trace::EventKind;

trace::Record rec(EventKind kind, cfs::JobId job, cfs::NodeId node,
                  cfs::FileId file, std::int64_t offset = 0,
                  std::int64_t bytes = 0, std::int64_t aux = 0,
                  util::MicroSec t = 0) {
  trace::Record r;
  r.kind = kind;
  r.job = job;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  r.aux = aux;
  r.timestamp = t;
  return r;
}

trace::Record job_event(bool start, cfs::JobId job, std::int32_t nodes,
                        util::MicroSec t) {
  auto r = rec(start ? EventKind::kJobStart : EventKind::kJobEnd, job,
               trace::kServiceNode, cfs::kNoFile);
  r.aux = nodes;
  r.timestamp = t;
  return r;
}

TEST(JobConcurrency, ComputesTimeAtEachLevel) {
  trace::SortedTrace t;
  t.header.trace_start = 0;
  t.header.trace_end = 100;
  // [0,10) idle, [10,40) one job, [40,60) two jobs, [60,80) one, [80,100) idle
  t.records = {
      job_event(true, 1, 4, 10),
      job_event(true, 2, 8, 40),
      job_event(false, 1, 4, 60),
      job_event(false, 2, 8, 80),
  };
  const SessionStore store(t);
  const auto r = analyze_job_concurrency(store);
  EXPECT_NEAR(r.time_fraction[0], 0.3, 1e-9);
  EXPECT_NEAR(r.time_fraction[1], 0.5, 1e-9);
  EXPECT_NEAR(r.time_fraction[2], 0.2, 1e-9);
  EXPECT_NEAR(r.idle_fraction, 0.3, 1e-9);
  EXPECT_NEAR(r.multiprogrammed_fraction, 0.2, 1e-9);
  EXPECT_EQ(r.max_concurrent, 2);
  EXPECT_FALSE(r.render().empty());
}

TEST(JobConcurrency, EmptyTraceIsSafe) {
  trace::SortedTrace t;
  const SessionStore store(t);
  const auto r = analyze_job_concurrency(store);
  EXPECT_TRUE(r.time_fraction.empty());
}

TEST(NodeCounts, DistributionAndUsageShares) {
  trace::SortedTrace t;
  t.records = {
      job_event(true, 1, 1, 0),    job_event(false, 1, 1, 100),
      job_event(true, 2, 1, 0),    job_event(false, 2, 1, 100),
      job_event(true, 3, 64, 0),   job_event(false, 3, 64, 100),
  };
  const SessionStore store(t);
  const auto r = analyze_node_counts(store);
  EXPECT_EQ(r.total_jobs, 3);
  EXPECT_EQ(r.jobs_by_nodes.at(1), 2);
  EXPECT_EQ(r.jobs_by_nodes.at(64), 1);
  EXPECT_NEAR(r.single_node_job_fraction, 2.0 / 3.0, 1e-9);
  // 64-node job dominates node-time: 6400 of 6600 node-units.
  EXPECT_NEAR(r.large_job_usage_share, 6400.0 / 6600.0, 1e-9);
}

TEST(FileSizes, CdfOverSizeAtClose) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 10000),
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kClose, 1, 0, 2, 0, 0, 500000),
  };
  const SessionStore store(t);
  const auto r = analyze_file_sizes(store);
  EXPECT_EQ(r.files, 2);
  EXPECT_DOUBLE_EQ(r.cdf.at(10000), 0.5);
  EXPECT_DOUBLE_EQ(r.cdf.at(500000), 1.0);
  EXPECT_NEAR(r.fraction_between_10k_1m, 0.5, 1e-9);
}

TEST(RequestSizes, SplitsCountsAndBytes) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kRead, 1, 0, 1, 100, 100),
      rec(EventKind::kRead, 1, 0, 1, 200, 1000000),
      rec(EventKind::kWrite, 1, 0, 2, 0, 3999),
      rec(EventKind::kWrite, 1, 0, 2, 3999, 4000),
  };
  const auto r = analyze_request_sizes(t);
  EXPECT_EQ(r.read_requests, 3u);
  EXPECT_EQ(r.write_requests, 2u);
  EXPECT_EQ(r.bytes_read, 1000200);
  EXPECT_NEAR(r.small_read_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.small_read_data_fraction, 200.0 / 1000200.0, 1e-9);
  EXPECT_NEAR(r.small_write_fraction, 0.5, 1e-9);  // 4000 is NOT < 4000
}

TEST(Sequentiality, ClassifiesPerFile) {
  trace::SortedTrace t;
  t.records = {
      // File 1: read-only, fully consecutive.
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kRead, 1, 0, 1, 100, 100),
      rec(EventKind::kClose, 1, 0, 1),
      // File 2: read-only, sequential but never consecutive.
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kRead, 1, 0, 2, 0, 100),
      rec(EventKind::kRead, 1, 0, 2, 500, 100),
      rec(EventKind::kRead, 1, 0, 2, 900, 100),
      rec(EventKind::kClose, 1, 0, 2),
      // File 3: single request -> excluded.
      rec(EventKind::kOpen, 1, 0, 3),
      rec(EventKind::kRead, 1, 0, 3, 0, 100),
      rec(EventKind::kClose, 1, 0, 3),
      // File 4: write-only non-sequential.
      rec(EventKind::kOpen, 1, 0, 4),
      rec(EventKind::kWrite, 1, 0, 4, 500, 100),
      rec(EventKind::kWrite, 1, 0, 4, 0, 100),
      rec(EventKind::kClose, 1, 0, 4),
  };
  const SessionStore store(t);
  const auto r = analyze_sequentiality(store);
  EXPECT_EQ(r.read_only.files, 2);
  EXPECT_NEAR(r.read_only.fully_sequential, 1.0, 1e-9);
  EXPECT_NEAR(r.read_only.fully_consecutive, 0.5, 1e-9);
  EXPECT_NEAR(r.read_only.zero_consecutive, 0.5, 1e-9);
  EXPECT_EQ(r.write_only.files, 1);
  EXPECT_NEAR(r.write_only.zero_sequential, 1.0, 1e-9);
}

TEST(Sharing, ByteAndBlockGranularity) {
  trace::SortedTrace t;
  t.records = {
      // File 1: two nodes, concurrently open, disjoint halves of one block.
      rec(EventKind::kOpen, 1, 0, 1, 0, 0, 0, 1),
      rec(EventKind::kOpen, 1, 1, 1, 0, 0, 0, 2),
      rec(EventKind::kRead, 1, 0, 1, 0, 2048, 0, 3),
      rec(EventKind::kRead, 1, 1, 1, 2048, 2048, 0, 4),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 0, 5),
      rec(EventKind::kClose, 1, 1, 1, 0, 0, 0, 6),
      // File 2: both nodes read everything (fully byte-shared).
      rec(EventKind::kOpen, 1, 0, 2, 0, 0, 0, 1),
      rec(EventKind::kOpen, 1, 1, 2, 0, 0, 0, 2),
      rec(EventKind::kRead, 1, 0, 2, 0, 8192, 0, 3),
      rec(EventKind::kRead, 1, 1, 2, 0, 8192, 0, 4),
      rec(EventKind::kClose, 1, 0, 2, 0, 0, 0, 5),
      rec(EventKind::kClose, 1, 1, 2, 0, 0, 0, 6),
  };
  const SessionStore store(t);
  const auto r = analyze_sharing(store, 4096);
  EXPECT_EQ(r.read_only.files, 2);
  EXPECT_NEAR(r.read_only.fully_byte_shared, 0.5, 1e-9);
  EXPECT_NEAR(r.read_only.no_bytes_shared, 0.5, 1e-9);
  // File 1 is 0% byte-shared but 100% block-shared (one 4 KB block).
  EXPECT_NEAR(r.read_only.fully_block_shared, 1.0, 1e-9);
}

TEST(Sharing, NonConcurrentFilesExcluded) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1, 0, 0, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100, 0, 2),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 0, 3),
      rec(EventKind::kOpen, 1, 1, 1, 0, 0, 0, 4),
      rec(EventKind::kRead, 1, 1, 1, 0, 100, 0, 5),
      rec(EventKind::kClose, 1, 1, 1, 0, 0, 0, 6),
  };
  const SessionStore store(t);
  const auto r = analyze_sharing(store, 4096);
  EXPECT_EQ(r.read_only.files, 0);
}

TEST(FilesPerJob, BucketsAndMax) {
  trace::SortedTrace t;
  // Job 1 opens 1 file; job 2 opens 4; job 3 opens 6.
  for (int f = 0; f < 1; ++f) t.records.push_back(rec(EventKind::kOpen, 1, 0, f));
  for (int f = 10; f < 14; ++f) t.records.push_back(rec(EventKind::kOpen, 2, 0, f));
  for (int f = 20; f < 26; ++f) t.records.push_back(rec(EventKind::kOpen, 3, 0, f));
  const SessionStore store(t);
  const auto r = analyze_files_per_job(store);
  EXPECT_EQ(r.buckets[0], 1);
  EXPECT_EQ(r.buckets[3], 1);
  EXPECT_EQ(r.buckets[4], 1);
  EXPECT_EQ(r.traced_jobs_with_files, 3);
  EXPECT_EQ(r.max_files_one_job, 6);
}

TEST(Intervals, BucketsByDistinctCount) {
  trace::SortedTrace t;
  t.records = {
      // File 1: one access per node -> 0 intervals.
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kClose, 1, 0, 1),
      // File 2: consecutive -> 1 interval (0).
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kWrite, 1, 0, 2, 0, 100),
      rec(EventKind::kWrite, 1, 0, 2, 100, 100),
      rec(EventKind::kClose, 1, 0, 2),
      // File 3: bursts with a fixed skip -> 2 intervals {0, 200}.
      rec(EventKind::kOpen, 1, 0, 3),
      rec(EventKind::kRead, 1, 0, 3, 0, 100),
      rec(EventKind::kRead, 1, 0, 3, 100, 100),
      rec(EventKind::kRead, 1, 0, 3, 400, 100),
      rec(EventKind::kRead, 1, 0, 3, 500, 100),
      rec(EventKind::kClose, 1, 0, 3),
      // File 4: untouched -> excluded entirely.
      rec(EventKind::kOpen, 1, 0, 4),
      rec(EventKind::kClose, 1, 0, 4),
  };
  const SessionStore store(t);
  const auto r = analyze_intervals(store);
  EXPECT_EQ(r.total_files, 3);
  EXPECT_EQ(r.buckets[0], 1);
  EXPECT_EQ(r.buckets[1], 1);
  EXPECT_EQ(r.buckets[2], 1);
  EXPECT_NEAR(r.one_interval_consecutive_share, 1.0, 1e-9);
}

TEST(RequestRegularity, CountsDistinctSizes) {
  trace::SortedTrace t;
  t.records = {
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kWrite, 1, 0, 1, 0, 512),
      rec(EventKind::kWrite, 1, 0, 1, 512, 100),
      rec(EventKind::kWrite, 1, 0, 1, 612, 100),
      rec(EventKind::kClose, 1, 0, 1),
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kClose, 1, 0, 2),
  };
  const SessionStore store(t);
  const auto r = analyze_request_regularity(store);
  EXPECT_EQ(r.total_files, 2);
  EXPECT_EQ(r.buckets[0], 1);  // untouched has 0 sizes
  EXPECT_EQ(r.buckets[2], 1);  // {512, 100}
  EXPECT_NEAR(r.one_or_two_sizes_share, 0.5, 1e-9);
}

TEST(FilePopulation, CountsAndMeans) {
  trace::SortedTrace t;
  auto created = rec(EventKind::kOpen, 1, 0, 1);
  created.bytes = 1;
  t.records = {
      created,
      rec(EventKind::kWrite, 1, 0, 1, 0, 1000),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 1000),
      rec(EventKind::kDelete, 1, 0, 1),
      rec(EventKind::kOpen, 1, 0, 2),
      rec(EventKind::kRead, 1, 0, 2, 0, 3000),
      rec(EventKind::kClose, 1, 0, 2, 0, 0, 5000),
  };
  const SessionStore store(t);
  const auto r = analyze_file_population(store);
  EXPECT_EQ(r.sessions, 2);
  EXPECT_EQ(r.write_only, 1);
  EXPECT_EQ(r.read_only, 1);
  EXPECT_EQ(r.temporary, 1);
  EXPECT_NEAR(r.temporary_fraction, 0.5, 1e-9);
  EXPECT_NEAR(r.mean_bytes_read_per_read_file, 3000.0, 1e-9);
  EXPECT_NEAR(r.mean_bytes_written_per_write_file, 1000.0, 1e-9);
}

TEST(ModeUsage, CountsModes) {
  trace::SortedTrace t;
  auto open0 = rec(EventKind::kOpen, 1, 0, 1);
  open0.aux = trace::pack_open_aux(cfs::kRead, cfs::IoMode::kIndependent);
  auto open1 = rec(EventKind::kOpen, 1, 0, 2);
  open1.aux = trace::pack_open_aux(cfs::kRead, cfs::IoMode::kOrdered);
  t.records = {open0, rec(EventKind::kClose, 1, 0, 1), open1,
               rec(EventKind::kClose, 1, 0, 2)};
  const SessionStore store(t);
  const auto r = analyze_mode_usage(store);
  EXPECT_EQ(r.sessions_by_mode[0], 1);
  EXPECT_EQ(r.sessions_by_mode[2], 1);
  EXPECT_NEAR(r.mode0_fraction, 0.5, 1e-9);
}

TEST(Renderers, ProduceNonEmptyOutput) {
  trace::SortedTrace t;
  t.records = {
      job_event(true, 1, 2, 0),
      rec(EventKind::kOpen, 1, 0, 1),
      rec(EventKind::kRead, 1, 0, 1, 0, 100),
      rec(EventKind::kClose, 1, 0, 1, 0, 0, 100),
      job_event(false, 1, 2, 50),
  };
  const SessionStore store(t);
  EXPECT_FALSE(analyze_node_counts(store).render().empty());
  EXPECT_FALSE(analyze_file_sizes(store).render().empty());
  EXPECT_FALSE(analyze_request_sizes(t).render().empty());
  EXPECT_FALSE(analyze_sequentiality(store).render().empty());
  EXPECT_FALSE(analyze_sharing(store, 4096).render().empty());
  EXPECT_FALSE(analyze_files_per_job(store).render().empty());
  EXPECT_FALSE(analyze_intervals(store).render().empty());
  EXPECT_FALSE(analyze_request_regularity(store).render().empty());
  EXPECT_FALSE(analyze_file_population(store).render().empty());
  EXPECT_FALSE(analyze_mode_usage(store).render().empty());
}

}  // namespace
}  // namespace charisma::analysis
