#include "trace/postprocess.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace charisma::trace {

MicroSec ClockFit::apply(MicroSec local) const noexcept {
  return static_cast<MicroSec>(
      std::llround(scale * static_cast<double>(local) + offset));
}

namespace {

struct FitAcc {
  double sum_l = 0, sum_g = 0, sum_ll = 0, sum_lg = 0;
  std::size_t n = 0;
};

// Shared by both fit_clocks overloads: TraceBlock and SpillBlock expose the
// same stamp fields, which are all the least-squares fit consumes.
template <typename Blocks>
std::unordered_map<NodeId, ClockFit> fit_clocks_from(const Blocks& blocks) {
  // Ordered map: the fitting loop below iterates, and iteration order must
  // not depend on hash layout (charisma-unordered-iter).
  std::map<NodeId, FitAcc> accs;
  for (const auto& b : blocks) {
    auto& a = accs[b.node];
    const auto l = static_cast<double>(b.sent_local);
    const auto g = static_cast<double>(b.recv_global);
    a.sum_l += l;
    a.sum_g += g;
    a.sum_ll += l * l;
    a.sum_lg += l * g;
    ++a.n;
  }
  std::unordered_map<NodeId, ClockFit> fits;
  for (const auto& [node, a] : accs) {
    ClockFit fit;
    fit.samples = a.n;
    const auto n = static_cast<double>(a.n);
    const double denom = n * a.sum_ll - a.sum_l * a.sum_l;
    if (a.n >= 2 && std::abs(denom) > 1e-6) {
      fit.scale = (n * a.sum_lg - a.sum_l * a.sum_g) / denom;
      // Clock rates are within a few hundred ppm of unity; a wilder fit
      // means the samples were degenerate (e.g. all at one instant).
      if (fit.scale < 0.99 || fit.scale > 1.01) fit.scale = 1.0;
      fit.offset = (a.sum_g - fit.scale * a.sum_l) / n;
    } else if (a.n >= 1) {
      fit.scale = 1.0;
      fit.offset = (a.sum_g - a.sum_l) / n;
    }
    fits.emplace(node, fit);
  }
  return fits;
}

/// Per-cursor landing slot for one background-prefetched block.
struct PrefetchSlot {
  enum class State { kIdle, kPending, kReady };
  State state = State::kIdle;
  std::size_t block = 0;  // trace.blocks index the slot is (to be) holding
  std::vector<Record> buf;
};

/// One background reader with its own payload stream, keeping at most one
/// decoded next-block per cursor in flight.  Requests are only ever issued
/// for the block a cursor will need next, so a slot is always either idle or
/// dedicated to exactly that block.
class BlockPrefetcher {
 public:
  explicit BlockPrefetcher(const SpilledTrace& trace)
      : trace_(trace),
        in_(trace.open_payload()),
        thread_([this] { loop(); }) {}

  ~BlockPrefetcher() {
    {
      const util::MutexLock lock(mutex_);
      done_ = true;
    }
    work_cv_.notify_all();
    thread_.join();
  }

  BlockPrefetcher(const BlockPrefetcher&) = delete;
  BlockPrefetcher& operator=(const BlockPrefetcher&) = delete;

  void request(PrefetchSlot& slot, std::size_t block) {
    {
      const util::MutexLock lock(mutex_);
      if (!error_.empty()) return;  // surfaced by the next take()
      slot.state = PrefetchSlot::State::kPending;
      slot.block = block;
      queue_.push_back(&slot);
    }
    work_cv_.notify_one();
  }

  /// True when `slot` holds (or is about to hold) `block`: swaps its records
  /// into `out`, waiting out an in-flight read and charging the wait to
  /// `wait_ms`.  False when nothing was prefetched for this block.
  bool take(PrefetchSlot& slot, std::size_t block, std::vector<Record>& out,
            double& wait_ms) {
    const util::MutexLock lock(mutex_);
    if (slot.state == PrefetchSlot::State::kIdle || slot.block != block) {
      return false;
    }
    const util::Stopwatch sw;
    while (slot.state == PrefetchSlot::State::kPending && error_.empty()) {
      ready_cv_.wait(mutex_);
    }
    wait_ms += sw.elapsed_ms();
    if (!error_.empty()) throw std::runtime_error(error_);
    std::swap(out, slot.buf);
    slot.buf.clear();
    slot.state = PrefetchSlot::State::kIdle;
    return true;
  }

 private:
  void loop() {
    for (;;) {
      PrefetchSlot* slot = nullptr;
      std::size_t block = 0;
      {
        const util::MutexLock lock(mutex_);
        while (queue_.empty() && !done_) work_cv_.wait(mutex_);
        if (queue_.empty()) return;
        slot = queue_.front();
        queue_.pop_front();
        block = slot->block;
      }
      try {
        // The slot's buffer is never touched by the merge thread while the
        // slot is pending (take() waits), so filling a local vector first
        // and publishing under the lock keeps the window minimal.
        std::vector<Record> buf;
        trace_.read_block(block, in_, buf);
        const util::MutexLock lock(mutex_);
        slot->buf = std::move(buf);
        slot->state = PrefetchSlot::State::kReady;
      } catch (const std::exception& e) {
        const util::MutexLock lock(mutex_);
        error_ = e.what();
        ready_cv_.notify_all();
        return;
      }
      ready_cv_.notify_all();
    }
  }

  const SpilledTrace& trace_;
  std::ifstream in_;
  util::Mutex mutex_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any ready_cv_;
  std::deque<PrefetchSlot*> queue_ CHARISMA_GUARDED_BY(mutex_);
  bool done_ CHARISMA_GUARDED_BY(mutex_) = false;
  std::string error_ CHARISMA_GUARDED_BY(mutex_);
  std::thread thread_;
};

/// Records handed to every sink per timed batch: large enough to amortize
/// the stopwatch and the per-sink virtual dispatch, small enough to stay
/// cache-resident.  Batching is order-preserving per sink, and sinks are
/// independent of each other, so outputs are bit-identical to per-record
/// dispatch.
constexpr std::size_t kSinkBatch = 1024;

}  // namespace

std::unordered_map<NodeId, ClockFit> fit_clocks(const TraceFile& trace) {
  return fit_clocks_from(trace.blocks);
}

std::unordered_map<NodeId, ClockFit> fit_clocks(const SpilledTrace& trace) {
  return fit_clocks_from(trace.blocks);
}

SortedTrace postprocess(const TraceFile& trace) {
  const auto fits = fit_clocks(trace);
  SortedTrace out;
  out.header = trace.header;
  out.records.reserve(trace.record_count());

  // The global sort is a stable k-way merge of one run per node, not a
  // stable_sort over the whole array: the collector enforces monotone
  // per-node record times, blocks land in trace.blocks in flush order, and
  // ClockFit::apply is a monotone map, so each node's records — read across
  // its blocks in order — are already sorted by (corrected time, position
  // in the concatenated block stream).  Merging with that exact key yields
  // the same output a stable_sort by corrected time would, in one pass
  // instead of log(n) merge passes over every record.
  struct Cursor {
    // (block, concatenated offset of its first record), in flush order.
    std::vector<std::pair<const TraceBlock*, std::size_t>> blocks;
    std::size_t bi = 0;  // current block
    std::size_t ri = 0;  // next record within it
    const ClockFit* fit = nullptr;
  };
  // Ordered map: heap seeding below iterates (charisma-unordered-iter).
  std::map<NodeId, Cursor> cursors;
  std::size_t offset = 0;
  for (const auto& b : trace.blocks) {
    if (!b.records.empty()) cursors[b.node].blocks.emplace_back(&b, offset);
    offset += b.records.size();
  }

  struct Head {
    MicroSec ts = 0;       // corrected timestamp of the cursor's record
    std::size_t idx = 0;   // its concatenated position (stability key)
    Cursor* cur = nullptr;
  };
  const auto later = [](const Head& a, const Head& b) noexcept {
    return a.ts != b.ts ? a.ts > b.ts : a.idx > b.idx;
  };
  const auto head_of = [](Cursor& c) noexcept {
    const auto& [block, start] = c.blocks[c.bi];
    const Record& r = block->records[c.ri];
    const MicroSec ts =
        c.fit != nullptr ? c.fit->apply(r.timestamp) : r.timestamp;
    return Head{ts, start + c.ri, &c};
  };

  std::vector<Head> heap;
  heap.reserve(cursors.size());
  for (auto& [node, c] : cursors) {
    const auto it = fits.find(node);
    c.fit = it == fits.end() ? nullptr : &it->second;
    heap.push_back(head_of(c));
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Head h = heap.back();
    heap.pop_back();
    Cursor& c = *h.cur;
    const TraceBlock* block = c.blocks[c.bi].first;
    Record r = block->records[c.ri];
    r.timestamp = h.ts;
    out.records.push_back(r);
    if (++c.ri == block->records.size()) {
      c.ri = 0;
      ++c.bi;
    }
    if (c.bi < c.blocks.size()) {
      const Head next = head_of(c);
      DCHECK(next.ts >= h.ts, "node ", block->node,
             " produced non-monotone corrected times: ", next.ts, " after ",
             h.ts);
      heap.push_back(next);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return out;
}

std::uint64_t stream_postprocess(const SpilledTrace& trace,
                                 const std::vector<RecordSink*>& sinks,
                                 const StreamMergeOptions& options) {
  StreamMergeStats local_stats;
  StreamMergeStats& stats =
      options.stats != nullptr ? *options.stats : local_stats;
  stats = StreamMergeStats{};
  const auto fits = fit_clocks(trace);

  // Same merge as postprocess(), same key — (corrected time, position in
  // the concatenated block stream) — but each cursor holds only its current
  // block's decoded records, read back from the spill file on demand, so the
  // resident set is one block per node regardless of trace length.
  struct Cursor {
    // (block index into trace.blocks, concatenated offset of its first
    // record), in flush order.
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    std::size_t bi = 0;  // current block
    std::size_t ri = 0;  // next record within it
    const ClockFit* fit = nullptr;
    std::vector<Record> buf;  // current block's records
    PrefetchSlot slot;        // the background-prefetched next block
  };
  // Ordered map: heap seeding below iterates (charisma-unordered-iter).
  std::map<NodeId, Cursor> cursors;
  std::size_t offset = 0;
  bool any_disk = false;
  for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
    const SpillBlock& b = trace.blocks[i];
    if (b.count > 0) cursors[b.node].blocks.emplace_back(i, offset);
    offset += b.count;
    any_disk = any_disk || !b.in_memory();
  }

  std::ifstream in = trace.open_payload();
  // Prefetching only pays for blocks that hit the file; an all-resident
  // trace (the default-budget case) stays entirely thread-free.
  std::unique_ptr<BlockPrefetcher> prefetcher;
  if (options.prefetch && any_disk) {
    prefetcher = std::make_unique<BlockPrefetcher>(trace);
  }
  const auto load_current = [&](Cursor& c) {
    const std::size_t block = c.blocks[c.bi].first;
    const SpillBlock& meta = trace.blocks[block];
    if (meta.in_memory()) {
      ++stats.mem_blocks;
    } else {
      ++stats.disk_blocks;
      stats.disk_bytes_read += static_cast<std::int64_t>(meta.count) *
                               static_cast<std::int64_t>(Record::kEncodedSize);
    }
    bool loaded = false;
    if (prefetcher != nullptr && !meta.in_memory()) {
      loaded = prefetcher->take(c.slot, block, c.buf, stats.read_ms);
    }
    if (!loaded) {
      const util::Stopwatch sw;
      trace.read_block(block, in, c.buf);
      stats.read_ms += sw.elapsed_ms();
    }
    // Keep exactly one disk block in flight behind this cursor.
    if (prefetcher != nullptr && c.bi + 1 < c.blocks.size()) {
      const std::size_t next = c.blocks[c.bi + 1].first;
      if (!trace.blocks[next].in_memory()) prefetcher->request(c.slot, next);
    }
  };

  struct Head {
    MicroSec ts = 0;       // corrected timestamp of the cursor's record
    std::size_t idx = 0;   // its concatenated position (stability key)
    Cursor* cur = nullptr;
  };
  const auto later = [](const Head& a, const Head& b) noexcept {
    return a.ts != b.ts ? a.ts > b.ts : a.idx > b.idx;
  };
  const auto head_of = [](Cursor& c) noexcept {
    const Record& r = c.buf[c.ri];
    const MicroSec ts =
        c.fit != nullptr ? c.fit->apply(r.timestamp) : r.timestamp;
    return Head{ts, c.blocks[c.bi].second + c.ri, &c};
  };

  std::vector<Head> heap;
  heap.reserve(cursors.size());
  for (auto& [node, c] : cursors) {
    const auto it = fits.find(node);
    c.fit = it == fits.end() ? nullptr : &it->second;
    load_current(c);
    heap.push_back(head_of(c));
  }
  std::make_heap(heap.begin(), heap.end(), later);

  // Corrected records are staged into a batch and handed to each sink in
  // order: every sink still sees the exact merged sequence, but the virtual
  // dispatch and the sink-time stopwatch amortize over kSinkBatch records.
  std::vector<Record> batch;
  batch.reserve(kSinkBatch);
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    const util::Stopwatch sw;
    for (RecordSink* sink : sinks) {
      for (const Record& r : batch) sink->on_record(r);
    }
    stats.sink_ms += sw.elapsed_ms();
    batch.clear();
  };

  std::uint64_t pushed = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Head h = heap.back();
    heap.pop_back();
    Cursor& c = *h.cur;
    Record r = c.buf[c.ri];
    r.timestamp = h.ts;
    batch.push_back(r);
    if (batch.size() >= kSinkBatch) flush_batch();
    ++pushed;
    if (++c.ri == c.buf.size()) {
      c.ri = 0;
      ++c.bi;
      if (c.bi < c.blocks.size()) load_current(c);
    }
    if (c.bi < c.blocks.size()) {
      const Head next = head_of(c);
      DCHECK(next.ts >= h.ts,
             "a node produced non-monotone corrected times: ", next.ts,
             " after ", h.ts);
      heap.push_back(next);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  flush_batch();
  return pushed;
}

std::uint64_t count_order_inversions(
    const std::vector<MicroSec>& true_times,
    const std::vector<MicroSec>& estimated_times) {
  const std::size_t n = true_times.size();
  if (n != estimated_times.size() || n < 2) return 0;
  // Order events by estimated time (stable), then count inversions of the
  // true-time sequence with a merge sort.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return estimated_times[a] < estimated_times[b];
                   });
  std::vector<MicroSec> seq(n);
  for (std::size_t i = 0; i < n; ++i) seq[i] = true_times[order[i]];

  std::uint64_t inversions = 0;
  std::vector<MicroSec> tmp(n);
  const std::function<void(std::size_t, std::size_t)> sort_count =
      [&](std::size_t lo, std::size_t hi) {
        if (hi - lo < 2) return;
        const std::size_t mid = lo + (hi - lo) / 2;
        sort_count(lo, mid);
        sort_count(mid, hi);
        std::size_t i = lo, j = mid, k = lo;
        while (i < mid && j < hi) {
          if (seq[i] <= seq[j]) {
            tmp[k++] = seq[i++];
          } else {
            inversions += mid - i;
            tmp[k++] = seq[j++];
          }
        }
        while (i < mid) tmp[k++] = seq[i++];
        while (j < hi) tmp[k++] = seq[j++];
        std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                  tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                  seq.begin() + static_cast<std::ptrdiff_t>(lo));
      };
  sort_count(0, n);
  return inversions;
}

}  // namespace charisma::trace
