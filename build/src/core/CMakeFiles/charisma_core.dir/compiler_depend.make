# Empty compiler generated dependencies file for charisma_core.
# This may be replaced when dependencies are built.
