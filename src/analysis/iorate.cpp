#include "analysis/iorate.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace charisma::analysis {

IoRateAccumulator::IoRateAccumulator(util::MicroSec trace_start,
                                     util::MicroSec trace_end,
                                     const IoRateConfig& config)
    : start_(trace_start), end_(trace_end) {
  util::check(config.bucket > 0, "bucket width must be positive");
  out_.bucket_width = config.bucket;
}

void IoRateAccumulator::on_record(const trace::Record& r) {
  saw_any_ = true;
  end_ = std::max(end_, r.timestamp);
  if (!r.is_data() || r.bytes <= 0) return;
  // Corrected timestamps can land before trace_start; those clamp into the
  // first bucket.  Nothing lands past end_ because end_ tracks the maximum,
  // so growing the timeline to the record's bucket is the only upper bound
  // needed — finish() pads the quiet tail out to end_.
  const auto i = static_cast<std::size_t>(std::max<util::MicroSec>(
      (r.timestamp - start_) / out_.bucket_width, 0));
  if (i >= out_.timeline.size()) out_.timeline.resize(i + 1);
  auto& b = out_.timeline[i];
  ++b.requests;
  if (r.kind == trace::EventKind::kRead) {
    b.bytes_read += r.bytes;
  } else {
    b.bytes_written += r.bytes;
  }
}

IoRateResult IoRateAccumulator::finish() {
  if (!saw_any_) {
    out_.timeline.clear();
    return std::move(out_);
  }
  const auto buckets = static_cast<std::size_t>(
      (end_ - start_) / out_.bucket_width + 1);
  out_.timeline.resize(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    out_.timeline[i].start =
        start_ + static_cast<util::MicroSec>(i) * out_.bucket_width;
  }

  const double seconds =
      static_cast<double>(out_.bucket_width) / util::kSecond;
  double total_mb = 0.0;
  std::size_t quiet = 0;
  for (const auto& b : out_.timeline) {
    const double mb =
        static_cast<double>(b.bytes_read + b.bytes_written) / 1e6;
    total_mb += mb;
    out_.peak_mb_per_s = std::max(out_.peak_mb_per_s, mb / seconds);
    if (b.requests == 0) ++quiet;
  }
  out_.mean_mb_per_s = total_mb / (static_cast<double>(buckets) * seconds);
  out_.quiet_fraction =
      static_cast<double>(quiet) / static_cast<double>(buckets);
  return std::move(out_);
}

IoRateResult analyze_io_rate(const trace::SortedTrace& trace,
                             const IoRateConfig& config) {
  // Reference wrapper over the streaming accumulator: one code path for
  // both trace modes.
  IoRateAccumulator acc(trace.header.trace_start, trace.header.trace_end,
                        config);
  for (const auto& r : trace.records) acc.on_record(r);
  return acc.finish();
}

std::string IoRateResult::render() const {
  std::ostringstream s;
  s << timeline.size() << " buckets of "
    << util::format_duration(bucket_width) << ": mean "
    << util::fmt(mean_mb_per_s, 3) << " MB/s, peak "
    << util::fmt(peak_mb_per_s, 2) << " MB/s (burstiness "
    << util::fmt(burstiness()) << "x), "
    << util::format_percent(quiet_fraction) << " of buckets quiet\n";
  return s.str();
}

}  // namespace charisma::analysis
