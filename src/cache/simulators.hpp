// The paper's trace-driven cache simulations.
//
//  * Compute-node simulation (Figure 8): per-node caches of one-block
//    read-only buffers with LRU replacement; a hit is a read fully
//    satisfied locally (no I/O-node message).  Reported as a CDF of
//    per-job hit rates.
//  * I/O-node simulation (Figure 9): 4 KB buffers split evenly over N I/O
//    nodes, LRU or FIFO (or our IP-aware policy, ablation B); files assumed
//    striped round-robin at one-block granularity.
//  * Combined simulation (§4.8): one-block compute-node buffers in front of
//    the I/O-node caches; measures how much intraprocess locality the
//    front caches strip from the I/O-node stream.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "cache/block_cache.hpp"
#include "trace/postprocess.hpp"
#include "util/histogram.hpp"
#include "util/thread_pool.hpp"

namespace charisma::cache {

using cfs::JobId;
using SessionKey = std::pair<JobId, FileId>;

namespace detail {

/// One replayable data request, pre-filtered from the trace: only reads and
/// writes with positive byte counts survive, and the read-only-session
/// lookup is resolved once instead of per (config, record).
struct ReplayOp {
  FileId file = cfs::kNoFile;
  JobId job = cfs::kNoJob;
  NodeId node = 0;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  bool is_read = false;
  bool read_only_session = false;
};

[[nodiscard]] std::vector<ReplayOp> prepare_replay(
    const trace::SortedTrace& trace, const std::set<SessionKey>& read_only);

}  // namespace detail

// ---- Figure 8 -------------------------------------------------------------

struct ComputeCacheConfig {
  std::size_t buffers_per_node = 1;
  std::int64_t block_size = util::kBlockSize;
};

struct ComputeCacheResult {
  std::vector<double> job_hit_rates;  // jobs with >= 1 eligible read
  util::Cdf hit_rate_cdf;
  double fraction_jobs_zero = 0.0;
  double fraction_jobs_above_75 = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] double overall_hit_rate() const noexcept {
    return reads ? static_cast<double>(hits) / static_cast<double>(reads)
                 : 0.0;
  }
};

/// `read_only` restricts caching to read-only sessions, as the paper did
/// (write caching would need a consistency protocol).
[[nodiscard]] ComputeCacheResult simulate_compute_cache(
    const trace::SortedTrace& trace, const std::set<SessionKey>& read_only,
    const ComputeCacheConfig& config);

// ---- Figure 9 / §4.8 -------------------------------------------------------

struct IoNodeSimConfig {
  int io_nodes = 10;
  std::size_t total_buffers = 4000;  // split evenly over the I/O nodes
  Policy policy = Policy::kLru;
  std::int64_t block_size = util::kBlockSize;
  /// > 0 adds per-compute-node read-only front caches (§4.8).
  std::size_t compute_buffers_per_node = 0;
};

struct IoNodeSimResult {
  /// Requests reaching the I/O nodes; a request is a hit when every block
  /// it touches is already cached (it needs no disk I/O anywhere).
  std::uint64_t requests = 0;
  std::uint64_t request_hits = 0;
  std::uint64_t block_accesses = 0;
  std::uint64_t block_hits = 0;
  std::uint64_t filtered_by_compute = 0;  // requests absorbed up front
  double hit_rate = 0.0;        // request-level (the paper's Figure 9 axis)
  double block_hit_rate = 0.0;  // block-level, for the ablation commentary

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] IoNodeSimResult simulate_io_cache(
    const trace::SortedTrace& trace, const std::set<SessionKey>& read_only,
    const IoNodeSimConfig& config);

// ---- Parameter sweeps ------------------------------------------------------

/// Fans independent cache-simulation replays of one immutable trace out
/// over a thread pool (each (size, policy, prefetch) point replays the whole
/// trace, so points are embarrassingly parallel).  Results always come back
/// in configuration order, making the output invariant under the pool's
/// thread count — the sweep benches and the perf harness depend on that.
///
/// The trace is pre-filtered once (detail::prepare_replay) so the per-point
/// replay touches only data requests and never repeats the read-only-session
/// set lookups; with tens of sweep points this alone is a measurable win
/// even single-threaded.
class SweepRunner {
 public:
  /// Borrows all three references; they must outlive the runner.
  SweepRunner(const trace::SortedTrace& trace,
              const std::set<SessionKey>& read_only, util::ThreadPool& pool);

  /// Figure 8 points, one result per config, in config order.
  [[nodiscard]] std::vector<ComputeCacheResult> run_compute(
      const std::vector<ComputeCacheConfig>& configs) const;
  /// Figure 9 / §4.8 points, one result per config, in config order.
  [[nodiscard]] std::vector<IoNodeSimResult> run_io(
      const std::vector<IoNodeSimConfig>& configs) const;

  [[nodiscard]] std::size_t replay_ops() const noexcept {
    return prepared_.size();
  }

 private:
  std::vector<detail::ReplayOp> prepared_;
  util::ThreadPool* pool_;
};

}  // namespace charisma::cache
