// The streaming (bounded-memory) study runner — TraceMode::kStreaming.
//
// Runs the identical simulation as run_study, but the collector spills raw
// trace blocks to disk as they flush instead of accumulating a TraceFile,
// and the postprocessing merge pushes each record — once, in corrected
// chronological order — through bounded-state sinks: the session detector,
// the request-size and I/O-rate accumulators, and the cache sweeps' replay-
// op spill.  Nothing ever holds the whole trace: peak RSS is the simulation
// itself plus the k-way merge window, independent of trace length.
//
// Every statistic is bit-identical to the materialized path because the
// sinks ARE the implementation the materialized analyzers call, the merge
// uses the same ordering key as trace::postprocess, and the spilled bytes
// are the same encoding TraceFile::write emits (so the digest matches too —
// the streaming differential test holds both modes to one digest).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/analyzers.hpp"
#include "analysis/iorate.hpp"
#include "analysis/session.hpp"
#include "cache/replay.hpp"
#include "core/study.hpp"

namespace charisma::core {

struct StreamOptions {
  /// Directory for the two spill files (raw trace blocks, replay ops).
  /// Empty picks $TMPDIR, falling back to /tmp.
  std::string spill_dir;
  /// Spill the cache sweeps' replay ops during the merge.  Off skips the op
  /// file entirely (pure-characterization runs that never simulate caches).
  bool collect_replay_ops = true;
  /// Forwarded to the session detector (sharing analysis needs it).
  bool track_coverage = true;
};

/// What the streaming study keeps resident: headline counters, the
/// accumulators' finished results, and the on-disk replay-op spill — never
/// the trace.
struct StreamedStudyOutput {
  trace::TraceHeader header;
  /// TraceFile::digest()-compatible digest of the spilled raw trace.
  std::uint64_t trace_digest = 0;
  /// Records pushed through the postprocessing merge (== records).
  std::uint64_t streamed_records = 0;

  analysis::SessionStore sessions;
  analysis::RequestSizeResult request_sizes;
  analysis::IoRateResult io_rate;
  /// Unresolved-flag replay ops for SweepRunner; empty when
  /// StreamOptions::collect_replay_ops was off.  Pair it with
  /// sessions.read_only_sessions().
  cache::ReplayOpSpill replay_ops;

  std::vector<workload::JobResult> jobs;
  workload::GeneratedWorkload workload;

  // Perturbation accounting — field-for-field the StudyOutput counters.
  std::uint64_t records = 0;
  std::uint64_t collector_messages = 0;
  std::int64_t trace_bytes = 0;
  std::int64_t user_bytes_moved = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t events_dispatched = 0;
  util::MicroSec sim_end = 0;
  int engine_threads = 1;
  sim::ShardStats shard_stats;
};

/// Runs the full study in streaming mode.  Deterministic in `config`; the
/// spill files are private, uniquely named, and deleted before returning
/// (except the replay-op spill, which the output owns).
[[nodiscard]] StreamedStudyOutput run_streamed_study(
    const StudyConfig& config, const StreamOptions& options = {});

/// Unique spill-file path in `dir` (or the temp directory when empty):
/// pid + process-wide counter, so concurrent campaign workers and
/// concurrent CI processes never collide.
[[nodiscard]] std::string spill_file_path(const std::string& dir,
                                          const char* tag);

}  // namespace charisma::core
