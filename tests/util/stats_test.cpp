#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace charisma::util {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Summary, MatchesDirectComputation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 100};
  Summary s;
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), m2 / (static_cast<double>(xs.size()) - 1), 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(Summary, StddevIsSqrtVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(Ci95HalfWidth, DefinedForEveryCount) {
  // Regression: fewer than two replications must yield a defined
  // zero-width interval, never NaN — campaign aggregates and the
  // per-figure envelope fold both ride on this.
  Summary none;
  EXPECT_EQ(ci95_half_width(none), 0.0);

  Summary one;
  one.add(0.37);
  EXPECT_EQ(ci95_half_width(one), 0.0);
  EXPECT_FALSE(std::isnan(ci95_half_width(one)));

  Summary two;
  two.add(1.0);
  two.add(3.0);  // stddev = sqrt(2)
  EXPECT_NEAR(ci95_half_width(two), 1.96 * std::sqrt(2.0) / std::sqrt(2.0),
              1e-12);
}

TEST(Summary, VarianceNeverGoesNegative) {
  // Welford's m2 can round slightly below zero after merging summaries of
  // near-identical values; stddev() must stay finite.
  Summary a, b;
  for (int i = 0; i < 100; ++i) {
    a.add(1.0 + 1e-15);
    b.add(1.0 - 1e-15);
  }
  a.merge(b);
  EXPECT_GE(a.variance(), 0.0);
  EXPECT_FALSE(std::isnan(a.stddev()));
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.add(3.0);
  const Summary before = a;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

class MergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeProperty, MergeEqualsSequential) {
  Rng rng(GetParam());
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 5.0);
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty,
                         ::testing::Values(3, 17, 23, 91));

}  // namespace
}  // namespace charisma::util
