#include "trace/collector.hpp"

#include <gtest/gtest.h>

#include "trace/instrumented_client.hpp"
#include "util/check.hpp"

namespace charisma::trace {
namespace {

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : rng_(1), machine_(engine_, ipsc::MachineConfig::tiny(), rng_) {}

  Record data_record(NodeId node) {
    Record r;
    r.kind = EventKind::kRead;
    r.node = node;
    r.job = 1;
    r.file = 1;
    r.bytes = 100;
    return r;
  }

  sim::Engine engine_;
  util::Rng rng_;
  ipsc::Machine machine_;
};

TEST_F(CollectorTest, BuffersUntilFragmentFull) {
  Collector collector(machine_);
  const std::size_t per_buffer = util::kBlockSize / Record::kEncodedSize;
  for (std::size_t i = 0; i + 1 < per_buffer; ++i) {
    collector.append(data_record(0));
  }
  EXPECT_EQ(collector.messages_to_collector(), 0u);
  collector.append(data_record(0));  // fills the buffer
  EXPECT_EQ(collector.messages_to_collector(), 1u);
  EXPECT_EQ(collector.records_seen(), per_buffer);
}

TEST_F(CollectorTest, UnbufferedSendsOneMessagePerRecord) {
  CollectorParams params;
  params.buffer_on_nodes = false;
  Collector collector(machine_, params);
  for (int i = 0; i < 10; ++i) collector.append(data_record(0));
  EXPECT_EQ(collector.messages_to_collector(), 10u);
}

TEST_F(CollectorTest, BufferingCutsMessagesByOver90Percent) {
  // The paper's §3.1 claim, as an invariant of the design.
  const std::size_t per_buffer = util::kBlockSize / Record::kEncodedSize;
  EXPECT_GT(per_buffer, 10u);  // >90% reduction when buffers fill
}

TEST_F(CollectorTest, RecordsCarryLocalClockTime) {
  Collector collector(machine_);
  engine_.run_until(1'000'000);
  collector.append(data_record(3));
  collector.flush_all();
  const TraceFile t = collector.take_trace();
  ASSERT_EQ(t.record_count(), 1u);
  const MicroSec expected = machine_.clock(3).local_time(1'000'000);
  EXPECT_EQ(t.blocks[0].records[0].timestamp, expected);
}

TEST_F(CollectorTest, BlocksCarryDoubleTimestamps) {
  Collector collector(machine_);
  engine_.run_until(500'000);
  collector.append(data_record(5));
  collector.flush_all();
  const TraceFile t = collector.take_trace();
  ASSERT_EQ(t.blocks.size(), 1u);
  EXPECT_EQ(t.blocks[0].node, 5);
  EXPECT_EQ(t.blocks[0].sent_local, machine_.clock(5).local_time(500'000));
  EXPECT_GT(t.blocks[0].recv_global, 500'000);  // network latency applied
}

TEST_F(CollectorTest, JobEventsBypassBuffersAndUseReferenceClock) {
  Collector collector(machine_);
  engine_.run_until(42'000);
  Record start;
  start.kind = EventKind::kJobStart;
  start.job = 9;
  start.node = 3;  // overridden: job events come from the service node
  start.aux = 16;
  collector.append_job_event(start);
  const TraceFile t = collector.take_trace();
  ASSERT_EQ(t.record_count(), 1u);
  EXPECT_EQ(t.blocks[0].records[0].timestamp, 42'000);
  EXPECT_EQ(t.blocks[0].records[0].node, kServiceNode);
  EXPECT_EQ(t.blocks[0].sent_local, t.blocks[0].recv_global);
}

TEST_F(CollectorTest, FlushAllDrainsPartialBuffers) {
  Collector collector(machine_);
  collector.append(data_record(0));
  collector.append(data_record(1));
  collector.flush_all();
  const TraceFile t = collector.take_trace();
  EXPECT_EQ(t.record_count(), 2u);
  EXPECT_EQ(t.blocks.size(), 2u);  // one partial block per node
}

TEST_F(CollectorTest, TakeTraceResetsState) {
  Collector collector(machine_);
  collector.append(data_record(0));
  (void)collector.take_trace();
  const TraceFile empty = collector.take_trace();
  EXPECT_EQ(empty.record_count(), 0u);
}

TEST_F(CollectorTest, TraceBytesAccounted) {
  Collector collector(machine_);
  const std::size_t per_buffer = util::kBlockSize / Record::kEncodedSize;
  for (std::size_t i = 0; i < per_buffer * 20; ++i) {
    collector.append(data_record(static_cast<NodeId>(i % 4)));
  }
  collector.flush_all();
  EXPECT_GT(collector.trace_bytes_written(), 0);
  EXPECT_GT(collector.collector_cfs_writes(), 0u);
}

TEST_F(CollectorTest, RejectsUnknownNodes) {
  Collector collector(machine_);
  EXPECT_THROW(collector.append(data_record(1000)), util::CheckFailure);
}

}  // namespace
}  // namespace charisma::trace
