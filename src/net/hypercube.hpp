// Hypercube interconnect topology (the iPSC/860 network).
//
// Nodes are numbered 0 .. 2^d - 1; two nodes are neighbors iff their ids
// differ in exactly one bit.  Messages follow e-cube (dimension-ordered)
// routes, which is what the iPSC's Direct-Connect modules implemented.
#pragma once

#include <cstdint>
#include <vector>

namespace charisma::net {

using NodeId = std::int32_t;

class Hypercube {
 public:
  /// A hypercube of the given dimension (0 <= dimension <= 20).
  explicit Hypercube(int dimension);

  [[nodiscard]] int dimension() const noexcept { return dimension_; }
  [[nodiscard]] NodeId node_count() const noexcept {
    return NodeId{1} << dimension_;
  }
  [[nodiscard]] bool contains(NodeId n) const noexcept {
    return n >= 0 && n < node_count();
  }

  /// Number of links on the e-cube route (Hamming distance).  This is the
  /// only routing query the timing model needs — MessageModel and the
  /// machine's tap arithmetic all price messages from the hop count alone,
  /// so no hot path ever materializes a route vector (see route()).
  [[nodiscard]] int hops(NodeId from, NodeId to) const;
  /// Neighbor across dimension `dim`.
  [[nodiscard]] NodeId neighbor(NodeId n, int dim) const;
  [[nodiscard]] bool are_neighbors(NodeId a, NodeId b) const;
  /// Full e-cube route, endpoints included: from, ..., to.  Pre-reserves
  /// exactly hops+1 entries.  Callers that only need the route length must
  /// use hops() instead.
  [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const;
  /// Allocation-free variant: clears `out` and writes the route into it,
  /// reusing its capacity.  Returns the hop count (out.size() - 1).
  int route_into(NodeId from, NodeId to, std::vector<NodeId>& out) const;

  /// Smallest dimension whose cube holds at least `nodes` nodes.
  static int dimension_for(NodeId nodes);

 private:
  int dimension_;
};

}  // namespace charisma::net
