#include "cache/block_cache.hpp"

#include "util/check.hpp"

namespace charisma::cache {

BlockCache::BlockCache(std::size_t capacity, Policy policy)
    : capacity_(capacity), policy_(policy) {}

bool BlockCache::access(const BlockKey& key, NodeId node) {
  ++accesses_;
  if (capacity_ == 0) return false;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    if (policy_ != Policy::kFifo) {
      // LRU and IP-aware promote on hit; FIFO keeps insertion order.
      order_.splice(order_.begin(), order_, it->second.order_it);
    }
    if (policy_ == Policy::kInterprocessAware) {
      it->second.accessors.insert(node);
    }
    return true;
  }
  if (entries_.size() >= capacity_) evict_one();
  order_.push_front(key);
  Entry e;
  e.order_it = order_.begin();
  if (policy_ == Policy::kInterprocessAware) e.accessors.insert(node);
  const bool inserted = entries_.emplace(key, std::move(e)).second;
  CHECK(inserted, "double-insert of block (file=", key.file,
        ", block=", key.block, ") into ", to_string(policy_), " cache");
  CHECK(entries_.size() <= capacity_, "cache occupancy ", entries_.size(),
        " exceeds capacity ", capacity_);
  DCHECK(order_.size() == entries_.size(),
         "recency list out of sync with entry map");
  return false;
}

void BlockCache::evict_one() {
  if (order_.empty()) return;
  if (policy_ != Policy::kInterprocessAware) {
    entries_.erase(order_.back());
    order_.pop_back();
    return;
  }
  // IP-aware: among the coldest few blocks, evict the one consumed by the
  // most distinct nodes — its interprocess reuse is behind it.
  auto victim = std::prev(order_.end());
  std::size_t victim_nodes = entries_.at(*victim).accessors.size();
  auto it = victim;
  for (std::size_t scanned = 1;
       scanned < kEvictionScan && it != order_.begin(); ++scanned) {
    --it;
    const std::size_t n = entries_.at(*it).accessors.size();
    if (n > victim_nodes) {
      victim = it;
      victim_nodes = n;
    }
  }
  entries_.erase(*victim);
  order_.erase(victim);
}

}  // namespace charisma::cache
