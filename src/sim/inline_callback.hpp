// A move-only, small-buffer-optimized callable for engine events.
//
// std::function<void()> keeps only ~16 bytes of capture inline on the
// common ABIs, so the simulator's bread-and-butter event — a driver step
// capturing [this, run, rank] — heap-allocates on every schedule.  At
// millions of events per study that malloc/free pair dominates the engine's
// cost.  InlineCallback keeps captures up to kInlineSize bytes in the event
// itself and only falls back to the heap beyond that.
//
// Deliberately narrower than std::function: move-only (events are consumed
// exactly once), no target introspection, and invocation is non-const.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace charisma::sim {

class InlineCallback {
 public:
  /// Capture budget chosen to fit the driver's step closures (a pointer, a
  /// shared_ptr, an index) with headroom, while keeping the engine's Event
  /// (at + seq + callback) at exactly one 64-byte cache line; see
  /// docs/performance.md.
  static constexpr std::size_t kInlineSize = 40;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit, like std::function
  InlineCallback(F&& fn) {
    if constexpr (stored_inline<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      relocate_from(other);
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this == &other) return *this;
    reset();
    if (other.vtable_ != nullptr) {
      vtable_ = other.vtable_;
      relocate_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Whether the target lives in the inline buffer (no heap allocation).
  /// Exposed so tests can pin down the size budget.
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

  void operator()() {
    DCHECK(vtable_ != nullptr, "invoking an empty InlineCallback");
    vtable_->invoke(buffer_);
  }

 private:
  struct VTable {
    void (*invoke)(void* target);
    /// Move-constructs dst from src and destroys src (both raw buffers).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* target) noexcept;
    bool inline_storage;
    /// Relocation is equivalent to memcpy-ing the buffer: the target is a
    /// trivially copyable inline capture, or a heap pointer.  The dominant
    /// event closures capture only pointers and indices, so the queues'
    /// element shuffling (bucket inserts, heap sifts, pops) takes a branch
    /// plus a fixed-size copy instead of an indirect call per move.
    bool trivially_relocatable;
    /// Destruction is a no-op (inline, trivially destructible target), so
    /// reset() — which runs once per dispatched event — can skip the
    /// indirect destroy call.
    bool trivially_destructible;
  };

  // Inline storage additionally requires a nothrow move so relocation (used
  // by container growth and queue surgery) can never half-move an event.
  template <typename D>
  static constexpr bool stored_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* t) { (*static_cast<D*>(t))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* t) noexcept { static_cast<D*>(t)->~D(); },
      /*inline_storage=*/true,
      /*trivially_relocatable=*/std::is_trivially_copyable_v<D>,
      /*trivially_destructible=*/std::is_trivially_destructible_v<D>,
  };

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* t) { (**static_cast<D* const*>(t))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* t) noexcept { delete *static_cast<D**>(t); },
      /*inline_storage=*/false,
      /*trivially_relocatable=*/true,  // relocation moves only the pointer
      /*trivially_destructible=*/false,  // must delete the heap target
  };

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivially_destructible) vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

  /// Takes other's target; vtable_ must already equal other.vtable_ (and be
  /// non-null).  Copying the full buffer keeps the memcpy length a compile
  /// time constant; the tail beyond the target's size is dead bytes of our
  /// own storage.
  void relocate_from(InlineCallback& other) noexcept {
    if (vtable_->trivially_relocatable) {
      std::memcpy(buffer_, other.buffer_, kInlineSize);
    } else {
      vtable_->relocate(buffer_, other.buffer_);
    }
    other.vtable_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char buffer_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace charisma::sim
