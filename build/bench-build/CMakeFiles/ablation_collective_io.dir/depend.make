# Empty dependencies file for ablation_collective_io.
# This may be replaced when dependencies are built.
