#include "core/campaign.hpp"

#include <cmath>
#include <sstream>

#include "analysis/analyzers.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace charisma::core {

namespace {

/// The aggregated statistics, in report order.  A fixed table (not a map)
/// keeps the aggregate order code-defined and hash-free.
struct StatField {
  const char* name;
  double (*get)(const StudySummary&);
};

constexpr StatField kStatFields[] = {
    {"events_dispatched",
     [](const StudySummary& s) {
       return static_cast<double>(s.events_dispatched);
     }},
    {"records", [](const StudySummary& s) {
       return static_cast<double>(s.records);
     }},
    {"total_ops", [](const StudySummary& s) {
       return static_cast<double>(s.total_ops);
     }},
    {"sim_end_seconds", [](const StudySummary& s) {
       return static_cast<double>(s.sim_end) / 1e6;
     }},
    {"idle_fraction", [](const StudySummary& s) { return s.idle_fraction; }},
    {"multiprogrammed_fraction",
     [](const StudySummary& s) { return s.multiprogrammed_fraction; }},
    {"single_node_job_fraction",
     [](const StudySummary& s) { return s.single_node_job_fraction; }},
    {"small_read_fraction",
     [](const StudySummary& s) { return s.small_read_fraction; }},
    {"small_write_fraction",
     [](const StudySummary& s) { return s.small_write_fraction; }},
    {"temporary_fraction",
     [](const StudySummary& s) { return s.temporary_fraction; }},
    {"mode0_fraction",
     [](const StudySummary& s) { return s.mode0_fraction; }},
};

std::string format_scale(double scale) {
  std::ostringstream os;
  os << scale;
  return os.str();
}

}  // namespace

double AggregateStat::ci95_half_width() const noexcept {
  if (summary.count() < 2) return 0.0;
  return 1.96 * summary.stddev() /
         std::sqrt(static_cast<double>(summary.count()));
}

StudySummary summarize_study(const std::string& label,
                             const StudyConfig& config,
                             const StudyOutput& output) {
  StudySummary s;
  s.label = label;
  s.seed = config.workload.seed;
  s.scale = config.workload.scale;
  s.trace_digest = output.raw.digest();
  s.events_dispatched = output.events_dispatched;
  s.records = output.records;
  s.total_ops = output.total_ops;
  s.sim_end = output.sim_end;

  // The serial SessionStore constructor on purpose: campaign workers
  // already saturate the pool one study per thread, so nesting the
  // parallel builder would only add contention.
  const analysis::SessionStore store(output.sorted);
  const auto concurrency = analysis::analyze_job_concurrency(store);
  s.idle_fraction = concurrency.idle_fraction;
  s.multiprogrammed_fraction = concurrency.multiprogrammed_fraction;
  s.single_node_job_fraction =
      analysis::analyze_node_counts(store).single_node_job_fraction;
  const auto requests = analysis::analyze_request_sizes(output.sorted);
  s.small_read_fraction = requests.small_read_fraction;
  s.small_write_fraction = requests.small_write_fraction;
  s.temporary_fraction =
      analysis::analyze_file_population(store).temporary_fraction;
  s.mode0_fraction = analysis::analyze_mode_usage(store).mode0_fraction;
  return s;
}

std::vector<AggregateStat> aggregate_campaign(
    const std::vector<StudySummary>& studies) {
  std::vector<AggregateStat> out;
  out.reserve(std::size(kStatFields));
  for (const auto& field : kStatFields) {
    AggregateStat stat;
    stat.name = field.name;
    for (const auto& s : studies) stat.summary.add(field.get(s));
    out.push_back(std::move(stat));
  }
  return out;
}

CampaignResult CampaignRunner::run(
    const std::vector<CampaignStudy>& studies) const {
  CampaignResult result;
  result.studies.resize(studies.size());
  const auto run_one = [&](std::size_t i) {
    const CampaignStudy& study = studies[i];
    const StudyOutput output = run_study(study.config);
    // Distinct indices: workers never touch the same slot, and the output
    // order matches the input order whatever the schedule was.
    result.studies[i] = summarize_study(study.label, study.config, output);
  };
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < studies.size(); ++i) run_one(i);
  } else {
    util::ThreadPool pool(options_.threads);
    util::parallel_for(pool, studies.size(), run_one);
  }
  result.aggregates = aggregate_campaign(result.studies);
  return result;
}

std::vector<CampaignStudy> seed_replications(const StudyConfig& base,
                                             std::size_t n,
                                             const std::string& prefix) {
  std::vector<CampaignStudy> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CampaignStudy study;
    study.config = base;
    study.config.workload.seed = base.workload.seed + i;
    study.label =
        prefix + "seed" + std::to_string(study.config.workload.seed);
    out.push_back(std::move(study));
  }
  return out;
}

std::vector<CampaignStudy> scale_sweep(
    const StudyConfig& base, const std::vector<double>& scales,
    const std::vector<std::uint64_t>& seeds) {
  CHECK(!scales.empty() && !seeds.empty(),
        "scale_sweep needs at least one scale and one seed");
  std::vector<CampaignStudy> out;
  out.reserve(scales.size() * seeds.size());
  for (const double scale : scales) {
    for (const std::uint64_t seed : seeds) {
      CampaignStudy study;
      study.config = base;
      study.config.workload.scale = scale;
      study.config.workload.seed = seed;
      study.label = "scale" + format_scale(scale) + "_seed" +
                    std::to_string(seed);
      out.push_back(std::move(study));
    }
  }
  return out;
}

}  // namespace charisma::core
