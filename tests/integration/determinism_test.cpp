// The determinism self-check: the engine's contract says a (seed, config)
// pair always produces the identical event interleaving, so the same study
// run twice must yield byte-identical traces.  Every figure and table bench
// silently depends on this; here it is asserted mechanically via the trace
// digest (an order-sensitive hash of the on-disk encoding).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/study.hpp"

namespace charisma {
namespace {

constexpr double kScale = 0.05;  // small but exercises every subsystem

TEST(Determinism, SameSeedSameConfigYieldsByteIdenticalTraces) {
  const auto first = core::run_study_at_scale(kScale, 1234);
  const auto second = core::run_study_at_scale(kScale, 1234);

  ASSERT_GT(first.raw.record_count(), 0u);
  EXPECT_EQ(first.raw.record_count(), second.raw.record_count());
  EXPECT_EQ(first.raw.blocks.size(), second.raw.blocks.size());
  EXPECT_EQ(first.sim_end, second.sim_end);
  EXPECT_EQ(first.raw.digest(), second.raw.digest());

  // The postprocessed (clock-corrected, sorted) view must agree too.
  ASSERT_EQ(first.sorted.records.size(), second.sorted.records.size());
  for (std::size_t i = 0; i < first.sorted.records.size(); ++i) {
    std::uint8_t a[trace::Record::kEncodedSize];
    std::uint8_t b[trace::Record::kEncodedSize];
    first.sorted.records[i].encode(a);
    second.sorted.records[i].encode(b);
    ASSERT_EQ(std::memcmp(a, b, sizeof a), 0) << "record " << i << " differs";
  }
}

TEST(Determinism, DifferentSeedsYieldDifferentTraces) {
  const auto first = core::run_study_at_scale(kScale, 1);
  const auto second = core::run_study_at_scale(kScale, 2);
  EXPECT_NE(first.raw.digest(), second.raw.digest());
}

TEST(Determinism, DigestSurvivesSerializationRoundTrip) {
  const auto study = core::run_study_at_scale(kScale, 7);
  const std::string path =
      ::testing::TempDir() + "charisma_determinism.chtr";
  study.raw.write(path);
  const auto reread = trace::TraceFile::read(path);
  std::remove(path.c_str());
  EXPECT_EQ(study.raw.digest(), reread.digest());
  EXPECT_EQ(study.raw.record_count(), reread.record_count());
}

}  // namespace
}  // namespace charisma
