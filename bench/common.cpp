#include "common.hpp"

#include "util/check.hpp"

namespace charisma::bench {

Context& Context::instance() {
  static Context ctx;
  return ctx;
}

void Context::configure(double scale, std::uint64_t seed,
                        std::size_t threads) {
  // Regression guard: configure() used to only record the parameters, so a
  // second call after the study was built was silently ignored and the
  // caller kept measuring the old (scale, seed).  Now every call tears the
  // built state down so the next accessor rebuilds under the new
  // configuration.
  scale_ = scale;
  seed_ = seed;
  threads_ = threads;
  configured_ = true;
  built_ = false;
  sweeps_.reset();  // borrows read_only_ and pool_; must go first
  read_only_.reset();
  store_.reset();
  study_.reset();
  pool_.reset();
}

void Context::ensure() {
  CHECK(configured_, "bench::Context used before configure()");
  if (built_) return;
  std::printf("[charisma] running study at scale %.3f (seed %llu)...\n",
              scale_, static_cast<unsigned long long>(seed_));
  std::fflush(stdout);
  study_ = core::run_study_at_scale(scale_, seed_);
  store_.emplace(analysis::SessionStore::build_parallel(study_->sorted,
                                                        pool()));
  read_only_ = store_->read_only_sessions();
  sweeps_.emplace(study_->sorted, *read_only_, pool());
  std::printf("[charisma] %zu trace events, %zu file sessions\n\n",
              study_->sorted.records.size(), store_->sessions().size());
  built_ = true;
}

const core::StudyOutput& Context::study() {
  ensure();
  return *study_;
}

const analysis::SessionStore& Context::store() {
  ensure();
  return *store_;
}

const std::set<cache::SessionKey>& Context::read_only() {
  ensure();
  return *read_only_;
}

util::ThreadPool& Context::pool() {
  CHECK(configured_, "bench::Context used before configure()");
  if (!pool_) pool_.emplace(threads_);
  return *pool_;
}

cache::SweepRunner& Context::sweeps() {
  ensure();
  return *sweeps_;
}

Comparison::Comparison(std::string title)
    : title_(std::move(title)),
      table_({"metric", "paper (1994)", "this reproduction"}) {}

Comparison& Comparison::row(const std::string& metric,
                            const std::string& paper,
                            const std::string& measured) {
  table_.add_row({metric, paper, measured});
  return *this;
}

Comparison& Comparison::row(const std::string& metric, double paper,
                            double measured, int precision) {
  return row(metric, util::fmt(paper, precision),
             util::fmt(measured, precision));
}

Comparison& Comparison::percent_row(const std::string& metric,
                                    double paper_fraction,
                                    double measured_fraction) {
  return row(metric, util::fmt(paper_fraction * 100.0) + "%",
             util::fmt(measured_fraction * 100.0) + "%");
}

void Comparison::print() const {
  std::printf("=== %s ===\n%s\n", title_.c_str(), table_.render().c_str());
  std::fflush(stdout);
}

int bench_main(int argc, char** argv, const char* experiment,
               void (*reproduce)()) {
  util::Flags flags(argc, argv, {"scale", "seed", "threads"});
  Context::instance().configure(
      flags.get_double("scale", 0.2),
      static_cast<std::uint64_t>(flags.get_int("seed", 42)),
      static_cast<std::size_t>(flags.get_int("threads", 0)));
  std::printf("==========================================================\n");
  std::printf("CHARISMA reproduction: %s\n", experiment);
  std::printf("==========================================================\n");
  reproduce();

  int bench_argc = flags.remaining_argc();
  benchmark::Initialize(&bench_argc, flags.remaining().data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace charisma::bench
