
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipsc/machine.cpp" "src/ipsc/CMakeFiles/charisma_ipsc.dir/machine.cpp.o" "gcc" "src/ipsc/CMakeFiles/charisma_ipsc.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/charisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/charisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/charisma_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charisma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
