file(REMOVE_RECURSE
  "libcharisma_analysis.a"
)
