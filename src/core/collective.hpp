// Collective ("disk-directed") I/O ablation.
//
// The paper's last recommendation (§5): "For some applications, collective
// I/O requests can lead to even better performance [Kotz, disk-directed
// I/O]".  The idea: when all nodes of a job access one file together, hand
// the whole access list to the I/O nodes and let each service its blocks in
// DISK order instead of request-arrival order.  This module replays each
// (job, file) session's block stream against the disk model both ways and
// reports the positioning-cost reduction.
#pragma once

#include <cstdint>
#include <string>

#include "disk/disk.hpp"
#include "trace/postprocess.hpp"

namespace charisma::core {

struct CollectiveConfig {
  int io_nodes = 10;
  std::int64_t block_size = util::kBlockSize;
  disk::DiskParams disk;
  /// Sessions with fewer block accesses than this are not worth batching.
  std::size_t min_blocks = 8;
};

struct CollectiveStats {
  std::uint64_t sessions = 0;       // sessions large enough to batch
  std::uint64_t block_accesses = 0;
  util::MicroSec disk_time_arrival = 0;   // service in request order
  util::MicroSec disk_time_directed = 0;  // service in disk order
  std::uint64_t discontiguities_arrival = 0;  // head repositionings
  std::uint64_t discontiguities_directed = 0;

  [[nodiscard]] double time_reduction() const noexcept {
    return disk_time_arrival
               ? 1.0 - static_cast<double>(disk_time_directed) /
                           static_cast<double>(disk_time_arrival)
               : 0.0;
  }
  [[nodiscard]] std::string render() const;
};

/// Replays every (job, file) data stream through the disk model in arrival
/// order and in disk-directed (sorted) order.
[[nodiscard]] CollectiveStats analyze_disk_directed(
    const trace::SortedTrace& trace, const CollectiveConfig& config);

}  // namespace charisma::core
