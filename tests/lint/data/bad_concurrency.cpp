// Deliberately hazardous input for the concurrency-rule golden tests.
// Never compiled — only scanned.  Line numbers are load-bearing: the golden
// file pins every finding to its line.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Node {
  int id = 0;
};

void shared_captures(util::ThreadPool& pool) {
  int hits = 0;
  const int limit = 8;
  util::parallel_for(pool, 8, [&hits](std::size_t) { ++hits; });
  util::parallel_for(pool, 8, [&](std::size_t i) { (void)i; });
  util::parallel_for(pool, 8, [&limit](std::size_t i) { (void)(i + limit); });
  util::parallel_for(pool, 8, [hits](std::size_t i) { (void)(i + hits); });
  pool.submit([&hits] { ++hits; });
  // Audited example of the escape hatch: per-index slots, no sharing.
  // NOLINTNEXTLINE(charisma-shared-capture)
  util::parallel_for(pool, 8, [&hits](std::size_t) { ++hits; });
}

void named_lambda(util::ThreadPool& pool) {
  int total_ops = 0;
  const auto bump = [&total_ops](std::size_t) { ++total_ops; };
  util::parallel_for(pool, 4, bump);
}

void parallel_fold(util::ThreadPool& pool, const std::vector<double>& xs) {
  double total = 0.0;
  util::parallel_for(pool, xs.size(),
                     // NOLINTNEXTLINE(charisma-shared-capture)
                     [&](std::size_t i) { total += xs[i]; });
}

void pointer_order(std::vector<Node*>& nodes) {
  std::map<Node*, int> by_node;
  std::set<const Node*> seen;
  std::sort(nodes.begin(), nodes.end());
  (void)by_node;
  (void)seen;
}
