// Example: the full CHARISMA methodology end to end.
//
// Generates the synthetic NAS workload, runs it through the simulated
// iPSC/860 + instrumented CFS, collects and postprocesses the trace, and
// prints the complete paper-style characterization.
//
//   trace_and_characterize [--scale=0.2] [--seed=42] [--out=trace.chtr]
//                          [--export=DIR]
//
// --out writes the raw binary trace to disk (readable back with
// trace::TraceFile::read or the charisma_analyze tool); --export writes
// gnuplot-ready series for every figure into DIR.
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/export.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  charisma::util::Flags flags(argc, argv, {"scale", "seed", "out", "export"});
  const double scale = flags.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::printf("running CHARISMA study at scale %.3f (seed %llu)...\n", scale,
              static_cast<unsigned long long>(seed));
  const auto study = charisma::core::run_study_at_scale(scale, seed);
  std::printf("%s", charisma::core::full_report(study).c_str());
  std::printf(
      "\ninstrumentation: %llu records, %llu collector messages, %s of "
      "trace written (%.2f%% of all disk traffic)\n",
      static_cast<unsigned long long>(study.records),
      static_cast<unsigned long long>(study.collector_messages),
      charisma::util::format_bytes(study.trace_bytes).c_str(),
      study.user_bytes_moved > 0
          ? 100.0 * static_cast<double>(study.trace_bytes) /
                static_cast<double>(study.user_bytes_moved)
          : 0.0);

  if (flags.has("out")) {
    const std::string path = flags.get("out", "trace.chtr");
    study.raw.write(path);
    std::printf("raw trace written to %s\n", path.c_str());
  }
  if (flags.has("export")) {
    const std::string dir = flags.get("export", "figures");
    std::filesystem::create_directories(dir);
    const auto result = charisma::core::export_figures(study, dir);
    std::printf("%d figure series written to %s (plot with gnuplot %s)\n",
                result.files_written, dir.c_str(),
                result.plot_script.c_str());
  }
  return 0;
}
