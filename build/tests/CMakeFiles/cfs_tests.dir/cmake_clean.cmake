file(REMOVE_RECURSE
  "CMakeFiles/cfs_tests.dir/cfs/client_test.cpp.o"
  "CMakeFiles/cfs_tests.dir/cfs/client_test.cpp.o.d"
  "CMakeFiles/cfs_tests.dir/cfs/file_system_test.cpp.o"
  "CMakeFiles/cfs_tests.dir/cfs/file_system_test.cpp.o.d"
  "CMakeFiles/cfs_tests.dir/cfs/fuzz_test.cpp.o"
  "CMakeFiles/cfs_tests.dir/cfs/fuzz_test.cpp.o.d"
  "CMakeFiles/cfs_tests.dir/cfs/io_node_test.cpp.o"
  "CMakeFiles/cfs_tests.dir/cfs/io_node_test.cpp.o.d"
  "CMakeFiles/cfs_tests.dir/cfs/runtime_test.cpp.o"
  "CMakeFiles/cfs_tests.dir/cfs/runtime_test.cpp.o.d"
  "CMakeFiles/cfs_tests.dir/cfs/strided_test.cpp.o"
  "CMakeFiles/cfs_tests.dir/cfs/strided_test.cpp.o.d"
  "cfs_tests"
  "cfs_tests.pdb"
  "cfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
