// CharismaStudy — the top-level pipeline and the library's main entry point.
//
// Wires the full reproduction together exactly as the paper's methodology
// runs: synthetic production workload -> simulated iPSC/860 -> instrumented
// CFS -> per-node trace buffers -> service-node collector -> raw trace ->
// postprocess (clock fitting + sort).  Analyzers and cache simulators then
// consume the postprocessed trace.
#pragma once

#include <cstdint>
#include <memory>

#include "cfs/runtime.hpp"
#include "ipsc/machine.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "trace/collector.hpp"
#include "trace/postprocess.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"
#include "workload/source.hpp"

namespace charisma::core {

/// The label every study stamps into its trace header.  Shared between the
/// materialized and streaming runners: the spill header is written up front,
/// so the label must be identical (and final) in both modes for the trace
/// digests to match.  Also shared across workload sources — the digest
/// folds the label, and keeping it source-independent is what lets a
/// replayed chwl export reproduce its original study's digest bit for bit
/// (the round-trip test pins this).
inline constexpr const char* kStudyTraceLabel =
    "charisma synthetic NAS workload";

/// How the pipeline hands the trace to its consumers.
enum class TraceMode : std::uint8_t {
  /// Default: spill raw trace blocks to disk during the run, merge them once
  /// in postprocessed order, and push every record through bounded-state
  /// sinks (sessions, request sizes, I/O rate, replay ops).  Peak RSS is
  /// O(merge window), not O(trace length).
  kStreaming,
  /// Reference: materialize the whole trace in memory (TraceFile +
  /// SortedTrace) and run each consumer as its own pass.  Kept for
  /// differential testing and ad-hoc exploration of the record vector.
  kMaterialized,
};

[[nodiscard]] constexpr const char* to_string(TraceMode m) noexcept {
  switch (m) {
    case TraceMode::kStreaming: return "streaming";
    case TraceMode::kMaterialized: return "materialized";
  }
  return "?";
}

/// "streaming" | "materialized" -> TraceMode; CHECK-fails on anything else.
[[nodiscard]] TraceMode parse_trace_mode(const std::string& name);

/// Default StudyConfig::spill_budget_mb: sized so studies up to scale 1.0
/// (≈310 MB of trace payload plus ≈25 MB of compact replay-op chunks) stay
/// fully resident — disk is for runs beyond the paper's full scale, or for
/// explicitly smaller budgets (campaigns dividing RAM across workers).
inline constexpr std::int64_t kDefaultSpillBudgetMb = 384;

struct StudyConfig {
  workload::WorkloadConfig workload = workload::WorkloadConfig::nas_1993();
  ipsc::MachineConfig machine = ipsc::MachineConfig::nas_ames();
  cfs::RuntimeParams runtime;
  trace::CollectorParams collector;
  /// Event-queue implementation; both kinds dispatch identically (the
  /// differential test holds them to the same trace digest), so this only
  /// matters for performance work.
  sim::QueueKind queue = sim::kDefaultQueueKind;
  /// Engine threads: 1 runs the serial engine; N > 1 shards the machine's
  /// logical processes across N calendar queues with conservative-window
  /// synchronization (lookahead = the network model's minimum message
  /// latency).  The trace digest is identical for every value.
  int engine_threads = 1;
  /// Runs the sharded coordinator even at one thread (differential tests
  /// of the window protocol).
  bool force_sharded_engine = false;
  /// Which workload source feeds the Driver: the synthetic reconstruction
  /// (default), a chwl replay log ("replay:<path>"), or the Daly
  /// checkpoint-restart archetype ("checkpoint").  Every analyzer, figure,
  /// cache sweep, queue kind, engine-thread count, and trace mode runs
  /// unchanged over any source.
  workload::SourceSpec source;
  /// Reference feed for the source differential suite: drive the synthetic
  /// workload through the pre-Source materialized-script Driver path
  /// instead of the seam.  Only valid with the synthetic method (CHECK).
  bool legacy_driver = false;
  /// Streaming mode's memory-tier budget (one pool shared by trace blocks,
  /// replay-op chunks, and — when it still fits — the sweeps' decoded flat
  /// op array, which lets small studies replay with zero per-pass decode):
  /// spilled data stays resident up to this many MiB, only the overflow
  /// hits disk.  The default keeps every scale ≤ 1.0 study's spilled
  /// payload in memory; 0 forces the all-disk pre-tier behavior.  Peak RSS
  /// is bounded by the streaming window plus this budget.
  std::int64_t spill_budget_mb = kDefaultSpillBudgetMb;
  /// Streaming mode's spill directory ("" = $TMPDIR, then /tmp).
  std::string spill_dir;
};

struct StudyOutput {
  trace::TraceFile raw;
  trace::SortedTrace sorted;
  std::vector<workload::JobResult> jobs;
  workload::GeneratedWorkload workload;

  // Perturbation accounting (§3.1 / ablation C).
  std::uint64_t records = 0;
  std::uint64_t collector_messages = 0;
  std::int64_t trace_bytes = 0;
  std::int64_t user_bytes_moved = 0;  // all disk traffic, for the <1% claim
  std::uint64_t total_ops = 0;
  std::uint64_t events_dispatched = 0;  // engine events, for events/sec
  util::MicroSec sim_end = 0;
  /// Engine threads the study ran with, and the sharded backend's window
  /// counters (all zero when serial).
  int engine_threads = 1;
  sim::ShardStats shard_stats;
};

/// Runs the full study.  Deterministic in `config`.
[[nodiscard]] StudyOutput run_study(const StudyConfig& config);

/// Convenience used by benches: a study at the given workload scale with
/// everything else at the NAS defaults.
[[nodiscard]] StudyOutput run_study_at_scale(double scale,
                                             std::uint64_t seed = 42);

}  // namespace charisma::core
