#include "tools/lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace charisma::lint {

namespace {

constexpr std::string_view kWallClock = "charisma-wallclock";
constexpr std::string_view kRawRandom = "charisma-raw-random";
constexpr std::string_view kUnorderedIter = "charisma-unordered-iter";
constexpr std::string_view kFloatTime = "charisma-float-time";
constexpr std::string_view kUnknownSuppression = "charisma-unknown-suppression";

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Pre-pass product: `code` mirrors the input byte for byte but with every
/// comment and the *contents* of every string/char literal blanked to
/// spaces, so token rules cannot be fooled by text in either.  Comment text
/// is collected per line for NOLINT handling.
struct Stripped {
  std::string code;
  std::map<int, std::string> comments;  // line -> concatenated comment text
  std::vector<std::size_t> line_start;  // offset of each line's first byte
};

[[nodiscard]] Stripped strip(std::string_view in) {
  Stripped out;
  out.code.assign(in.size(), ' ');
  out.line_start.push_back(0);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  int line = 1;
  std::string raw_terminator;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      out.line_start.push_back(i + 1);
      out.code[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // swallow the second slash too
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(in[i - 1]))) {
          // Raw string: scan the delimiter up to '('.
          std::size_t j = i + 2;
          std::string delim;
          while (j < in.size() && in[j] != '(' && in[j] != '\n') {
            delim += in[j++];
          }
          raw_terminator = ")" + delim + "\"";
          out.code[i] = 'R';
          state = State::kRawString;
          i = j;  // at '(' (blanked)
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        out.comments[line] += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          state = State::kCode;
        } else {
          out.comments[line] += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

[[nodiscard]] int line_of(const Stripped& s, std::size_t offset) {
  const auto it = std::upper_bound(s.line_start.begin(), s.line_start.end(),
                                   offset);
  return static_cast<int>(it - s.line_start.begin());
}

/// Per-line suppression sets parsed from NOLINT / NOLINTNEXTLINE comments.
struct Suppressions {
  std::map<int, std::set<std::string, std::less<>>> rules;  // empty set = all
  std::vector<Finding> unknown;  // stale charisma-* suppressions

  [[nodiscard]] bool covers(int line, std::string_view rule) const {
    const auto it = rules.find(line);
    if (it == rules.end()) return false;
    return it->second.empty() || it->second.count(rule) > 0;
  }
};

[[nodiscard]] Suppressions parse_suppressions(std::string_view file,
                                              const Stripped& s) {
  Suppressions out;
  for (const auto& [line, text] : s.comments) {
    std::size_t pos = 0;
    while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
      std::size_t after = pos + 6;
      int target = line;
      if (text.compare(after, 8, "NEXTLINE") == 0) {
        after += 8;
        target = line + 1;
      }
      auto& set = out.rules[target];  // bare NOLINT: empty set = all rules
      if (after < text.size() && text[after] == '(') {
        const std::size_t close = text.find(')', after);
        std::stringstream list(
            text.substr(after + 1, close == std::string::npos
                                       ? std::string::npos
                                       : close - after - 1));
        std::string name;
        while (std::getline(list, name, ',')) {
          const auto b = name.find_first_not_of(" \t");
          const auto e = name.find_last_not_of(" \t");
          if (b == std::string::npos) continue;
          name = name.substr(b, e - b + 1);
          set.insert(name);
          if (name.rfind("charisma-", 0) == 0 &&
              std::find(known_rules().begin(), known_rules().end(), name) ==
                  known_rules().end()) {
            out.unknown.push_back(
                {std::string(file), line, std::string(kUnknownSuppression),
                 "suppression names unknown rule '" + name + "'"});
          }
        }
      }
      pos = after;
    }
  }
  return out;
}

/// True if `code[pos]` starts the whole identifier token `token`.
[[nodiscard]] bool token_at(std::string_view code, std::size_t pos,
                            std::string_view token) {
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < code.size() && ident_char(code[end])) return false;
  return true;
}

/// Finds whole-token occurrences; if `call_only`, requires a '(' after
/// optional whitespace (so `time` the identifier is fine, `time(...)` the
/// call is flagged).
void find_tokens(const Stripped& s, std::string_view token, bool call_only,
                 std::vector<std::size_t>& hits) {
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string_view::npos) {
    if (token_at(code, pos, token)) {
      std::size_t after = pos + token.size();
      while (after < code.size() && (code[after] == ' ' || code[after] == '\t'))
        ++after;
      if (!call_only || (after < code.size() && code[after] == '(')) {
        hits.push_back(pos);
      }
    }
    pos += token.size();
  }
}

/// Collects names of variables declared with an unordered container type:
/// `std::unordered_map<...> name` (template args balanced across lines).
[[nodiscard]] std::set<std::string, std::less<>> unordered_variables(
    const Stripped& s) {
  std::set<std::string, std::less<>> names;
  const std::string_view code = s.code;
  for (const std::string_view type : {"unordered_map", "unordered_set",
                                      "unordered_multimap",
                                      "unordered_multiset"}) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += type.size();
      if (!token_at(code, start, type)) continue;
      // Balance template arguments.
      std::size_t j = pos;
      while (j < code.size() && std::isspace(static_cast<unsigned char>(
                                    code[j]))) {
        ++j;
      }
      if (j >= code.size() || code[j] != '<') continue;
      int depth = 0;
      for (; j < code.size(); ++j) {
        if (code[j] == '<') ++depth;
        if (code[j] == '>' && --depth == 0) {
          ++j;
          break;
        }
      }
      // Next identifier (skipping refs/pointers/whitespace) is the name —
      // unless the declaration is a function return type or a parameter,
      // which the following '(' / ',' / ')' shapes mostly distinguish; the
      // rule cares about named locals/members, the common leak.
      while (j < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[j])) ||
              code[j] == '&' || code[j] == '*')) {
        ++j;
      }
      std::string name;
      while (j < code.size() && ident_char(code[j])) name += code[j++];
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

/// Flags range-for statements whose sequence expression ends in a variable
/// declared as an unordered container in this file.
void scan_unordered_iteration(std::string_view file, const Stripped& s,
                              const std::set<std::string, std::less<>>& vars,
                              std::vector<Finding>& out) {
  if (vars.empty()) return;
  const std::string_view code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 3;
    if (!token_at(code, kw, "for")) continue;
    std::size_t j = pos;
    while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j])))
      ++j;
    if (j >= code.size() || code[j] != '(') continue;
    // Balance the parens and find the top-level ':' of a range-for.
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t k = j; k < code.size(); ++k) {
      const char c = code[k];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          close = k;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string_view::npos &&
          (k == 0 || code[k - 1] != ':') &&
          (k + 1 >= code.size() || code[k + 1] != ':')) {
        colon = k;
      }
    }
    if (colon == std::string_view::npos || close == std::string_view::npos)
      continue;
    // Last identifier of the sequence expression; a trailing call like
    // `b.sessions()` hides the container behind a function and is exempt.
    std::size_t e = close;
    while (e > colon && !ident_char(code[e - 1])) {
      if (code[e - 1] == ')') {
        e = colon;  // expression ends in a call — bail out
        break;
      }
      --e;
    }
    std::size_t b = e;
    while (b > colon && ident_char(code[b - 1])) --b;
    if (b == e) continue;
    const std::string_view name = code.substr(b, e - b);
    if (vars.count(name) == 0) continue;
    out.push_back({std::string(file), line_of(s, kw),
                   std::string(kUnorderedIter),
                   "iteration over unordered container '" +
                       std::string(name) +
                       "' in an ordering-sensitive path: hash order leaks "
                       "into results; use std::map/std::set or sort first"});
  }
}

void push_token_findings(std::string_view file, const Stripped& s,
                         std::string_view token, bool call_only,
                         std::string_view rule, const std::string& message,
                         std::vector<Finding>& out) {
  std::vector<std::size_t> hits;
  find_tokens(s, token, call_only, hits);
  for (const std::size_t h : hits) {
    out.push_back({std::string(file), line_of(s, h), std::string(rule),
                   message});
  }
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> rules = {
      std::string(kWallClock),     std::string(kRawRandom),
      std::string(kUnorderedIter), std::string(kFloatTime),
      std::string(kUnknownSuppression),
  };
  return rules;
}

FileClass classify_path(std::string_view path) {
  FileClass cls;
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  cls.rng_exempt = p.find("util/rng") != std::string::npos;
  cls.ordering_sensitive = p.find("/analysis/") != std::string::npos ||
                           p.find("report") != std::string::npos ||
                           p.find("export") != std::string::npos ||
                           p.find("postprocess") != std::string::npos;
  return cls;
}

std::vector<Finding> scan_source(std::string_view file_label,
                                 std::string_view content,
                                 const FileClass& cls) {
  const Stripped s = strip(content);
  const Suppressions suppressed = parse_suppressions(file_label, s);

  std::vector<Finding> raw;
  // Wall-clock reads: any of these makes a run depend on the host's clock.
  for (const std::string_view t :
       {"system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "localtime", "gmtime"}) {
    push_token_findings(
        file_label, s, t, /*call_only=*/false, kWallClock,
        "wall-clock source '" + std::string(t) +
            "': simulated time must come from sim::Engine::now()",
        raw);
  }
  push_token_findings(file_label, s, "time", /*call_only=*/true, kWallClock,
                      "wall-clock call 'time()': simulated time must come "
                      "from sim::Engine::now()",
                      raw);

  // Raw entropy: only util/rng may touch it; everything else forks an Rng.
  if (!cls.rng_exempt) {
    for (const std::string_view t : {"rand", "srand", "rand_r", "drand48"}) {
      push_token_findings(file_label, s, t, /*call_only=*/true, kRawRandom,
                          "raw RNG '" + std::string(t) +
                              "()': draw from util::Rng so the (seed, "
                              "config) pair determines the trace",
                          raw);
    }
    push_token_findings(file_label, s, "random_device", /*call_only=*/false,
                        kRawRandom,
                        "std::random_device is a nondeterministic seed "
                        "source; seed util::Rng explicitly",
                        raw);
  }

  // float: simulated time (int64 microseconds) and byte counts exceed a
  // 24-bit mantissa; double is allowed, float never is.
  push_token_findings(file_label, s, "float", /*call_only=*/false, kFloatTime,
                      "'float' cannot represent simulated time or byte "
                      "counts exactly; use integer MicroSec or double",
                      raw);

  if (cls.ordering_sensitive) {
    scan_unordered_iteration(file_label, s, unordered_variables(s), raw);
  }

  std::vector<Finding> out;
  for (auto& f : raw) {
    if (!suppressed.covers(f.line, f.rule)) out.push_back(std::move(f));
  }
  for (const auto& f : suppressed.unknown) out.push_back(f);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<Finding> scan_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  bool any_dir = false;
  for (const char* sub : {"src", "bench", "tools"}) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir)) continue;
    any_dir = true;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  if (!any_dir) {
    throw std::runtime_error("no src/, bench/, or tools/ under '" + root +
                             "' — pass the repository root");
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> out;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    const std::string label =
        fs::relative(path, root).generic_string();
    auto findings = scan_source(label, content, classify_path(label));
    out.insert(out.end(), findings.begin(), findings.end());
  }
  return out;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace charisma::lint
